#include "fedsearch/index/inverted_index.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fedsearch::index {

DocId InvertedIndex::AddDocument(const std::vector<std::string>& terms) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  total_occurrences_ += terms.size();

  // Aggregate per-term counts for this document first, then append one
  // posting per distinct term (keeps postings sorted by doc id).
  std::unordered_map<text::TermId, uint32_t> counts;
  counts.reserve(terms.size());
  for (const std::string& term : terms) {
    const text::TermId id = vocab_.Intern(term);
    if (id >= postings_.size()) {
      postings_.resize(id + 1);
      collection_freq_.resize(id + 1, 0);
    }
    ++counts[id];
  }
  for (const auto& [id, tf] : counts) {
    postings_[id].push_back(Posting{doc, tf});
    collection_freq_[id] += tf;
  }
  return doc;
}

size_t InvertedIndex::DocumentFrequency(std::string_view term) const {
  const text::TermId id = vocab_.Lookup(term);
  return id == text::kInvalidTermId ? 0 : postings_[id].size();
}

uint64_t InvertedIndex::CollectionFrequency(std::string_view term) const {
  const text::TermId id = vocab_.Lookup(term);
  return id == text::kInvalidTermId ? 0 : collection_freq_[id];
}

bool InvertedIndex::ResolveTerms(const std::vector<std::string>& terms,
                                 std::vector<text::TermId>& ids) const {
  ids.clear();
  ids.reserve(terms.size());
  for (const std::string& term : terms) {
    const text::TermId id = vocab_.Lookup(term);
    if (id == text::kInvalidTermId) return false;
    ids.push_back(id);
  }
  return !ids.empty();
}

size_t InvertedIndex::CountConjunctiveMatches(
    const std::vector<std::string>& terms) const {
  std::vector<text::TermId> ids;
  if (!ResolveTerms(terms, ids)) return 0;
  // Intersect postings starting from the shortest list. Postings within a
  // term are sorted by doc id, so merge-intersect.
  std::sort(ids.begin(), ids.end(), [&](text::TermId a, text::TermId b) {
    return postings_[a].size() < postings_[b].size();
  });
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  std::vector<DocId> current;
  current.reserve(postings_[ids[0]].size());
  for (const Posting& p : postings_[ids[0]]) current.push_back(p.doc);
  for (size_t i = 1; i < ids.size() && !current.empty(); ++i) {
    const auto& plist = postings_[ids[i]];
    std::vector<DocId> next;
    next.reserve(std::min(current.size(), plist.size()));
    size_t a = 0, b = 0;
    while (a < current.size() && b < plist.size()) {
      if (current[a] < plist[b].doc) {
        ++a;
      } else if (current[a] > plist[b].doc) {
        ++b;
      } else {
        next.push_back(current[a]);
        ++a;
        ++b;
      }
    }
    current = std::move(next);
  }
  return current.size();
}

std::vector<SearchHit> InvertedIndex::SearchTopK(
    const std::vector<std::string>& terms, size_t k,
    const std::unordered_set<DocId>* exclude) const {
  std::vector<SearchHit> hits;
  if (k == 0) return hits;
  std::vector<text::TermId> ids;
  if (!ResolveTerms(terms, ids)) return hits;
  std::sort(ids.begin(), ids.end(), [&](text::TermId a, text::TermId b) {
    return postings_[a].size() < postings_[b].size();
  });
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  // Conjunctive candidate set with accumulated tf-idf scores.
  struct Cand {
    DocId doc;
    double score;
  };
  const double n_docs = static_cast<double>(num_documents());
  auto idf = [&](text::TermId id) {
    const double df = static_cast<double>(postings_[id].size());
    return std::log(1.0 + n_docs / (df + 1.0));
  };

  std::vector<Cand> current;
  {
    const double w = idf(ids[0]);
    current.reserve(postings_[ids[0]].size());
    for (const Posting& p : postings_[ids[0]]) {
      const double norm =
          static_cast<double>(std::max<uint32_t>(1, doc_lengths_[p.doc]));
      current.push_back(Cand{p.doc, w * p.tf / norm});
    }
  }
  for (size_t i = 1; i < ids.size() && !current.empty(); ++i) {
    const auto& plist = postings_[ids[i]];
    const double w = idf(ids[i]);
    std::vector<Cand> next;
    next.reserve(std::min(current.size(), plist.size()));
    size_t a = 0, b = 0;
    while (a < current.size() && b < plist.size()) {
      if (current[a].doc < plist[b].doc) {
        ++a;
      } else if (current[a].doc > plist[b].doc) {
        ++b;
      } else {
        const double norm = static_cast<double>(
            std::max<uint32_t>(1, doc_lengths_[current[a].doc]));
        next.push_back(
            Cand{current[a].doc, current[a].score + w * plist[b].tf / norm});
        ++a;
        ++b;
      }
    }
    current = std::move(next);
  }

  for (const Cand& c : current) {
    if (exclude != nullptr && exclude->count(c.doc) > 0) continue;
    hits.push_back(SearchHit{c.doc, c.score});
  }
  // Deterministic top-k: score desc, doc id asc.
  auto better = [](const SearchHit& x, const SearchHit& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  if (hits.size() > k) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(k),
                      hits.end(), better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

std::vector<SearchHit> InvertedIndex::SearchTopKDisjunctive(
    const std::vector<std::string>& terms, size_t k) const {
  std::vector<SearchHit> hits;
  if (k == 0 || terms.empty()) return hits;

  std::vector<text::TermId> ids;
  ids.reserve(terms.size());
  for (const std::string& term : terms) {
    const text::TermId id = vocab_.Lookup(term);
    if (id != text::kInvalidTermId) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) return hits;

  const double n_docs = static_cast<double>(num_documents());
  std::unordered_map<DocId, double> scores;
  for (text::TermId id : ids) {
    const double df = static_cast<double>(postings_[id].size());
    const double idf = std::log(1.0 + n_docs / (df + 1.0));
    for (const Posting& p : postings_[id]) {
      const double norm =
          static_cast<double>(std::max<uint32_t>(1, doc_lengths_[p.doc]));
      scores[p.doc] += idf * p.tf / norm;
    }
  }

  hits.reserve(scores.size());
  for (const auto& [doc, score] : scores) {
    hits.push_back(SearchHit{doc, score});
  }
  auto better = [](const SearchHit& x, const SearchHit& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  if (hits.size() > k) {
    std::partial_sort(hits.begin(), hits.begin() + static_cast<long>(k),
                      hits.end(), better);
    hits.resize(k);
  } else {
    std::sort(hits.begin(), hits.end(), better);
  }
  return hits;
}

}  // namespace fedsearch::index
