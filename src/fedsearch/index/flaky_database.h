#ifndef FEDSEARCH_INDEX_FLAKY_DATABASE_H_
#define FEDSEARCH_INDEX_FLAKY_DATABASE_H_

#include <cstdint>
#include <string>

#include "fedsearch/index/search_interface.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::index {

// Per-call fault rates of a FlakyDatabase. Rates are independent
// probabilities summing to at most 1; on each incoming call at most one
// fault fires. The first three are *hard* faults (the call fails with a
// transient Status); the last two are *soft* faults (the call succeeds but
// the payload is damaged — the silent failure mode of real search
// frontends, which return truncated result pages and estimated match
// counts under load).
struct FaultProfile {
  // Hard: transient unavailability (kUnavailable).
  double unavailable_rate = 0.0;
  // Hard: deadline exceeded (kDeadlineExceeded).
  double timeout_rate = 0.0;
  // Hard: rate-limited (kResourceExhausted) with a retry-after hint.
  double rate_limit_rate = 0.0;
  // Soft, Search only: the returned doc list is cut to a random prefix.
  double truncation_rate = 0.0;
  // Soft, Search only: num_matches is multiplied by a random factor in
  // [0, 2.5), modelling the bogus estimated counts of Section 2.2 engines.
  double corruption_rate = 0.0;
  // Soft, Search only: the reply arrives intact but late — the reported
  // QueryResult::service_ms is inflated by a factor drawn uniformly in
  // [1, slow_factor). This is the tail-latency fault the overload broker
  // benches need: it burns deadline budget without losing payload. Only
  // meaningful when base_service_ms > 0.
  double slow_rate = 0.0;

  // Hint attached to rate-limit errors as "retry_after_ms=<n>".
  double retry_after_ms = 250.0;
  // Multiplier ceiling for slow faults (drawn in [1, slow_factor)).
  double slow_factor = 8.0;
  // Service time reported on every successful Search, before any slow-fault
  // inflation. The default 0 keeps the decorator service-time-transparent
  // for callers that predate the deadline layer.
  double base_service_ms = 0.0;

  // An even mix of the five classic faults, each at total_rate / 5. Slow
  // faults are opt-in (set slow_rate and base_service_ms explicitly) so the
  // degradation benches recorded against Mixed() keep their fault ladders.
  static FaultProfile Mixed(double total_rate);

  double total_rate() const {
    return unavailable_rate + timeout_rate + rate_limit_rate +
           truncation_rate + corruption_rate + slow_rate;
  }
};

// Counters of what a FlakyDatabase actually injected.
struct FaultStats {
  size_t calls = 0;  // Search + Fetch seen
  size_t unavailable = 0;
  size_t timeouts = 0;
  size_t rate_limits = 0;
  size_t truncations = 0;
  size_t corruptions = 0;
  size_t slow_replies = 0;
  // Total simulated Search service time handed out, inflation included.
  double simulated_service_ms = 0.0;

  size_t hard_faults() const { return unavailable + timeouts + rate_limits; }
  size_t soft_faults() const { return truncations + corruptions + slow_replies; }
};

// Fault-injecting decorator over any SearchInterface. Injection is driven
// by a private util::Rng seeded at construction and advanced a fixed two
// draws per incoming call, so the fault sequence is a pure function of
// (seed, call index): two runs issuing the same call sequence against the
// same seed observe byte-identical faults. Decorators stack — wrap a
// FlakyDatabase in another to compose fault regimes.
class FlakyDatabase final : public SearchInterface {
 public:
  // `base` must outlive the decorator.
  FlakyDatabase(SearchInterface* base, FaultProfile profile, uint64_t seed);

  std::string_view name() const override { return base_->name(); }

  util::StatusOr<QueryResult> Search(
      std::string_view query_text, size_t top_k,
      const std::unordered_set<DocId>* exclude = nullptr) override;

  util::StatusOr<const Document*> Fetch(DocId id) override;

  const FaultStats& stats() const { return stats_; }

 private:
  enum class Fault {
    kNone,
    kUnavailable,
    kTimeout,
    kRateLimit,
    kTruncate,
    kCorrupt,
    kSlow,
  };

  // Draws the fault for the current call plus the auxiliary uniform used
  // by soft faults. Always two draws, fault or not (see class comment).
  Fault NextFault(double& aux);

  // Materializes a hard fault as its transient Status.
  util::Status HardFault(Fault fault);

  SearchInterface* base_;
  FaultProfile profile_;
  util::Rng rng_;
  FaultStats stats_;
};

}  // namespace fedsearch::index

#endif  // FEDSEARCH_INDEX_FLAKY_DATABASE_H_
