#include "fedsearch/index/text_database.h"

#include <utility>

namespace fedsearch::index {

TextDatabase::TextDatabase(std::string name, const text::Analyzer* analyzer)
    : name_(std::move(name)), analyzer_(analyzer) {}

DocId TextDatabase::AddDocument(std::string text) {
  const std::vector<std::string> terms = analyzer_->Analyze(text);
  const DocId id = index_.AddDocument(terms);
  docs_.push_back(Document{id, std::move(text)});
  return id;
}

QueryResult TextDatabase::Query(
    std::string_view query_text, size_t top_k,
    const std::unordered_set<DocId>* exclude) const {
  QueryResult result;
  const std::vector<std::string> terms = analyzer_->Analyze(query_text);
  if (terms.empty()) return result;
  result.num_matches = index_.CountConjunctiveMatches(terms);
  for (const SearchHit& hit : index_.SearchTopK(terms, top_k, exclude)) {
    result.docs.push_back(hit.doc);
  }
  return result;
}

}  // namespace fedsearch::index
