#ifndef FEDSEARCH_INDEX_SEARCH_INTERFACE_H_
#define FEDSEARCH_INDEX_SEARCH_INTERFACE_H_

#include <string_view>
#include <unordered_set>

#include "fedsearch/index/text_database.h"
#include "fedsearch/util/status.h"

namespace fedsearch::index {

// The remote-access contract of Section 2.2: an autonomous, uncooperative
// database reached over its public search interface. Exactly two
// operations exist — run a query, download a returned document — and both
// can fail the way real remote endpoints fail (unavailable, timed out,
// throttled). Samplers and the metasearcher are written against this
// interface; TextDatabase is only ever reached through an adapter.
//
// Calls are non-const: a remote interaction is not a logically-const
// operation (decorators keep per-call state, real transports keep
// connections).
class SearchInterface {
 public:
  virtual ~SearchInterface() = default;

  virtual std::string_view name() const = 0;

  // Evaluates `query_text` conjunctively; at most `top_k` hits, documents
  // in `exclude` (may be null) skipped but still counted in num_matches.
  virtual util::StatusOr<QueryResult> Search(
      std::string_view query_text, size_t top_k,
      const std::unordered_set<DocId>* exclude = nullptr) = 0;

  // Downloads one result document. The pointer stays valid for the
  // lifetime of the underlying database.
  virtual util::StatusOr<const Document*> Fetch(DocId id) = 0;
};

// Fault-free in-process adapter over a TextDatabase — the cooperative
// local case, and the innermost layer under fault-injecting decorators.
class LocalDatabase final : public SearchInterface {
 public:
  // `db` must outlive the adapter.
  explicit LocalDatabase(const TextDatabase* db) : db_(db) {}

  std::string_view name() const override { return db_->name(); }

  util::StatusOr<QueryResult> Search(
      std::string_view query_text, size_t top_k,
      const std::unordered_set<DocId>* exclude = nullptr) override {
    return db_->Query(query_text, top_k, exclude);
  }

  util::StatusOr<const Document*> Fetch(DocId id) override {
    if (static_cast<size_t>(id) >= db_->num_documents()) {
      return util::Status::NotFound("no document with id " +
                                    std::to_string(id));
    }
    return &db_->FetchDocument(id);
  }

 private:
  const TextDatabase* db_;
};

}  // namespace fedsearch::index

#endif  // FEDSEARCH_INDEX_SEARCH_INTERFACE_H_
