#include "fedsearch/index/flaky_database.h"

#include <cmath>
#include <utility>

namespace fedsearch::index {

FaultProfile FaultProfile::Mixed(double total_rate) {
  FaultProfile p;
  const double each = total_rate / 5.0;
  p.unavailable_rate = each;
  p.timeout_rate = each;
  p.rate_limit_rate = each;
  p.truncation_rate = each;
  p.corruption_rate = each;
  return p;
}

FlakyDatabase::FlakyDatabase(SearchInterface* base, FaultProfile profile,
                             uint64_t seed)
    : base_(base), profile_(profile), rng_(seed) {}

FlakyDatabase::Fault FlakyDatabase::NextFault(double& aux) {
  const double u = rng_.NextDouble();
  aux = rng_.NextDouble();
  ++stats_.calls;
  double edge = profile_.unavailable_rate;
  if (u < edge) return Fault::kUnavailable;
  edge += profile_.timeout_rate;
  if (u < edge) return Fault::kTimeout;
  edge += profile_.rate_limit_rate;
  if (u < edge) return Fault::kRateLimit;
  edge += profile_.truncation_rate;
  if (u < edge) return Fault::kTruncate;
  edge += profile_.corruption_rate;
  if (u < edge) return Fault::kCorrupt;
  edge += profile_.slow_rate;
  if (u < edge) return Fault::kSlow;
  return Fault::kNone;
}

util::Status FlakyDatabase::HardFault(Fault fault) {
  switch (fault) {
    case Fault::kUnavailable:
      ++stats_.unavailable;
      return util::Status::Unavailable(std::string(name()) +
                                       ": transiently unavailable");
    case Fault::kTimeout:
      ++stats_.timeouts;
      return util::Status::DeadlineExceeded(std::string(name()) +
                                            ": deadline exceeded");
    case Fault::kRateLimit:
      ++stats_.rate_limits;
      return util::Status::ResourceExhausted(
          std::string(name()) + ": rate limited; retry_after_ms=" +
          std::to_string(profile_.retry_after_ms));
    default:
      return util::Status::Internal("not a hard fault");
  }
}

util::StatusOr<QueryResult> FlakyDatabase::Search(
    std::string_view query_text, size_t top_k,
    const std::unordered_set<DocId>* exclude) {
  double aux = 0.0;
  const Fault fault = NextFault(aux);
  if (fault == Fault::kUnavailable || fault == Fault::kTimeout ||
      fault == Fault::kRateLimit) {
    return HardFault(fault);
  }
  util::StatusOr<QueryResult> result = base_->Search(query_text, top_k, exclude);
  if (!result.ok()) return result;
  // Service-time model: every successful reply costs base_service_ms (on
  // top of whatever the wrapped engine already reported — decorators
  // stack); a slow fault inflates this call's share by a factor in
  // [1, slow_factor) drawn from the aux uniform, so the fault sequence
  // stays a pure function of (seed, call index).
  double service_ms = profile_.base_service_ms;
  if (fault == Fault::kSlow && service_ms > 0.0) {
    ++stats_.slow_replies;
    service_ms *= 1.0 + aux * (profile_.slow_factor - 1.0);
  }
  result.value().service_ms += service_ms;
  stats_.simulated_service_ms += service_ms;
  if (fault == Fault::kTruncate && !result.value().docs.empty()) {
    ++stats_.truncations;
    QueryResult& r = result.value();
    r.docs.resize(static_cast<size_t>(aux * static_cast<double>(r.docs.size())));
  } else if (fault == Fault::kCorrupt) {
    ++stats_.corruptions;
    QueryResult& r = result.value();
    r.num_matches = static_cast<size_t>(
        std::llround(static_cast<double>(r.num_matches) * aux * 2.5));
  }
  return result;
}

util::StatusOr<const Document*> FlakyDatabase::Fetch(DocId id) {
  double aux = 0.0;
  const Fault fault = NextFault(aux);
  // Soft faults are payload damage / delay on Search replies; a fetch
  // either completes or fails and reports no service time, so
  // kTruncate/kCorrupt/kSlow pass through untouched (keeping the
  // two-draws-per-call determinism contract).
  switch (fault) {
    case Fault::kUnavailable:
    case Fault::kTimeout:
    case Fault::kRateLimit:
      return HardFault(fault);
    default:
      return base_->Fetch(id);
  }
}

}  // namespace fedsearch::index
