#ifndef FEDSEARCH_INDEX_DOCUMENT_H_
#define FEDSEARCH_INDEX_DOCUMENT_H_

#include <cstdint>
#include <string>

namespace fedsearch::index {

// Identifier of a document within one database (dense, 0-based).
using DocId = uint32_t;

// A stored document: raw text plus its database-local id.
struct Document {
  DocId id = 0;
  std::string text;
};

}  // namespace fedsearch::index

#endif  // FEDSEARCH_INDEX_DOCUMENT_H_
