#ifndef FEDSEARCH_INDEX_INVERTED_INDEX_H_
#define FEDSEARCH_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "fedsearch/index/document.h"
#include "fedsearch/text/vocabulary.h"

namespace fedsearch::index {

// One ranked search hit.
struct SearchHit {
  DocId doc = 0;
  double score = 0.0;
};

// In-memory inverted index over analyzed terms for a single database.
//
// Postings are kept sorted by document id (documents are appended in id
// order). Supports the two operations the rest of the system needs:
//   * conjunctive match counting (the "N matches" figure a web search
//     interface reports), and
//   * ranked tf-idf retrieval over the matching documents, with an optional
//     exclusion set (used by the samplers to fetch previously-unseen docs).
class InvertedIndex {
 public:
  InvertedIndex() = default;

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  // Adds the next document (ids are assigned densely in call order) with the
  // given analyzed terms. Returns the new document's id.
  DocId AddDocument(const std::vector<std::string>& terms);

  size_t num_documents() const { return doc_lengths_.size(); }
  uint64_t total_term_occurrences() const { return total_occurrences_; }
  size_t vocabulary_size() const { return vocab_.size(); }
  const text::Vocabulary& vocabulary() const { return vocab_; }

  // Document frequency: number of documents containing `term`.
  size_t DocumentFrequency(std::string_view term) const;

  // Collection term frequency: total occurrences of `term`.
  uint64_t CollectionFrequency(std::string_view term) const;

  // Number of documents containing ALL of `terms` (empty terms -> 0).
  size_t CountConjunctiveMatches(const std::vector<std::string>& terms) const;

  // Top-k documents containing all of `terms`, ranked by a tf-idf score,
  // skipping documents in `exclude` (may be null). Deterministic: ties are
  // broken by ascending document id.
  std::vector<SearchHit> SearchTopK(
      const std::vector<std::string>& terms, size_t k,
      const std::unordered_set<DocId>* exclude = nullptr) const;

  // Disjunctive (OR) ranked retrieval: top-k documents containing at least
  // one term, by accumulated tf-idf. Used by ReDDE's centralized sample
  // index, where conjunctive semantics would be far too strict for long
  // queries. Same determinism guarantees as SearchTopK.
  std::vector<SearchHit> SearchTopKDisjunctive(
      const std::vector<std::string>& terms, size_t k) const;

  // Iterates the full index: calls fn(term, document_frequency,
  // collection_frequency) for every term. Used to build the "perfect"
  // content summary S(D) of Section 6.1.
  template <typename Fn>
  void ForEachTerm(Fn&& fn) const {
    for (text::TermId t = 0; t < vocab_.size(); ++t) {
      fn(vocab_.TermOf(t), postings_[t].size(), collection_freq_[t]);
    }
  }

  // Calls fn(doc_id, tf) for every document containing `term`. Used by the
  // evaluation harness to compute relevance judgments.
  template <typename Fn>
  void ForEachPosting(std::string_view term, Fn&& fn) const {
    const text::TermId id = vocab_.Lookup(term);
    if (id == text::kInvalidTermId) return;
    for (const Posting& p : postings_[id]) fn(p.doc, p.tf);
  }

 private:
  struct Posting {
    DocId doc;
    uint32_t tf;
  };

  // Returns postings list ids for the terms, or empty if any term is
  // unknown (conjunctive semantics: unknown term -> no matches).
  bool ResolveTerms(const std::vector<std::string>& terms,
                    std::vector<text::TermId>& ids) const;

  text::Vocabulary vocab_;
  std::vector<std::vector<Posting>> postings_;   // indexed by TermId
  std::vector<uint64_t> collection_freq_;        // indexed by TermId
  std::vector<uint32_t> doc_lengths_;            // indexed by DocId
  uint64_t total_occurrences_ = 0;
};

}  // namespace fedsearch::index

#endif  // FEDSEARCH_INDEX_INVERTED_INDEX_H_
