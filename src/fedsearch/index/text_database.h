#ifndef FEDSEARCH_INDEX_TEXT_DATABASE_H_
#define FEDSEARCH_INDEX_TEXT_DATABASE_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "fedsearch/index/document.h"
#include "fedsearch/index/inverted_index.h"
#include "fedsearch/text/analyzer.h"

namespace fedsearch::index {

// What a query against the database's public search interface returns: the
// reported number of matches plus the ids of the top-ranked hits. This is
// the complete "uncooperative database" contract of Section 2.2 — no content
// summaries, no metadata, just search.
struct QueryResult {
  // Number of documents matching the (conjunctive) query, as search engines
  // report ("[hemophilia] returns 15,158 matches", Example 1).
  size_t num_matches = 0;
  // Top-ranked matching documents, already filtered by the caller-provided
  // exclusion set.
  std::vector<DocId> docs;
  // Simulated service time of the call, in milliseconds. 0 means "the
  // engine does not model service time"; deadline-aware callers then fall
  // back to util::Deadline::Costs::search_ms. FlakyDatabase's slow-fault
  // mode inflates this to inject tail latency.
  double service_ms = 0.0;
};

// A searchable text database. Construction-side methods (AddDocument) are
// used by the corpus builder; Query/FetchDocument form the public search
// interface that samplers are restricted to. Evaluation-only accessors
// (num_documents, index) are used to compute the "perfect" content summary
// S(D) and the gold metrics, never by the samplers themselves.
class TextDatabase {
 public:
  // `analyzer` must outlive the database.
  TextDatabase(std::string name, const text::Analyzer* analyzer);

  TextDatabase(const TextDatabase&) = delete;
  TextDatabase& operator=(const TextDatabase&) = delete;
  TextDatabase(TextDatabase&&) = default;
  TextDatabase& operator=(TextDatabase&&) = default;

  // Indexes and stores one document. Returns its id.
  DocId AddDocument(std::string text);

  // --- Public ("uncooperative") search interface -------------------------

  // Runs `query_text` through the same analyzer as the documents and
  // evaluates it conjunctively. At most `top_k` hits are returned; documents
  // in `exclude` (may be null) are skipped in the ranked results but still
  // counted in num_matches.
  QueryResult Query(std::string_view query_text, size_t top_k,
                    const std::unordered_set<DocId>* exclude = nullptr) const;

  // Downloads a result document (samplers call this for each returned hit).
  const Document& FetchDocument(DocId id) const { return docs_[id]; }

  const std::string& name() const { return name_; }

  // --- Evaluation-only access --------------------------------------------

  size_t num_documents() const { return docs_.size(); }
  const InvertedIndex& index() const { return index_; }
  const text::Analyzer& analyzer() const { return *analyzer_; }

 private:
  std::string name_;
  const text::Analyzer* analyzer_;
  InvertedIndex index_;
  std::vector<Document> docs_;
};

}  // namespace fedsearch::index

#endif  // FEDSEARCH_INDEX_TEXT_DATABASE_H_
