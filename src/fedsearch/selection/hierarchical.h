#ifndef FEDSEARCH_SELECTION_HIERARCHICAL_H_
#define FEDSEARCH_SELECTION_HIERARCHICAL_H_

#include <memory>
#include <vector>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/selection/flat_ranker.h"
#include "fedsearch/selection/scoring.h"
#include "fedsearch/summary/content_summary.h"

namespace fedsearch::selection {

// The hierarchical database selection algorithm of Ipeirotis & Gravano [17]
// (the QBS-Hierarchical / FPS-Hierarchical baseline of Section 6.2).
//
// Database content summaries are aggregated into category content summaries
// (Definition 3). To pick k databases for a query, the algorithm starts at
// the root and repeatedly commits to the child category with the highest
// base-algorithm score, descending until it can fill the budget with
// databases ranked flat within the chosen categories. Choices at each
// level are irreversible, which is the structural weakness shrinkage
// avoids (Section 6.2's "Shrinkage vs Hierarchical" discussion).
class HierarchicalSelector {
 public:
  // `hierarchy` must outlive the selector. `summaries[i]` is database i's
  // (unshrunk) content summary and `classifications[i]` its category. The
  // summaries must outlive the selector; category summaries are aggregated
  // at construction.
  HierarchicalSelector(const corpus::TopicHierarchy* hierarchy,
                       std::vector<const summary::ContentSummary*> summaries,
                       std::vector<corpus::CategoryId> classifications);

  // Returns up to k databases for the query, most promising first.
  std::vector<RankedDatabase> Select(const Query& query, size_t k,
                                     const ScoringFunction& scorer) const;

 private:
  // Recursion of [17]: pick ranked databases under `node` up to `k`.
  void SelectUnder(const Query& query, corpus::CategoryId node, size_t k,
                   const ScoringFunction& scorer,
                   const ScoringContext& context,
                   std::vector<RankedDatabase>& out) const;

  const corpus::TopicHierarchy* hierarchy_;
  std::vector<const summary::ContentSummary*> summaries_;
  std::vector<corpus::CategoryId> classifications_;
  // Aggregated category summary per node (over the node's whole subtree).
  std::vector<summary::ContentSummary> category_summaries_;
  // Databases classified exactly at each node.
  std::vector<std::vector<size_t>> databases_at_;
  // Number of databases in each node's subtree.
  std::vector<size_t> subtree_database_count_;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_HIERARCHICAL_H_
