#ifndef FEDSEARCH_SELECTION_SCORING_H_
#define FEDSEARCH_SELECTION_SCORING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fedsearch/summary/content_summary.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::selection {

// A database selection query: a bag of analyzed terms.
struct Query {
  std::vector<std::string> terms;
};

// Corpus-wide inputs a scorer may need beyond the single database summary:
// CORI uses statistics over all databases being ranked (cf(w), mean cw);
// LM smoothes with a "global" category summary (Section 5.3).
struct ScoringContext {
  // All summaries participating in the ranking (indexed like the databases).
  // May be empty for scorers that do not need corpus statistics.
  std::vector<const summary::SummaryView*> ranked_summaries;

  // Summary of the "global" category G (the Root category summary in our
  // experiments); required by LM.
  const summary::SummaryView* global_summary = nullptr;

  // Optional corpus-statistic caches, filled by PrepareContextForQuery.
  // Without them CORI computes cf(w) and the mean collection size on the
  // fly (O(#databases) per word); with them repeated scoring — the
  // adaptive Monte-Carlo in particular — is O(1) per word.
  bool has_cached_statistics = false;
  std::unordered_map<std::string, size_t> cached_cf;
  double cached_mean_cw = 0.0;
};

// Precomputes cf(w) for the query's terms and the mean collection word
// count over context.ranked_summaries. Call once per (query, summary set).
void PrepareContextForQuery(const Query& query, ScoringContext& context);

// Corpus statistics of one FIXED summary set, precomputed over the full
// vocabulary so that per-query context preparation is O(query terms)
// instead of O(query terms × databases). A Metasearcher builds one cache
// per summary set it serves (plain, shrunk) at construction time — the
// summaries are immutable afterwards, so the cache never invalidates.
//
// The values are defined to match PrepareContextForQuery over the same
// summary vector exactly: cf(w) counts summaries with ContainsRounded(w)
// (integer, hence identical), and mean_cw sums total_tokens() in index
// order (the same floating-point reduction order, hence bit-identical).
class ScoringStatisticsCache {
 public:
  ScoringStatisticsCache() = default;

  // Scans every summary's vocabulary once: O(databases × vocabulary).
  explicit ScoringStatisticsCache(
      const std::vector<const summary::SummaryView*>& summaries);

  // Incremental rebuild for live refresh: produces the cache the scanning
  // constructor would build over `summaries`, given `prior` built over
  // `prior_summaries` and the indices (`changed`, unique) where the two
  // summary vectors differ. cf(w) is updated by integer ±1 deltas for the
  // changed databases only — integer counts carry no accumulation-order
  // history, so the result is exactly the scanned map (entries reaching 0
  // are erased to keep the maps identical). mean_cw is NOT incrementally
  // updated: it is recomputed as the full index-order float sum, the only
  // way to stay bit-identical to the scanning constructor (and to
  // PrepareContextForQuery) under floating-point non-associativity.
  // O(changed × vocabulary + databases).
  static ScoringStatisticsCache Rebuilt(
      const ScoringStatisticsCache& prior,
      const std::vector<const summary::SummaryView*>& summaries,
      const std::vector<const summary::SummaryView*>& prior_summaries,
      const std::vector<size_t>& changed);

  // cf(w) over the cached set; 0 for words no summary contains. A pure
  // lookup: discarding the result is always a bug (the hit/miss counters
  // it bumps are not a sanctioned side effect to call it for).
  [[nodiscard]] size_t CollectionFrequency(const std::string& word) const;

  double mean_cw() const { return mean_cw_; }
  size_t num_summaries() const { return num_summaries_; }
  size_t vocabulary_size() const { return cf_.size(); }

  // Fills context.cached_cf / cached_mean_cw for the query's terms and
  // sets has_cached_statistics, assuming context.ranked_summaries is
  // exactly the summary set this cache was built from. Equivalent to (and
  // interchangeable with) PrepareContextForQuery, in O(query terms).
  //
  // `trace` (optional) records the fill as a statistics_cache_fill span
  // under the caller's request trace; observational only.
  void FillContext(const Query& query, ScoringContext& context,
                   const util::TraceContext& trace = {}) const;

  struct Stats {
    uint64_t hits = 0;    // lookups of words present in the cached set
    uint64_t misses = 0;  // lookups of out-of-vocabulary words (cf = 0)
    uint64_t fills = 0;   // FillContext calls served
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total > 0
                 ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
    }
  };
  [[nodiscard]] Stats stats() const;

 private:
  std::unordered_map<std::string, size_t> cf_;
  double mean_cw_ = 1.0;
  size_t num_summaries_ = 0;
  // Counters are immovable atomics, and a Metasearcher move-assigns its
  // caches at construction — so the cells live on the heap and the pointer
  // moves. Never null after construction.
  struct StatsCells {
    util::Counter hits;
    util::Counter misses;
    util::Counter fills;
  };
  std::unique_ptr<StatsCells> stats_cells_ =
      std::make_unique<StatsCells>();
};

// How a delta-capable scorer's per-term contributions combine into one
// query score (before FinalizeScore).
enum class TermCombine {
  kSum,      // score = FinalizeScore(init + Σ contribution)  (CORI)
  kProduct,  // score = FinalizeScore(init · Π contribution)  (LM, bGlOSS)
};

class DeltaScoreState;

// A database selection algorithm: assigns s(q, D) from D's content summary
// (Section 2.1). Implementations must be stateless so one instance can be
// shared across threads and experiments.
//
// Every value-returning member is [[nodiscard]]: scorers are pure
// functions of their arguments, so a discarded result is always a wasted
// computation and usually a logic error.
class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  virtual std::string_view name() const = 0;

  // Score of database `db` for `query`. Higher is better.
  [[nodiscard]] virtual double Score(const Query& query,
                                     const summary::SummaryView& db,
                                     const ScoringContext& context) const = 0;

  // The "default" score: what `db` would score if it contained none of the
  // query words. A database whose score equals this value is considered not
  // selected (Section 6.2's R_k discussion).
  [[nodiscard]] virtual double DefaultScore(
      const Query& query, const summary::SummaryView& db,
      const ScoringContext& context) const = 0;

  // True if the scorer treats query words independently (enables the
  // factored uncertainty computation of Section 4). All three paper
  // algorithms qualify.
  virtual bool independent_terms() const { return true; }

  // --- Delta-scoring protocol (the adaptive Monte-Carlo fast path) ---
  //
  // A scorer that treats query terms independently can expose its score as
  // a fold of per-term contributions:
  //
  //   combined = CombineInit(q, D, ctx)
  //   for i in terms: combined (+|·)= TermContribution(q, i, D, ctx)
  //   score = FinalizeScore(q, combined)
  //
  // The adaptive selector (core/adaptive.cc) then re-scores the summary
  // under a "word w_k appears in exactly d_k documents" counterfactual by
  // recomputing only the perturbed terms via TermContributionWithDf — no
  // per-draw summary view, no vocabulary indirection.
  //
  // Contract for implementers (pinned by tests/selection/scorers_test.cc):
  //  - Score(q, D, ctx) is BIT-IDENTICAL to the fold above, and
  //  - TermContributionWithDf(q, i, D.DocFrequency(terms[i]) with the
  //    override semantics of core::OverrideSummary, D, ctx) is
  //    bit-identical to TermContribution(q, i, OverrideSummary, ctx).
  // The adaptive selector relies on this to keep selection results
  // independent of which path scored a draw.
  virtual bool supports_delta_scoring() const { return false; }
  virtual TermCombine term_combine() const { return TermCombine::kSum; }
  // Captures the delta-scoring state for (query, db): the fold parameters
  // and the base per-term contributions. The canonical way to start a
  // Monte-Carlo run — constructing the state is the expensive part (one
  // TermContribution per term), which is exactly why dropping the result
  // must not compile. Requires supports_delta_scoring().
  [[nodiscard]] DeltaScoreState PrepareScoreState(
      const Query& query, const summary::SummaryView& db,
      const ScoringContext& context) const;
  // Fold seed (0 for sums; 1 or a db-dependent factor for products). The
  // defaults below abort: they must be overridden together with
  // supports_delta_scoring().
  [[nodiscard]] virtual double CombineInit(const Query& query,
                                           const summary::SummaryView& db,
                                           const ScoringContext& context) const;
  // Contribution of query.terms[term_index] read from `db` as-is.
  [[nodiscard]] virtual double TermContribution(
      const Query& query, size_t term_index, const summary::SummaryView& db,
      const ScoringContext& context) const;
  // Contribution of query.terms[term_index] if its document frequency in
  // `db` were `df_override` (token frequency scaled proportionally, the
  // same rule core::OverrideSummary applies).
  [[nodiscard]] virtual double TermContributionWithDf(
      const Query& query, size_t term_index, double df_override,
      const summary::SummaryView& db, const ScoringContext& context) const;
  // Fills out[g] = TermContributionWithDf(query, term_index, dfs[g], db,
  // context) for g in [0, count). The default does exactly that loop; the
  // paper scorers override it to hoist term-invariant work (CORI's cf
  // lookup and idf logs, LM's global-smoothing lookup) out of the
  // per-point body — the adaptive selector tabulates every distinct term
  // over its full posterior support through this call. Overrides must stay
  // bit-identical to the per-point calls (pinned by scorers_test.cc).
  virtual void TermContributionTable(const Query& query, size_t term_index,
                                     const summary::SummaryView& db,
                                     const ScoringContext& context,
                                     const double* dfs, size_t count,
                                     double* out) const;
  [[nodiscard]] virtual double FinalizeScore(const Query& query,
                                             double combined) const;
};

// Per-(query, database) delta-scoring state: the fold parameters and the
// base summary's per-term contributions, captured once. A Monte-Carlo draw
// replaces the perturbed terms' contributions (ContributionAt) and refolds
// (ScoreFromContributions) — O(|query|) arithmetic per draw.
class DeltaScoreState {
 public:
  // All referents must outlive this object; scorer.supports_delta_scoring()
  // must be true.
  DeltaScoreState(const ScoringFunction& scorer, const Query& query,
                  const summary::SummaryView& db,
                  const ScoringContext& context)
      : scorer_(&scorer),
        query_(&query),
        db_(&db),
        context_(&context),
        combine_(scorer.term_combine()),
        init_(scorer.CombineInit(query, db, context)) {
    base_contributions_.reserve(query.terms.size());
    for (size_t i = 0; i < query.terms.size(); ++i) {
      base_contributions_.push_back(
          scorer.TermContribution(query, i, db, context));
    }
  }

  TermCombine combine() const { return combine_; }
  double init() const { return init_; }
  const std::vector<double>& base_contributions() const {
    return base_contributions_;
  }

  // Contribution of terms[term_index] under an overridden document
  // frequency.
  double ContributionAt(size_t term_index, double df_override) const {
    return scorer_->TermContributionWithDf(*query_, term_index, df_override,
                                           *db_, *context_);
  }

  double Finalize(double combined) const {
    return scorer_->FinalizeScore(*query_, combined);
  }

  // Folds `contributions` (one per query term, in term order) and
  // finalizes — bit-identical to ScoringFunction::Score over a summary
  // exhibiting those per-term values.
  double ScoreFromContributions(const double* contributions,
                                size_t count) const {
    double combined = init_;
    if (combine_ == TermCombine::kSum) {
      for (size_t i = 0; i < count; ++i) combined += contributions[i];
    } else {
      for (size_t i = 0; i < count; ++i) combined *= contributions[i];
    }
    return scorer_->FinalizeScore(*query_, combined);
  }

 private:
  const ScoringFunction* scorer_;
  const Query* query_;
  const summary::SummaryView* db_;
  const ScoringContext* context_;
  TermCombine combine_;
  double init_;
  std::vector<double> base_contributions_;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_SCORING_H_
