#include "fedsearch/selection/cori.h"

#include <cmath>

namespace fedsearch::selection {
namespace {

constexpr double kBeliefFloor = 0.4;

double MeanCollectionWords(const ScoringContext& context) {
  if (context.has_cached_statistics) return context.cached_mean_cw;
  if (context.ranked_summaries.empty()) return 1.0;
  double total = 0.0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    total += s->total_tokens();
  }
  const double mean =
      total / static_cast<double>(context.ranked_summaries.size());
  return mean > 0.0 ? mean : 1.0;
}

size_t CollectionFrequency(const std::string& word,
                           const ScoringContext& context) {
  if (context.has_cached_statistics) {
    auto it = context.cached_cf.find(word);
    if (it != context.cached_cf.end()) return it->second;
  }
  size_t cf = 0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    if (s->ContainsRounded(word)) ++cf;
  }
  return cf;
}

// Belief of one term given a raw document frequency `df_raw` out of
// `num_docs` documents. Replicates SummaryView::ProbDoc / ContainsRounded
// arithmetic exactly (p = min(1, df/n) clamped at n <= 0, presence =
// round(n·p) >= 1) so the value is bit-identical whether the df comes from
// the summary itself or from a Monte-Carlo override.
double TermBelief(const std::string& word, double df_raw, double num_docs,
                  double cw, double mcw, double m,
                  const ScoringContext& context) {
  double belief = kBeliefFloor;
  const double p =
      num_docs <= 0.0 ? 0.0 : std::min(1.0, df_raw / num_docs);
  if (std::lround(num_docs * p) >= 1) {
    const double df = p * num_docs;
    const double t = df / (df + 50.0 + 150.0 * cw / mcw);
    const size_t cf = std::max<size_t>(1, CollectionFrequency(word, context));
    const double i =
        std::log((m + 0.5) / static_cast<double>(cf)) / std::log(m + 1.0);
    belief += 0.6 * t * i;
  }
  return belief;
}

double RankedCount(const ScoringContext& context) {
  return static_cast<double>(
      std::max<size_t>(1, context.ranked_summaries.size()));
}

}  // namespace

double CoriScorer::Score(const Query& query, const summary::SummaryView& db,
                         const ScoringContext& context) const {
  if (query.terms.empty()) return kBeliefFloor;
  // Same arithmetic as the delta-protocol fold (CombineInit = 0, one
  // TermBelief per term, FinalizeScore divide) with the per-database
  // invariants hoisted and no virtual dispatch; bit-identity to the fold
  // is pinned by tests/selection/scorers_test.cc.
  const double num_docs = db.num_documents();
  const double cw = db.total_tokens();
  const double mcw = MeanCollectionWords(context);
  const double m = RankedCount(context);
  double combined = 0.0;
  for (const std::string& w : query.terms) {
    combined += TermBelief(w, db.DocFrequency(w), num_docs, cw, mcw, m,
                           context);
  }
  return combined / static_cast<double>(query.terms.size());
}

double CoriScorer::DefaultScore(const Query&, const summary::SummaryView&,
                                const ScoringContext&) const {
  return kBeliefFloor;
}

double CoriScorer::CombineInit(const Query&, const summary::SummaryView&,
                               const ScoringContext&) const {
  return 0.0;
}

double CoriScorer::TermContribution(const Query& query, size_t term_index,
                                    const summary::SummaryView& db,
                                    const ScoringContext& context) const {
  const std::string& w = query.terms[term_index];
  return TermBelief(w, db.DocFrequency(w), db.num_documents(),
                    db.total_tokens(), MeanCollectionWords(context),
                    RankedCount(context), context);
}

double CoriScorer::TermContributionWithDf(const Query& query,
                                          size_t term_index,
                                          double df_override,
                                          const summary::SummaryView& db,
                                          const ScoringContext& context) const {
  return TermBelief(query.terms[term_index], df_override, db.num_documents(),
                    db.total_tokens(), MeanCollectionWords(context),
                    RankedCount(context), context);
}

void CoriScorer::TermContributionTable(const Query& query, size_t term_index,
                                       const summary::SummaryView& db,
                                       const ScoringContext& context,
                                       const double* dfs, size_t count,
                                       double* out) const {
  const std::string& w = query.terms[term_index];
  const double num_docs = db.num_documents();
  const double cw = db.total_tokens();
  const double mcw = MeanCollectionWords(context);
  const double m = RankedCount(context);
  // The term-invariant pieces of TermBelief, hoisted out of the per-point
  // body. Each hoisted value is a self-contained sub-expression of
  // TermBelief (same association), so out[g] stays bit-identical to the
  // per-point TermContributionWithDf call.
  const double cw_term = 150.0 * cw / mcw;
  const size_t cf = std::max<size_t>(1, CollectionFrequency(w, context));
  const double i =
      std::log((m + 0.5) / static_cast<double>(cf)) / std::log(m + 1.0);
  for (size_t g = 0; g < count; ++g) {
    double belief = kBeliefFloor;
    const double p =
        num_docs <= 0.0 ? 0.0 : std::min(1.0, dfs[g] / num_docs);
    if (std::lround(num_docs * p) >= 1) {
      const double df = p * num_docs;
      const double t = df / (df + 50.0 + cw_term);
      belief += 0.6 * t * i;
    }
    out[g] = belief;
  }
}

double CoriScorer::FinalizeScore(const Query& query, double combined) const {
  if (query.terms.empty()) return kBeliefFloor;
  return combined / static_cast<double>(query.terms.size());
}

}  // namespace fedsearch::selection
