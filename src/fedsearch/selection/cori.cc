#include "fedsearch/selection/cori.h"

#include <cmath>

namespace fedsearch::selection {
namespace {

constexpr double kBeliefFloor = 0.4;

double MeanCollectionWords(const ScoringContext& context) {
  if (context.has_cached_statistics) return context.cached_mean_cw;
  if (context.ranked_summaries.empty()) return 1.0;
  double total = 0.0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    total += s->total_tokens();
  }
  const double mean =
      total / static_cast<double>(context.ranked_summaries.size());
  return mean > 0.0 ? mean : 1.0;
}

size_t CollectionFrequency(const std::string& word,
                           const ScoringContext& context) {
  if (context.has_cached_statistics) {
    auto it = context.cached_cf.find(word);
    if (it != context.cached_cf.end()) return it->second;
  }
  size_t cf = 0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    if (s->ContainsRounded(word)) ++cf;
  }
  return cf;
}

}  // namespace

double CoriScorer::Score(const Query& query, const summary::SummaryView& db,
                         const ScoringContext& context) const {
  if (query.terms.empty()) return kBeliefFloor;
  const double m =
      static_cast<double>(std::max<size_t>(1, context.ranked_summaries.size()));
  const double mcw = MeanCollectionWords(context);
  const double cw = db.total_tokens();

  double score = 0.0;
  for (const std::string& w : query.terms) {
    double belief = kBeliefFloor;
    if (db.ContainsRounded(w)) {
      const double df = db.ProbDoc(w) * db.num_documents();
      const double t = df / (df + 50.0 + 150.0 * cw / mcw);
      const size_t cf = std::max<size_t>(1, CollectionFrequency(w, context));
      const double i =
          std::log((m + 0.5) / static_cast<double>(cf)) / std::log(m + 1.0);
      belief += 0.6 * t * i;
    }
    score += belief;
  }
  return score / static_cast<double>(query.terms.size());
}

double CoriScorer::DefaultScore(const Query&, const summary::SummaryView&,
                                const ScoringContext&) const {
  return kBeliefFloor;
}

}  // namespace fedsearch::selection
