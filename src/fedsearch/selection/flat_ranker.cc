#include "fedsearch/selection/flat_ranker.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::selection {

std::vector<RankedDatabase> RankDatabases(
    const Query& query,
    const std::vector<const summary::SummaryView*>& summaries,
    const ScoringFunction& scorer, const ScoringContext& context,
    util::ThreadPool* pool) {
  const size_t n = summaries.size();
  std::vector<double> scores(n, 0.0);
  std::vector<double> fallbacks(n, 0.0);
  const auto score_one = [&](size_t i) {
    scores[i] = scorer.Score(query, *summaries[i], context);
    fallbacks[i] = scorer.DefaultScore(query, *summaries[i], context);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, score_one);
  } else {
    for (size_t i = 0; i < n; ++i) score_one(i);
  }

  std::vector<RankedDatabase> ranking;
  ranking.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // "Default" scores mean the summary contributed no query-specific
    // evidence; such databases are not selected.
    if (scores[i] <= fallbacks[i] * (1.0 + 1e-12) ||
        !std::isfinite(scores[i])) {
      continue;
    }
    ranking.push_back(RankedDatabase{i, scores[i]});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const RankedDatabase& a, const RankedDatabase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.database < b.database;
            });
  return ranking;
}

}  // namespace fedsearch::selection
