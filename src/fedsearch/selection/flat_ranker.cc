#include "fedsearch/selection/flat_ranker.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::selection {

std::vector<RankedDatabase> RankDatabases(
    const Query& query,
    const std::vector<const summary::SummaryView*>& summaries,
    const ScoringFunction& scorer, const ScoringContext& context) {
  std::vector<RankedDatabase> ranking;
  ranking.reserve(summaries.size());
  for (size_t i = 0; i < summaries.size(); ++i) {
    const double score = scorer.Score(query, *summaries[i], context);
    const double fallback = scorer.DefaultScore(query, *summaries[i], context);
    // "Default" scores mean the summary contributed no query-specific
    // evidence; such databases are not selected.
    if (score <= fallback * (1.0 + 1e-12) || !std::isfinite(score)) continue;
    ranking.push_back(RankedDatabase{i, score});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const RankedDatabase& a, const RankedDatabase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.database < b.database;
            });
  return ranking;
}

}  // namespace fedsearch::selection
