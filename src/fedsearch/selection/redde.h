#ifndef FEDSEARCH_SELECTION_REDDE_H_
#define FEDSEARCH_SELECTION_REDDE_H_

#include <vector>

#include "fedsearch/index/inverted_index.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/selection/flat_ranker.h"
#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

// ReDDE resource selection (Si & Callan, "Relevant document distribution
// estimation method for resource selection", SIGIR 2003 [27]) — the
// algorithm the paper's footnote 9 names as future work to combine with
// shrinkage; implemented here as an extension baseline.
//
// All sampled documents are merged into one centralized sample index. For
// a query, the top-ranked sample documents act as proxies for the relevant
// documents of the federation: each one votes for its source database with
// weight |D̂|/|S| (every sample document represents that many database
// documents). Databases are ranked by their estimated share of relevant
// documents.
struct ReddeOptions {
  // Fraction of the federation's (estimated) total documents whose
  // highest-ranked sample proxies are counted as "relevant". Si & Callan
  // use a small ratio of the collection.
  double relevant_ratio = 0.003;
  // Bounds on the number of top sample documents examined.
  size_t min_top_documents = 10;
  size_t max_top_documents = 1000;
};

class ReddeSelector {
 public:
  using Options = ReddeOptions;

  // Builds the centralized sample index. samples[i] must have been
  // collected with SummaryBuildOptions::keep_documents = true; its
  // sampled_documents and estimated_db_size feed the vote weights. The
  // SampleResult objects are copied from; they need not outlive this.
  explicit ReddeSelector(
      const std::vector<const sampling::SampleResult*>& samples,
      Options options = {});

  // Ranks the databases for the query, best first; databases with no
  // estimated relevant documents are omitted.
  std::vector<RankedDatabase> Select(const Query& query, size_t k) const;

  size_t total_sample_documents() const { return doc_source_.size(); }

 private:
  Options options_;
  index::InvertedIndex central_index_;
  std::vector<size_t> doc_source_;    // central doc id -> database index
  std::vector<double> scale_factor_;  // per database: |D̂| / |S|
  double total_estimated_documents_ = 0.0;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_REDDE_H_
