#include "fedsearch/selection/hierarchical.h"

#include <algorithm>
#include <utility>

#include "fedsearch/selection/flat_ranker.h"

namespace fedsearch::selection {

HierarchicalSelector::HierarchicalSelector(
    const corpus::TopicHierarchy* hierarchy,
    std::vector<const summary::ContentSummary*> summaries,
    std::vector<corpus::CategoryId> classifications)
    : hierarchy_(hierarchy),
      summaries_(std::move(summaries)),
      classifications_(std::move(classifications)) {
  const size_t nodes = hierarchy_->size();
  databases_at_.resize(nodes);
  subtree_database_count_.assign(nodes, 0);
  for (size_t i = 0; i < classifications_.size(); ++i) {
    databases_at_[static_cast<size_t>(classifications_[i])].push_back(i);
  }
  category_summaries_.resize(nodes);
  // Nodes are created parents-first, so a reverse scan aggregates leaves
  // before their parents.
  for (size_t n = nodes; n-- > 0;) {
    std::vector<const summary::ContentSummary*> parts;
    for (size_t db : databases_at_[n]) parts.push_back(summaries_[db]);
    // Children aggregates are already built; merge them in by value.
    summary::ContentSummary agg = summary::ContentSummary::AggregateCategory(parts);
    size_t count = databases_at_[n].size();
    for (corpus::CategoryId c :
         hierarchy_->node(static_cast<corpus::CategoryId>(n)).children) {
      const summary::ContentSummary& child =
          category_summaries_[static_cast<size_t>(c)];
      child.ForEachWord(
          [&](const std::string& w, const summary::WordStats& stats) {
            agg.AddWord(w, stats);
          });
      agg.set_num_documents(agg.num_documents() + child.num_documents());
      count += subtree_database_count_[static_cast<size_t>(c)];
    }
    category_summaries_[n] = std::move(agg);
    subtree_database_count_[n] = count;
  }
}

void HierarchicalSelector::SelectUnder(const Query& query,
                                       corpus::CategoryId node, size_t k,
                                       const ScoringFunction& scorer,
                                       const ScoringContext& context,
                                       std::vector<RankedDatabase>& out) const {
  if (k == 0) return;
  const auto& children = hierarchy_->node(node).children;

  // Rank this node's candidate units: child categories (by their category
  // summaries) and databases classified directly at this node.
  struct Unit {
    bool is_category;
    size_t id;  // child category id or database index
    double score;
  };
  std::vector<Unit> units;
  for (corpus::CategoryId c : children) {
    if (subtree_database_count_[static_cast<size_t>(c)] == 0) continue;
    const summary::ContentSummary& cs =
        category_summaries_[static_cast<size_t>(c)];
    const double score = scorer.Score(query, cs, context);
    const double fallback = scorer.DefaultScore(query, cs, context);
    if (score <= fallback * (1.0 + 1e-12)) continue;
    units.push_back(Unit{true, static_cast<size_t>(c), score});
  }
  for (size_t db : databases_at_[static_cast<size_t>(node)]) {
    const double score = scorer.Score(query, *summaries_[db], context);
    const double fallback =
        scorer.DefaultScore(query, *summaries_[db], context);
    if (score <= fallback * (1.0 + 1e-12)) continue;
    units.push_back(Unit{false, db, score});
  }
  std::sort(units.begin(), units.end(), [](const Unit& a, const Unit& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.is_category != b.is_category) return !a.is_category;
    return a.id < b.id;
  });

  // Irreversible commitment: take as much of the budget as each unit can
  // absorb, in score order.
  for (const Unit& u : units) {
    if (out.size() >= k) break;
    if (u.is_category) {
      SelectUnder(query, static_cast<corpus::CategoryId>(u.id),
                  k, scorer, context, out);
    } else {
      out.push_back(RankedDatabase{u.id, u.score});
    }
  }
}

std::vector<RankedDatabase> HierarchicalSelector::Select(
    const Query& query, size_t k, const ScoringFunction& scorer) const {
  // Context for base scoring within the hierarchy: category and database
  // summaries compete locally; corpus statistics use all database summaries.
  ScoringContext context;
  context.ranked_summaries.reserve(summaries_.size());
  for (const summary::ContentSummary* s : summaries_) {
    context.ranked_summaries.push_back(s);
  }
  context.global_summary = &category_summaries_[0];

  std::vector<RankedDatabase> out;
  SelectUnder(query, hierarchy_->root(), k, scorer, context, out);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace fedsearch::selection
