#ifndef FEDSEARCH_SELECTION_FLAT_RANKER_H_
#define FEDSEARCH_SELECTION_FLAT_RANKER_H_

#include <cstddef>
#include <vector>

#include "fedsearch/selection/scoring.h"
#include "fedsearch/util/thread_pool.h"

namespace fedsearch::selection {

// One entry of a database ranking.
struct RankedDatabase {
  size_t database = 0;  // index into the ranked summary list
  double score = 0.0;
};

// Scores every summary with `scorer` and returns them ordered by
// decreasing score (ties broken by ascending index for determinism).
// Databases whose score equals the scorer's default — i.e. databases for
// which the summary provides no query-specific evidence — are omitted, so
// the ranking may contain fewer databases than were given (Section 6.2).
//
// With a non-null `pool`, per-database scoring fans out over the pool's
// workers; the filter and sort still run on the caller in index order, so
// the ranking is bit-identical to the serial one (scorers are stateless
// and each database's score is written to its own slot).
std::vector<RankedDatabase> RankDatabases(
    const Query& query,
    const std::vector<const summary::SummaryView*>& summaries,
    const ScoringFunction& scorer, const ScoringContext& context,
    util::ThreadPool* pool = nullptr);

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_FLAT_RANKER_H_
