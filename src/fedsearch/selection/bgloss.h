#ifndef FEDSEARCH_SELECTION_BGLOSS_H_
#define FEDSEARCH_SELECTION_BGLOSS_H_

#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

// bGlOSS (Gravano, García-Molina & Tomasic [13]):
//   s(q, D) = |D| · Π_{w ∈ q} p̂(w|D).
// A single missing query word zeroes the score; bGlOSS has no built-in
// smoothing, which is why universal shrinkage helps it (Section 6.2).
class BglossScorer : public ScoringFunction {
 public:
  std::string_view name() const override { return "bGlOSS"; }
  double Score(const Query& query, const summary::SummaryView& db,
               const ScoringContext& context) const override;
  double DefaultScore(const Query& query, const summary::SummaryView& db,
                      const ScoringContext& context) const override;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_BGLOSS_H_
