#ifndef FEDSEARCH_SELECTION_BGLOSS_H_
#define FEDSEARCH_SELECTION_BGLOSS_H_

#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

// bGlOSS (Gravano, García-Molina & Tomasic [13]):
//   s(q, D) = |D| · Π_{w ∈ q} p̂(w|D).
// A single missing query word zeroes the score; bGlOSS has no built-in
// smoothing, which is why universal shrinkage helps it (Section 6.2).
class BglossScorer : public ScoringFunction {
 public:
  std::string_view name() const override { return "bGlOSS"; }
  double Score(const Query& query, const summary::SummaryView& db,
               const ScoringContext& context) const override;
  double DefaultScore(const Query& query, const summary::SummaryView& db,
                      const ScoringContext& context) const override;

  // Delta protocol: score = |D| · Π per-term p̂(w|D). (Score's early
  // return on a zero product is a shortcut, not a semantic difference:
  // every later factor is in [0, 1], so the full fold reproduces the same
  // 0.0 bit-for-bit.)
  bool supports_delta_scoring() const override { return true; }
  TermCombine term_combine() const override { return TermCombine::kProduct; }
  double CombineInit(const Query& query, const summary::SummaryView& db,
                     const ScoringContext& context) const override;
  double TermContribution(const Query& query, size_t term_index,
                          const summary::SummaryView& db,
                          const ScoringContext& context) const override;
  double TermContributionWithDf(const Query& query, size_t term_index,
                                double df_override,
                                const summary::SummaryView& db,
                                const ScoringContext& context) const override;
  void TermContributionTable(const Query& query, size_t term_index,
                             const summary::SummaryView& db,
                             const ScoringContext& context, const double* dfs,
                             size_t count, double* out) const override;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_BGLOSS_H_
