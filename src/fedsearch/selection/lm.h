#ifndef FEDSEARCH_SELECTION_LM_H_
#define FEDSEARCH_SELECTION_LM_H_

#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

// Language-model database selection (Si et al. [28]; equivalent to the
// KL-based method of Xu & Croft [31]):
//   s(q, D) = Π_{w ∈ q} (λ · p̂(w|D) + (1 − λ) · p̂(w|G))
// with token-frequency probabilities p(w|D) = tf(w,D)/Σ tf and G a global
// category (the Root summary here). λ = 0.5 as in [28] (Section 5.3).
class LmScorer : public ScoringFunction {
 public:
  explicit LmScorer(double lambda = 0.5) : lambda_(lambda) {}

  std::string_view name() const override { return "LM"; }
  double Score(const Query& query, const summary::SummaryView& db,
               const ScoringContext& context) const override;
  double DefaultScore(const Query& query, const summary::SummaryView& db,
                      const ScoringContext& context) const override;

  // Delta protocol: score = Π per-term smoothed probabilities.
  bool supports_delta_scoring() const override { return true; }
  TermCombine term_combine() const override { return TermCombine::kProduct; }
  double CombineInit(const Query& query, const summary::SummaryView& db,
                     const ScoringContext& context) const override;
  double TermContribution(const Query& query, size_t term_index,
                          const summary::SummaryView& db,
                          const ScoringContext& context) const override;
  double TermContributionWithDf(const Query& query, size_t term_index,
                                double df_override,
                                const summary::SummaryView& db,
                                const ScoringContext& context) const override;
  void TermContributionTable(const Query& query, size_t term_index,
                             const summary::SummaryView& db,
                             const ScoringContext& context, const double* dfs,
                             size_t count, double* out) const override;

 private:
  double lambda_;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_LM_H_
