#include "fedsearch/selection/bgloss.h"

namespace fedsearch::selection {

double BglossScorer::Score(const Query& query, const summary::SummaryView& db,
                           const ScoringContext&) const {
  double score = db.num_documents();
  for (const std::string& w : query.terms) {
    score *= db.ProbDoc(w);
    if (score == 0.0) return 0.0;
  }
  return score;
}

double BglossScorer::DefaultScore(const Query&, const summary::SummaryView&,
                                  const ScoringContext&) const {
  return 0.0;
}

}  // namespace fedsearch::selection
