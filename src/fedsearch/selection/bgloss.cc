#include "fedsearch/selection/bgloss.h"

#include <algorithm>

namespace fedsearch::selection {
namespace {

// p̂(w|D) from a raw document frequency, replicating SummaryView::ProbDoc
// exactly (min(1, df/n) clamped at n <= 0).
double ProbDocFromDf(double df_raw, double num_docs) {
  if (num_docs <= 0.0) return 0.0;
  return std::min(1.0, df_raw / num_docs);
}

}  // namespace

double BglossScorer::Score(const Query& query, const summary::SummaryView& db,
                           const ScoringContext&) const {
  // Same arithmetic as the delta-protocol fold (CombineInit = |D|, one
  // ProbDocFromDf factor per term) with num_documents hoisted and no
  // virtual dispatch, plus the early return (see bgloss.h: the shortcut is
  // bit-equivalent to folding through). Bit-identity to the fold is pinned
  // by tests/selection/scorers_test.cc.
  const double num_docs = db.num_documents();
  double score = num_docs;
  for (const std::string& w : query.terms) {
    score *= ProbDocFromDf(db.DocFrequency(w), num_docs);
    if (score == 0.0) return 0.0;
  }
  return score;
}

double BglossScorer::DefaultScore(const Query&, const summary::SummaryView&,
                                  const ScoringContext&) const {
  return 0.0;
}

double BglossScorer::CombineInit(const Query&, const summary::SummaryView& db,
                                 const ScoringContext&) const {
  return db.num_documents();
}

double BglossScorer::TermContribution(const Query& query, size_t term_index,
                                      const summary::SummaryView& db,
                                      const ScoringContext&) const {
  return ProbDocFromDf(db.DocFrequency(query.terms[term_index]),
                       db.num_documents());
}

double BglossScorer::TermContributionWithDf(const Query&, size_t,
                                            double df_override,
                                            const summary::SummaryView& db,
                                            const ScoringContext&) const {
  return ProbDocFromDf(df_override, db.num_documents());
}

void BglossScorer::TermContributionTable(const Query&, size_t,
                                         const summary::SummaryView& db,
                                         const ScoringContext&,
                                         const double* dfs, size_t count,
                                         double* out) const {
  // Only |D| to hoist; the override exists to skip the per-point virtual
  // dispatch of the default loop.
  const double num_docs = db.num_documents();
  for (size_t g = 0; g < count; ++g) {
    out[g] = ProbDocFromDf(dfs[g], num_docs);
  }
}

}  // namespace fedsearch::selection
