#ifndef FEDSEARCH_SELECTION_CORI_H_
#define FEDSEARCH_SELECTION_CORI_H_

#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

// CORI (French et al. [10]; Callan's inference-network ranking):
//   s(q, D) = Σ_{w ∈ q} (0.4 + 0.6 · T · I) / |q|
//   T = df / (df + 50 + 150 · cw(D)/mcw)
//   I = log((m + 0.5)/cf(w)) / log(m + 1.0)
// where df = p̂(w|D)·|D|, cf(w) is the number of ranked databases
// containing w, m the number of ranked databases, cw(D) the number of word
// occurrences in D and mcw its mean over the ranked databases.
//
// Following Section 5.3, a word counts as "present" in D — both for df and
// for cf(w) — only when round(|D|·p̂(w|D)) >= 1, which keeps shrunk
// summaries (where every word has non-zero probability) from collapsing
// cf(w) to m.
class CoriScorer : public ScoringFunction {
 public:
  std::string_view name() const override { return "CORI"; }
  double Score(const Query& query, const summary::SummaryView& db,
               const ScoringContext& context) const override;
  double DefaultScore(const Query& query, const summary::SummaryView& db,
                      const ScoringContext& context) const override;

  // Delta protocol: score = (Σ per-term beliefs) / |q|.
  bool supports_delta_scoring() const override { return true; }
  TermCombine term_combine() const override { return TermCombine::kSum; }
  double CombineInit(const Query& query, const summary::SummaryView& db,
                     const ScoringContext& context) const override;
  double TermContribution(const Query& query, size_t term_index,
                          const summary::SummaryView& db,
                          const ScoringContext& context) const override;
  double TermContributionWithDf(const Query& query, size_t term_index,
                                double df_override,
                                const summary::SummaryView& db,
                                const ScoringContext& context) const override;
  void TermContributionTable(const Query& query, size_t term_index,
                             const summary::SummaryView& db,
                             const ScoringContext& context, const double* dfs,
                             size_t count, double* out) const override;
  double FinalizeScore(const Query& query, double combined) const override;
};

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_CORI_H_
