#ifndef FEDSEARCH_SELECTION_RK_METRIC_H_
#define FEDSEARCH_SELECTION_RK_METRIC_H_

#include <cstddef>
#include <vector>

#include "fedsearch/selection/flat_ranker.h"

namespace fedsearch::selection {

// The R_k rank-quality metric of Section 6.2:
//   R_k = A(q, D⃗, k) / A(q, D⃗_H, k)
// where A sums the number of relevant documents r(q, D_i) over the top-k
// databases of the evaluated ranking D⃗, and D⃗_H is the hypothetical
// perfect ranking (databases ordered by decreasing r). A ranking that
// selected fewer than k databases contributes only what it selected,
// exactly as in the paper.
//
// `relevant_by_database[i]` is r(q, D_i) for every database i (ranked or
// not); `ranking` holds the databases actually selected, best first.
double RkScore(const std::vector<RankedDatabase>& ranking,
               const std::vector<size_t>& relevant_by_database, size_t k);

}  // namespace fedsearch::selection

#endif  // FEDSEARCH_SELECTION_RK_METRIC_H_
