#include "fedsearch/selection/scoring.h"

#include "fedsearch/util/check.h"

namespace fedsearch::selection {

// The delta-protocol defaults abort rather than return a silently-wrong
// value: callers must check supports_delta_scoring() first, and a scorer
// that opts in must override the whole protocol.
double ScoringFunction::CombineInit(const Query&, const summary::SummaryView&,
                                    const ScoringContext&) const {
  FEDSEARCH_CHECK(false) << " " << name()
                         << " does not implement delta scoring";
  return 0.0;
}

double ScoringFunction::TermContribution(const Query&, size_t,
                                         const summary::SummaryView&,
                                         const ScoringContext&) const {
  FEDSEARCH_CHECK(false) << " " << name()
                         << " does not implement delta scoring";
  return 0.0;
}

double ScoringFunction::TermContributionWithDf(const Query&, size_t, double,
                                               const summary::SummaryView&,
                                               const ScoringContext&) const {
  FEDSEARCH_CHECK(false) << " " << name()
                         << " does not implement delta scoring";
  return 0.0;
}

void ScoringFunction::TermContributionTable(const Query& query,
                                            size_t term_index,
                                            const summary::SummaryView& db,
                                            const ScoringContext& context,
                                            const double* dfs, size_t count,
                                            double* out) const {
  for (size_t g = 0; g < count; ++g) {
    out[g] = TermContributionWithDf(query, term_index, dfs[g], db, context);
  }
}

double ScoringFunction::FinalizeScore(const Query&, double combined) const {
  return combined;
}

DeltaScoreState ScoringFunction::PrepareScoreState(
    const Query& query, const summary::SummaryView& db,
    const ScoringContext& context) const {
  FEDSEARCH_CHECK(supports_delta_scoring())
      << " " << name() << " does not implement delta scoring";
  return DeltaScoreState(*this, query, db, context);
}

void PrepareContextForQuery(const Query& query, ScoringContext& context) {
  context.cached_cf.clear();
  double total_cw = 0.0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    total_cw += s->total_tokens();
  }
  context.cached_mean_cw =
      context.ranked_summaries.empty()
          ? 1.0
          : total_cw / static_cast<double>(context.ranked_summaries.size());
  if (context.cached_mean_cw <= 0.0) context.cached_mean_cw = 1.0;

  for (const std::string& w : query.terms) {
    if (context.cached_cf.count(w)) continue;
    size_t cf = 0;
    for (const summary::SummaryView* s : context.ranked_summaries) {
      if (s->ContainsRounded(w)) ++cf;
    }
    context.cached_cf.emplace(w, cf);
  }
  context.has_cached_statistics = true;
}

ScoringStatisticsCache::ScoringStatisticsCache(
    const std::vector<const summary::SummaryView*>& summaries)
    : num_summaries_(summaries.size()) {
  double total_cw = 0.0;
  for (const summary::SummaryView* s : summaries) {
    total_cw += s->total_tokens();
  }
  mean_cw_ = summaries.empty()
                 ? 1.0
                 : total_cw / static_cast<double>(summaries.size());
  if (mean_cw_ <= 0.0) mean_cw_ = 1.0;

  for (const summary::SummaryView* s : summaries) {
    // ContainsRounded (not the raw enumerated df) so trimming semantics —
    // CORI's cf(w) fix for shrunk summaries — match query-time checks.
    s->ForEachWord([&](const std::string& word, const summary::WordStats&) {
      if (s->ContainsRounded(word)) ++cf_[word];
    });
  }
}

ScoringStatisticsCache ScoringStatisticsCache::Rebuilt(
    const ScoringStatisticsCache& prior,
    const std::vector<const summary::SummaryView*>& summaries,
    const std::vector<const summary::SummaryView*>& prior_summaries,
    const std::vector<size_t>& changed) {
  FEDSEARCH_CHECK(summaries.size() == prior_summaries.size())
      << " summary sets differ in size: " << summaries.size() << " vs "
      << prior_summaries.size();
  FEDSEARCH_CHECK(prior.num_summaries_ == prior_summaries.size())
      << " prior cache covers " << prior.num_summaries_
      << " summaries, not " << prior_summaries.size();
  ScoringStatisticsCache next;
  next.num_summaries_ = summaries.size();
  next.cf_ = prior.cf_;
  for (size_t i : changed) {
    FEDSEARCH_CHECK(i < summaries.size())
        << " changed index " << i << " of " << summaries.size();
    // Retract the old summary's contributions, then add the new one's.
    // Integer counts, so the result is order-independent and exactly what
    // a fresh scan over `summaries` would produce; entries reaching 0 are
    // erased so the maps (and vocabulary_size()) match the scan exactly.
    const summary::SummaryView* old_s = prior_summaries[i];
    old_s->ForEachWord(
        [&](const std::string& word, const summary::WordStats&) {
          if (!old_s->ContainsRounded(word)) return;
          auto it = next.cf_.find(word);
          FEDSEARCH_DCHECK(it != next.cf_.end() && it->second > 0)
              << " cf underflow for word retracted by database " << i;
          if (--it->second == 0) next.cf_.erase(it);
        });
    const summary::SummaryView* new_s = summaries[i];
    new_s->ForEachWord(
        [&](const std::string& word, const summary::WordStats&) {
          if (new_s->ContainsRounded(word)) ++next.cf_[word];
        });
  }
  // Index-order full recompute, NOT an incremental ± of the changed
  // databases' totals: float addition is non-associative, so only the
  // scanning constructor's exact reduction order reproduces its bits.
  double total_cw = 0.0;
  for (const summary::SummaryView* s : summaries) {
    total_cw += s->total_tokens();
  }
  next.mean_cw_ = summaries.empty()
                      ? 1.0
                      : total_cw / static_cast<double>(summaries.size());
  if (next.mean_cw_ <= 0.0) next.mean_cw_ = 1.0;
  return next;
}

size_t ScoringStatisticsCache::CollectionFrequency(
    const std::string& word) const {
  static util::Counter& global_hits =
      util::GlobalMetrics().counter("scoring_stats_cache.hits");
  static util::Counter& global_misses =
      util::GlobalMetrics().counter("scoring_stats_cache.misses");
  auto it = cf_.find(word);
  if (it != cf_.end()) {
    stats_cells_->hits.Add();
    global_hits.Add();
    return it->second;
  }
  stats_cells_->misses.Add();
  global_misses.Add();
  return 0;
}

void ScoringStatisticsCache::FillContext(
    const Query& query, ScoringContext& context,
    const util::TraceContext& trace) const {
  static util::Counter& global_fills =
      util::GlobalMetrics().counter("scoring_stats_cache.fills");
  util::Tracer::Scope fill_span("statistics_cache_fill", trace);
  fill_span.AttrUint("terms", query.terms.size());
  stats_cells_->fills.Add();
  global_fills.Add();
  context.cached_cf.clear();
  context.cached_mean_cw = mean_cw_;
  for (const std::string& w : query.terms) {
    if (context.cached_cf.count(w)) continue;
    context.cached_cf.emplace(w, CollectionFrequency(w));
  }
  context.has_cached_statistics = true;
}

ScoringStatisticsCache::Stats ScoringStatisticsCache::stats() const {
  Stats s;
  s.hits = stats_cells_->hits.value();
  s.misses = stats_cells_->misses.value();
  s.fills = stats_cells_->fills.value();
  return s;
}

}  // namespace fedsearch::selection
