#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {

void PrepareContextForQuery(const Query& query, ScoringContext& context) {
  context.cached_cf.clear();
  double total_cw = 0.0;
  for (const summary::SummaryView* s : context.ranked_summaries) {
    total_cw += s->total_tokens();
  }
  context.cached_mean_cw =
      context.ranked_summaries.empty()
          ? 1.0
          : total_cw / static_cast<double>(context.ranked_summaries.size());
  if (context.cached_mean_cw <= 0.0) context.cached_mean_cw = 1.0;

  for (const std::string& w : query.terms) {
    if (context.cached_cf.count(w)) continue;
    size_t cf = 0;
    for (const summary::SummaryView* s : context.ranked_summaries) {
      if (s->ContainsRounded(w)) ++cf;
    }
    context.cached_cf.emplace(w, cf);
  }
  context.has_cached_statistics = true;
}

}  // namespace fedsearch::selection
