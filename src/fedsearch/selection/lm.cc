#include "fedsearch/selection/lm.h"

#include <algorithm>

namespace fedsearch::selection {
namespace {

// λ·p̂(w|D) + (1−λ)·p̂(w|G) from a raw token frequency, replicating
// SummaryView::ProbToken arithmetic exactly (min(1, tf/total) clamped at
// total <= 0) so the factor is bit-identical whether tf comes from the
// summary or from a scaled Monte-Carlo override.
double SmoothedFactor(const std::string& word, double tf_raw,
                      double total_tokens, double lambda,
                      const ScoringContext& context) {
  const double global = context.global_summary != nullptr
                            ? context.global_summary->ProbToken(word)
                            : 0.0;
  const double p =
      total_tokens <= 0.0 ? 0.0 : std::min(1.0, tf_raw / total_tokens);
  return lambda * p + (1.0 - lambda) * global;
}

}  // namespace

double LmScorer::Score(const Query& query, const summary::SummaryView& db,
                       const ScoringContext& context) const {
  // Same arithmetic as the delta-protocol fold (CombineInit = 1, one
  // SmoothedFactor per term) with total_tokens hoisted and no virtual
  // dispatch; bit-identity to the fold is pinned by
  // tests/selection/scorers_test.cc.
  const double total = db.total_tokens();
  double score = 1.0;
  for (const std::string& w : query.terms) {
    score *= SmoothedFactor(w, db.TokenFrequency(w), total, lambda_, context);
  }
  return score;
}

double LmScorer::DefaultScore(const Query& query, const summary::SummaryView&,
                              const ScoringContext& context) const {
  // What the database would score if it contained none of the query words:
  // only the global smoothing component survives.
  double score = 1.0;
  for (const std::string& w : query.terms) {
    const double global = context.global_summary != nullptr
                              ? context.global_summary->ProbToken(w)
                              : 0.0;
    score *= (1.0 - lambda_) * global;
  }
  return score;
}

double LmScorer::CombineInit(const Query&, const summary::SummaryView&,
                             const ScoringContext&) const {
  return 1.0;
}

double LmScorer::TermContribution(const Query& query, size_t term_index,
                                  const summary::SummaryView& db,
                                  const ScoringContext& context) const {
  const std::string& w = query.terms[term_index];
  return SmoothedFactor(w, db.TokenFrequency(w), db.total_tokens(), lambda_,
                        context);
}

double LmScorer::TermContributionWithDf(const Query& query, size_t term_index,
                                        double df_override,
                                        const summary::SummaryView& db,
                                        const ScoringContext& context) const {
  const std::string& w = query.terms[term_index];
  // Token frequency under the df override, with core::OverrideSummary's
  // scaling rule (same expression, same association): keep the average
  // per-document term count when the word was seen in the sample, else
  // assume one occurrence per containing document.
  const double base_df = db.DocFrequency(w);
  const double tf = base_df > 0.0
                        ? df_override * db.TokenFrequency(w) / base_df
                        : df_override;
  return SmoothedFactor(w, tf, db.total_tokens(), lambda_, context);
}

void LmScorer::TermContributionTable(const Query& query, size_t term_index,
                                     const summary::SummaryView& db,
                                     const ScoringContext& context,
                                     const double* dfs, size_t count,
                                     double* out) const {
  const std::string& w = query.terms[term_index];
  const double total = db.total_tokens();
  const double base_df = db.DocFrequency(w);
  const double base_tf = db.TokenFrequency(w);
  // Term-invariant pieces of SmoothedFactor, hoisted: (1−λ)·global is a
  // self-contained sub-expression, so out[g] stays bit-identical to the
  // per-point TermContributionWithDf call.
  const double global = context.global_summary != nullptr
                            ? context.global_summary->ProbToken(w)
                            : 0.0;
  const double smoothing = (1.0 - lambda_) * global;
  for (size_t g = 0; g < count; ++g) {
    const double tf =
        base_df > 0.0 ? dfs[g] * base_tf / base_df : dfs[g];
    const double p = total <= 0.0 ? 0.0 : std::min(1.0, tf / total);
    out[g] = lambda_ * p + smoothing;
  }
}

}  // namespace fedsearch::selection
