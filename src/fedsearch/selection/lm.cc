#include "fedsearch/selection/lm.h"

namespace fedsearch::selection {

double LmScorer::Score(const Query& query, const summary::SummaryView& db,
                       const ScoringContext& context) const {
  double score = 1.0;
  for (const std::string& w : query.terms) {
    const double global = context.global_summary != nullptr
                              ? context.global_summary->ProbToken(w)
                              : 0.0;
    score *= lambda_ * db.ProbToken(w) + (1.0 - lambda_) * global;
  }
  return score;
}

double LmScorer::DefaultScore(const Query& query, const summary::SummaryView&,
                              const ScoringContext& context) const {
  // What the database would score if it contained none of the query words:
  // only the global smoothing component survives.
  double score = 1.0;
  for (const std::string& w : query.terms) {
    const double global = context.global_summary != nullptr
                              ? context.global_summary->ProbToken(w)
                              : 0.0;
    score *= (1.0 - lambda_) * global;
  }
  return score;
}

}  // namespace fedsearch::selection
