#include "fedsearch/selection/redde.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::selection {

ReddeSelector::ReddeSelector(
    const std::vector<const sampling::SampleResult*>& samples,
    Options options)
    : options_(options) {
  scale_factor_.reserve(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const sampling::SampleResult& s = *samples[i];
    const size_t docs = s.sampled_documents.size();
    const double scale =
        docs > 0 ? s.estimated_db_size / static_cast<double>(docs) : 0.0;
    scale_factor_.push_back(std::max(1.0, scale));
    total_estimated_documents_ += s.estimated_db_size;
    for (const std::vector<std::string>& doc : s.sampled_documents) {
      central_index_.AddDocument(doc);
      doc_source_.push_back(i);
    }
  }
}

std::vector<RankedDatabase> ReddeSelector::Select(const Query& query,
                                                  size_t k) const {
  std::vector<RankedDatabase> ranking;
  if (query.terms.empty() || doc_source_.empty()) return ranking;

  // How many of the federation's documents count as "relevant" proxies.
  // Each retrieved sample document stands for scale_factor_ database
  // documents, so the sample-document budget is derived conservatively
  // from the per-database mean scale.
  const double mean_scale =
      total_estimated_documents_ / static_cast<double>(doc_source_.size());
  const double wanted =
      options_.relevant_ratio * total_estimated_documents_ / mean_scale;
  const size_t top = std::clamp<size_t>(
      static_cast<size_t>(std::lround(wanted)), options_.min_top_documents,
      options_.max_top_documents);

  std::vector<double> votes(scale_factor_.size(), 0.0);
  for (const index::SearchHit& hit :
       central_index_.SearchTopKDisjunctive(query.terms, top)) {
    const size_t db = doc_source_[hit.doc];
    votes[db] += scale_factor_[db];
  }

  for (size_t i = 0; i < votes.size(); ++i) {
    if (votes[i] > 0.0) ranking.push_back(RankedDatabase{i, votes[i]});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const RankedDatabase& a, const RankedDatabase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.database < b.database;
            });
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

}  // namespace fedsearch::selection
