#include "fedsearch/selection/rk_metric.h"

#include <algorithm>

namespace fedsearch::selection {

double RkScore(const std::vector<RankedDatabase>& ranking,
               const std::vector<size_t>& relevant_by_database, size_t k) {
  if (k == 0) return 0.0;

  size_t achieved = 0;
  const size_t take = std::min(k, ranking.size());
  for (size_t i = 0; i < take; ++i) {
    achieved += relevant_by_database[ranking[i].database];
  }

  std::vector<size_t> best = relevant_by_database;
  std::sort(best.begin(), best.end(), std::greater<size_t>());
  size_t ideal = 0;
  for (size_t i = 0; i < std::min(k, best.size()); ++i) ideal += best[i];

  if (ideal == 0) return 0.0;  // query with no relevant documents anywhere
  return static_cast<double>(achieved) / static_cast<double>(ideal);
}

}  // namespace fedsearch::selection
