#include "fedsearch/summary/content_summary.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::summary {

double SummaryView::ProbDoc(const std::string& word) const {
  const double n = num_documents();
  if (n <= 0.0) return 0.0;
  return std::min(1.0, DocFrequency(word) / n);
}

double SummaryView::ProbToken(const std::string& word) const {
  const double total = total_tokens();
  if (total <= 0.0) return 0.0;
  return std::min(1.0, TokenFrequency(word) / total);
}

bool SummaryView::ContainsRounded(const std::string& word) const {
  return std::lround(num_documents() * ProbDoc(word)) >= 1;
}

double ContentSummary::DocFrequency(const std::string& word) const {
  auto it = words_.find(word);
  return it == words_.end() ? 0.0 : it->second.df;
}

double ContentSummary::TokenFrequency(const std::string& word) const {
  auto it = words_.find(word);
  return it == words_.end() ? 0.0 : it->second.ctf;
}

void ContentSummary::ForEachWord(
    const std::function<void(const std::string&, const WordStats&)>& fn)
    const {
  for (const auto& [word, stats] : words_) fn(word, stats);
}

void ContentSummary::SetWord(const std::string& word, WordStats stats) {
  auto [it, inserted] = words_.emplace(word, stats);
  if (!inserted) {
    total_tokens_ -= it->second.ctf;
    it->second = stats;
  }
  total_tokens_ += stats.ctf;
}

void ContentSummary::AddWord(const std::string& word, WordStats stats) {
  WordStats& existing = words_[word];
  existing.df += stats.df;
  existing.ctf += stats.ctf;
  total_tokens_ += stats.ctf;
}

ContentSummary ContentSummary::Materialize(const SummaryView& view,
                                           bool trim) {
  ContentSummary out;
  out.set_num_documents(view.num_documents());
  const double n = view.num_documents();
  view.ForEachWord([&](const std::string& word, const WordStats& stats) {
    if (trim) {
      const double p = n > 0.0 ? std::min(1.0, stats.df / n) : 0.0;
      if (std::lround(n * p) < 1) return;
    }
    out.SetWord(word, stats);
  });
  return out;
}

ContentSummary ContentSummary::FromIndex(const index::InvertedIndex& index) {
  ContentSummary out;
  out.set_num_documents(static_cast<double>(index.num_documents()));
  index.ForEachTerm([&](const std::string& term, size_t df, uint64_t ctf) {
    out.SetWord(term, WordStats{static_cast<double>(df),
                                static_cast<double>(ctf)});
  });
  return out;
}

ContentSummary ContentSummary::AggregateCategory(
    const std::vector<const ContentSummary*>& database_summaries) {
  ContentSummary out;
  double total_docs = 0.0;
  for (const ContentSummary* s : database_summaries) {
    total_docs += s->num_documents();
    s->ForEachWord([&](const std::string& word, const WordStats& stats) {
      out.AddWord(word, stats);
    });
  }
  out.set_num_documents(total_docs);
  return out;
}

}  // namespace fedsearch::summary
