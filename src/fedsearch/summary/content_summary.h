#ifndef FEDSEARCH_SUMMARY_CONTENT_SUMMARY_H_
#define FEDSEARCH_SUMMARY_CONTENT_SUMMARY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fedsearch/index/inverted_index.h"

namespace fedsearch::summary {

// Per-word statistics of a content summary. Values are *database-scaled
// estimates*: df estimates the number of documents of D containing the word
// (Definition 1/2), ctf estimates the total number of occurrences of the
// word in D (the term-frequency statistics the LM selection algorithm needs,
// Section 5.3). Estimates can be fractional (frequency estimation and
// shrinkage both produce non-integer values).
struct WordStats {
  double df = 0.0;
  double ctf = 0.0;
};

// Read-only interface over any content summary — concrete (sampled, true,
// category) or lazily-shrunk (core/shrunk_summary.h). Database selection
// algorithms are written against this interface so they run unchanged over
// unshrunk and shrunk summaries, as Section 4 requires.
class SummaryView {
 public:
  virtual ~SummaryView() = default;

  // Estimated number of documents |D| (or |C| for a category summary).
  virtual double num_documents() const = 0;

  // Estimated total term occurrences in D.
  virtual double total_tokens() const = 0;

  // Estimated document frequency of `word` (0 if absent).
  virtual double DocFrequency(const std::string& word) const = 0;

  // Estimated collection term frequency of `word` (0 if absent).
  virtual double TokenFrequency(const std::string& word) const = 0;

  // Calls fn(word, stats) for every word with a non-zero estimate.
  virtual void ForEachWord(
      const std::function<void(const std::string&, const WordStats&)>& fn)
      const = 0;

  // Number of distinct words with non-zero estimates.
  virtual size_t vocabulary_size() const = 0;

  // p̂(w|D) of Definition 2: fraction of documents containing the word,
  // clamped to [0, 1].
  double ProbDoc(const std::string& word) const;

  // LM-style token probability p̂(w|D) = tf(w,D) / Σ tf (Section 5.3).
  double ProbToken(const std::string& word) const;

  // Whether the word "counts as present": round(|D|·p̂(w|D)) >= 1, the
  // trimming rule of Sections 5.3 and 6.1.
  bool ContainsRounded(const std::string& word) const;
};

// A concrete, materialized content summary backed by a hash map.
class ContentSummary : public SummaryView {
 public:
  ContentSummary() = default;

  double num_documents() const override { return num_documents_; }
  double total_tokens() const override { return total_tokens_; }
  double DocFrequency(const std::string& word) const override;
  double TokenFrequency(const std::string& word) const override;
  void ForEachWord(
      const std::function<void(const std::string&, const WordStats&)>& fn)
      const override;
  size_t vocabulary_size() const override { return words_.size(); }

  void set_num_documents(double n) { num_documents_ = n; }

  // Sets the statistics of one word (replacing any previous values).
  void SetWord(const std::string& word, WordStats stats);

  // Accumulates statistics for one word (used by aggregation).
  void AddWord(const std::string& word, WordStats stats);

  // Direct access for tight loops.
  const std::unordered_map<std::string, WordStats>& words() const {
    return words_;
  }

  // Materializes any SummaryView into a concrete summary. If `trim` is set,
  // words failing the round(|D|·p̂) >= 1 rule are dropped — the evaluation
  // treatment of shrunk summaries in Section 6.1.
  static ContentSummary Materialize(const SummaryView& view, bool trim);

  // The "perfect" summary S(D) of Section 6.1, computed by examining every
  // document through the database's index.
  static ContentSummary FromIndex(const index::InvertedIndex& index);

  // Definition 3, Equation 1: category summary aggregating database
  // summaries weighted by their sizes. p̂(w|C) = Σ p̂(w|D)·|D| / Σ |D|,
  // which in absolute terms is summed df (and ctf) over summed |D|.
  static ContentSummary AggregateCategory(
      const std::vector<const ContentSummary*>& database_summaries);

 private:
  double num_documents_ = 0.0;
  double total_tokens_ = 0.0;
  std::unordered_map<std::string, WordStats> words_;
};

}  // namespace fedsearch::summary

#endif  // FEDSEARCH_SUMMARY_CONTENT_SUMMARY_H_
