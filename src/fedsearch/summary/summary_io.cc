#include "fedsearch/summary/summary_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace fedsearch::summary {
namespace {

constexpr char kMagic[] = "fedsearch-summary";
constexpr int kVersion = 1;

// Strict statistic parser for hostile input: the whole token must be a
// finite, non-negative number. istream's operator>> is too lenient here —
// depending on the library it accepts partial tokens ("1x2") or leaves an
// overflowed value implementation-defined.
bool ParseNonNegativeFinite(const std::string& token, double& out) {
  if (token.empty()) return false;
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + token.size()) return false;  // trailing garbage
  if (!std::isfinite(value)) return false;        // overflow / inf / nan
  if (value < 0.0) return false;
  out = value;
  return true;
}

}  // namespace

util::Status WriteSummary(const SummaryView& summary, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kMagic << ' ' << kVersion << ' ' << summary.num_documents() << ' '
      << summary.vocabulary_size() << '\n';
  bool bad_word = false;
  summary.ForEachWord([&](const std::string& word, const WordStats& stats) {
    if (word.empty() ||
        word.find_first_of(" \t\n\r") != std::string::npos) {
      bad_word = true;
      return;
    }
    out << word << ' ' << stats.df << ' ' << stats.ctf << '\n';
  });
  if (bad_word) {
    return util::Status::InvalidArgument(
        "summary contains words with whitespace");
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::Ok();
}

util::StatusOr<ContentSummary> ReadSummary(std::istream& in) {
  std::string magic;
  int version = 0;
  std::string num_documents_tok;
  long long word_count_signed = 0;
  if (!(in >> magic >> version >> num_documents_tok >> word_count_signed)) {
    return util::Status::InvalidArgument("malformed summary header");
  }
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a fedsearch summary: " + magic);
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported summary version");
  }
  double num_documents = 0.0;
  if (!ParseNonNegativeFinite(num_documents_tok, num_documents)) {
    return util::Status::InvalidArgument("bad document count: " +
                                         num_documents_tok);
  }
  if (word_count_signed < 0) {
    return util::Status::InvalidArgument("negative word count in header");
  }
  const size_t word_count = static_cast<size_t>(word_count_signed);
  ContentSummary summary;
  summary.set_num_documents(num_documents);
  std::unordered_set<std::string> seen_words;
  for (size_t i = 0; i < word_count; ++i) {
    std::string word, df_tok, ctf_tok;
    if (!(in >> word >> df_tok >> ctf_tok)) {
      return util::Status::InvalidArgument(
          "truncated summary: expected " + std::to_string(word_count) +
          " words, got " + std::to_string(i));
    }
    WordStats stats;
    if (!ParseNonNegativeFinite(df_tok, stats.df) ||
        !ParseNonNegativeFinite(ctf_tok, stats.ctf)) {
      return util::Status::InvalidArgument("bad statistics for " + word +
                                           ": " + df_tok + " " + ctf_tok);
    }
    if (!seen_words.insert(word).second) {
      return util::Status::InvalidArgument("duplicate word: " + word);
    }
    summary.SetWord(word, stats);
  }
  // Word-count mismatch the other way: the header promised fewer entries
  // than the body holds. Reading a short count silently would truncate the
  // vocabulary, so any trailing token is an error.
  std::string extra;
  if (in >> extra) {
    return util::Status::InvalidArgument(
        "summary body continues past the declared word count of " +
        std::to_string(word_count));
  }
  return summary;
}

util::Status SaveSummaryToFile(const SummaryView& summary,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for write: " + path);
  return WriteSummary(summary, out);
}

util::StatusOr<ContentSummary> LoadSummaryFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadSummary(in);
}

}  // namespace fedsearch::summary
