#include "fedsearch/summary/summary_io.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace fedsearch::summary {
namespace {

constexpr char kMagic[] = "fedsearch-summary";
constexpr int kVersion = 1;

}  // namespace

util::Status WriteSummary(const SummaryView& summary, std::ostream& out) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << kMagic << ' ' << kVersion << ' ' << summary.num_documents() << ' '
      << summary.vocabulary_size() << '\n';
  bool bad_word = false;
  summary.ForEachWord([&](const std::string& word, const WordStats& stats) {
    if (word.empty() ||
        word.find_first_of(" \t\n\r") != std::string::npos) {
      bad_word = true;
      return;
    }
    out << word << ' ' << stats.df << ' ' << stats.ctf << '\n';
  });
  if (bad_word) {
    return util::Status::InvalidArgument(
        "summary contains words with whitespace");
  }
  if (!out) return util::Status::Internal("write failed");
  return util::Status::Ok();
}

util::StatusOr<ContentSummary> ReadSummary(std::istream& in) {
  std::string magic;
  int version = 0;
  double num_documents = 0.0;
  size_t word_count = 0;
  if (!(in >> magic >> version >> num_documents >> word_count)) {
    return util::Status::InvalidArgument("malformed summary header");
  }
  if (magic != kMagic) {
    return util::Status::InvalidArgument("not a fedsearch summary: " + magic);
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported summary version");
  }
  if (num_documents < 0.0) {
    return util::Status::InvalidArgument("negative document count");
  }
  ContentSummary summary;
  summary.set_num_documents(num_documents);
  for (size_t i = 0; i < word_count; ++i) {
    std::string word;
    WordStats stats;
    if (!(in >> word >> stats.df >> stats.ctf)) {
      return util::Status::InvalidArgument(
          "truncated summary: expected " + std::to_string(word_count) +
          " words, got " + std::to_string(i));
    }
    if (stats.df < 0.0 || stats.ctf < 0.0) {
      return util::Status::InvalidArgument("negative statistics for " + word);
    }
    summary.SetWord(word, stats);
  }
  return summary;
}

util::Status SaveSummaryToFile(const SummaryView& summary,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for write: " + path);
  return WriteSummary(summary, out);
}

util::StatusOr<ContentSummary> LoadSummaryFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadSummary(in);
}

}  // namespace fedsearch::summary
