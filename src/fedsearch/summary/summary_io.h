#ifndef FEDSEARCH_SUMMARY_SUMMARY_IO_H_
#define FEDSEARCH_SUMMARY_SUMMARY_IO_H_

#include <iosfwd>
#include <string>

#include "fedsearch/summary/content_summary.h"
#include "fedsearch/util/status.h"

namespace fedsearch::summary {

// Persistence for content summaries. Real metasearchers compute summaries
// off-line and reload them at query time; the STARTS proposal [12] likewise
// assumes summaries travel as documents. The format is a line-oriented
// text file:
//
//   fedsearch-summary 1 <num_documents> <word_count>
//   <word> <df> <ctf>
//   ...
//
// Words are analyzer output (no whitespace). Doubles round-trip through
// max_digits10 so Write/Read is lossless.

// Writes `summary` to `out`. Any SummaryView works (shrunk summaries are
// materialized on the fly by iteration).
util::Status WriteSummary(const SummaryView& summary, std::ostream& out);

// Parses a summary previously written by WriteSummary.
util::StatusOr<ContentSummary> ReadSummary(std::istream& in);

// File-path conveniences.
util::Status SaveSummaryToFile(const SummaryView& summary,
                               const std::string& path);
util::StatusOr<ContentSummary> LoadSummaryFromFile(const std::string& path);

}  // namespace fedsearch::summary

#endif  // FEDSEARCH_SUMMARY_SUMMARY_IO_H_
