#include "fedsearch/summary/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "fedsearch/util/math.h"

namespace fedsearch::summary {

double WeightedRecall(const ContentSummary& approx,
                      const ContentSummary& truth) {
  double common = 0.0;
  double total = 0.0;
  truth.ForEachWord([&](const std::string& word, const WordStats&) {
    const double p = truth.ProbDoc(word);
    total += p;
    if (approx.DocFrequency(word) > 0.0) common += p;
  });
  return total > 0.0 ? common / total : 0.0;
}

double UnweightedRecall(const ContentSummary& approx,
                        const ContentSummary& truth) {
  if (truth.vocabulary_size() == 0) return 0.0;
  size_t common = 0;
  truth.ForEachWord([&](const std::string& word, const WordStats&) {
    if (approx.DocFrequency(word) > 0.0) ++common;
  });
  return static_cast<double>(common) /
         static_cast<double>(truth.vocabulary_size());
}

double WeightedPrecision(const ContentSummary& approx,
                         const ContentSummary& truth) {
  double common = 0.0;
  double total = 0.0;
  approx.ForEachWord([&](const std::string& word, const WordStats&) {
    const double p = approx.ProbDoc(word);
    total += p;
    if (truth.DocFrequency(word) > 0.0) common += p;
  });
  return total > 0.0 ? common / total : 0.0;
}

double UnweightedPrecision(const ContentSummary& approx,
                           const ContentSummary& truth) {
  if (approx.vocabulary_size() == 0) return 0.0;
  size_t common = 0;
  approx.ForEachWord([&](const std::string& word, const WordStats&) {
    if (truth.DocFrequency(word) > 0.0) ++common;
  });
  return static_cast<double>(common) /
         static_cast<double>(approx.vocabulary_size());
}

double SpearmanCorrelation(const ContentSummary& approx,
                           const ContentSummary& truth) {
  std::vector<double> a;
  std::vector<double> t;
  truth.ForEachWord([&](const std::string& word, const WordStats& stats) {
    const double ap = approx.DocFrequency(word);
    if (ap > 0.0) {
      a.push_back(ap / std::max(1.0, approx.num_documents()));
      t.push_back(stats.df / std::max(1.0, truth.num_documents()));
    }
  });
  return util::SpearmanRankCorrelation(a, t);
}

double KlDivergence(const ContentSummary& approx,
                    const ContentSummary& truth) {
  // The true token distribution restricted to the common vocabulary is
  // renormalized before the divergence is computed. Since the approximate
  // distribution sums to at most one over that set, Gibbs' inequality then
  // guarantees KL >= 0 (the raw restricted sum of the paper's formula can
  // dip below zero when the sample matches the truth closely).
  double common_mass = 0.0;
  truth.ForEachWord([&](const std::string& word, const WordStats&) {
    if (approx.TokenFrequency(word) > 0.0) common_mass += truth.ProbToken(word);
  });
  if (common_mass <= 0.0) return 0.0;
  double kl = 0.0;
  truth.ForEachWord([&](const std::string& word, const WordStats&) {
    const double p = truth.ProbToken(word) / common_mass;
    const double q = approx.ProbToken(word);
    if (p > 0.0 && q > 0.0) kl += p * std::log(p / q);
  });
  return std::max(0.0, kl);
}

double SummaryDistance(const SummaryView& a, const SummaryView& b) {
  std::vector<std::string> words;
  words.reserve(a.vocabulary_size() + b.vocabulary_size());
  a.ForEachWord([&](const std::string& word, const WordStats&) {
    words.push_back(word);
  });
  b.ForEachWord([&](const std::string& word, const WordStats&) {
    words.push_back(word);
  });
  // Sorted union: ForEachWord iterates hash order, which must not leak
  // into the float reduction.
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  double l1 = 0.0;
  for (const std::string& w : words) {
    l1 += std::abs(a.ProbToken(w) - b.ProbToken(w));
  }
  return 0.5 * l1;
}

SummaryQuality EvaluateSummary(const ContentSummary& approx,
                               const ContentSummary& truth) {
  SummaryQuality q;
  q.weighted_recall = WeightedRecall(approx, truth);
  q.unweighted_recall = UnweightedRecall(approx, truth);
  q.weighted_precision = WeightedPrecision(approx, truth);
  q.unweighted_precision = UnweightedPrecision(approx, truth);
  q.spearman = SpearmanCorrelation(approx, truth);
  q.kl_divergence = KlDivergence(approx, truth);
  return q;
}

}  // namespace fedsearch::summary
