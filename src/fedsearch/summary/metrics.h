#ifndef FEDSEARCH_SUMMARY_METRICS_H_
#define FEDSEARCH_SUMMARY_METRICS_H_

#include "fedsearch/summary/content_summary.h"

namespace fedsearch::summary {

// Content-summary quality metrics of Section 6.1. In all of them, `approx`
// is the summary under evaluation A(D) (already trimmed per the
// round(|D|·p̂) >= 1 rule if it is a shrunk summary) and `truth` is the
// perfect summary S(D) computed from the full database.

// Weighted recall (the ctf ratio of [2]):
//   wr = Σ_{w ∈ WA ∩ WS} p(w|D) / Σ_{w ∈ WS} p(w|D).   (Table 4)
double WeightedRecall(const ContentSummary& approx,
                      const ContentSummary& truth);

// Unweighted recall ur = |WA ∩ WS| / |WS|.              (Table 5)
double UnweightedRecall(const ContentSummary& approx,
                        const ContentSummary& truth);

// Weighted precision
//   wp = Σ_{w ∈ WA ∩ WS} p̂(w|D) / Σ_{w ∈ WA} p̂(w|D).  (Table 6)
double WeightedPrecision(const ContentSummary& approx,
                         const ContentSummary& truth);

// Unweighted precision up = |WA ∩ WS| / |WA|.           (Table 7)
double UnweightedPrecision(const ContentSummary& approx,
                           const ContentSummary& truth);

// Spearman rank correlation coefficient between the word rankings (by
// p̂(w|D) in A and p(w|D) in S) over the common vocabulary.  (Table 8)
double SpearmanCorrelation(const ContentSummary& approx,
                           const ContentSummary& truth);

// KL-divergence over the common vocabulary with LM-style token
// probabilities:
//   KL = Σ_{w ∈ WA ∩ WS} p(w|D) · log(p(w|D) / p̂(w|D)).  (Table 9)
double KlDivergence(const ContentSummary& approx, const ContentSummary& truth);

// Total-variation distance between two summaries' LM-style token
// distributions, over the union vocabulary:
//   d(A, B) = ½ Σ_w |p_A(w) - p_B(w)|,  p(w) = tf(w) / Σ tf.
// In [0, 1]; 0 iff the token distributions coincide. This is the drift
// signal live refresh acts on: the distance between a database's previous
// summary and its re-probed one estimates how much the underlying corpus
// moved since the last probe. The union vocabulary is iterated in sorted
// order so the float reduction is deterministic.
double SummaryDistance(const SummaryView& a, const SummaryView& b);

// Convenience bundle for the per-table benches.
struct SummaryQuality {
  double weighted_recall = 0.0;
  double unweighted_recall = 0.0;
  double weighted_precision = 0.0;
  double unweighted_precision = 0.0;
  double spearman = 0.0;
  double kl_divergence = 0.0;
};

SummaryQuality EvaluateSummary(const ContentSummary& approx,
                               const ContentSummary& truth);

}  // namespace fedsearch::summary

#endif  // FEDSEARCH_SUMMARY_METRICS_H_
