#include "fedsearch/sampling/qbs_sampler.h"

#include <unordered_set>
#include <utility>

#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::sampling {

QbsSampler::QbsSampler(QbsOptions options, std::vector<std::string> dictionary)
    : options_(options), dictionary_(std::move(dictionary)) {}

SampleResult QbsSampler::Sample(const index::TextDatabase& db,
                                util::Rng& rng) const {
  index::LocalDatabase local(&db);
  return Sample(local, db.analyzer(), rng);
}

SampleResult QbsSampler::Sample(index::SearchInterface& db,
                                const text::Analyzer& analyzer,
                                util::Rng& rng) const {
  static util::Counter& runs =
      util::GlobalMetrics().counter("sampling.qbs_runs");
  static util::Histogram& run_ns =
      util::GlobalMetrics().histogram("sampling.qbs_run_ns");
  FEDSEARCH_TRACE_SPAN("qbs_sample");
  util::ScopedTimer run_timer(run_ns);
  runs.Add();
  util::RetryController retry(options_.retry);
  SampleCollector collector(&db, &analyzer, &options_.build, &retry);
  std::unordered_set<std::string> used_queries;
  size_t queries_sent = 0;
  size_t consecutive_failures = 0;

  // Safety valve: a database can be smaller than the target sample, and the
  // observed vocabulary can run out of fresh query words.
  const size_t max_queries =
      options_.max_consecutive_failures * 4 + options_.target_documents * 4;

  while (collector.sample_size() < options_.target_documents &&
         consecutive_failures < options_.max_consecutive_failures &&
         queries_sent < max_queries && !retry.exhausted()) {
    // Pick the next single-word query: from the dictionary while the sample
    // is empty, from the sampled documents' vocabulary afterwards.
    const std::vector<std::string>& pool = collector.sample_size() == 0
                                               ? dictionary_
                                               : collector.observed_words();
    if (pool.empty()) break;
    const std::string* query = nullptr;
    for (int attempt = 0; attempt < 64 && query == nullptr; ++attempt) {
      const std::string& cand = pool[rng.NextBounded(pool.size())];
      if (used_queries.insert(cand).second) query = &cand;
    }
    if (query == nullptr) {
      // Word pool exhausted (tiny database); count as a failed query.
      ++consecutive_failures;
      ++queries_sent;
      continue;
    }

    const util::StatusOr<index::QueryResult> result = retry.Run([&] {
      return db.Search(*query, options_.docs_per_query, &collector.seen());
    });
    ++queries_sent;
    if (!result.ok()) {
      // Persistently failing query: spend one failure tick so a database
      // that only ever errors still terminates via the failure cap, and
      // loop back (the budget check above bounds the worst case).
      ++consecutive_failures;
      continue;
    }
    const size_t added = collector.AddDocuments(result.value().docs);
    if (added == 0) {
      ++consecutive_failures;
    } else {
      consecutive_failures = 0;
    }
  }

  return collector.Finalize(queries_sent, rng);
}

}  // namespace fedsearch::sampling
