#ifndef FEDSEARCH_SAMPLING_SAMPLE_COLLECTOR_H_
#define FEDSEARCH_SAMPLING_SAMPLE_COLLECTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fedsearch/index/search_interface.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/sampling/freq_estimator.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/util/retry.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::sampling {

// Options shared by all samplers for turning a document sample into an
// approximate content summary.
struct SummaryBuildOptions {
  // Apply the Appendix A Mandelbrot-law frequency estimation (the
  // "Freq. Est." dimension of Tables 4-9). Database size estimation via
  // sample-resample is always on — it is part of both pipelines.
  bool frequency_estimation = false;
  // Number of single-word sample-resample probe queries [27].
  size_t resample_probes = 5;
  // Checkpoint cadence (in sampled documents) for the scaling-model fit.
  size_t checkpoint_every = 50;
  // Retain the analyzed sampled documents in the SampleResult (costs
  // memory; needed by ReDDE-style selection over a centralized sample
  // index).
  bool keep_documents = false;
};

// Accumulates the documents a sampler downloads and derives the sample
// statistics, size estimate, and final content summary. Shared by QBS and
// FPS, which differ only in how they choose queries (Section 5.2).
//
// All database access flows through a SearchInterface and a
// RetryController, so the collector tolerates a faulty remote end: a
// document whose download keeps failing is recorded as lost and skipped,
// and Finalize() stamps the run's SamplingHealth into the result instead
// of aborting.
class SampleCollector {
 public:
  // Remote pipeline. `db`, `analyzer`, `options`, and `retry` must outlive
  // the collector; `analyzer` is the *metasearcher's* analyzer (an
  // uncooperative database exports no analysis chain), and `retry` is the
  // run-wide controller shared with the sampler's own query loop.
  SampleCollector(index::SearchInterface* db, const text::Analyzer* analyzer,
                  const SummaryBuildOptions* options,
                  util::RetryController* retry);

  // Local fault-free convenience: wraps `db` in a LocalDatabase with a
  // collector-owned RetryController. `db` and `options` must outlive the
  // collector.
  SampleCollector(const index::TextDatabase* db,
                  const SummaryBuildOptions* options);

  // Ingests query results: fetches, analyzes and accounts each previously
  // unseen document. Returns how many documents were new. Documents whose
  // download fails persistently are counted lost, not added; they stay out
  // of seen() so a later query can retry them.
  size_t AddDocuments(const std::vector<index::DocId>& docs);

  size_t sample_size() const { return sample_size_; }
  const std::unordered_set<index::DocId>& seen() const { return seen_; }

  // Result documents abandoned after retries.
  size_t documents_lost() const { return documents_lost_; }

  // Distinct words observed so far (for query-word selection). Order is
  // deterministic (first-seen).
  const std::vector<std::string>& observed_words() const {
    return observed_words_;
  }

  // Finishes the run: estimates |D| with `resample_probes` extra single-word
  // queries, optionally recalibrates word frequencies (Appendix A), and
  // assembles the SampleResult. `queries_sent` is the count of sampling
  // queries issued so far (the resample probes are added to it).
  SampleResult Finalize(size_t queries_sent, util::Rng& rng) const;

 private:
  struct WordObs {
    size_t df = 0;     // sample document frequency
    uint64_t ctf = 0;  // sample collection term frequency
  };

  void MaybeCheckpoint();

  // Fits Mandelbrot's law on the current sample document frequencies.
  MandelbrotFit FitCurrent() const;

  // Sample-resample size estimation [27]: probes the database with words
  // from the sample and scales their sample df by the reported match count.
  // The probed (word, true match count) pairs are appended to
  // `probe_matches`; they double as calibration anchors for the frequency
  // estimation curve (the matches ARE database-level frequencies,
  // Appendix A).
  double EstimateDatabaseSize(
      size_t probes, util::Rng& rng, size_t& queries_used,
      std::vector<std::pair<std::string, double>>& probe_matches) const;

  // Set only by the local-convenience constructor.
  std::unique_ptr<index::LocalDatabase> owned_db_;
  std::unique_ptr<util::RetryController> owned_retry_;

  index::SearchInterface* db_;
  const text::Analyzer* analyzer_;
  const SummaryBuildOptions* options_;
  util::RetryController* retry_;
  size_t sample_size_ = 0;
  size_t documents_lost_ = 0;
  std::unordered_set<index::DocId> seen_;
  std::unordered_map<std::string, WordObs> words_;
  std::vector<std::string> observed_words_;
  std::vector<Checkpoint> checkpoints_;
  std::vector<std::vector<std::string>> kept_documents_;
  size_t last_checkpoint_size_ = 0;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_SAMPLE_COLLECTOR_H_
