#include "fedsearch/sampling/sample_collector.h"

#include <algorithm>
#include <cmath>

#include "fedsearch/util/metrics.h"

namespace fedsearch::sampling {

namespace {

struct SamplingMetrics {
  util::Counter& documents_sampled =
      util::GlobalMetrics().counter("sampling.documents_sampled");
  util::Counter& documents_lost =
      util::GlobalMetrics().counter("sampling.documents_lost");
  util::Counter& queries_sent =
      util::GlobalMetrics().counter("sampling.queries_sent");
  util::Counter& transient_failures =
      util::GlobalMetrics().counter("sampling.transient_failures");
  util::Counter& queries_abandoned =
      util::GlobalMetrics().counter("sampling.queries_abandoned");
  util::Counter& backoff_ms =
      util::GlobalMetrics().counter("sampling.simulated_backoff_ms");
  util::Counter& runs_complete =
      util::GlobalMetrics().counter("sampling.runs_complete");
  util::Counter& runs_partial =
      util::GlobalMetrics().counter("sampling.runs_partial");
  util::Counter& runs_aborted =
      util::GlobalMetrics().counter("sampling.runs_aborted");
  util::Histogram& sample_size =
      util::GlobalMetrics().histogram("sampling.sample_size");
};

SamplingMetrics& Metrics() {
  static SamplingMetrics* m = new SamplingMetrics();
  return *m;
}

}  // namespace

SampleCollector::SampleCollector(index::SearchInterface* db,
                                 const text::Analyzer* analyzer,
                                 const SummaryBuildOptions* options,
                                 util::RetryController* retry)
    : db_(db), analyzer_(analyzer), options_(options), retry_(retry) {}

SampleCollector::SampleCollector(const index::TextDatabase* db,
                                 const SummaryBuildOptions* options)
    : owned_db_(std::make_unique<index::LocalDatabase>(db)),
      owned_retry_(std::make_unique<util::RetryController>()),
      db_(owned_db_.get()),
      analyzer_(&db->analyzer()),
      options_(options),
      retry_(owned_retry_.get()) {}

size_t SampleCollector::AddDocuments(const std::vector<index::DocId>& docs) {
  size_t added = 0;
  for (index::DocId doc : docs) {
    if (seen_.count(doc) != 0) continue;
    const util::StatusOr<const index::Document*> fetched =
        retry_->Run([&] { return db_->Fetch(doc); });
    if (!fetched.ok()) {
      // The document stays outside seen_ so a later query result can give
      // it another chance; a dead interface stops the whole loop via the
      // shared budget.
      ++documents_lost_;
      if (retry_->exhausted()) break;
      continue;
    }
    seen_.insert(doc);
    ++added;
    ++sample_size_;
    const std::vector<std::string> terms =
        analyzer_->Analyze(fetched.value()->text);
    // Per-document distinct terms for df; all occurrences for ctf.
    std::unordered_map<std::string, uint32_t> counts;
    for (const std::string& t : terms) ++counts[t];
    if (options_->keep_documents) kept_documents_.push_back(terms);
    for (const auto& [term, tf] : counts) {
      WordObs& obs = words_[term];
      if (obs.df == 0 && obs.ctf == 0) observed_words_.push_back(term);
      obs.df += 1;
      obs.ctf += tf;
    }
    MaybeCheckpoint();
  }
  Metrics().documents_sampled.Add(added);
  return added;
}

void SampleCollector::MaybeCheckpoint() {
  if (sample_size_ < last_checkpoint_size_ + options_->checkpoint_every) {
    return;
  }
  last_checkpoint_size_ = sample_size_;
  checkpoints_.push_back(Checkpoint{sample_size_, FitCurrent()});
}

MandelbrotFit SampleCollector::FitCurrent() const {
  std::vector<double> dfs;
  dfs.reserve(words_.size());
  for (const auto& [word, obs] : words_) {
    dfs.push_back(static_cast<double>(obs.df));
  }
  std::sort(dfs.begin(), dfs.end(), std::greater<double>());
  return FitMandelbrot(dfs);
}

double SampleCollector::EstimateDatabaseSize(
    size_t probes, util::Rng& rng, size_t& queries_used,
    std::vector<std::pair<std::string, double>>& probe_matches) const {
  // Candidate probe words: a word observed in few sample documents has an
  // upward-biased sample frequency (it was observed *because* it got
  // lucky), which deflates the size estimate. Restrict probes to a
  // mid-to-high frequency band where the df ratio is stable.
  const size_t lo = std::max<size_t>(5, sample_size_ / 30);
  const size_t hi = std::max<size_t>(lo + 1, (sample_size_ * 4) / 5);
  std::vector<const std::string*> candidates;
  for (const std::string& w : observed_words_) {
    const size_t df = words_.at(w).df;
    if (df >= lo && df <= hi) candidates.push_back(&w);
  }
  if (candidates.empty()) {
    for (const std::string& w : observed_words_) candidates.push_back(&w);
  }
  if (candidates.empty() || sample_size_ == 0) {
    return static_cast<double>(sample_size_);
  }
  rng.Shuffle(candidates);

  std::vector<double> estimates;
  for (size_t i = 0; i < candidates.size() && estimates.size() < probes; ++i) {
    if (retry_->exhausted()) break;
    const std::string& w = *candidates[i];
    const util::StatusOr<index::QueryResult> r =
        retry_->Run([&] { return db_->Search(w, /*top_k=*/0); });
    ++queries_used;
    if (!r.ok()) continue;
    const size_t sample_df = words_.at(w).df;
    if (r.value().num_matches == 0 || sample_df == 0) continue;
    probe_matches.emplace_back(w, static_cast<double>(r.value().num_matches));
    estimates.push_back(static_cast<double>(r.value().num_matches) *
                        static_cast<double>(sample_size_) /
                        static_cast<double>(sample_df));
  }
  if (estimates.empty()) return static_cast<double>(sample_size_);
  // Median is robust to one unlucky probe.
  std::sort(estimates.begin(), estimates.end());
  return estimates[estimates.size() / 2];
}

SampleResult SampleCollector::Finalize(size_t queries_sent,
                                       util::Rng& rng) const {
  SampleResult result;
  result.sample_size = sample_size_;
  result.queries_sent = queries_sent;
  result.sampled_documents = kept_documents_;
  for (const auto& [word, obs] : words_) {
    result.sample_df.emplace(word, obs.df);
  }

  size_t queries = queries_sent;
  std::vector<std::pair<std::string, double>> probe_matches;
  double db_size = EstimateDatabaseSize(options_->resample_probes, rng,
                                        queries, probe_matches);
  db_size = std::max(db_size, static_cast<double>(sample_size_));
  result.queries_sent = queries;
  result.estimated_db_size = db_size;

  // Stamp the run's fault accounting (the resample probes above are part
  // of the run, so this happens after them).
  SamplingHealth& health = result.health;
  health.transient_failures = retry_->failed_attempts();
  health.queries_abandoned = retry_->abandoned_calls();
  health.documents_lost = documents_lost_;
  health.simulated_backoff_ms = retry_->simulated_backoff_ms();
  health.budget_exhausted = retry_->exhausted();
  const bool faulted = health.budget_exhausted ||
                       health.queries_abandoned > 0 ||
                       health.documents_lost > 0;
  if (faulted && sample_size_ == 0) {
    // Nothing retrieved and the run saw remote faults — whether the budget
    // ran dry or the query pool did first, there is no sample to trust.
    health.outcome = SamplingOutcome::kAborted;
  } else if (faulted) {
    health.outcome = SamplingOutcome::kPartial;
  } else {
    health.outcome = SamplingOutcome::kComplete;
  }

  // Global fault-budget accounting, stamped once per run alongside the
  // per-run SamplingHealth.
  Metrics().queries_sent.Add(queries);
  Metrics().transient_failures.Add(health.transient_failures);
  Metrics().queries_abandoned.Add(health.queries_abandoned);
  Metrics().documents_lost.Add(health.documents_lost);
  Metrics().backoff_ms.Add(
      static_cast<uint64_t>(health.simulated_backoff_ms + 0.5));
  Metrics().sample_size.Record(sample_size_);
  switch (health.outcome) {
    case SamplingOutcome::kComplete: Metrics().runs_complete.Add(); break;
    case SamplingOutcome::kPartial: Metrics().runs_partial.Add(); break;
    case SamplingOutcome::kAborted: Metrics().runs_aborted.Add(); break;
  }

  // Scaling model over the checkpoints plus the final sample state
  // (Appendix A), extrapolated to the estimated database size.
  std::vector<Checkpoint> checkpoints = checkpoints_;
  if (checkpoints.empty() ||
      checkpoints.back().sample_size != sample_size_) {
    checkpoints.push_back(Checkpoint{sample_size_, FitCurrent()});
  }
  const ScalingModel scaling = FitScalingModel(checkpoints);
  MandelbrotFit db_fit = scaling.ExtrapolateTo(db_size);
  if (db_fit.alpha >= 0.0 || !std::isfinite(db_fit.alpha) ||
      !std::isfinite(db_fit.log_beta)) {
    // Degenerate extrapolation; fall back to the in-sample fit.
    db_fit = checkpoints.back().fit;
  }
  result.mandelbrot_alpha = db_fit.alpha;
  result.mandelbrot_log_beta = db_fit.log_beta;

  // Assemble the summary. Without frequency estimation, p̂(w|D) is the
  // sample fraction of Definition 2 (stored in absolute terms as
  // p̂ · |D̂|); with estimation, the word's df is read off the Mandelbrot
  // curve extrapolated to the estimated database size (Equation 5), at the
  // word's sample rank.
  summary::ContentSummary& s = result.summary;
  s.set_num_documents(db_size);
  const double scale =
      sample_size_ > 0 ? db_size / static_cast<double>(sample_size_) : 1.0;

  if (!options_->frequency_estimation) {
    for (const auto& [word, obs] : words_) {
      s.SetWord(word, summary::WordStats{
                          static_cast<double>(obs.df) * scale,
                          static_cast<double>(obs.ctf) * scale});
    }
    return result;
  }

  // Deterministic sample ranking: df desc, then word asc.
  std::vector<const std::string*> ranked;
  ranked.reserve(words_.size());
  for (const auto& [word, obs] : words_) ranked.push_back(&word);
  std::sort(ranked.begin(), ranked.end(),
            [&](const std::string* a, const std::string* b) {
              const size_t da = words_.at(*a).df;
              const size_t db = words_.at(*b).df;
              if (da != db) return da > db;
              return *a < *b;
            });

  // Calibrate the curve's level on the probe words' true database
  // frequencies (their match counts ARE database-level df values,
  // Appendix A): with the slope α̂ fixed, solve log β̂ from the anchors.
  // This tames the (4a)/(4b) extrapolation for small samples.
  if (!probe_matches.empty()) {
    std::unordered_map<std::string, size_t> rank_of;
    for (size_t r = 0; r < ranked.size(); ++r) rank_of[*ranked[r]] = r + 1;
    double log_beta_sum = 0.0;
    size_t anchors = 0;
    for (const auto& [word, matches] : probe_matches) {
      auto it = rank_of.find(word);
      if (it == rank_of.end() || matches <= 0.0) continue;
      log_beta_sum += std::log(matches) -
                      db_fit.alpha * std::log(static_cast<double>(it->second));
      ++anchors;
    }
    if (anchors > 0) {
      result.mandelbrot_log_beta = log_beta_sum / static_cast<double>(anchors);
      db_fit.log_beta = result.mandelbrot_log_beta;
    }
  }

  for (size_t r = 0; r < ranked.size(); ++r) {
    const WordObs& obs = words_.at(*ranked[r]);
    double df = db_fit.Frequency(static_cast<double>(r + 1));
    if (!std::isfinite(df)) df = static_cast<double>(obs.df) * scale;
    // A sampled word is known to appear in at least one database document,
    // so the curve estimate is floored at 1 (the extrapolated tail can
    // otherwise dive below the round(df) >= 1 presence threshold for small
    // databases).
    df = std::clamp(df, 1.0, db_size);
    s.SetWord(*ranked[r],
              summary::WordStats{df, static_cast<double>(obs.ctf) * scale});
  }
  return result;
}

}  // namespace fedsearch::sampling
