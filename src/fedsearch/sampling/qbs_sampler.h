#ifndef FEDSEARCH_SAMPLING_QBS_SAMPLER_H_
#define FEDSEARCH_SAMPLING_QBS_SAMPLER_H_

#include <string>
#include <vector>

#include "fedsearch/index/search_interface.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/sampling/sample_collector.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/util/retry.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::sampling {

// Parameters of Query-Based Sampling as run in Section 5.2.
struct QbsOptions {
  // Stop once the sample holds this many documents.
  size_t target_documents = 300;
  // ... or once this many consecutive queries retrieve no new documents.
  size_t max_consecutive_failures = 500;
  // Documents retrieved per query ("at most four previously unseen").
  size_t docs_per_query = 4;
  SummaryBuildOptions build;
  // Fault tolerance against a remote interface: per-call retries and the
  // per-run failure budget. A run that exhausts the budget finalizes a
  // *partial* sample (see SamplingHealth) instead of looping forever.
  util::RetryOptions retry;
};

// Query-Based Sampling (Callan & Connell [2]): random single-word queries
// from an external dictionary until a first document is retrieved, then
// single-word queries drawn from the words of the retrieved documents.
class QbsSampler {
 public:
  // `dictionary` supplies the bootstrap query words (the stand-in for the
  // English dictionary real QBS uses). Copied.
  QbsSampler(QbsOptions options, std::vector<std::string> dictionary);

  // Samples `db` and builds its approximate content summary. All
  // randomness comes from `rng`, so runs are reproducible; the paper
  // averages five QBS runs per database, which the harness reproduces by
  // calling this with five forked generators.
  SampleResult Sample(const index::TextDatabase& db, util::Rng& rng) const;

  // Remote variant: samples through an unreliable search interface,
  // analyzing downloaded documents with the metasearcher's own `analyzer`.
  // Transient faults are retried under options().retry; a run that spends
  // its failure budget stops early and returns a sample flagged kPartial
  // (or kAborted if nothing was retrieved).
  SampleResult Sample(index::SearchInterface& db,
                      const text::Analyzer& analyzer, util::Rng& rng) const;

 private:
  QbsOptions options_;
  std::vector<std::string> dictionary_;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_QBS_SAMPLER_H_
