#ifndef FEDSEARCH_SAMPLING_REFRESH_SCHEDULER_H_
#define FEDSEARCH_SAMPLING_REFRESH_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "fedsearch/util/rng.h"

namespace fedsearch::sampling {

// How the per-epoch probe budget is allocated across databases.
enum class RefreshPolicy {
  kNone,        // never re-probe (summaries stay at epoch 0)
  kRoundRobin,  // uniform rotation, ignoring drift evidence
  // Explore/exploit racing over estimated staleness: each database's
  // drift RATE is learned from the summary distance observed whenever it
  // is re-probed (an EWMA, normalized by the epochs the probe spans), its
  // STALENESS is rate × epochs-since-probe, and each probe slot picks the
  // staleness argmax — except an ε-fraction of slots, which explore a
  // uniformly random database so a database whose rate estimate went
  // stale (or was never observed) keeps getting sampled. Never-probed
  // databases carry an optimistic prior rate, so the first sweeps race to
  // cover the federation before exploitation narrows onto the fast
  // drifters.
  kRacing,
};

struct RefreshSchedulerOptions {
  RefreshPolicy policy = RefreshPolicy::kRacing;
  // ε: fraction of probe slots spent exploring uniformly (kRacing only).
  double explore_fraction = 0.1;
  // EWMA weight of the newest observed drift rate.
  double ewma_alpha = 0.5;
  // Optimistic prior drift rate for never-probed databases — high enough
  // that unobserved databases outrank any plausibly learned rate until
  // each has been probed at least once.
  double initial_drift_rate = 1.0;
  // Seed for the exploration draws (all randomness flows through
  // util::Rng).
  uint64_t seed = 0x5EED5EEDULL;
};

// Allocates a fixed per-epoch probe budget across databases under live
// churn (the incremental-refresh half of the live-churn subsystem; the
// racing policy follows the learning-sampler idiom of SNIPPETS.md
// Snippet 1). Deterministic: given the same option seed and the same
// sequence of BeginEpoch/PickNext/ReportDrift calls, the probe schedule
// is bit-identical.
//
// Protocol per epoch:
//   scheduler.BeginEpoch();
//   for (size_t slot = 0; slot < budget; ++slot) {
//     size_t db = scheduler.PickNext();
//     ... re-probe db, diff the new summary against the previous one ...
//     scheduler.ReportDrift(db, summary_distance);
//   }
// PickNext never returns the same database twice within one epoch (the
// per-epoch budget is spent on distinct databases); ReportDrift feeds the
// observed drift back into the rate estimates.
//
// Not thread-safe: one scheduler belongs to one refresh loop.
class RefreshScheduler {
 public:
  RefreshScheduler(size_t num_databases, RefreshSchedulerOptions options = {});

  size_t num_databases() const { return stats_.size(); }
  const RefreshSchedulerOptions& options() const { return options_; }

  // Starts the next epoch: advances every database's age and clears the
  // picked-this-epoch set.
  void BeginEpoch();

  // Picks the next database to re-probe this epoch (see the policy
  // descriptions above). With kNone, or once every database has been
  // picked this epoch, returns num_databases() (no candidate).
  [[nodiscard]] size_t PickNext();

  // Reports the summary distance observed when `database` was re-probed:
  // the distance between its previous summary and the fresh one. The
  // observation spans every epoch since the database's last probe, so the
  // per-epoch rate is distance / epochs_since_probe; the database's age
  // resets to zero.
  void ReportDrift(size_t database, double summary_distance);

  // Current estimated per-epoch drift rate of `database` (the optimistic
  // prior until its first ReportDrift).
  [[nodiscard]] double drift_rate(size_t database) const;

  // Epochs since `database` was last probed (== epochs since construction
  // while never probed).
  [[nodiscard]] uint64_t epochs_since_probe(size_t database) const {
    return stats_[database].age;
  }

 private:
  struct DatabaseStats {
    double rate = 0.0;        // EWMA of observed per-epoch drift
    bool observed = false;    // any ReportDrift yet?
    uint64_t age = 0;         // epochs since last probe
    bool picked_this_epoch = false;
  };

  double StalenessOf(const DatabaseStats& s) const;

  RefreshSchedulerOptions options_;
  std::vector<DatabaseStats> stats_;
  util::Rng rng_;
  size_t round_robin_next_ = 0;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_REFRESH_SCHEDULER_H_
