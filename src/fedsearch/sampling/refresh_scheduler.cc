#include "fedsearch/sampling/refresh_scheduler.h"

#include <algorithm>

#include "fedsearch/util/check.h"

namespace fedsearch::sampling {

RefreshScheduler::RefreshScheduler(size_t num_databases,
                                   RefreshSchedulerOptions options)
    : options_(options), stats_(num_databases), rng_(options.seed) {
  FEDSEARCH_CHECK(options_.explore_fraction >= 0.0 &&
                  options_.explore_fraction <= 1.0)
      << " explore_fraction " << options_.explore_fraction
      << " outside [0, 1]";
  FEDSEARCH_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0)
      << " ewma_alpha " << options_.ewma_alpha << " outside (0, 1]";
}

void RefreshScheduler::BeginEpoch() {
  for (DatabaseStats& s : stats_) {
    ++s.age;
    s.picked_this_epoch = false;
  }
}

double RefreshScheduler::StalenessOf(const DatabaseStats& s) const {
  const double rate = s.observed ? s.rate : options_.initial_drift_rate;
  return rate * static_cast<double>(s.age);
}

size_t RefreshScheduler::PickNext() {
  const size_t n = stats_.size();
  if (n == 0 || options_.policy == RefreshPolicy::kNone) return n;

  if (options_.policy == RefreshPolicy::kRoundRobin) {
    for (size_t step = 0; step < n; ++step) {
      const size_t candidate = round_robin_next_;
      round_robin_next_ = (round_robin_next_ + 1) % n;
      if (!stats_[candidate].picked_this_epoch) {
        stats_[candidate].picked_this_epoch = true;
        return candidate;
      }
    }
    return n;  // every database already picked this epoch
  }

  // kRacing. The ε-explore draw is consumed unconditionally per slot so
  // the schedule's draw stream depends only on the slot sequence, not on
  // how many candidates remain.
  const bool explore = rng_.NextBernoulli(options_.explore_fraction);
  std::vector<size_t> candidates;
  candidates.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!stats_[i].picked_this_epoch) candidates.push_back(i);
  }
  if (candidates.empty()) return n;
  size_t chosen = candidates.front();
  if (explore) {
    chosen = candidates[rng_.NextBounded(candidates.size())];
  } else {
    // Exploit: staleness argmax, ties to the lowest index (candidates are
    // in index order, strict > keeps the first maximum).
    double best = StalenessOf(stats_[chosen]);
    for (size_t k = 1; k < candidates.size(); ++k) {
      const double staleness = StalenessOf(stats_[candidates[k]]);
      if (staleness > best) {
        best = staleness;
        chosen = candidates[k];
      }
    }
  }
  stats_[chosen].picked_this_epoch = true;
  return chosen;
}

void RefreshScheduler::ReportDrift(size_t database, double summary_distance) {
  FEDSEARCH_CHECK(database < stats_.size())
      << " database " << database << " of " << stats_.size();
  FEDSEARCH_CHECK(summary_distance >= 0.0)
      << " summary distance " << summary_distance << " negative";
  DatabaseStats& s = stats_[database];
  // The observation covers every epoch since the last probe; normalize to
  // a per-epoch rate before folding it into the EWMA.
  const double span = static_cast<double>(std::max<uint64_t>(1, s.age));
  const double observed_rate = summary_distance / span;
  s.rate = s.observed
               ? options_.ewma_alpha * observed_rate +
                     (1.0 - options_.ewma_alpha) * s.rate
               : observed_rate;
  s.observed = true;
  s.age = 0;
}

double RefreshScheduler::drift_rate(size_t database) const {
  FEDSEARCH_CHECK(database < stats_.size())
      << " database " << database << " of " << stats_.size();
  const DatabaseStats& s = stats_[database];
  return s.observed ? s.rate : options_.initial_drift_rate;
}

}  // namespace fedsearch::sampling
