#ifndef FEDSEARCH_SAMPLING_FPS_SAMPLER_H_
#define FEDSEARCH_SAMPLING_FPS_SAMPLER_H_

#include <string>
#include <vector>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/corpus/topic_model.h"
#include "fedsearch/index/search_interface.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/sampling/sample_collector.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/util/retry.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::sampling {

// A topically-focused probe query: the conjunction of `terms` is
// characteristic of `category`. The stand-in for the RIPPER document
// classification rules that drive Focused Probing in [14, 17].
struct ProbeRule {
  corpus::CategoryId category = corpus::kInvalidCategory;
  std::vector<std::string> terms;
};

// Probe rules for every category of a hierarchy.
class ProbeRuleSet {
 public:
  ProbeRuleSet(const corpus::TopicHierarchy* hierarchy,
               std::vector<std::vector<ProbeRule>> rules_by_category);

  // Derives rules from a topic model's characteristic words:
  // `single_word_rules` one-word rules plus `pair_rules` two-word
  // conjunctions per category (the shape of trained classifier rules).
  static ProbeRuleSet FromTopicModel(const corpus::TopicModel& model,
                                     size_t single_word_rules = 4,
                                     size_t pair_rules = 2);

  const corpus::TopicHierarchy& hierarchy() const { return *hierarchy_; }
  const std::vector<ProbeRule>& RulesFor(corpus::CategoryId category) const {
    return rules_[static_cast<size_t>(category)];
  }

 private:
  const corpus::TopicHierarchy* hierarchy_;
  std::vector<std::vector<ProbeRule>> rules_;
};

// Parameters of Focused Probing (Section 5.2; [17]).
struct FpsOptions {
  // Documents retrieved per probe ("the top four previously unseen").
  size_t docs_per_query = 4;
  // A subcategory is explored if its probes generate at least
  // `coverage_threshold` matches in total...
  size_t coverage_threshold = 10;
  // ...and at least this fraction of all matches at its level.
  double specificity_threshold = 0.25;
  SummaryBuildOptions build;
  // Fault tolerance against a remote interface (see QbsOptions::retry).
  util::RetryOptions retry;
};

// Focused Probing: classifier-derived queries walk the topic hierarchy,
// descending into subcategories whose probes generate many matches. The
// output is both an approximate content summary and the database's
// classification (Section 5.2).
class FpsSampler {
 public:
  // `rules` must outlive the sampler.
  FpsSampler(FpsOptions options, const ProbeRuleSet* rules);

  SampleResult Sample(const index::TextDatabase& db, util::Rng& rng) const;

  // Remote variant over an unreliable search interface (see
  // QbsSampler::Sample for the degradation contract). A probe whose query
  // keeps failing contributes zero coverage — the hierarchy walk simply
  // does not descend on evidence it never got.
  SampleResult Sample(index::SearchInterface& db,
                      const text::Analyzer& analyzer, util::Rng& rng) const;

 private:
  // Probes the children of `node`; returns per-child total match counts.
  std::vector<size_t> ProbeChildren(index::SearchInterface& db,
                                    corpus::CategoryId node,
                                    SampleCollector& collector,
                                    util::RetryController& retry,
                                    size_t& queries_sent) const;

  FpsOptions options_;
  const ProbeRuleSet* rules_;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_FPS_SAMPLER_H_
