#ifndef FEDSEARCH_SAMPLING_FREQ_ESTIMATOR_H_
#define FEDSEARCH_SAMPLING_FREQ_ESTIMATOR_H_

#include <cstddef>
#include <vector>

namespace fedsearch::sampling {

// One Mandelbrot-law fit f(r) = beta * r^alpha over rank-frequency data
// (Appendix A's simplified form with c = 0). alpha is negative for real
// frequency distributions.
struct MandelbrotFit {
  double alpha = -1.0;
  double log_beta = 0.0;
  double r_squared = 0.0;

  // Frequency predicted for 1-based rank r.
  double Frequency(double rank) const;
};

// Fits the law by least squares on (log rank, log frequency).
// `frequencies_desc` are the word frequencies sorted in non-increasing
// order; rank i+1 corresponds to frequencies_desc[i]. Zero frequencies are
// ignored. With fewer than two usable points the default fit is returned.
MandelbrotFit FitMandelbrot(const std::vector<double>& frequencies_desc);

// The sample-size scaling model of Appendix A (Equations 4a/4b):
//   alpha(|S|)    = A1 * log(|S|) + A2
//   log beta(|S|) = B1 * log(|S|) + B2
// fitted over per-checkpoint Mandelbrot fits observed at growing sample
// sizes during document sampling.
struct ScalingModel {
  double a1 = 0.0;
  double a2 = -1.0;
  double b1 = 0.0;
  double b2 = 0.0;

  // The fit extrapolated to a collection of `size` documents (Equation 5).
  MandelbrotFit ExtrapolateTo(double size) const;
};

struct Checkpoint {
  size_t sample_size = 0;
  MandelbrotFit fit;
};

// Regresses the scaling model from sampling checkpoints. With a single
// checkpoint the model degenerates to constants (extrapolation returns that
// checkpoint's fit); with none, defaults are returned.
ScalingModel FitScalingModel(const std::vector<Checkpoint>& checkpoints);

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_FREQ_ESTIMATOR_H_
