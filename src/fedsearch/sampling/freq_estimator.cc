#include "fedsearch/sampling/freq_estimator.h"

#include <cmath>

#include "fedsearch/util/check.h"
#include "fedsearch/util/math.h"

namespace fedsearch::sampling {

double MandelbrotFit::Frequency(double rank) const {
  return std::exp(log_beta + alpha * std::log(rank));
}

MandelbrotFit FitMandelbrot(const std::vector<double>& frequencies_desc) {
  std::vector<double> log_ranks;
  std::vector<double> log_freqs;
  log_ranks.reserve(frequencies_desc.size());
  log_freqs.reserve(frequencies_desc.size());
  for (size_t i = 0; i < frequencies_desc.size(); ++i) {
    if (frequencies_desc[i] <= 0.0 || !std::isfinite(frequencies_desc[i])) {
      continue;
    }
    // Rank over the retained entries, not the original index: skipped
    // non-positive frequencies must not leave rank gaps, which would bias
    // the fitted slope whenever zeros are interleaved mid-list.
    log_ranks.push_back(std::log(static_cast<double>(log_ranks.size() + 1)));
    log_freqs.push_back(std::log(frequencies_desc[i]));
  }
  MandelbrotFit fit;
  if (log_ranks.size() < 2) return fit;
  const util::LinearFit line = util::FitLine(log_ranks, log_freqs);
  fit.alpha = line.slope;
  fit.log_beta = line.intercept;
  fit.r_squared = line.r_squared;
  // Finite inputs (positive finite frequencies, log-ranks) through least
  // squares give finite coefficients; a non-finite α here would later turn
  // into a non-finite γ prior exponent.
  FEDSEARCH_DCHECK(std::isfinite(fit.alpha) && std::isfinite(fit.log_beta))
      << " degenerate Mandelbrot fit: alpha " << fit.alpha << " log_beta "
      << fit.log_beta;
  return fit;
}

MandelbrotFit ScalingModel::ExtrapolateTo(double size) const {
  MandelbrotFit fit;
  const double log_size = std::log(std::max(1.0, size));
  fit.alpha = a1 * log_size + a2;
  fit.log_beta = b1 * log_size + b2;
  FEDSEARCH_DCHECK(std::isfinite(fit.alpha) && std::isfinite(fit.log_beta))
      << " scaling-model extrapolation diverged at size " << size;
  return fit;
}

ScalingModel FitScalingModel(const std::vector<Checkpoint>& checkpoints) {
  ScalingModel model;
  std::vector<double> log_sizes;
  std::vector<double> alphas;
  std::vector<double> log_betas;
  for (const Checkpoint& c : checkpoints) {
    if (c.sample_size == 0) continue;
    log_sizes.push_back(std::log(static_cast<double>(c.sample_size)));
    alphas.push_back(c.fit.alpha);
    log_betas.push_back(c.fit.log_beta);
  }
  if (log_sizes.empty()) return model;
  if (log_sizes.size() == 1) {
    model.a2 = alphas[0];
    model.b2 = log_betas[0];
    return model;
  }
  const util::LinearFit alpha_line = util::FitLine(log_sizes, alphas);
  const util::LinearFit beta_line = util::FitLine(log_sizes, log_betas);
  model.a1 = alpha_line.slope;
  model.a2 = alpha_line.intercept;
  model.b1 = beta_line.slope;
  model.b2 = beta_line.intercept;
  return model;
}

}  // namespace fedsearch::sampling
