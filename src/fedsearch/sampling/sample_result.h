#ifndef FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_
#define FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/summary/content_summary.h"

namespace fedsearch::sampling {

// Everything a sampler learns about one database. This is the input to
// shrinkage (Section 3), adaptive selection (Section 4 / Appendix B), and
// the evaluation metrics.
struct SampleResult {
  // Approximate content summary S(D) of Definition 2, with database-scaled
  // df/ctf estimates and num_documents() == estimated |D|.
  summary::ContentSummary summary;

  // Number of documents in the sample, |S|.
  size_t sample_size = 0;

  // Estimated database size |D̂| (sample-resample method [27]).
  double estimated_db_size = 0.0;

  // Raw per-word sample document frequencies s_k (Appendix B needs these
  // alongside |S|).
  std::unordered_map<std::string, size_t> sample_df;

  // Mandelbrot rank-frequency fit extrapolated to the database
  // (Appendix A): df(r) ≈ beta · r^alpha with alpha < 0.
  double mandelbrot_alpha = -1.0;
  double mandelbrot_log_beta = 0.0;

  // Category assigned by the sampler, if it classifies (FPS does; QBS
  // leaves kInvalidCategory and relies on an external directory).
  corpus::CategoryId classification = corpus::kInvalidCategory;

  // Cost accounting: queries issued against the database's interface.
  size_t queries_sent = 0;

  // Analyzed term vectors of the sampled documents, retained only when
  // SummaryBuildOptions::keep_documents is set (needed by sample-document
  // based selection such as ReDDE [27]).
  std::vector<std::vector<std::string>> sampled_documents;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_
