#ifndef FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_
#define FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_

#include <cstddef>
#include <string>
#include <unordered_map>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/summary/content_summary.h"

namespace fedsearch::sampling {

// How a sampling run against a remote database ended.
enum class SamplingOutcome {
  // The run finished on its own terms (target reached or vocabulary dry).
  kComplete,
  // The run hit remote faults — lost documents, abandoned queries, or an
  // exhausted failure budget — but still collected a usable sample.
  kPartial,
  // The run saw remote faults and ended without a single retrieved
  // document (the failure budget — or the query pool — ran dry against a
  // failing interface).
  kAborted,
};

// Fault accounting for one sampling run, filled in by SampleCollector from
// the run's RetryController. This is the sampler-side half of the
// degradation story: a partial sample is finalized and *flagged* rather
// than discarded, and the metasearcher decides how much to trust it.
struct SamplingHealth {
  SamplingOutcome outcome = SamplingOutcome::kComplete;
  // Failed attempts absorbed by retries across the run.
  size_t transient_failures = 0;
  // Calls abandoned after exhausting their per-call attempts.
  size_t queries_abandoned = 0;
  // Result documents whose download never succeeded.
  size_t documents_lost = 0;
  // Backoff the retry policy would have slept (no real clock here).
  double simulated_backoff_ms = 0.0;
  // The per-run failure budget ran dry and sampling stopped early.
  bool budget_exhausted = false;
};

// Everything a sampler learns about one database. This is the input to
// shrinkage (Section 3), adaptive selection (Section 4 / Appendix B), and
// the evaluation metrics.
struct SampleResult {
  // Approximate content summary S(D) of Definition 2, with database-scaled
  // df/ctf estimates and num_documents() == estimated |D|.
  summary::ContentSummary summary;

  // Number of documents in the sample, |S|.
  size_t sample_size = 0;

  // Estimated database size |D̂| (sample-resample method [27]).
  double estimated_db_size = 0.0;

  // Raw per-word sample document frequencies s_k (Appendix B needs these
  // alongside |S|).
  std::unordered_map<std::string, size_t> sample_df;

  // Mandelbrot rank-frequency fit extrapolated to the database
  // (Appendix A): df(r) ≈ beta · r^alpha with alpha < 0.
  double mandelbrot_alpha = -1.0;
  double mandelbrot_log_beta = 0.0;

  // Category assigned by the sampler, if it classifies (FPS does; QBS
  // leaves kInvalidCategory and relies on an external directory).
  corpus::CategoryId classification = corpus::kInvalidCategory;

  // Cost accounting: queries issued against the database's interface.
  size_t queries_sent = 0;

  // Fault accounting: how the run interacted with an unreliable interface.
  SamplingHealth health;

  // Analyzed term vectors of the sampled documents, retained only when
  // SummaryBuildOptions::keep_documents is set (needed by sample-document
  // based selection such as ReDDE [27]).
  std::vector<std::vector<std::string>> sampled_documents;
};

}  // namespace fedsearch::sampling

#endif  // FEDSEARCH_SAMPLING_SAMPLE_RESULT_H_
