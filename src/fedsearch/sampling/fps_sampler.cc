#include "fedsearch/sampling/fps_sampler.h"

#include <algorithm>
#include <utility>

#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::sampling {

ProbeRuleSet::ProbeRuleSet(const corpus::TopicHierarchy* hierarchy,
                           std::vector<std::vector<ProbeRule>> rules_by_category)
    : hierarchy_(hierarchy), rules_(std::move(rules_by_category)) {
  rules_.resize(hierarchy_->size());
}

ProbeRuleSet ProbeRuleSet::FromTopicModel(const corpus::TopicModel& model,
                                          size_t single_word_rules,
                                          size_t pair_rules) {
  const corpus::TopicHierarchy& h = model.hierarchy();
  std::vector<std::vector<ProbeRule>> rules(h.size());
  for (corpus::CategoryId c = 0; c < static_cast<corpus::CategoryId>(h.size());
       ++c) {
    const std::vector<std::string> words =
        model.CharacteristicWords(c, single_word_rules + 2 * pair_rules);
    std::vector<ProbeRule>& out = rules[static_cast<size_t>(c)];
    size_t i = 0;
    for (; i < single_word_rules && i < words.size(); ++i) {
      out.push_back(ProbeRule{c, {words[i]}});
    }
    for (size_t p = 0; p < pair_rules && i + 1 < words.size(); ++p, i += 2) {
      out.push_back(ProbeRule{c, {words[i], words[i + 1]}});
    }
  }
  return ProbeRuleSet(&h, std::move(rules));
}

FpsSampler::FpsSampler(FpsOptions options, const ProbeRuleSet* rules)
    : options_(options), rules_(rules) {}

std::vector<size_t> FpsSampler::ProbeChildren(index::SearchInterface& db,
                                              corpus::CategoryId node,
                                              SampleCollector& collector,
                                              util::RetryController& retry,
                                              size_t& queries_sent) const {
  const corpus::TopicHierarchy& h = rules_->hierarchy();
  const std::vector<corpus::CategoryId>& children = h.node(node).children;
  std::vector<size_t> coverage(children.size(), 0);
  for (size_t i = 0; i < children.size(); ++i) {
    for (const ProbeRule& rule : rules_->RulesFor(children[i])) {
      if (retry.exhausted()) return coverage;
      std::string query;
      for (const std::string& t : rule.terms) {
        if (!query.empty()) query.push_back(' ');
        query += t;
      }
      const util::StatusOr<index::QueryResult> result = retry.Run([&] {
        return db.Search(query, options_.docs_per_query, &collector.seen());
      });
      ++queries_sent;
      if (!result.ok()) continue;  // probe lost: no coverage evidence
      coverage[i] += result.value().num_matches;
      collector.AddDocuments(result.value().docs);
    }
  }
  return coverage;
}

SampleResult FpsSampler::Sample(const index::TextDatabase& db,
                                util::Rng& rng) const {
  index::LocalDatabase local(&db);
  return Sample(local, db.analyzer(), rng);
}

SampleResult FpsSampler::Sample(index::SearchInterface& db,
                                const text::Analyzer& analyzer,
                                util::Rng& rng) const {
  static util::Counter& runs =
      util::GlobalMetrics().counter("sampling.fps_runs");
  static util::Histogram& run_ns =
      util::GlobalMetrics().histogram("sampling.fps_run_ns");
  FEDSEARCH_TRACE_SPAN("fps_sample");
  util::ScopedTimer run_timer(run_ns);
  runs.Add();
  const corpus::TopicHierarchy& h = rules_->hierarchy();
  util::RetryController retry(options_.retry);
  SampleCollector collector(&db, &analyzer, &options_.build, &retry);
  size_t queries_sent = 0;

  // Walk the hierarchy, probing the children of every qualified node.
  // `classification` tracks the deepest node along the best-coverage path.
  corpus::CategoryId classification = h.root();
  std::vector<std::pair<corpus::CategoryId, bool>> frontier = {
      {h.root(), /*on_best_path=*/true}};
  while (!frontier.empty() && !retry.exhausted()) {
    const auto [node, on_best_path] = frontier.back();
    frontier.pop_back();
    const std::vector<corpus::CategoryId>& children = h.node(node).children;
    if (children.empty()) continue;

    const std::vector<size_t> coverage =
        ProbeChildren(db, node, collector, retry, queries_sent);
    size_t total = 0;
    for (size_t c : coverage) total += c;
    if (total == 0) continue;

    const size_t best =
        static_cast<size_t>(std::max_element(coverage.begin(), coverage.end()) -
                            coverage.begin());
    for (size_t i = 0; i < children.size(); ++i) {
      const double specificity =
          static_cast<double>(coverage[i]) / static_cast<double>(total);
      if (coverage[i] >= options_.coverage_threshold &&
          specificity >= options_.specificity_threshold) {
        const bool child_on_best_path = on_best_path && i == best;
        if (child_on_best_path) classification = children[i];
        frontier.push_back({children[i], child_on_best_path});
      }
    }
  }

  SampleResult result = collector.Finalize(queries_sent, rng);
  result.classification = classification;
  return result;
}

}  // namespace fedsearch::sampling
