#ifndef FEDSEARCH_CORPUS_WORD_FACTORY_H_
#define FEDSEARCH_CORPUS_WORD_FACTORY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "fedsearch/util/rng.h"

namespace fedsearch::corpus {

// Generates globally-unique synthetic vocabulary words. Words are
// pronounceable-ish consonant/vowel alternations of 4-10 letters, so they
// behave like natural-language tokens under tokenization and stemming.
//
// Uniqueness is guaranteed across all calls on one factory instance, which
// is what makes category-specific vocabularies disjoint by construction.
class WordFactory {
 public:
  WordFactory() = default;

  // Generates one fresh word.
  std::string MakeWord(util::Rng& rng);

  // Generates `n` fresh words.
  std::vector<std::string> MakeWords(size_t n, util::Rng& rng);

  // Registers externally-supplied (curated) words so later generated words
  // cannot collide with them. Returns only those not already in use, i.e.
  // the ones the caller may safely claim.
  std::vector<std::string> Claim(const std::vector<std::string>& words);

  size_t words_issued() const { return used_.size(); }

 private:
  std::unordered_set<std::string> used_;
};

}  // namespace fedsearch::corpus

#endif  // FEDSEARCH_CORPUS_WORD_FACTORY_H_
