#ifndef FEDSEARCH_CORPUS_CHURN_H_
#define FEDSEARCH_CORPUS_CHURN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fedsearch/corpus/testbed.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::corpus {

// How fast one database's content drifts under churn.
enum class DriftClass {
  kStatic,  // never changes — its epoch-0 summary stays exact
  kSlow,    // replaces a small document fraction per epoch, same topic mix
  kFast,    // replaces a large fraction AND migrates toward another topic
};

struct ChurnOptions {
  // Seeds the drift-class assignment, the migration targets, and (mixed
  // with epoch and database index) every per-epoch replacement draw, so a
  // churn run is a pure function of (testbed, options).
  uint64_t seed = 0xC0D1CE5ULL;

  // Partition of the federation by drift class; fractions of the database
  // count (static + fast <= 1, the remainder is slow).
  double static_fraction = 0.4;
  double fast_fraction = 0.2;

  // Fraction of a database's documents replaced per epoch, by class.
  double slow_drift = 0.05;
  double fast_drift = 0.25;

  // For fast databases: probability that a replacement document is drawn
  // from the database's migration-target topic (a sibling leaf fixed at
  // construction) instead of its own — the topic mix drifts toward the
  // target while the directory still lists the original category.
  double migrate_fraction = 0.7;
};

// Deterministic live-corpus churn over a frozen Testbed.
//
// The testbed supplies the epoch-0 state (databases, topics, retained
// document texts — TestbedOptions::keep_documents must be set) and the
// generative model; AdvanceEpoch() then replaces a per-class fraction of
// each non-static database's documents with freshly generated ones,
// keeping every database's size constant. Every replacement draw comes
// from a per-(seed, epoch, database) util::Rng, so epoch E's corpus is a
// pure function of the inputs — independent of call interleaving, thread
// count, or how often accessors run — which is what lets churn benches
// assert bit-identical reruns.
//
// Replacement documents are generated without a database-private
// vocabulary (the model's MakeDatabaseVocabulary mutates global word
// state, which regeneration must not): new documents carry only shared
// topic vocabulary, a mild additional drift away from the epoch-0 sample
// that affects every churned database equally.
class ChurnTestbed {
 public:
  // `bed` must outlive this object and have been built with
  // keep_documents = true.
  ChurnTestbed(const Testbed* bed, ChurnOptions options = {});

  ChurnTestbed(const ChurnTestbed&) = delete;
  ChurnTestbed& operator=(const ChurnTestbed&) = delete;

  const Testbed& testbed() const { return *bed_; }
  const ChurnOptions& options() const { return options_; }
  size_t num_databases() const { return doc_texts_.size(); }
  uint64_t epoch() const { return epoch_; }

  DriftClass drift_class(size_t i) const { return drift_classes_[i]; }
  // The topic fast database i migrates toward (its own category for
  // non-fast databases).
  CategoryId migration_target(size_t i) const { return migration_targets_[i]; }

  // Advances the corpus one epoch: every slow/fast database replaces its
  // class's document fraction. Returns the databases that changed, in
  // index order.
  std::vector<size_t> AdvanceEpoch();

  // Database i's content at the current epoch. Unchanged databases alias
  // the testbed's original index; changed ones are rebuilt lazily on
  // first access after a change.
  const index::TextDatabase& live_database(size_t i) const;

  // The generating topic of each current document of database i.
  const std::vector<CategoryId>& doc_topics_of(size_t i) const {
    return doc_topics_[i];
  }

  // r(q, D) against the CURRENT corpus for testbed query `query_index`
  // (cached per epoch). The ground truth a churn bench scores R_k with —
  // it moves as documents churn, while stale summaries still describe the
  // epoch the database was last probed at.
  size_t CountRelevant(size_t query_index, size_t db_index) const;

 private:
  // Returns true when at least one document was replaced.
  bool ReplaceDocuments(size_t db, double drift_fraction, util::Rng& rng);

  const Testbed* bed_;
  ChurnOptions options_;
  uint64_t epoch_ = 0;
  std::vector<DriftClass> drift_classes_;
  std::vector<CategoryId> migration_targets_;
  // Current corpus state, seeded from the testbed's retained documents.
  std::vector<std::vector<std::string>> doc_texts_;
  std::vector<std::vector<CategoryId>> doc_topics_;
  // Databases that diverged from epoch 0 (their live_database is rebuilt
  // from doc_texts_ rather than aliased from the testbed), and the lazily
  // rebuilt indexes. rebuilt_[i] is dropped on every change to i.
  std::vector<bool> diverged_;
  mutable std::vector<std::unique_ptr<index::TextDatabase>> rebuilt_;
  // (epoch, query, db) -> relevant count.
  mutable std::unordered_map<uint64_t, size_t> relevance_cache_;
};

}  // namespace fedsearch::corpus

#endif  // FEDSEARCH_CORPUS_CHURN_H_
