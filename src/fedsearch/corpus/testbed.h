#ifndef FEDSEARCH_CORPUS_TESTBED_H_
#define FEDSEARCH_CORPUS_TESTBED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/corpus/topic_model.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/text/analyzer.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::corpus {

// One evaluation query with its provenance (needed for relevance
// judgments).
struct TestQuery {
  std::string text;                // raw query text, space separated
  CategoryId topic = 0;            // leaf topic the query was drawn about
  std::vector<std::string> words;  // raw query words
};

// Parameters for building a testbed. Defaults describe the TREC4-like set;
// the named builders below adjust them per data set.
struct TestbedOptions {
  uint64_t seed = 20040613;

  // Database layout. With web_layout == false, `num_databases` databases are
  // assigned round-robin over a shuffled list of leaf categories (the
  // moral equivalent of the paper's K-means-clustered single-topic TREC
  // databases). With web_layout == true, `databases_per_leaf` databases are
  // created for every leaf and the remainder up to `num_databases` get
  // random leaf topics (the paper's Web set: top-5 sites per leaf category
  // plus arbitrary extra sites).
  bool web_layout = false;
  size_t num_databases = 100;
  size_t databases_per_leaf = 5;

  // Database sizes are log-uniform in [min_db_docs, max_db_docs].
  size_t min_db_docs = 300;
  size_t max_db_docs = 3000;

  // Fraction of documents drawn from a sibling leaf instead of the
  // database's own topic (keeps databases "roughly" single-topic, as the
  // paper says of the clustered TREC sets, while spreading each topic's
  // relevant documents over many databases).
  double offtopic_fraction = 0.15;

  // Query workload.
  size_t num_queries = 50;
  size_t min_query_words = 8;   // TREC-4 queries: 8-34 words
  size_t max_query_words = 26;
  // Fraction of queries drawn about an *internal* category (the parent of
  // a populated leaf) instead of a single leaf. Such queries "cut across"
  // sibling categories — the scenario in which Section 6.2 explains the
  // hierarchical baseline loses to flat shrinkage-based selection.
  double internal_query_fraction = 0.3;

  // Fraction of databases whose *directory* category (what a metasearcher
  // would read off the directory or an automatic classifier) is a sibling
  // of the true one. The paper's own TREC classification had such errors
  // (Section 5.2: all-14/21/44 misfiled together); this is what makes
  // indiscriminate (universal) shrinkage risky.
  double misclassified_fraction = 0.08;
  // A document is relevant to a query if it was generated from the query's
  // topic AND contains at least min(relevance_min_terms, #query terms)
  // distinct analyzed query terms.
  size_t relevance_min_terms = 2;

  // Retain every generated document's raw text (documents_of accessor).
  // Off by default — the text roughly doubles the testbed's memory — and
  // needed by churn scenarios, which rebuild databases from a mix of
  // retained and freshly generated documents. Does not consume or reorder
  // any RNG draws, so a testbed is bit-identical with the flag on or off.
  bool keep_documents = false;

  TopicModelOptions model;
  text::AnalyzerOptions analyzer;
};

// A complete evaluation environment: topic hierarchy, generative model,
// databases with known category labels, queries, and relevance judgments.
// This is the substitute for the TREC4 / TREC6 / Web data sets of
// Section 5.1 (see DESIGN.md).
class Testbed {
 public:
  explicit Testbed(const TestbedOptions& options);

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;
  Testbed(Testbed&&) = default;
  Testbed& operator=(Testbed&&) = default;

  // Named configurations mirroring the paper's three data sets, with sizes
  // scaled by `scale` in (0, 1] to trade fidelity for runtime. scale == 1
  // approximates the paper's magnitudes.
  static TestbedOptions Trec4Options(double scale = 1.0);
  static TestbedOptions Trec6Options(double scale = 1.0);
  static TestbedOptions WebOptions(double scale = 1.0);

  const TopicHierarchy& hierarchy() const { return *hierarchy_; }
  const TopicModel& model() const { return *model_; }
  const text::Analyzer& analyzer() const { return *analyzer_; }
  const TestbedOptions& options() const { return options_; }

  size_t num_databases() const { return databases_.size(); }
  const index::TextDatabase& database(size_t i) const {
    return *databases_[i];
  }
  // The true (topical) category of database i.
  CategoryId category_of(size_t i) const { return categories_[i]; }
  // The category an external directory reports for database i: equal to
  // category_of for most databases, a sibling for the misclassified
  // fraction. Metasearchers consume this one.
  CategoryId directory_category_of(size_t i) const {
    return directory_categories_[i];
  }
  // The generating topic of each document of database i.
  const std::vector<CategoryId>& doc_topics_of(size_t i) const {
    return doc_topics_[i];
  }
  // The raw text of each document of database i, parallel to
  // doc_topics_of(i). Empty unless options.keep_documents was set.
  const std::vector<std::string>& documents_of(size_t i) const {
    return doc_texts_[i];
  }

  const std::vector<TestQuery>& queries() const { return queries_; }

  // r(q, D): number of documents in database `db_index` relevant to query
  // `query_index` (cached after first computation).
  size_t CountRelevant(size_t query_index, size_t db_index) const;

  uint64_t total_documents() const { return total_documents_; }

 private:
  // Picks an off-topic leaf "near" `leaf` (a sibling when possible).
  CategoryId PickOfftopicLeaf(CategoryId leaf, util::Rng& rng) const;

  TestbedOptions options_;
  std::unique_ptr<TopicHierarchy> hierarchy_;
  std::unique_ptr<TopicModel> model_;
  std::unique_ptr<text::Analyzer> analyzer_;
  std::vector<std::unique_ptr<index::TextDatabase>> databases_;
  std::vector<CategoryId> categories_;
  std::vector<CategoryId> directory_categories_;
  std::vector<std::vector<CategoryId>> doc_topics_;
  std::vector<std::vector<std::string>> doc_texts_;
  std::vector<TestQuery> queries_;
  uint64_t total_documents_ = 0;
  mutable std::unordered_map<uint64_t, size_t> relevance_cache_;
};

}  // namespace fedsearch::corpus

#endif  // FEDSEARCH_CORPUS_TESTBED_H_
