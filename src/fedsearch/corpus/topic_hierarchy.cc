#include "fedsearch/corpus/topic_hierarchy.h"

#include <algorithm>
#include <utility>

namespace fedsearch::corpus {

TopicHierarchy::TopicHierarchy(std::string root_name) {
  Node root;
  root.id = 0;
  root.name = std::move(root_name);
  nodes_.push_back(std::move(root));
}

CategoryId TopicHierarchy::AddCategory(std::string_view name,
                                       CategoryId parent) {
  Node n;
  n.id = static_cast<CategoryId>(nodes_.size());
  n.name = std::string(name);
  n.parent = parent;
  n.depth = node(parent).depth + 1;
  max_depth_ = std::max(max_depth_, n.depth);
  nodes_[static_cast<size_t>(parent)].children.push_back(n.id);
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

std::vector<CategoryId> TopicHierarchy::Leaves() const {
  std::vector<CategoryId> out;
  for (const Node& n : nodes_) {
    if (n.children.empty()) out.push_back(n.id);
  }
  return out;
}

std::vector<CategoryId> TopicHierarchy::PathFromRoot(CategoryId id) const {
  std::vector<CategoryId> path;
  for (CategoryId cur = id; cur != kInvalidCategory; cur = node(cur).parent) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<CategoryId> TopicHierarchy::Subtree(CategoryId id) const {
  std::vector<CategoryId> out;
  std::vector<CategoryId> stack = {id};
  while (!stack.empty()) {
    const CategoryId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (CategoryId c : node(cur).children) stack.push_back(c);
  }
  return out;
}

CategoryId TopicHierarchy::FindByPath(std::string_view slash_path) const {
  size_t pos = 0;
  auto next_segment = [&]() -> std::string_view {
    if (pos >= slash_path.size()) return {};
    const size_t slash = slash_path.find('/', pos);
    std::string_view seg =
        slash == std::string_view::npos
            ? slash_path.substr(pos)
            : slash_path.substr(pos, slash - pos);
    pos = slash == std::string_view::npos ? slash_path.size() : slash + 1;
    return seg;
  };

  std::string_view seg = next_segment();
  if (seg != node(0).name) return kInvalidCategory;
  CategoryId cur = 0;
  while (pos < slash_path.size()) {
    seg = next_segment();
    CategoryId found = kInvalidCategory;
    for (CategoryId c : node(cur).children) {
      if (node(c).name == seg) {
        found = c;
        break;
      }
    }
    if (found == kInvalidCategory) return kInvalidCategory;
    cur = found;
  }
  return cur;
}

std::string TopicHierarchy::PathString(CategoryId id) const {
  std::string out;
  for (CategoryId c : PathFromRoot(id)) {
    if (!out.empty()) out += " -> ";
    out += node(c).name;
  }
  return out;
}

TopicHierarchy TopicHierarchy::BuildDefault() {
  TopicHierarchy h;
  struct Spec {
    const char* l1;
    // Each entry: level-2 name followed by its (possibly empty) leaf
    // children.
    std::vector<std::pair<const char*, std::vector<const char*>>> l2;
  };
  const std::vector<Spec> specs = {
      {"Arts",
       {{"Literature", {"Texts", "Poetry", "Drama"}},
        {"Music", {}},
        {"Movies", {}},
        {"Photography", {}},
        {"Dance", {}}}},
      {"Business",
       {{"Finance", {"Banking", "Investing"}},
        {"Jobs", {}},
        {"Marketing", {}},
        {"RealEstate", {}}}},
      {"Computers",
       {{"Programming", {"Java", "Cpp", "Perl"}},
        {"Internet", {}},
        {"Hardware", {}},
        {"Security", {}},
        {"Multimedia", {}}}},
      {"Health",
       {{"Diseases", {"Aids", "Cancer", "Diabetes", "Heart"}},
        {"Medicine", {"Pharmacy", "Surgery"}},
        {"Fitness", {}},
        {"Nutrition", {}},
        {"MentalHealth", {}}}},
      {"Recreation",
       {{"Outdoors", {"Camping", "Fishing"}},
        {"Travel", {}},
        {"Autos", {}},
        {"Pets", {}},
        {"Boating", {}}}},
      {"Science",
       {{"Biology", {"Genetics", "Ecology"}},
        {"Physics", {"Astronomy", "Mechanics"}},
        {"SocialSciences", {"Economics", "History", "Psychology"}},
        {"Chemistry", {}},
        {"Mathematics", {}},
        {"Geology", {}}}},
      {"Society",
       {{"Politics", {}},
        {"Law", {}},
        {"Religion", {}},
        {"Philosophy", {}},
        {"Military", {}}}},
      {"Sports",
       {{"Soccer", {}},
        {"Basketball", {}},
        {"Baseball", {}},
        {"Golf", {}},
        {"Tennis", {}}}},
  };
  for (const Spec& spec : specs) {
    const CategoryId l1 = h.AddCategory(spec.l1, h.root());
    for (const auto& [l2_name, leaves] : spec.l2) {
      const CategoryId l2 = h.AddCategory(l2_name, l1);
      for (const char* leaf : leaves) h.AddCategory(leaf, l2);
    }
  }
  return h;
}

}  // namespace fedsearch::corpus
