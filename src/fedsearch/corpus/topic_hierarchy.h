#ifndef FEDSEARCH_CORPUS_TOPIC_HIERARCHY_H_
#define FEDSEARCH_CORPUS_TOPIC_HIERARCHY_H_

#include <string>
#include <string_view>
#include <vector>

namespace fedsearch::corpus {

// Identifier of a category node (dense, root == 0).
using CategoryId = int;

inline constexpr CategoryId kInvalidCategory = -1;

// A rooted topic hierarchy in the style of the Open Directory subset used by
// the paper (72 nodes organized in 4 levels, 54 leaf categories).
// Shrinkage (Section 3) and hierarchical selection [17] both operate on this
// structure.
class TopicHierarchy {
 public:
  struct Node {
    CategoryId id = 0;
    std::string name;
    CategoryId parent = kInvalidCategory;
    std::vector<CategoryId> children;
    int depth = 0;  // root is 0
  };

  // Creates a hierarchy containing only the root category.
  explicit TopicHierarchy(std::string root_name = "Root");

  // Adds a category under `parent` and returns its id.
  CategoryId AddCategory(std::string_view name, CategoryId parent);

  // The 72-node / 4-level / 54-leaf default hierarchy modeled on the Open
  // Directory subset of QProber [14] (the scheme of Section 5.1).
  static TopicHierarchy BuildDefault();

  CategoryId root() const { return 0; }
  size_t size() const { return nodes_.size(); }
  const Node& node(CategoryId id) const { return nodes_[static_cast<size_t>(id)]; }
  bool IsLeaf(CategoryId id) const { return node(id).children.empty(); }
  int max_depth() const { return max_depth_; }

  // All leaf categories, in id order.
  std::vector<CategoryId> Leaves() const;

  // Path from the root (inclusive) to `id` (inclusive); Definition 4's
  // C1, ..., Cm followed by the database level.
  std::vector<CategoryId> PathFromRoot(CategoryId id) const;

  // Category ids of the whole subtree rooted at `id` (including `id`).
  std::vector<CategoryId> Subtree(CategoryId id) const;

  // Looks up a category by a "Root/A/B" style path; returns
  // kInvalidCategory if absent.
  CategoryId FindByPath(std::string_view slash_path) const;

  // Human-readable "Root -> A -> B" path string.
  std::string PathString(CategoryId id) const;

 private:
  std::vector<Node> nodes_;
  int max_depth_ = 0;
};

}  // namespace fedsearch::corpus

#endif  // FEDSEARCH_CORPUS_TOPIC_HIERARCHY_H_
