#include "fedsearch/corpus/topic_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fedsearch::corpus {
namespace {

// Function words injected into generated documents (a compact subset of the
// analyzer's stopword list, so the analyzer removes them again — exercising
// the full text pipeline).
const char* const kFunctionWords[] = {
    "the", "of",   "and", "a",    "in",   "to",   "is",   "was", "it",
    "for", "on",   "are", "as",   "with", "they", "at",   "be",  "this",
    "have", "from", "or",  "had",  "by",   "but",  "some", "what",
};
constexpr size_t kNumFunctionWords =
    sizeof(kFunctionWords) / sizeof(kFunctionWords[0]);

// Mixture over path levels for documents, by topic depth. Deeper topics
// devote more mass to their specific vocabulary but always keep a large
// general (root) component, mirroring real text.
const std::vector<double>& DocMixtureForDepth(int depth) {
  static const std::vector<double> kByDepth[4] = {
      {1.0},
      {0.55, 0.45},
      {0.45, 0.20, 0.35},
      {0.40, 0.12, 0.18, 0.30},
  };
  return kByDepth[std::min(depth, 3)];
}

// Mixture over path levels for queries: biased to the specific end, since
// users querying about a topic use its characteristic words.
const std::vector<double>& QueryMixtureForDepth(int depth) {
  static const std::vector<double> kByDepth[4] = {
      {1.0},
      {0.30, 0.70},
      {0.20, 0.30, 0.50},
      {0.12, 0.18, 0.25, 0.45},
  };
  return kByDepth[std::min(depth, 3)];
}

}  // namespace

const std::vector<std::pair<std::string, std::vector<std::string>>>&
CuratedSeedWords() {
  static const auto* kSeeds = new std::vector<
      std::pair<std::string, std::vector<std::string>>>{
      {"Root", {"information", "system", "report", "world", "year"}},
      {"Root/Health", {"medicine", "blood", "patient", "clinical", "hospital"}},
      {"Root/Health/Diseases", {"disease", "syndrome", "infection", "symptom"}},
      {"Root/Health/Diseases/Aids", {"aids", "hiv", "retrovirus", "hemophilia"}},
      {"Root/Health/Diseases/Heart",
       {"heart", "hypertension", "cardiac", "artery", "cholesterol"}},
      {"Root/Health/Diseases/Cancer", {"cancer", "tumor", "oncology", "chemotherapy"}},
      {"Root/Health/Diseases/Diabetes", {"diabetes", "insulin", "glucose"}},
      {"Root/Computers", {"computer", "software", "data", "network"}},
      {"Root/Computers/Programming", {"programming", "code", "compiler", "algorithm"}},
      {"Root/Computers/Programming/Java", {"java", "applet", "bytecode", "jvm"}},
      {"Root/Science", {"science", "research", "theory", "experiment"}},
      {"Root/Science/Mathematics", {"mathematics", "theorem", "algebra", "geometry"}},
      {"Root/Science/SocialSciences", {"society", "culture", "study"}},
      {"Root/Science/SocialSciences/Economics",
       {"economics", "market", "inflation", "trade", "monetary"}},
      {"Root/Sports", {"sports", "team", "player", "game", "season"}},
      {"Root/Sports/Soccer", {"soccer", "goal", "league", "striker"}},
      {"Root/Arts", {"arts", "artist", "style", "gallery"}},
      {"Root/Arts/Literature", {"literature", "author", "novel", "prose"}},
      {"Root/Arts/Literature/Texts", {"text", "edition", "manuscript", "anthology"}},
  };
  return *kSeeds;
}

TopicModel::TopicModel(const TopicHierarchy* hierarchy,
                       TopicModelOptions options, util::Rng& rng)
    : hierarchy_(hierarchy), options_(options) {
  const size_t n = hierarchy_->size();
  node_words_.resize(n);

  // Plant curated seeds first so they land at the top Zipf ranks.
  for (const auto& [path, words] : CuratedSeedWords()) {
    const CategoryId id = hierarchy_->FindByPath(path);
    if (id == kInvalidCategory) continue;
    node_words_[static_cast<size_t>(id)] = factory_.Claim(words);
  }

  node_samplers_.reserve(n);
  query_samplers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int depth = hierarchy_->node(static_cast<CategoryId>(i)).depth;
    const size_t target =
        options_.vocab_size_by_depth[std::min(depth, 3)];
    std::vector<std::string>& words = node_words_[i];
    while (words.size() < target) words.push_back(factory_.MakeWord(rng));
    node_samplers_.emplace_back(
        ZipfWeights(words.size(), options_.zipf_exponent));
    query_samplers_.emplace_back(
        ZipfWeights(words.size(), options_.query_zipf_exponent));
  }
}

std::vector<double> TopicModel::ZipfWeights(size_t n, double exponent) const {
  // Mandelbrot rank-frequency weights, most frequent first.
  std::vector<double> weights;
  weights.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    weights.push_back(
        1.0 /
        std::pow(static_cast<double>(r + 1) + options_.zipf_shift, exponent));
  }
  return weights;
}

DatabaseVocabulary TopicModel::MakeDatabaseVocabulary(util::Rng& rng) {
  DatabaseVocabulary v;
  v.words = factory_.MakeWords(options_.database_vocab_size, rng);
  v.sampler = util::DiscreteSampler(
      ZipfWeights(v.words.size(), options_.zipf_exponent));
  v.weight = options_.database_vocab_weight;
  return v;
}

std::vector<double> TopicModel::DocumentLevelMixture(CategoryId topic) const {
  return DocMixtureForDepth(hierarchy_->node(topic).depth);
}

const std::string& TopicModel::SampleNodeWord(CategoryId node,
                                              util::Rng& rng) const {
  const size_t i = node_samplers_[static_cast<size_t>(node)].Sample(rng);
  return node_words_[static_cast<size_t>(node)][i];
}

const std::string& TopicModel::SampleTopicWord(CategoryId topic,
                                               util::Rng& rng) const {
  const std::vector<CategoryId> path = hierarchy_->PathFromRoot(topic);
  const std::vector<double>& mix = DocMixtureForDepth(
      hierarchy_->node(topic).depth);
  const size_t level = rng.NextDiscrete(mix);
  return SampleNodeWord(path[std::min(level, path.size() - 1)], rng);
}

std::string TopicModel::GenerateDocumentText(
    CategoryId topic, util::Rng& rng,
    const DatabaseVocabulary* db_vocab) const {
  const double log_len = std::log(options_.doc_length_mean) +
                         options_.doc_length_sigma * rng.NextGaussian();
  size_t len = static_cast<size_t>(std::lround(std::exp(log_len)));
  len = std::clamp(len, options_.min_doc_tokens, options_.max_doc_tokens);

  const std::vector<CategoryId> path = hierarchy_->PathFromRoot(topic);
  const std::vector<double>& mix =
      DocMixtureForDepth(hierarchy_->node(topic).depth);

  std::string text;
  text.reserve(len * 8);
  for (size_t i = 0; i < len; ++i) {
    if (!text.empty()) text.push_back(' ');
    if (rng.NextBernoulli(options_.stopword_rate)) {
      text += kFunctionWords[rng.NextBounded(kNumFunctionWords)];
    } else if (db_vocab != nullptr && !db_vocab->words.empty() &&
               rng.NextBernoulli(db_vocab->weight)) {
      text += db_vocab->words[db_vocab->sampler.Sample(rng)];
    } else {
      const size_t level = rng.NextDiscrete(mix);
      text += SampleNodeWord(path[std::min(level, path.size() - 1)], rng);
    }
  }
  return text;
}

std::vector<std::string> TopicModel::GenerateQueryTerms(
    CategoryId topic, size_t num_words, util::Rng& rng) const {
  const std::vector<CategoryId> path = hierarchy_->PathFromRoot(topic);
  const std::vector<double>& mix =
      QueryMixtureForDepth(hierarchy_->node(topic).depth);
  std::vector<std::string> terms;
  std::unordered_set<std::string> seen;
  size_t attempts = 0;
  while (terms.size() < num_words && attempts < num_words * 50) {
    ++attempts;
    const size_t level = rng.NextDiscrete(mix);
    const CategoryId node = path[std::min(level, path.size() - 1)];
    const std::string& w =
        node_words_[static_cast<size_t>(node)]
                   [query_samplers_[static_cast<size_t>(node)].Sample(rng)];
    if (seen.insert(w).second) terms.push_back(w);
  }
  return terms;
}

std::vector<std::string> TopicModel::CharacteristicWords(CategoryId node,
                                                         size_t n) const {
  const std::vector<std::string>& words =
      node_words_[static_cast<size_t>(node)];
  const size_t k = std::min(n, words.size());
  return {words.begin(), words.begin() + static_cast<long>(k)};
}

std::vector<std::string> BuildSamplerDictionary(const TopicModel& model,
                                                size_t per_node,
                                                uint64_t seed) {
  const TopicHierarchy& h = model.hierarchy();
  std::vector<std::string> dictionary;
  for (CategoryId c = 0; c < static_cast<CategoryId>(h.size()); ++c) {
    for (std::string& w : model.CharacteristicWords(c, per_node)) {
      dictionary.push_back(std::move(w));
    }
  }
  util::Rng rng(seed);
  rng.Shuffle(dictionary);
  return dictionary;
}

}  // namespace fedsearch::corpus
