#include "fedsearch/corpus/word_factory.h"

namespace fedsearch::corpus {
namespace {

constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
constexpr char kVowels[] = "aeiou";

}  // namespace

std::string WordFactory::MakeWord(util::Rng& rng) {
  while (true) {
    // 2-5 consonant-vowel syllables, occasionally with a trailing consonant.
    const int syllables = static_cast<int>(rng.NextInt(2, 5));
    std::string w;
    w.reserve(static_cast<size_t>(2 * syllables + 1));
    for (int i = 0; i < syllables; ++i) {
      w.push_back(kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)]);
      w.push_back(kVowels[rng.NextBounded(sizeof(kVowels) - 1)]);
    }
    if (rng.NextBernoulli(0.3)) {
      w.push_back(kConsonants[rng.NextBounded(sizeof(kConsonants) - 1)]);
    }
    if (used_.insert(w).second) return w;
  }
}

std::vector<std::string> WordFactory::MakeWords(size_t n, util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(MakeWord(rng));
  return out;
}

std::vector<std::string> WordFactory::Claim(
    const std::vector<std::string>& words) {
  std::vector<std::string> claimed;
  claimed.reserve(words.size());
  for (const std::string& w : words) {
    if (used_.insert(w).second) claimed.push_back(w);
  }
  return claimed;
}

}  // namespace fedsearch::corpus
