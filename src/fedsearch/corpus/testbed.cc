#include "fedsearch/corpus/testbed.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace fedsearch::corpus {
namespace {

size_t LogUniformSize(size_t lo, size_t hi, util::Rng& rng) {
  if (hi <= lo) return lo;
  const double x = rng.NextDouble(std::log(static_cast<double>(lo)),
                                  std::log(static_cast<double>(hi)));
  return static_cast<size_t>(std::lround(std::exp(x)));
}

}  // namespace

TestbedOptions Testbed::Trec4Options(double scale) {
  TestbedOptions o;
  o.seed = 20040613;
  o.web_layout = false;
  o.num_databases = 100;
  // At scale 1 the databases average a few thousand documents, like the
  // clustered TREC collections; a 300-document sample then covers only a
  // small fraction of a database, which is the regime the paper studies.
  o.min_db_docs = std::max<size_t>(300, static_cast<size_t>(2400 * scale));
  o.max_db_docs = std::max<size_t>(1000, static_cast<size_t>(16000 * scale));
  o.num_queries = 50;
  o.min_query_words = 8;
  o.max_query_words = 26;  // TREC-4 range 8-34, mean 16.75
  return o;
}

TestbedOptions Testbed::Trec6Options(double scale) {
  TestbedOptions o = Trec4Options(scale);
  o.seed = 19980601;
  o.num_queries = 50;
  o.min_query_words = 2;  // TREC-6 range 2-5, mean 2.75
  o.max_query_words = 5;
  o.relevance_min_terms = 1;
  return o;
}

TestbedOptions Testbed::WebOptions(double scale) {
  TestbedOptions o;
  o.seed = 19700101;
  o.web_layout = true;
  // At scale 1.0 this is the paper's layout: 5 databases for each of the
  // 54 leaf categories plus 45 arbitrary extra sites = 315 databases.
  // Smaller scales shrink both the per-leaf multiplicity and the sizes.
  o.databases_per_leaf = static_cast<size_t>(
      std::clamp(std::lround(5.0 * scale), 1l, 5l));
  const size_t extras = static_cast<size_t>(
      std::clamp(std::lround(45.0 * scale), 5l, 45l));
  o.num_databases = 54 * o.databases_per_leaf + extras;
  o.min_db_docs = 100;
  o.max_db_docs = std::max<size_t>(400, static_cast<size_t>(20000 * scale));
  o.num_queries = 0;  // the Web set has no relevance judgments (Section 6.2)
  return o;
}

Testbed::Testbed(const TestbedOptions& options) : options_(options) {
  hierarchy_ = std::make_unique<TopicHierarchy>(TopicHierarchy::BuildDefault());
  util::Rng rng(options_.seed);
  model_ = std::make_unique<TopicModel>(hierarchy_.get(), options_.model, rng);
  analyzer_ = std::make_unique<text::Analyzer>(options_.analyzer);

  const std::vector<CategoryId> leaves = hierarchy_->Leaves();

  // Decide each database's topic and size.
  std::vector<CategoryId> topics;
  if (options_.web_layout) {
    for (CategoryId leaf : leaves) {
      for (size_t i = 0; i < options_.databases_per_leaf; ++i) {
        topics.push_back(leaf);
      }
    }
    while (topics.size() < options_.num_databases) {
      topics.push_back(leaves[rng.NextBounded(leaves.size())]);
    }
  } else {
    std::vector<CategoryId> shuffled = leaves;
    rng.Shuffle(shuffled);
    for (size_t i = 0; i < options_.num_databases; ++i) {
      topics.push_back(shuffled[i % shuffled.size()]);
    }
  }

  // Generate the databases.
  databases_.reserve(topics.size());
  for (size_t i = 0; i < topics.size(); ++i) {
    const CategoryId leaf = topics[i];
    const size_t num_docs =
        LogUniformSize(options_.min_db_docs, options_.max_db_docs, rng);
    std::string name = options_.web_layout
                           ? "www." + hierarchy_->node(leaf).name + "-" +
                                 std::to_string(i) + ".example.com"
                           : "db-" + std::to_string(i) + "-" +
                                 hierarchy_->node(leaf).name;
    auto db = std::make_unique<index::TextDatabase>(std::move(name),
                                                    analyzer_.get());
    util::Rng db_rng = rng.Fork();
    const DatabaseVocabulary db_vocab =
        model_->MakeDatabaseVocabulary(db_rng);
    std::vector<CategoryId> doc_topics;
    doc_topics.reserve(num_docs);
    std::vector<std::string> doc_texts;
    if (options_.keep_documents) doc_texts.reserve(num_docs);
    for (size_t d = 0; d < num_docs; ++d) {
      CategoryId topic = leaf;
      if (db_rng.NextBernoulli(options_.offtopic_fraction)) {
        topic = PickOfftopicLeaf(leaf, db_rng);
      }
      std::string text =
          model_->GenerateDocumentText(topic, db_rng, &db_vocab);
      // Retention must not perturb the draw sequence: the text is copied
      // aside, never re-generated.
      if (options_.keep_documents) doc_texts.push_back(text);
      db->AddDocument(std::move(text));
      doc_topics.push_back(topic);
    }
    total_documents_ += num_docs;
    databases_.push_back(std::move(db));
    categories_.push_back(leaf);
    directory_categories_.push_back(
        rng.NextBernoulli(options_.misclassified_fraction)
            ? PickOfftopicLeaf(leaf, rng)
            : leaf);
    doc_topics_.push_back(std::move(doc_topics));
    doc_texts_.push_back(std::move(doc_texts));
  }

  // Generate the query workload. Topics are drawn only from leaves that
  // actually have databases, so every query has potential relevant results.
  std::unordered_set<CategoryId> populated(categories_.begin(),
                                           categories_.end());
  std::vector<CategoryId> query_leaves(populated.begin(), populated.end());
  std::sort(query_leaves.begin(), query_leaves.end());
  for (size_t q = 0; q < options_.num_queries; ++q) {
    TestQuery query;
    query.topic = query_leaves[rng.NextBounded(query_leaves.size())];
    if (rng.NextBernoulli(options_.internal_query_fraction)) {
      // A query about the leaf's parent category: its relevant documents
      // spread over every populated leaf of that subtree.
      const CategoryId parent = hierarchy_->node(query.topic).parent;
      if (parent != kInvalidCategory) query.topic = parent;
    }
    const size_t len = static_cast<size_t>(rng.NextInt(
        static_cast<int64_t>(options_.min_query_words),
        static_cast<int64_t>(options_.max_query_words)));
    query.words = model_->GenerateQueryTerms(query.topic, len, rng);
    for (const std::string& w : query.words) {
      if (!query.text.empty()) query.text.push_back(' ');
      query.text += w;
    }
    queries_.push_back(std::move(query));
  }
}

CategoryId Testbed::PickOfftopicLeaf(CategoryId leaf, util::Rng& rng) const {
  // Prefer a sibling leaf under the same parent; fall back to any leaf.
  const CategoryId parent = hierarchy_->node(leaf).parent;
  if (parent != kInvalidCategory) {
    std::vector<CategoryId> sibling_leaves;
    for (CategoryId c : hierarchy_->node(parent).children) {
      if (c != leaf && hierarchy_->IsLeaf(c)) sibling_leaves.push_back(c);
    }
    if (!sibling_leaves.empty() && rng.NextBernoulli(0.7)) {
      return sibling_leaves[rng.NextBounded(sibling_leaves.size())];
    }
  }
  const std::vector<CategoryId> leaves = hierarchy_->Leaves();
  return leaves[rng.NextBounded(leaves.size())];
}

size_t Testbed::CountRelevant(size_t query_index, size_t db_index) const {
  const uint64_t key = (static_cast<uint64_t>(query_index) << 32) |
                       static_cast<uint64_t>(db_index);
  auto it = relevance_cache_.find(key);
  if (it != relevance_cache_.end()) return it->second;

  const TestQuery& q = queries_[query_index];
  std::vector<std::string> terms = analyzer_->Analyze(q.text);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  const size_t threshold =
      std::min(options_.relevance_min_terms, std::max<size_t>(1, terms.size()));

  const index::TextDatabase& db = *databases_[db_index];
  std::vector<uint16_t> hits(db.num_documents(), 0);
  for (const std::string& t : terms) {
    db.index().ForEachPosting(
        t, [&](index::DocId doc, uint32_t) { ++hits[doc]; });
  }
  // A document is on-topic if its generating topic lies in the query
  // topic's subtree (for leaf queries that is equality).
  std::unordered_set<CategoryId> on_topic;
  for (CategoryId c : hierarchy_->Subtree(q.topic)) on_topic.insert(c);

  const std::vector<CategoryId>& topics = doc_topics_[db_index];
  size_t relevant = 0;
  for (size_t d = 0; d < hits.size(); ++d) {
    if (hits[d] >= threshold && on_topic.count(topics[d]) > 0) ++relevant;
  }
  relevance_cache_.emplace(key, relevant);
  return relevant;
}

}  // namespace fedsearch::corpus
