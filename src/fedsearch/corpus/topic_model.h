#ifndef FEDSEARCH_CORPUS_TOPIC_MODEL_H_
#define FEDSEARCH_CORPUS_TOPIC_MODEL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/corpus/word_factory.h"
#include "fedsearch/util/rng.h"

namespace fedsearch::corpus {

// A database-private vocabulary: Zipf-distributed words that appear only in
// one database's documents. Created via TopicModel::MakeDatabaseVocabulary
// so the words are globally unique.
struct DatabaseVocabulary {
  std::vector<std::string> words;  // most frequent first
  util::DiscreteSampler sampler{{}};
  double weight = 0.0;  // fraction of content tokens drawn from it
};

// Parameters of the synthetic hierarchical language model.
struct TopicModelOptions {
  // Vocabulary sizes of the node-specific word lists, by node depth
  // (root = 0). Category-specific vocabularies are pairwise disjoint.
  size_t vocab_size_by_depth[4] = {18000, 6000, 4000, 3000};

  // Within-node rank-frequency distribution follows Mandelbrot's law
  // f(r) = 1 / (r + shift)^exponent, the distribution Appendix A fits.
  double zipf_exponent = 1.1;
  double zipf_shift = 2.0;

  // Query words are drawn with a flatter exponent so queries contain the
  // mid- and low-frequency words real users type ("hemophilia") — the
  // words small document samples miss, which is the regime the paper's
  // selection experiments probe.
  double query_zipf_exponent = 0.75;

  // Fraction of raw document tokens that are function words.
  double stopword_rate = 0.30;

  // Per-database specific vocabulary (see MakeDatabaseVocabulary): its size
  // and the fraction of content tokens drawn from it. Real databases under
  // the same category share topic vocabulary but also have words of their
  // own; this keeps same-category databases distinguishable.
  size_t database_vocab_size = 800;
  double database_vocab_weight = 0.10;

  // Raw document length: lognormal around `doc_length_mean` tokens with
  // log-space sigma `doc_length_sigma`, clamped to [min, max].
  double doc_length_mean = 90.0;
  double doc_length_sigma = 0.45;
  size_t min_doc_tokens = 20;
  size_t max_doc_tokens = 400;
};

// A generative model of topical text over a TopicHierarchy.
//
// Every category node owns a disjoint, Zipf-distributed vocabulary; a
// document about topic T mixes words from the vocabularies along T's
// root-to-leaf path (general words from the root, increasingly specific
// words deeper down). This reproduces the two statistical properties the
// paper's experiments rest on:
//   1. word frequencies in any database follow a power law (Zipf/Mandelbrot),
//      so small samples miss the vocabulary tail (Section 2.2);
//   2. databases under topically-related categories share vocabulary
//      (Section 3.1's key observation), making shrinkage effective.
//
// This model is the stand-in for the TREC and crawled-web corpora of
// Section 5.1 (see DESIGN.md's substitution table).
class TopicModel {
 public:
  // The hierarchy must outlive the model. All randomness is drawn from
  // `rng` during construction; generation methods take their own Rng so
  // corpora can be regenerated independently and deterministically.
  TopicModel(const TopicHierarchy* hierarchy, TopicModelOptions options,
             util::Rng& rng);

  TopicModel(const TopicModel&) = delete;
  TopicModel& operator=(const TopicModel&) = delete;

  const TopicHierarchy& hierarchy() const { return *hierarchy_; }
  const TopicModelOptions& options() const { return options_; }

  // Node-specific vocabulary, most-frequent first.
  const std::vector<std::string>& WordsOf(CategoryId node) const {
    return node_words_[static_cast<size_t>(node)];
  }

  // Level mixture used when generating a document about `topic`: weight i
  // applies to PathFromRoot(topic)[i]'s vocabulary.
  std::vector<double> DocumentLevelMixture(CategoryId topic) const;

  // Samples one content word for a document about `topic`.
  const std::string& SampleTopicWord(CategoryId topic, util::Rng& rng) const;

  // Samples a word from one node's own vocabulary.
  const std::string& SampleNodeWord(CategoryId node, util::Rng& rng) const;

  // Generates the raw text of one document about `topic` (content words
  // interleaved with function words, space-separated). If `db_vocab` is
  // given, its weight-fraction of content tokens comes from it.
  std::string GenerateDocumentText(
      CategoryId topic, util::Rng& rng,
      const DatabaseVocabulary* db_vocab = nullptr) const;

  // Allocates a fresh database-private vocabulary (options().database_vocab_*
  // control its shape). Words never collide with category vocabularies or
  // with other databases'.
  DatabaseVocabulary MakeDatabaseVocabulary(util::Rng& rng);

  // Generates `num_words` distinct query words about `topic`, biased toward
  // the topic-specific end of the path. Used for TREC-style query sets.
  std::vector<std::string> GenerateQueryTerms(CategoryId topic,
                                              size_t num_words,
                                              util::Rng& rng) const;

  // The `n` most frequent node-specific words: the probe rules a trained
  // document classifier would key on (substitute for the RIPPER rules that
  // drive Focused Probing in [14, 17]).
  std::vector<std::string> CharacteristicWords(CategoryId node,
                                               size_t n) const;

 private:
  std::vector<double> ZipfWeights(size_t n, double exponent) const;

  const TopicHierarchy* hierarchy_;
  TopicModelOptions options_;
  WordFactory factory_;
  std::vector<std::vector<std::string>> node_words_;     // by CategoryId
  std::vector<util::DiscreteSampler> node_samplers_;     // by CategoryId
  std::vector<util::DiscreteSampler> query_samplers_;    // by CategoryId
};

// Builds a query dictionary for bootstrap sampling (the stand-in for the
// English dictionary QBS seeds its first queries from): the `per_node` most
// frequent words of every category vocabulary, shuffled deterministically
// by `seed`.
std::vector<std::string> BuildSamplerDictionary(const TopicModel& model,
                                                size_t per_node,
                                                uint64_t seed = 7);

// Curated, human-readable seed words for selected categories (by slash
// path). They occupy the top ranks of those categories' vocabularies so
// example programs can show recognizable words ("hypertension" under
// Root/Health/Diseases/Heart, per Figure 1 of the paper).
const std::vector<std::pair<std::string, std::vector<std::string>>>&
CuratedSeedWords();

}  // namespace fedsearch::corpus

#endif  // FEDSEARCH_CORPUS_TOPIC_MODEL_H_
