#include "fedsearch/corpus/churn.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "fedsearch/util/check.h"

namespace fedsearch::corpus {
namespace {

// splitmix64 finalizer: decorrelates the per-(seed, epoch, database)
// replacement streams so adjacent epochs/databases share no draw prefix.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ReplacementSeed(uint64_t seed, uint64_t epoch, size_t db) {
  return Mix(Mix(seed ^ Mix(epoch)) ^ Mix(static_cast<uint64_t>(db)));
}

}  // namespace

ChurnTestbed::ChurnTestbed(const Testbed* bed, ChurnOptions options)
    : bed_(bed), options_(options) {
  FEDSEARCH_CHECK(bed_->options().keep_documents)
      << " churn needs the testbed's retained document texts; build it "
         "with TestbedOptions::keep_documents = true";
  FEDSEARCH_CHECK(options_.static_fraction >= 0.0 &&
                  options_.fast_fraction >= 0.0 &&
                  options_.static_fraction + options_.fast_fraction <= 1.0)
      << " static_fraction + fast_fraction must stay within [0, 1]";
  const size_t n = bed_->num_databases();
  doc_texts_.reserve(n);
  doc_topics_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    doc_texts_.push_back(bed_->documents_of(i));
    doc_topics_.push_back(bed_->doc_topics_of(i));
  }
  diverged_.assign(n, false);
  rebuilt_.resize(n);

  // Drift classes: a seed-shuffled assignment so the classes are spread
  // over topics/sizes rather than correlated with database index.
  util::Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t num_static =
      static_cast<size_t>(std::lround(options_.static_fraction *
                                      static_cast<double>(n)));
  const size_t num_fast = static_cast<size_t>(
      std::lround(options_.fast_fraction * static_cast<double>(n)));
  drift_classes_.assign(n, DriftClass::kSlow);
  for (size_t r = 0; r < n; ++r) {
    if (r < num_static) {
      drift_classes_[order[r]] = DriftClass::kStatic;
    } else if (r < num_static + num_fast) {
      drift_classes_[order[r]] = DriftClass::kFast;
    }
  }

  // Fast databases drift toward a fixed sibling leaf of their category
  // (any other leaf when the category has no sibling leaves).
  const TopicHierarchy& hierarchy = bed_->hierarchy();
  migration_targets_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const CategoryId own = bed_->category_of(i);
    migration_targets_[i] = own;
    if (drift_classes_[i] != DriftClass::kFast) continue;
    std::vector<CategoryId> candidates;
    const CategoryId parent = hierarchy.node(own).parent;
    if (parent != kInvalidCategory) {
      for (CategoryId c : hierarchy.node(parent).children) {
        if (c != own && hierarchy.IsLeaf(c)) candidates.push_back(c);
      }
    }
    if (candidates.empty()) {
      for (CategoryId c : hierarchy.Leaves()) {
        if (c != own) candidates.push_back(c);
      }
    }
    if (!candidates.empty()) {
      migration_targets_[i] = candidates[rng.NextBounded(candidates.size())];
    }
  }
}

bool ChurnTestbed::ReplaceDocuments(size_t db, double drift_fraction,
                                    util::Rng& rng) {
  std::vector<std::string>& texts = doc_texts_[db];
  std::vector<CategoryId>& topics = doc_topics_[db];
  const size_t n = texts.size();
  if (n == 0) return false;
  const size_t replacements = static_cast<size_t>(
      std::lround(drift_fraction * static_cast<double>(n)));
  if (replacements == 0) return false;
  const bool fast = drift_classes_[db] == DriftClass::kFast;
  const CategoryId own = bed_->category_of(db);
  const CategoryId target = migration_targets_[db];
  for (size_t k = 0; k < replacements; ++k) {
    const size_t pos = rng.NextBounded(n);
    const CategoryId topic =
        fast && rng.NextBernoulli(options_.migrate_fraction) ? target : own;
    texts[pos] = bed_->model().GenerateDocumentText(topic, rng);
    topics[pos] = topic;
  }
  diverged_[db] = true;
  rebuilt_[db].reset();
  return true;
}

std::vector<size_t> ChurnTestbed::AdvanceEpoch() {
  ++epoch_;
  std::vector<size_t> changed;
  for (size_t i = 0; i < doc_texts_.size(); ++i) {
    double drift = 0.0;
    switch (drift_classes_[i]) {
      case DriftClass::kStatic:
        continue;
      case DriftClass::kSlow:
        drift = options_.slow_drift;
        break;
      case DriftClass::kFast:
        drift = options_.fast_drift;
        break;
    }
    // A fresh stream per (seed, epoch, database): the corpus at epoch E is
    // a pure function of the inputs, not of how prior epochs interleaved.
    util::Rng rng(ReplacementSeed(options_.seed, epoch_, i));
    if (ReplaceDocuments(i, drift, rng)) changed.push_back(i);
  }
  return changed;
}

const index::TextDatabase& ChurnTestbed::live_database(size_t i) const {
  FEDSEARCH_CHECK(i < doc_texts_.size())
      << " database " << i << " of " << doc_texts_.size();
  if (!diverged_[i]) return bed_->database(i);
  if (rebuilt_[i] == nullptr) {
    auto db = std::make_unique<index::TextDatabase>(
        bed_->database(i).name(), &bed_->analyzer());
    for (const std::string& text : doc_texts_[i]) {
      db->AddDocument(text);
    }
    rebuilt_[i] = std::move(db);
  }
  return *rebuilt_[i];
}

size_t ChurnTestbed::CountRelevant(size_t query_index, size_t db_index) const {
  FEDSEARCH_CHECK(query_index < bed_->queries().size() &&
                  db_index < doc_texts_.size())
      << " query " << query_index << " / database " << db_index
      << " out of range";
  const uint64_t key = (epoch_ << 40) |
                       (static_cast<uint64_t>(query_index) << 20) |
                       static_cast<uint64_t>(db_index);
  auto it = relevance_cache_.find(key);
  if (it != relevance_cache_.end()) return it->second;

  // Same relevance rule as Testbed::CountRelevant, against the current
  // corpus: topical subtree membership plus a distinct-term threshold.
  const TestQuery& q = bed_->queries()[query_index];
  std::vector<std::string> terms = bed_->analyzer().Analyze(q.text);
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  const size_t threshold = std::min(bed_->options().relevance_min_terms,
                                    std::max<size_t>(1, terms.size()));

  const index::TextDatabase& db = live_database(db_index);
  std::vector<uint16_t> hits(db.num_documents(), 0);
  for (const std::string& t : terms) {
    db.index().ForEachPosting(t,
                              [&](index::DocId doc, uint32_t) { ++hits[doc]; });
  }
  std::unordered_set<CategoryId> on_topic;
  for (CategoryId c : bed_->hierarchy().Subtree(q.topic)) on_topic.insert(c);

  const std::vector<CategoryId>& topics = doc_topics_[db_index];
  size_t relevant = 0;
  for (size_t d = 0; d < hits.size(); ++d) {
    if (hits[d] >= threshold && on_topic.count(topics[d]) > 0) ++relevant;
  }
  relevance_cache_.emplace(key, relevant);
  return relevant;
}

}  // namespace fedsearch::corpus
