#include "fedsearch/broker/admission.h"

#include <algorithm>

namespace fedsearch::broker {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), ewma_service_ms_(options.initial_service_ms) {}

double AdmissionController::EstimatedQueueDelayMs(size_t queue_depth,
                                                  size_t num_workers) const {
  const double workers =
      static_cast<double>(std::max<size_t>(num_workers, 1));
  return ewma_service_ms_ * static_cast<double>(queue_depth) / workers;
}

AdmissionController::Verdict AdmissionController::Consider(
    size_t queue_depth, size_t num_workers, double deadline_budget_ms) const {
  if (queue_depth >= options_.queue_capacity) return Verdict::kRejectQueueFull;
  if (EstimatedQueueDelayMs(queue_depth, num_workers) >= deadline_budget_ms) {
    return Verdict::kRejectPredictedMiss;
  }
  return Verdict::kAdmit;
}

void AdmissionController::ObserveService(double service_ms) {
  const double alpha = std::clamp(options_.ewma_alpha, 0.0, 1.0);
  ewma_service_ms_ = (1.0 - alpha) * ewma_service_ms_ + alpha * service_ms;
  ++observations_;
}

}  // namespace fedsearch::broker
