#include "fedsearch/broker/query_broker.h"

#include <algorithm>
#include <cstring>

#include "fedsearch/util/check.h"
#include "fedsearch/util/json_writer.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::broker {

namespace {

struct BrokerMetrics {
  util::Counter& submitted = util::GlobalMetrics().counter("broker.submitted");
  util::Counter& served_full =
      util::GlobalMetrics().counter("broker.served_full");
  util::Counter& served_degraded =
      util::GlobalMetrics().counter("broker.served_degraded");
  util::Counter& shed_queue_full =
      util::GlobalMetrics().counter("broker.shed_queue_full");
  util::Counter& shed_predicted_miss =
      util::GlobalMetrics().counter("broker.shed_predicted_miss");
  util::Counter& expired_in_queue =
      util::GlobalMetrics().counter("broker.expired_in_queue");
  util::Counter& expired_executing =
      util::GlobalMetrics().counter("broker.expired_executing");
  util::Counter& cancelled = util::GlobalMetrics().counter("broker.cancelled");
  util::Counter& downgrades =
      util::GlobalMetrics().counter("broker.downgrades");
  util::Counter& batches = util::GlobalMetrics().counter("broker.batches");
  util::Gauge& queue_depth = util::GlobalMetrics().gauge("broker.queue_depth");
  util::Histogram& batch_size =
      util::GlobalMetrics().histogram("broker.batch_size");
  util::Histogram& queue_wait_virtual_us =
      util::GlobalMetrics().histogram("broker.queue_wait_virtual_us");
  util::Histogram& e2e_virtual_us =
      util::GlobalMetrics().histogram("broker.e2e_virtual_us");
  util::Histogram& execute_ns =
      util::GlobalMetrics().histogram("broker.execute_ns");
  util::Gauge& slo_good_fraction =
      util::GlobalMetrics().gauge("broker.slo_good_fraction");
  util::Gauge& slo_burn_rate =
      util::GlobalMetrics().gauge("broker.slo_burn_rate");
};

BrokerMetrics& Metrics() {
  static BrokerMetrics* m = new BrokerMetrics();
  return *m;
}

uint64_t HashRanking(const std::vector<selection::RankedDatabase>& ranking) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (v >> shift) & 0xFFu;
      h *= 1099511628211ULL;
    }
  };
  for (const selection::RankedDatabase& entry : ranking) {
    uint64_t score_bits = 0;
    static_assert(sizeof(score_bits) == sizeof(entry.score));
    std::memcpy(&score_bits, &entry.score, sizeof(score_bits));
    mix(static_cast<uint64_t>(entry.database));
    mix(score_bits);
  }
  // Hash of an empty ranking stays distinguishable from "no ranking" (0).
  return h == 0 ? 1 : h;
}

uint64_t VirtualMsToUs(double ms) {
  return ms <= 0.0 ? 0 : static_cast<uint64_t>(ms * 1000.0 + 0.5);
}

}  // namespace

const char* DispositionName(Disposition disposition) {
  switch (disposition) {
    case Disposition::kPending:
      return "pending";
    case Disposition::kServedFull:
      return "served_full";
    case Disposition::kServedDegraded:
      return "served_degraded";
    case Disposition::kShedQueueFull:
      return "shed_queue_full";
    case Disposition::kShedPredictedMiss:
      return "shed_predicted_miss";
    case Disposition::kExpiredInQueue:
      return "expired_in_queue";
    case Disposition::kExpiredExecuting:
      return "expired_executing";
    case Disposition::kCancelledShutdown:
      return "cancelled_shutdown";
  }
  return "unknown";
}

QueryBroker::QueryBroker(const core::Metasearcher* meta,
                         const selection::ScoringFunction* scorer,
                         BrokerOptions options)
    : owned_source_(std::make_unique<core::FixedMetasearcherSource>(meta)),
      source_(owned_source_.get()),
      scorer_(scorer),
      options_(options),
      admission_(options.admission),
      degradation_(options.degradation),
      slo_(options.slo) {
  options_.num_workers = std::max<size_t>(options_.num_workers, 1);
  options_.max_batch = std::max<size_t>(options_.max_batch, 1);
  worker_free_ms_.assign(options_.num_workers, 0.0);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  // The pool's calling thread participates in ParallelFor, so the broker
  // dedicates a dispatcher thread to it; together with the pool's
  // num_workers - 1 spawned threads that makes exactly num_workers
  // long-lived WorkerLoop instances.
  dispatcher_ = std::thread([this] {
    pool_->ParallelFor(options_.num_workers, [this](size_t) { WorkerLoop(); });
  });
}

QueryBroker::QueryBroker(const core::MetasearcherSource* source,
                         const selection::ScoringFunction* scorer,
                         BrokerOptions options)
    : source_(source),
      scorer_(scorer),
      options_(options),
      admission_(options.admission),
      degradation_(options.degradation),
      slo_(options.slo) {
  options_.num_workers = std::max<size_t>(options_.num_workers, 1);
  options_.max_batch = std::max<size_t>(options_.max_batch, 1);
  worker_free_ms_.assign(options_.num_workers, 0.0);
  pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  // The pool's calling thread participates in ParallelFor, so the broker
  // dedicates a dispatcher thread to it; together with the pool's
  // num_workers - 1 spawned threads that makes exactly num_workers
  // long-lived WorkerLoop instances.
  dispatcher_ = std::thread([this] {
    pool_->ParallelFor(options_.num_workers, [this](size_t) { WorkerLoop(); });
  });
}

QueryBroker::~QueryBroker() { Shutdown(); }

double QueryBroker::PredictCostMs(core::SummaryMode mode,
                                  const util::Deadline::Costs& costs,
                                  size_t num_databases, size_t num_evaluated) {
  // Mirrors SelectDatabases' bounded path: one adaptive-evaluation charge
  // per non-degraded database (adaptive mode only), then one scoring
  // charge per database — folded in the same order so the float result is
  // identical to the execution's consumed_ms().
  double cost = 0.0;
  if (mode == core::SummaryMode::kAdaptiveShrinkage) {
    for (size_t i = 0; i < num_evaluated; ++i) {
      cost += costs.adaptive_evaluation_ms;
    }
  }
  for (size_t i = 0; i < num_databases; ++i) {
    cost += costs.score_ms;
  }
  return cost;
}

size_t QueryBroker::Submit(const selection::Query& query, double arrival_ms,
                           double service_inflation) {
  util::MutexLock lock(mu_);
  Metrics().submitted.Add();

  // Root of this request's span tree. A fresh trace id per request; every
  // downstream layer parents under context() handed through call
  // signatures. Lock order is broker mu_ -> tracer mu_ (at scope exits);
  // the tracer never takes broker locks, so no inversion is possible.
  util::Tracer::Scope submit_span("broker_submit",
                                  util::Tracer::Global().StartTrace());

  const size_t seq = results_.size();
  results_.emplace_back();
  RequestResult& r = results_.back();
  r.trace_id = submit_span.context().trace_id;
  submit_span.AttrUint("seq", seq).AttrDouble("arrival_ms", arrival_ms);
  if (stopping_) {
    // A submitter racing Shutdown gets the same answer a queued request
    // does: the broker is gone, nobody will serve this.
    r.arrival_ms = std::max(arrival_ms, last_now_ms_);
    r.finish_ms = r.arrival_ms;
    r.disposition = Disposition::kCancelledShutdown;
    submit_span.AttrStr("disposition", DispositionName(r.disposition));
    Metrics().cancelled.Add();
    ObserveSloLocked(false);
    return seq;
  }
  // Concurrent submitters may present slightly out-of-order arrival times;
  // the broker's virtual clock only moves forward.
  const double now = std::max(arrival_ms, last_now_ms_);
  last_now_ms_ = now;
  r.arrival_ms = now;
  r.service_inflation = service_inflation;

  AdvanceVirtualClockLocked(now);

  // Layer 1: admission control, from observable state only (depth + EWMA).
  const size_t depth = queue_release_.size();
  double estimated_delay_ms;
  AdmissionController::Verdict verdict;
  {
    util::Tracer::Scope admission_span("admission", submit_span.context());
    estimated_delay_ms =
        admission_.EstimatedQueueDelayMs(depth, options_.num_workers);
    verdict =
        admission_.Consider(depth, options_.num_workers, options_.deadline_ms);
    admission_span
        .AttrStr("verdict",
                 verdict == AdmissionController::Verdict::kAdmit ? "admit"
                 : verdict == AdmissionController::Verdict::kRejectQueueFull
                     ? "reject_queue_full"
                     : "reject_predicted_miss")
        .AttrUint("queue_depth", depth)
        .AttrDouble("estimated_delay_ms", estimated_delay_ms)
        .AttrDouble("ewma_service_ms", admission_.ewma_service_ms());
  }
  if (verdict != AdmissionController::Verdict::kAdmit) {
    // Rejected instantly: the client is told kResourceExhausted at arrival
    // and no worker ever sees the request.
    r.finish_ms = now;
    if (verdict == AdmissionController::Verdict::kRejectQueueFull) {
      r.disposition = Disposition::kShedQueueFull;
      Metrics().shed_queue_full.Add();
    } else {
      r.disposition = Disposition::kShedPredictedMiss;
      Metrics().shed_predicted_miss.Add();
    }
    submit_span.AttrStr("disposition", DispositionName(r.disposition))
        .AttrDouble("deadline_ms", options_.deadline_ms)
        .AttrDouble("queue_wait_ms", 0.0)
        .AttrDouble("service_ms", 0.0)
        .AttrDouble("e2e_ms", 0.0);
    ObserveSloLocked(false);
    return seq;
  }

  // Layer 2: graceful degradation — shed quality before requests.
  ServiceLevel level;
  {
    util::Tracer::Scope degradation_span("degradation", submit_span.context());
    level = degradation_.Update(estimated_delay_ms, options_.deadline_ms);
    degradation_span.AttrStr(
        "level", level == ServiceLevel::kDegraded ? "degraded" : "full");
  }
  r.downgraded = level == ServiceLevel::kDegraded;
  if (r.downgraded) Metrics().downgrades.Add();
  const core::SummaryMode mode =
      r.downgraded ? options_.degraded_mode : options_.full_mode;

  // Pin this request to the epoch snapshot current at admission: cost
  // prediction and execution both use exactly these summaries, so a
  // refresh publishing a newer epoch mid-flight cannot change a recorded
  // number. Lock order: broker mu_ -> source's internal lock (a pointer
  // copy under the source's terminal mutex; the source never calls back
  // into the broker).
  std::shared_ptr<const core::Metasearcher> snapshot = source_->Snapshot();
  r.summary_epoch = snapshot->epoch();
  submit_span.AttrUint("summary_epoch", r.summary_epoch);

  // Per-request cost table: the base model scaled by this request's tail
  // inflation; prediction and execution both use this exact table.
  util::Deadline::Costs costs = options_.costs;
  costs.adaptive_evaluation_ms *= service_inflation;
  costs.score_ms *= service_inflation;
  costs.search_ms *= service_inflation;
  const double cost_ms =
      PredictCostMs(mode, costs, snapshot->num_databases(),
                    snapshot->num_databases() - snapshot->num_degraded());
  r.predicted_cost_ms = cost_ms;

  // Virtual placement: FIFO onto the earliest-free worker (lowest index on
  // ties). Since worker_free never decreases and now is monotone, start
  // times are monotone too.
  const size_t w = static_cast<size_t>(
      std::min_element(worker_free_ms_.begin(), worker_free_ms_.end()) -
      worker_free_ms_.begin());
  const double start_ms = std::max(now, worker_free_ms_[w]);
  const double abs_deadline_ms = now + options_.deadline_ms;
  double budget_ms = abs_deadline_ms - start_ms;
  r.start_ms = start_ms;
  r.queue_wait_ms = start_ms - now;
  queue_release_.push(start_ms);
  if (budget_ms <= 0.0) {
    // Expired while waiting: the worker that reaches it at start_ms drops
    // it in zero time (no worker occupancy, no EWMA sample); the client's
    // timeout fired at the deadline.
    budget_ms = 0.0;
    r.finish_ms = abs_deadline_ms;
  } else {
    const double service_ms = std::min(cost_ms, budget_ms);
    worker_free_ms_[w] = start_ms + service_ms;
    inflight_.push(VirtualCompletion{start_ms + service_ms, seq, service_ms});
    // A request whose cost crosses the budget resolves at the deadline
    // (client timeout); otherwise when its work completes.
    r.finish_ms = cost_ms >= budget_ms ? abs_deadline_ms : start_ms + cost_ms;
    r.service_ms = service_ms;
  }
  Metrics().queue_wait_virtual_us.Record(VirtualMsToUs(r.queue_wait_ms));
  Metrics().e2e_virtual_us.Record(VirtualMsToUs(r.e2e_ms()));

  QueueItem item;
  item.seq = seq;
  item.query = query;
  item.snapshot = std::move(snapshot);
  item.mode = mode;
  item.budget_ms = budget_ms;
  item.costs = costs;
  item.predicted_expiry = budget_ms > 0.0 && cost_ms >= budget_ms;
  item.trace = submit_span.context();
  item.enqueue_ns = submit_span.recording() ? util::MonotonicNanos() : 0;
  // The full virtual account lands on the root span at submit time — on
  // the dual-clock design the scheduler already knows the request's fate
  // (the DCHECK in ExecuteOne pins execution to it), so the timeline
  // analyzer can attribute latency without waiting for the worker.
  submit_span
      .AttrStr("disposition",
               DispositionName(budget_ms <= 0.0 ? Disposition::kExpiredInQueue
                               : item.predicted_expiry
                                   ? Disposition::kExpiredExecuting
                               : r.downgraded ? Disposition::kServedDegraded
                                              : Disposition::kServedFull))
      .AttrBool("downgraded", r.downgraded)
      .AttrDouble("deadline_ms", options_.deadline_ms)
      .AttrDouble("queue_wait_ms", r.queue_wait_ms)
      .AttrDouble("service_ms", r.service_ms)
      .AttrDouble("e2e_ms", r.e2e_ms())
      .AttrDouble("predicted_cost_ms", cost_ms)
      .AttrDouble("budget_ms", budget_ms);
  queue_.push_back(std::move(item));
  ++enqueued_;
  Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
  work_cv_.NotifyOne();
  return seq;
}

void QueryBroker::AdvanceVirtualClockLocked(double now) {
  while (!inflight_.empty() && inflight_.top().finish_ms <= now) {
    admission_.ObserveService(inflight_.top().service_ms);
    inflight_.pop();
  }
  while (!queue_release_.empty() && queue_release_.top() <= now) {
    queue_release_.pop();
  }
}

void QueryBroker::WorkerLoop() {
  {
    // Start barrier: ParallelFor hands out indices dynamically, so without
    // it one pool thread could claim two of these long-lived loops and
    // halve the real concurrency. Holding every loop until all indices are
    // claimed forces one loop per thread.
    util::MutexLock lock(mu_);
    ++workers_started_;
    started_cv_.NotifyAll();
    while (workers_started_ < options_.num_workers) started_cv_.Wait(mu_);
  }
  std::vector<QueueItem> batch;
  while (true) {
    batch.clear();
    {
      util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // stopping, and Shutdown drained the rest
      const size_t take = std::min(options_.max_batch, queue_.size());
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    Metrics().batches.Add();
    Metrics().batch_size.Record(batch.size());
    for (QueueItem& item : batch) ExecuteOne(item);
  }
}

void QueryBroker::ExecuteOne(QueueItem& item) {
  // Cross-thread queue-wait span, emitted retroactively now that the wait
  // is over: the submit thread captured enqueue_ns, this worker supplies
  // the dequeue edge. Sibling of broker_execute under the request root.
  if (item.trace.active() && item.enqueue_ns != 0) {
    util::Tracer::Global().EmitSpan(
        "broker_queue", item.trace, item.enqueue_ns, util::MonotonicNanos(),
        {util::Tracer::UintAttr("seq", item.seq)});
  }
  util::Tracer::Scope execute_span("broker_execute", item.trace);
  execute_span.AttrUint("seq", item.seq)
      .AttrDouble("budget_ms", item.budget_ms);
  util::ScopedTimer execute_timer(Metrics().execute_ns);

  Disposition disposition;
  uint64_t ranking_hash = 0;
  size_t evaluations = 0;
  if (item.budget_ms <= 0.0) {
    // Dead on dequeue — drop instead of burning the worker.
    disposition = Disposition::kExpiredInQueue;
  } else {
    util::Deadline deadline(item.budget_ms, item.costs);
    const core::Metasearcher::SelectionOutcome outcome =
        item.snapshot->SelectDatabases(item.query, *scorer_, item.mode,
                                       &deadline, execute_span.context());
    evaluations = outcome.evaluations_completed;
    if (!outcome.status.ok()) {
      disposition = Disposition::kExpiredExecuting;
    } else {
      disposition = item.mode == options_.degraded_mode &&
                            options_.degraded_mode != options_.full_mode
                        ? Disposition::kServedDegraded
                        : Disposition::kServedFull;
      ranking_hash = HashRanking(outcome.ranking);
    }
    // The virtual schedule predicted this verdict from the cost model; the
    // execution must agree, or virtual latencies are fiction.
    FEDSEARCH_DCHECK(item.predicted_expiry == !outcome.status.ok())
        << "cost-model prediction diverged from execution for request "
        << item.seq;
  }
  execute_span.AttrStr("disposition", DispositionName(disposition))
      .AttrUint("evaluations", evaluations);

  util::MutexLock lock(mu_);
  RequestResult& r = results_[item.seq];
  r.disposition = disposition;
  r.ranking_hash = ranking_hash;
  r.evaluations_completed = evaluations;
  switch (disposition) {
    case Disposition::kServedFull:
      Metrics().served_full.Add();
      break;
    case Disposition::kServedDegraded:
      Metrics().served_degraded.Add();
      break;
    case Disposition::kExpiredInQueue:
      Metrics().expired_in_queue.Add();
      break;
    default:
      Metrics().expired_executing.Add();
      break;
  }
  ObserveSloLocked(disposition == Disposition::kServedFull ||
                   disposition == Disposition::kServedDegraded);
  ++completed_;
  if (completed_ == enqueued_) drain_cv_.NotifyAll();
}

void QueryBroker::Drain() {
  util::MutexLock lock(mu_);
  while (completed_ != enqueued_) drain_cv_.Wait(mu_);
}

void QueryBroker::CancelQueuedLocked() {
  for (QueueItem& item : queue_) {
    RequestResult& r = results_[item.seq];
    r.disposition = Disposition::kCancelledShutdown;
    r.finish_ms = last_now_ms_;
    Metrics().cancelled.Add();
    ObserveSloLocked(false);
    ++completed_;
  }
  queue_.clear();
  Metrics().queue_depth.Set(0.0);
}

void QueryBroker::Shutdown() {
  {
    // Idempotent: a second call (e.g. the destructor after an explicit
    // Shutdown) finds an empty queue and a joined dispatcher and falls
    // through harmlessly.
    util::MutexLock lock(mu_);
    stopping_ = true;
    // Whatever is still queued will never run; resolve it so every request
    // reaches a terminal disposition.
    CancelQueuedLocked();
  }
  work_cv_.NotifyAll();
  drain_cv_.NotifyAll();
  if (dispatcher_.joinable()) dispatcher_.join();
  pool_.reset();
}

const std::vector<RequestResult>& QueryBroker::results() const {
  util::MutexLock lock(mu_);
  return results_;
}

BrokerStats QueryBroker::ComputeStats() const {
  util::MutexLock lock(mu_);
  BrokerStats stats;
  stats.submitted = results_.size();
  for (const RequestResult& r : results_) {
    switch (r.disposition) {
      case Disposition::kServedFull:
        ++stats.served_full;
        break;
      case Disposition::kServedDegraded:
        ++stats.served_degraded;
        break;
      case Disposition::kShedQueueFull:
        ++stats.shed_queue_full;
        break;
      case Disposition::kShedPredictedMiss:
        ++stats.shed_predicted_miss;
        break;
      case Disposition::kExpiredInQueue:
        ++stats.expired_in_queue;
        break;
      case Disposition::kExpiredExecuting:
        ++stats.expired_executing;
        break;
      case Disposition::kCancelledShutdown:
        ++stats.cancelled;
        break;
      case Disposition::kPending:
        FEDSEARCH_CHECK(false)
            << "ComputeStats before Drain: request still pending";
        break;
    }
  }
  stats.ewma_service_ms = admission_.ewma_service_ms();
  // Deterministic SLO replay: the live tracker saw executed requests in
  // real completion order, but the *set* of outcomes is fixed by the
  // virtual schedule, so replaying results_ in submit order yields
  // bit-identical SLO numbers for every run of the same seed.
  SloTracker replay(options_.slo);
  for (const RequestResult& r : results_) replay.Observe(r.served());
  stats.slo_good_fraction = replay.good_fraction();
  stats.slo_burn_rate = replay.burn_rate();
  stats.slo_target_good_fraction = options_.slo.target_good_fraction;
  return stats;
}

void QueryBroker::ObserveSloLocked(bool good) {
  slo_.Observe(good);
  Metrics().slo_good_fraction.Set(slo_.good_fraction());
  Metrics().slo_burn_rate.Set(slo_.burn_rate());
}

std::string QueryBroker::StatuszJson(int indent) const {
  util::MutexLock lock(mu_);
  util::JsonWriter w(indent);
  w.BeginObject();
  w.Key("queue").BeginObject();
  w.Key("depth").Value(queue_.size());
  w.Key("virtual_depth").Value(queue_release_.size());
  w.Key("submitted").Value(results_.size());
  w.Key("enqueued").Value(enqueued_);
  w.Key("completed").Value(completed_);
  w.Key("stopping").Value(stopping_);
  w.Key("workers").Value(options_.num_workers);
  w.Key("max_batch").Value(options_.max_batch);
  w.Key("deadline_ms").Value(options_.deadline_ms);
  w.Key("virtual_now_ms").Value(last_now_ms_);
  w.EndObject();
  w.Key("admission").BeginObject();
  w.Key("queue_capacity").Value(options_.admission.queue_capacity);
  w.Key("ewma_service_ms").Value(admission_.ewma_service_ms());
  w.Key("observations").Value(admission_.observations());
  w.EndObject();
  w.Key("degradation").BeginObject();
  w.Key("level").Value(degradation_.level() == ServiceLevel::kDegraded
                           ? "degraded"
                           : "full");
  w.Key("episodes").Value(degradation_.degraded_episodes());
  w.EndObject();
  w.Key("slo").BeginObject();
  w.Key("target_good_fraction").Value(options_.slo.target_good_fraction);
  w.Key("window").Value(options_.slo.window);
  w.Key("in_window").Value(slo_.in_window());
  w.Key("good_fraction").Value(slo_.good_fraction());
  w.Key("burn_rate").Value(slo_.burn_rate());
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace fedsearch::broker
