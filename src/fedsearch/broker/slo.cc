#include "fedsearch/broker/slo.h"

#include <algorithm>

namespace fedsearch::broker {

SloTracker::SloTracker(SloOptions options) : options_(options) {
  options_.window = std::max<size_t>(options_.window, 1);
  options_.target_good_fraction =
      std::clamp(options_.target_good_fraction, 0.0, 1.0);
  ring_.assign(options_.window, 0);
}

void SloTracker::Observe(bool good) {
  if (filled_ == options_.window) {
    good_in_window_ -= ring_[next_];
  } else {
    ++filled_;
  }
  ring_[next_] = good ? 1 : 0;
  good_in_window_ += ring_[next_];
  next_ = (next_ + 1) % options_.window;
  ++total_;
}

double SloTracker::good_fraction() const {
  if (filled_ == 0) return 1.0;
  return static_cast<double>(good_in_window_) / static_cast<double>(filled_);
}

double SloTracker::burn_rate() const {
  const double bad_fraction = 1.0 - good_fraction();
  const double allowed = 1.0 - options_.target_good_fraction;
  if (allowed <= 0.0) {
    // Zero error budget: report the bad count scaled by the window so the
    // signal stays finite and still grows with each failure.
    return bad_fraction * static_cast<double>(options_.window);
  }
  return bad_fraction / allowed;
}

}  // namespace fedsearch::broker
