#include "fedsearch/broker/load_generator.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::broker {

OpenLoopGenerator::OpenLoopGenerator(OpenLoopOptions options,
                                     size_t num_queries)
    : options_(options),
      num_queries_(std::max<size_t>(num_queries, 1)),
      rng_(options.seed) {}

Arrival OpenLoopGenerator::Next() {
  // Fixed draw order — gap, query, slow?, inflation — every arrival, fault
  // or not, so the arrival sequence is a pure function of (seed, index).
  const double u_gap = rng_.NextDouble();
  const uint64_t query = rng_.NextBounded(num_queries_);
  const double u_slow = rng_.NextDouble();
  const double u_inflation = rng_.NextDouble();

  const double rate = std::max(options_.arrival_rate_qps, 1e-9);
  // Inverse-CDF exponential gap; 1 - u keeps the argument in (0, 1].
  clock_ms_ += -std::log(1.0 - u_gap) / rate * 1000.0;

  Arrival arrival;
  arrival.arrival_ms = clock_ms_;
  arrival.query_index = static_cast<size_t>(query);
  arrival.slow_fault = u_slow < options_.slow_rate;
  arrival.service_inflation =
      arrival.slow_fault
          ? 1.0 + u_inflation * (std::max(options_.slow_factor, 1.0) - 1.0)
          : 1.0;
  return arrival;
}

}  // namespace fedsearch::broker
