#ifndef FEDSEARCH_BROKER_ADMISSION_H_
#define FEDSEARCH_BROKER_ADMISSION_H_

#include <cstddef>
#include <cstdint>

namespace fedsearch::broker {

// Admission-control knobs of the QueryBroker.
struct AdmissionOptions {
  // Bound on requests waiting for a worker. Arrivals beyond it are shed
  // immediately (kResourceExhausted) — the queue is the only buffer, and an
  // open-loop arrival process will otherwise grow it without limit.
  size_t queue_capacity = 64;
  // Smoothing factor of the service-time EWMA (weight of the newest
  // observation). Small enough to ride out single slow-fault outliers,
  // large enough to track a load shift within a few tens of requests.
  double ewma_alpha = 0.1;
  // EWMA prior before any completion has been observed. Deliberately
  // optimistic: the first requests of a run should be admitted on the
  // cheap-path assumption, not shed on a guess.
  double initial_service_ms = 1.0;
};

// Predicts queue delay from observed service times and rejects requests
// that are already hopeless on arrival. The controller deliberately uses
// only what a real front-end can see — queue depth and an EWMA of
// completed-request service times — never the broker's exact schedule
// knowledge, so mispredictions (and therefore in-queue expiries) remain
// possible, exactly as in a real system.
//
// Not thread-safe; the broker calls it under its scheduler lock.
class AdmissionController {
 public:
  enum class Verdict {
    kAdmit,
    kRejectQueueFull,      // queue_capacity reached
    kRejectPredictedMiss,  // estimated queue delay >= the request's budget
  };

  explicit AdmissionController(AdmissionOptions options = {});

  const AdmissionOptions& options() const { return options_; }

  // Expected wait before a newly arrived request reaches a worker: the
  // `queue_depth` requests ahead of it drain at one EWMA service time per
  // worker slot.
  double EstimatedQueueDelayMs(size_t queue_depth, size_t num_workers) const;

  // Admission decision for one arrival, given the current waiting-queue
  // depth and the request's total deadline budget.
  Verdict Consider(size_t queue_depth, size_t num_workers,
                   double deadline_budget_ms) const;

  // Feeds one completed request's service time into the EWMA. Call in
  // completion order so two identical runs observe identical sequences.
  void ObserveService(double service_ms);

  double ewma_service_ms() const { return ewma_service_ms_; }
  uint64_t observations() const { return observations_; }

 private:
  AdmissionOptions options_;
  double ewma_service_ms_;
  uint64_t observations_ = 0;
};

}  // namespace fedsearch::broker

#endif  // FEDSEARCH_BROKER_ADMISSION_H_
