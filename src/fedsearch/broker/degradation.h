#ifndef FEDSEARCH_BROKER_DEGRADATION_H_
#define FEDSEARCH_BROKER_DEGRADATION_H_

#include <cstdint>

namespace fedsearch::broker {

// What quality a request is served at. The broker maps these to summary
// modes: full = the adaptive shrinkage path (~30ms/query cold), degraded =
// plain summaries (~0.2ms/query) — the paper's own fallback ordering, where
// the cheap estimate replaces the expensive one when the latter cannot be
// afforded.
enum class ServiceLevel : uint8_t {
  kFull,
  kDegraded,
};

struct DegradationOptions {
  // Hysteresis watermarks on estimated queue delay as a fraction of the
  // request deadline. Enter degraded mode when the estimate crosses
  // enter_fraction x deadline; return to full quality only after it falls
  // below exit_fraction x deadline. The gap prevents flapping around one
  // threshold — without it, every downgrade immediately drains the queue
  // enough to upgrade again, and the level oscillates per-request.
  double enter_fraction = 0.5;
  double exit_fraction = 0.2;
};

// Load-tracking quality switch: sheds *quality* before the admission
// controller has to shed *requests*. It watches the same estimated queue
// delay admission control uses; because degraded requests are orders of
// magnitude cheaper, entering degraded mode collapses the EWMA and the
// queue, which is what keeps the shed rate below the downgrade rate under
// overload (the broker's core robustness claim).
//
// Not thread-safe; the broker calls it under its scheduler lock.
class DegradationPolicy {
 public:
  explicit DegradationPolicy(DegradationOptions options = {});

  const DegradationOptions& options() const { return options_; }

  // Updates the level from the current load estimate and returns the level
  // the next request should be served at. Call once per arrival, in
  // arrival order.
  ServiceLevel Update(double estimated_delay_ms, double deadline_budget_ms);

  ServiceLevel level() const { return level_; }
  // Times the policy entered degraded mode (not requests downgraded; the
  // broker counts those per-request).
  uint64_t degraded_episodes() const { return degraded_episodes_; }

 private:
  DegradationOptions options_;
  ServiceLevel level_ = ServiceLevel::kFull;
  uint64_t degraded_episodes_ = 0;
};

}  // namespace fedsearch::broker

#endif  // FEDSEARCH_BROKER_DEGRADATION_H_
