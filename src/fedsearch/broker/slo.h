#ifndef FEDSEARCH_BROKER_SLO_H_
#define FEDSEARCH_BROKER_SLO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedsearch::broker {

struct SloOptions {
  // The SLO: the fraction of requests that must resolve "good" (served a
  // ranking within their deadline). Sheds, expiries, and cancellations are
  // all "bad" — from the client's seat they are indistinguishable failures.
  double target_good_fraction = 0.95;
  // Rolling window, in requests. Request-count windows (not wall-time)
  // keep the tracker deterministic on the broker's virtual schedule.
  size_t window = 256;
};

// Rolling SLO accounting for the broker: a ring of the last `window`
// request outcomes, summarized as a good fraction and an error-budget
// *burn rate* — observed bad fraction divided by the allowed bad fraction
// (1 - target). Burn rate 1.0 means failures arrive exactly as fast as
// the budget permits; 2.0 means the budget burns twice too fast; under
// 1.0 the SLO is healthy. This is the standard multiplicative alerting
// signal (a burn-rate threshold works at any traffic level, unlike a raw
// error count).
//
// Not thread-safe; the broker updates it under its scheduler lock. The
// tracker is deterministic given the observation sequence — the broker
// feeds it in resolution order on the virtual schedule, so bench runs
// reproduce its values bit-for-bit.
class SloTracker {
 public:
  explicit SloTracker(SloOptions options = {});

  const SloOptions& options() const { return options_; }

  // Records one resolved request.
  void Observe(bool good);

  // Observations currently in the window (saturates at options().window).
  size_t in_window() const { return filled_; }
  // All observations ever recorded.
  uint64_t total() const { return total_; }

  // Fraction of good outcomes over the window; 1.0 while empty (no
  // evidence of trouble is not trouble).
  double good_fraction() const;

  // bad_fraction / (1 - target_good_fraction) over the window. A target
  // of 1.0 (zero error budget) reports bad_count directly scaled by the
  // window — any failure is an immediate large burn.
  double burn_rate() const;

 private:
  SloOptions options_;
  std::vector<uint8_t> ring_;
  size_t next_ = 0;
  size_t filled_ = 0;
  size_t good_in_window_ = 0;
  uint64_t total_ = 0;
};

}  // namespace fedsearch::broker

#endif  // FEDSEARCH_BROKER_SLO_H_
