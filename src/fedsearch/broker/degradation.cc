#include "fedsearch/broker/degradation.h"

namespace fedsearch::broker {

DegradationPolicy::DegradationPolicy(DegradationOptions options)
    : options_(options) {}

ServiceLevel DegradationPolicy::Update(double estimated_delay_ms,
                                       double deadline_budget_ms) {
  const double enter = options_.enter_fraction * deadline_budget_ms;
  const double exit = options_.exit_fraction * deadline_budget_ms;
  if (level_ == ServiceLevel::kFull) {
    if (estimated_delay_ms >= enter) {
      level_ = ServiceLevel::kDegraded;
      ++degraded_episodes_;
    }
  } else if (estimated_delay_ms < exit) {
    level_ = ServiceLevel::kFull;
  }
  return level_;
}

}  // namespace fedsearch::broker
