#ifndef FEDSEARCH_BROKER_QUERY_BROKER_H_
#define FEDSEARCH_BROKER_QUERY_BROKER_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "fedsearch/broker/admission.h"
#include "fedsearch/broker/degradation.h"
#include "fedsearch/broker/slo.h"
#include "fedsearch/core/live_metasearcher.h"
#include "fedsearch/core/metasearcher.h"
#include "fedsearch/selection/scoring.h"
#include "fedsearch/util/deadline.h"
#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"
#include "fedsearch/util/thread_pool.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::broker {

struct BrokerOptions {
  // Concurrent SelectDatabases executions (util::ThreadPool threads; the
  // metasearcher itself should serve serially — inter-query parallelism is
  // the axis that scales, per ROADMAP).
  size_t num_workers = 4;
  // Requests a worker dequeues per queue-lock acquisition. Batch members
  // run back-to-back on one thread, sharing the metasearcher's warm
  // ScoringStatisticsCache / PosteriorCache epoch between adjacent
  // requests instead of interleaving with other workers' queries.
  size_t max_batch = 8;
  // Per-request deadline: a request submitted at virtual time t must
  // resolve by t + deadline_ms.
  double deadline_ms = 100.0;
  // Base (uninflated) virtual cost model; each request's copy is scaled by
  // its service inflation (tail faults) before prediction and execution.
  util::Deadline::Costs costs;
  AdmissionOptions admission;
  DegradationOptions degradation;
  // Rolling good/bad SLO accounting over resolved requests (see SloTracker).
  SloOptions slo;
  // Summary modes backing the two service levels.
  core::SummaryMode full_mode = core::SummaryMode::kAdaptiveShrinkage;
  core::SummaryMode degraded_mode = core::SummaryMode::kPlain;
};

// Terminal state of a request. Every submitted request reaches exactly one.
enum class Disposition : uint8_t {
  kPending = 0,         // still queued/executing (never final after Drain)
  kServedFull,          // full-quality ranking within deadline
  kServedDegraded,      // plain/CORI ranking within deadline (downgraded)
  kShedQueueFull,       // rejected at admission: queue at capacity
  kShedPredictedMiss,   // rejected at admission: EWMA predicts a miss
  kExpiredInQueue,      // admitted, but its deadline passed while waiting
  kExpiredExecuting,    // aborted mid-selection with kDeadlineExceeded
  kCancelledShutdown,   // still queued when Shutdown() ran
};

// Stable snake_case name for a disposition ("served_full", ...). Used as
// the span attribute / timeline-analysis vocabulary; tools/
// analyze_timeline.py matches these strings.
const char* DispositionName(Disposition disposition);

// Full per-request account. All times are *virtual* milliseconds on the
// broker's deterministic clock (see class comment), which is why two runs
// with the same arrivals produce bit-identical results.
struct RequestResult {
  Disposition disposition = Disposition::kPending;
  bool downgraded = false;       // assigned the degraded service level
  double arrival_ms = 0.0;
  double start_ms = 0.0;         // when a worker reached it (admitted only)
  double finish_ms = 0.0;        // when the client got an answer or gave up
  double queue_wait_ms = 0.0;    // start - arrival
  double service_ms = 0.0;       // virtual worker occupancy
  double predicted_cost_ms = 0.0;
  double service_inflation = 1.0;
  size_t evaluations_completed = 0;
  // FNV-1a over (database, score bits) of the served ranking; 0 when no
  // ranking was produced. Lets benches assert bit-identical outcomes
  // without retaining every ranking.
  uint64_t ranking_hash = 0;
  // Trace id of this request's span tree in util::Tracer::Global(); 0 when
  // tracing was disabled at submit. Observational: excluded from the
  // bit-identity the bench rerun check asserts (ids are allocation-ordered
  // across threads).
  uint64_t trace_id = 0;
  // Epoch of the summary snapshot this request was served against (0 for
  // a static metasearcher). Captured at Submit: under live churn, a
  // request admitted on epoch E executes on epoch E even if a refresh
  // publishes E+1 before a worker reaches it — prediction and execution
  // must see the same summaries for the dual-clock contract to hold.
  uint64_t summary_epoch = 0;

  bool admitted() const {
    return disposition != Disposition::kShedQueueFull &&
           disposition != Disposition::kShedPredictedMiss;
  }
  bool served() const {
    return disposition == Disposition::kServedFull ||
           disposition == Disposition::kServedDegraded;
  }
  // Client-observed latency: answer time for served requests, the deadline
  // itself where the client's timeout fired. By construction never exceeds
  // deadline_ms for admitted requests.
  double e2e_ms() const { return finish_ms - arrival_ms; }
};

// Aggregate view over results(); see QueryBroker::ComputeStats.
struct BrokerStats {
  size_t submitted = 0;
  size_t served_full = 0;
  size_t served_degraded = 0;
  size_t shed_queue_full = 0;
  size_t shed_predicted_miss = 0;
  size_t expired_in_queue = 0;
  size_t expired_executing = 0;
  size_t cancelled = 0;
  double ewma_service_ms = 0.0;
  // Deterministic SLO replay over results() in submit order (not the live
  // tracker, whose executed-request order follows real thread timing):
  // good fraction and burn rate over the final options().slo.window
  // requests, against options().slo.target_good_fraction.
  double slo_good_fraction = 1.0;
  double slo_burn_rate = 0.0;
  double slo_target_good_fraction = 0.0;

  size_t served() const { return served_full + served_degraded; }
  size_t shed() const { return shed_queue_full + shed_predicted_miss; }
  size_t expired() const { return expired_in_queue + expired_executing; }
  size_t resolved() const {
    return served() + shed() + expired() + cancelled;
  }
};

// Overload-robust serving front-end for database selection.
//
// Requests arrive open-loop (Submit with a virtual arrival time, typically
// from an OpenLoopGenerator) and pass through three robustness layers
// before a util::ThreadPool worker runs SelectDatabases:
//
//   queue -> admission control -> degradation -> batch -> execute
//
// Determinism contract. The broker keeps two parallel notions of time:
//  * a *virtual* discrete-event schedule, advanced in arrival order under
//    one lock — admission verdicts, degradation levels, queue waits,
//    worker assignment, and deadline budgets are all computed here from
//    the request's scaled cost model (never from wall time or thread
//    timing);
//  * *real* execution on pool workers, which runs each admitted request
//    with a charge-based util::Deadline whose budget came from the virtual
//    schedule. Because SelectDatabases charges the identical cost
//    sequence, the execution's expiry verdict agrees with the virtual
//    prediction bit-for-bit (DCHECKed), and real thread interleaving can
//    only change *when* work happens, never any recorded number.
// Wall-clock timings still flow to the metrics layer, where they are
// observational by construction.
//
// Thread-safe: Submit may be called from multiple threads (virtual time is
// clamped monotone); Drain/Shutdown from any one thread. results() and
// ComputeStats() are valid once Drain() or Shutdown() returned.
class QueryBroker {
 public:
  // `meta` and `scorer` must outlive the broker. `meta` should be built
  // with num_threads = 1: the broker supplies the parallelism, and nested
  // per-query fan-out would fight it for cores. This overload serves a
  // static federation: every request executes on `meta` at epoch 0.
  QueryBroker(const core::Metasearcher* meta,
              const selection::ScoringFunction* scorer,
              BrokerOptions options = {});
  // Live-federation overload: each Submit snapshots `source` (an RCU
  // pointer copy, never blocking on refresh) and the request is predicted
  // AND executed against that one snapshot — a refresh landing between
  // Submit and execution cannot change any recorded number. `source` and
  // `scorer` must outlive the broker; every snapshot must present the
  // same num_databases (the federation's membership is fixed, only its
  // contents churn).
  QueryBroker(const core::MetasearcherSource* source,
              const selection::ScoringFunction* scorer,
              BrokerOptions options = {});
  ~QueryBroker();

  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  const BrokerOptions& options() const { return options_; }

  // Submits one request arriving at virtual time `arrival_ms` (must be
  // non-decreasing per submitter; concurrent submitters are clamped onto
  // the broker's monotone clock). `service_inflation` >= 1 scales the
  // request's cost model — the slow-fault hook. Returns the request's
  // index into results().
  size_t Submit(const selection::Query& query, double arrival_ms,
                double service_inflation = 1.0) FEDSEARCH_EXCLUDES(mu_);

  // Blocks until every admitted request has been executed and recorded.
  void Drain() FEDSEARCH_EXCLUDES(mu_);

  // Stops the workers. Requests still queued are resolved as
  // kCancelledShutdown (clean shutdown with a non-empty queue is
  // supported and tested). Idempotent; the destructor calls it.
  void Shutdown() FEDSEARCH_EXCLUDES(mu_);

  // Per-request accounts, indexed by the value Submit returned. The
  // returned reference outlives the lock: per the class contract it is
  // only stable (and only meaningful) once Drain() or Shutdown() returned
  // and the workers have stopped mutating it.
  const std::vector<RequestResult>& results() const FEDSEARCH_EXCLUDES(mu_);

  // Tallies results(); CHECK-fails on a kPending request, so calling it
  // after Drain doubles as the every-request-resolves invariant.
  BrokerStats ComputeStats() const FEDSEARCH_EXCLUDES(mu_);

  // One-shot introspection snapshot of the live broker (queue/admission/
  // degradation/SLO state) as JSON — the payload behind bench_broker's
  // --statusz flag. Callable at any point in the broker's life, including
  // mid-load; takes the scheduler lock for a consistent picture.
  std::string StatuszJson(int indent = 2) const FEDSEARCH_EXCLUDES(mu_);

 private:
  struct QueueItem {
    size_t seq = 0;
    selection::Query query;
    // The epoch snapshot this request was admitted against. Keeps the
    // snapshot's caches and summaries alive until execution even if the
    // source has since published a newer epoch (RCU grace period = the
    // lifetime of the last QueueItem holding the pointer).
    std::shared_ptr<const core::Metasearcher> snapshot;
    core::SummaryMode mode = core::SummaryMode::kPlain;
    double budget_ms = 0.0;  // <= 0: already expired, drop on sight
    util::Deadline::Costs costs;
    bool predicted_expiry = false;
    // Request trace (inactive when tracing was off at submit) and the wall
    // time of enqueue, so the dequeuing worker can emit the cross-thread
    // broker_queue span retroactively. Observational only.
    util::TraceContext trace;
    uint64_t enqueue_ns = 0;
  };
  // A virtually-inflight request, waiting to feed the admission EWMA at
  // its completion time.
  struct VirtualCompletion {
    double finish_ms = 0.0;
    size_t seq = 0;
    double service_ms = 0.0;
    bool operator>(const VirtualCompletion& other) const {
      if (finish_ms != other.finish_ms) return finish_ms > other.finish_ms;
      return seq > other.seq;
    }
  };

  // Exact replay of the charge sequence SelectDatabases will perform for
  // `mode` under `costs` against a snapshot with `num_databases` databases
  // of which `num_evaluated` get adaptive evaluations — same additions,
  // same order, so comparing the sum against the budget predicts the
  // execution's expiry verdict.
  static double PredictCostMs(core::SummaryMode mode,
                              const util::Deadline::Costs& costs,
                              size_t num_databases, size_t num_evaluated);

  void WorkerLoop() FEDSEARCH_EXCLUDES(mu_);
  void ExecuteOne(QueueItem& item) FEDSEARCH_EXCLUDES(mu_);
  // Advances the virtual discrete-event schedule to `now`: completions
  // whose finish time passed feed the admission EWMA in finish order, and
  // requests whose start time passed free their virtual queue slots.
  void AdvanceVirtualClockLocked(double now) FEDSEARCH_REQUIRES(mu_);
  // Resolves everything still queued as kCancelledShutdown so every
  // submitted request reaches a terminal disposition even on a shutdown
  // with a non-empty queue.
  void CancelQueuedLocked() FEDSEARCH_REQUIRES(mu_);
  // Feeds the live SLO tracker and its gauges. The live feed order for
  // executed requests follows real completion timing, so these gauges are
  // observational; deterministic SLO numbers come from ComputeStats'
  // submit-order replay.
  void ObserveSloLocked(bool good) FEDSEARCH_REQUIRES(mu_);

  // Legacy static-metasearcher ctor wraps its argument here; the source
  // ctor leaves this empty. source_ is what Submit snapshots either way.
  std::unique_ptr<core::FixedMetasearcherSource> owned_source_;
  const core::MetasearcherSource* source_;
  const selection::ScoringFunction* scorer_;
  BrokerOptions options_;

  // Lock order: mu_ -> util::Tracer's internal lock (span scopes opened
  // under mu_ record on destruction; the tracer never calls back into the
  // broker) and mu_ -> the MetasearcherSource's terminal snapshot lock
  // (Submit copies the RCU pointer under mu_; the source never calls back
  // into the broker). mu_ is never held across SelectDatabases or any
  // other potentially-blocking call, and no broker path takes mu_ while
  // holding a pool or shard lock.
  mutable util::Mutex mu_;
  util::CondVar work_cv_;
  util::CondVar drain_cv_;
  util::CondVar started_cv_;
  size_t workers_started_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  bool stopping_ FEDSEARCH_GUARDED_BY(mu_) = false;
  std::deque<QueueItem> queue_ FEDSEARCH_GUARDED_BY(mu_);
  std::vector<RequestResult> results_ FEDSEARCH_GUARDED_BY(mu_);
  size_t enqueued_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  size_t completed_ FEDSEARCH_GUARDED_BY(mu_) = 0;

  // Virtual scheduler state (guarded by mu_, advanced in arrival order).
  double last_now_ms_ FEDSEARCH_GUARDED_BY(mu_) = 0.0;
  std::vector<double> worker_free_ms_ FEDSEARCH_GUARDED_BY(mu_);
  // Times at which waiting requests leave the queue (a worker reaches
  // them); size = virtual queue depth.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      queue_release_ FEDSEARCH_GUARDED_BY(mu_);
  std::priority_queue<VirtualCompletion, std::vector<VirtualCompletion>,
                      std::greater<VirtualCompletion>>
      inflight_ FEDSEARCH_GUARDED_BY(mu_);
  AdmissionController admission_ FEDSEARCH_GUARDED_BY(mu_);
  DegradationPolicy degradation_ FEDSEARCH_GUARDED_BY(mu_);
  // SloTracker is not itself thread-safe by design; the broker owns the
  // only instance and updates it under the scheduler lock.
  SloTracker slo_ FEDSEARCH_GUARDED_BY(mu_);
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread dispatcher_;
};

}  // namespace fedsearch::broker

#endif  // FEDSEARCH_BROKER_QUERY_BROKER_H_
