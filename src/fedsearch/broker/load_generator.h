#ifndef FEDSEARCH_BROKER_LOAD_GENERATOR_H_
#define FEDSEARCH_BROKER_LOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "fedsearch/util/rng.h"

namespace fedsearch::broker {

// Open-loop load description: requests arrive by a Poisson process at
// `arrival_rate_qps` regardless of how fast the broker drains them — the
// arrival clock never waits for completions, which is what makes overload
// possible (a closed-loop driver self-throttles and can never offer more
// than the service rate).
struct OpenLoopOptions {
  double arrival_rate_qps = 100.0;
  // Seed of the arrival stream. All randomness (inter-arrival gaps, query
  // choice, slow faults) comes from one util::Rng, advanced a fixed four
  // draws per arrival, so the offered load is a pure function of the seed.
  uint64_t seed = 0xB06E12ULL;
  // Tail-latency fault injection, mirroring FlakyDatabase's slow mode at
  // the request level: with probability slow_rate a request's service costs
  // are inflated by a factor drawn uniformly in [1, slow_factor). This is
  // what makes the admission controller's EWMA mispredict — and in-queue
  // expiries reachable — in an otherwise uniform-cost workload.
  double slow_rate = 0.0;
  double slow_factor = 8.0;
};

// One generated request.
struct Arrival {
  double arrival_ms = 0.0;        // absolute virtual arrival time
  size_t query_index = 0;         // index into the caller's query workload
  double service_inflation = 1.0; // >= 1; scales the request's cost model
  bool slow_fault = false;
};

// Deterministic Poisson arrival generator. Not thread-safe; one generator
// feeds one submission loop.
class OpenLoopGenerator {
 public:
  // `num_queries` is the size of the workload Next() indexes into (> 0).
  OpenLoopGenerator(OpenLoopOptions options, size_t num_queries);

  const OpenLoopOptions& options() const { return options_; }

  // Returns the next arrival; times are non-decreasing and strictly
  // advance in expectation by 1000/arrival_rate_qps milliseconds.
  Arrival Next();

 private:
  OpenLoopOptions options_;
  size_t num_queries_;
  util::Rng rng_;
  double clock_ms_ = 0.0;
};

}  // namespace fedsearch::broker

#endif  // FEDSEARCH_BROKER_LOAD_GENERATOR_H_
