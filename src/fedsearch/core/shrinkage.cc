#include "fedsearch/core/shrinkage.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "fedsearch/util/check.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::core {

ShrunkSummary::ShrunkSummary(
    std::vector<const summary::SummaryView*> components,
    std::vector<double> lambdas, double uniform_probability)
    : components_(std::move(components)),
      lambdas_(std::move(lambdas)),
      uniform_probability_(uniform_probability) {
  // Definition 4 mixture shape: one λ for C0 plus one per component, all
  // on the probability simplex. A violation here poisons every score this
  // summary ever produces, so it is checked in all builds.
  FEDSEARCH_CHECK(!components_.empty());
  FEDSEARCH_CHECK(lambdas_.size() == components_.size() + 1)
      << " got " << lambdas_.size() << " lambdas for "
      << components_.size() << " components";
  double sum = 0.0;
  for (double l : lambdas_) {
    FEDSEARCH_CHECK(l >= 0.0 && l <= 1.0 + 1e-9) << " lambda " << l;
    sum += l;
  }
  FEDSEARCH_CHECK(std::fabs(sum - 1.0) < 1e-6)
      << " lambdas sum to " << sum << " after EM";
  FEDSEARCH_CHECK(uniform_probability_ >= 0.0 &&
                  uniform_probability_ <= 1.0);
}

double ShrunkSummary::num_documents() const {
  return components_.back()->num_documents();
}

double ShrunkSummary::total_tokens() const {
  return components_.back()->total_tokens();
}

double ShrunkSummary::MixtureProbDoc(const std::string& word) const {
  double p = lambdas_[0] * uniform_probability_;
  for (size_t i = 0; i < components_.size(); ++i) {
    p += lambdas_[i + 1] * components_[i]->ProbDoc(word);
  }
  FEDSEARCH_DCHECK(p >= 0.0 && std::isfinite(p))
      << " mixture doc probability " << p << " for " << word;
  return std::min(1.0, p);
}

double ShrunkSummary::MixtureProbToken(const std::string& word) const {
  double p = lambdas_[0] * uniform_probability_;
  for (size_t i = 0; i < components_.size(); ++i) {
    p += lambdas_[i + 1] * components_[i]->ProbToken(word);
  }
  FEDSEARCH_DCHECK(p >= 0.0 && std::isfinite(p))
      << " mixture token probability " << p << " for " << word;
  return std::min(1.0, p);
}

double ShrunkSummary::DocFrequency(const std::string& word) const {
  return MixtureProbDoc(word) * num_documents();
}

double ShrunkSummary::TokenFrequency(const std::string& word) const {
  return MixtureProbToken(word) * total_tokens();
}

void ShrunkSummary::ForEachWord(
    const std::function<void(const std::string&, const summary::WordStats&)>&
        fn) const {
  // Union over the component vocabularies, computed in a single
  // accumulation pass (one hash probe per component word) instead of
  // re-querying every component per word. The uniform C0 assigns mass to
  // every conceivable word and is by construction not enumerable; it only
  // contributes to the probabilities of enumerated words.
  struct Probs {
    double doc = 0.0;
    double token = 0.0;
  };
  std::unordered_map<std::string, Probs> acc;
  for (size_t i = 0; i < components_.size(); ++i) {
    const summary::SummaryView* component = components_[i];
    const double lambda = lambdas_[i + 1];
    const double n = component->num_documents();
    const double tokens = component->total_tokens();
    if (lambda <= 0.0 || n <= 0.0) continue;
    component->ForEachWord(
        [&](const std::string& word, const summary::WordStats& stats) {
          Probs& p = acc[word];
          p.doc += lambda * std::min(1.0, stats.df / n);
          if (tokens > 0.0) {
            p.token += lambda * std::min(1.0, stats.ctf / tokens);
          }
        });
  }
  const double uniform = lambdas_[0] * uniform_probability_;
  const double n = num_documents();
  const double tokens = total_tokens();
  // ORDER-INDEPENDENT: emission order is a function of `acc`'s contents,
  // which are schedule-independent; consumers (summary builders, metrics)
  // accumulate per-word state, not order-sensitive float reductions.
  for (const auto& [word, probs] : acc) {
    fn(word, summary::WordStats{std::min(1.0, probs.doc + uniform) * n,
                                std::min(1.0, probs.token + uniform) * tokens});
  }
}

size_t ShrunkSummary::vocabulary_size() const {
  std::unordered_set<std::string> words;
  for (const summary::SummaryView* component : components_) {
    component->ForEachWord(
        [&](const std::string& word, const summary::WordStats&) {
          words.insert(word);
        });
  }
  return words.size();
}

std::vector<double> FitMixtureWeights(
    const summary::ContentSummary& database_summary,
    const std::vector<const summary::SummaryView*>& categories,
    double uniform_probability, size_t sample_size,
    const ShrinkageOptions& options) {
  static util::Counter& fits = util::GlobalMetrics().counter("em.fits");
  static util::Counter& converged =
      util::GlobalMetrics().counter("em.converged");
  static util::Histogram& iterations_hist =
      util::GlobalMetrics().histogram("em.iterations");
  static util::Histogram& delta_hist =
      util::GlobalMetrics().histogram("em.final_max_delta_e9");
  static util::Histogram& fit_ns =
      util::GlobalMetrics().histogram("em.fit_ns");
  FEDSEARCH_TRACE_SPAN("em_fit");
  util::ScopedTimer fit_timer(fit_ns);
  fits.Add();

  const size_t m = categories.size();
  const size_t k = m + 2;  // uniform + categories + database
  const double deleted_mass =
      sample_size > 0 ? 1.0 / static_cast<double>(sample_size) : 0.0;

  // Precompute the per-word component probabilities once; the EM loop then
  // touches only this dense matrix. Rows: words of S(D); columns:
  // C0, C1..Cm, D. The database column uses the deleted (cross-validated)
  // estimate, and each word carries its sample document frequency as
  // observation weight — see the header comment.
  std::vector<double> probs;  // row-major, k columns
  std::vector<double> weights;
  size_t rows = 0;
  database_summary.ForEachWord(
      [&](const std::string& word, const summary::WordStats&) {
        probs.push_back(uniform_probability);
        for (const summary::SummaryView* c : categories) {
          probs.push_back(c->ProbDoc(word));
        }
        const double p_db = database_summary.ProbDoc(word);
        probs.push_back(std::max(0.0, p_db - deleted_mass));
        weights.push_back(
            sample_size > 0
                ? std::max(1.0, p_db * static_cast<double>(sample_size))
                : 1.0);
        ++rows;
      });

  std::vector<double> lambdas(k, 1.0 / static_cast<double>(k));
  if (rows == 0) return lambdas;

  std::vector<double> beta(k, 0.0);
  size_t iters_run = 0;
  double last_max_delta = 0.0;
  bool did_converge = false;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    ++iters_run;
    std::fill(beta.begin(), beta.end(), 0.0);
    // Expectation: β_i = Σ_w weight_w · λ_i p̂(w|C_i) / p̂_R(w|D).
    for (size_t r = 0; r < rows; ++r) {
      const double* row = &probs[r * k];
      double p_r = 0.0;
      for (size_t i = 0; i < k; ++i) p_r += lambdas[i] * row[i];
      if (p_r <= 0.0) continue;
      for (size_t i = 0; i < k; ++i) {
        beta[i] += weights[r] * lambdas[i] * row[i] / p_r;
      }
    }
    // Maximization: λ_i = β_i / Σ_j β_j.
    double total = 0.0;
    for (double b : beta) total += b;
    if (total <= 0.0) break;
    double max_delta = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const double next = beta[i] / total;
      max_delta = std::max(max_delta, std::fabs(next - lambdas[i]));
      lambdas[i] = next;
    }
    last_max_delta = max_delta;
    if (max_delta < options.epsilon) {
      did_converge = true;
      break;
    }
  }
  iterations_hist.Record(iters_run);
  // λ deltas are sub-1.0 doubles; record in integer nano-units so the
  // log-linear buckets resolve the convergence tail.
  delta_hist.Record(static_cast<uint64_t>(last_max_delta * 1e9));
  if (did_converge) converged.Add();
  // Figure 2 post-condition: the M-step renormalizes every iteration, so
  // the returned weights must still lie on the simplex.
  double sum = 0.0;
  for (double l : lambdas) {
    FEDSEARCH_DCHECK(l >= 0.0 && l <= 1.0 + 1e-9) << " lambda " << l;
    sum += l;
  }
  FEDSEARCH_DCHECK(std::fabs(sum - 1.0) < 1e-6)
      << " EM weights sum to " << sum;
  return lambdas;
}

ShrinkageModel::ShrinkageModel(const HierarchySummaries* hierarchy_summaries,
                               std::vector<size_t> sample_sizes,
                               const ShrinkageOptions& options)
    : summaries_(hierarchy_summaries) {
  static util::Histogram& build_ns =
      util::GlobalMetrics().histogram("shrinkage.model_build_ns");
  FEDSEARCH_TRACE_SPAN("shrinkage_model_build");
  util::ScopedTimer build_timer(build_ns);
  const corpus::TopicHierarchy& h = summaries_->hierarchy();
  const size_t n = summaries_->num_databases();
  shrunk_.reserve(n);
  paths_.reserve(n);
  for (size_t db = 0; db < n; ++db) {
    const corpus::CategoryId category = summaries_->classification(db);
    std::vector<corpus::CategoryId> path = h.PathFromRoot(category);

    // Level components, each exclusive of the data the next level uses
    // (Definition 4's footnote): aggregate(Ci) − aggregate(Ci+1), and at
    // the classification node, aggregate(Cm) − S(D).
    std::vector<const summary::SummaryView*> components;
    components.reserve(path.size() + 1);
    for (size_t i = 0; i < path.size(); ++i) {
      if (i + 1 < path.size()) {
        components.push_back(
            &summaries_->ExclusiveOfChild(path[i], path[i + 1]));
      } else {
        components.push_back(&summaries_->ExclusiveOfDatabase(path[i], db));
      }
    }
    components.push_back(&summaries_->database_summary(db));

    const size_t sample_size =
        db < sample_sizes.size() ? sample_sizes[db] : 0;
    std::vector<double> lambdas =
        FitMixtureWeights(summaries_->database_summary(db),
                          {components.begin(), components.end() - 1},
                          summaries_->uniform_probability(), sample_size,
                          options);
    shrunk_.push_back(std::make_unique<ShrunkSummary>(
        std::move(components), std::move(lambdas),
        summaries_->uniform_probability()));
    paths_.push_back(std::move(path));
  }
}

}  // namespace fedsearch::core
