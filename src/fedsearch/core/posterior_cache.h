#ifndef FEDSEARCH_CORE_POSTERIOR_CACHE_H_
#define FEDSEARCH_CORE_POSTERIOR_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fedsearch/core/adaptive.h"
#include "fedsearch/core/epoch.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::core {

// Memoizes DocFrequencyPosterior grids by (database, sample_df), versioned
// by summary epoch.
//
// The posterior p(d_k | s_k) of Appendix B is a function of
// (s_k, |S|, |D̂|, γ, grid_points) only. For a fixed database, everything
// but the sample frequency s_k is a constant of its sample, so the key
// space per database is the handful of distinct s_k values its vocabulary
// exhibits — across a query workload the hit rate approaches 100%, and
// rebuilding the grid (64+ log-weight evaluations plus a CDF) leaves the
// Monte-Carlo hot path.
//
// Epoch contract (live refresh): each shard remembers the summary epoch it
// was last pinned/filled at. A caller presenting a NEWER epoch (the first
// query through a freshly published snapshot) lazily evicts the shard —
// the old sample's grids describe a summary that no longer exists — and
// re-pins it with the new parameters. A caller presenting an OLDER epoch
// (a reader still scoring against a snapshot published before a refresh)
// gets a privately built posterior without touching the shard at all, so
// in-flight queries on stale snapshots stay bit-identical to a run pinned
// at their epoch while never blocking the refresh. Static deployments pass
// epoch 0 everywhere and the cache behaves as before. Eviction is why Get
// returns shared_ptr: a stale-snapshot reader may hold grids across the
// very eviction that drops the shard's owning references.
//
// Thread-safety: one mutex-guarded shard per database. The parallel
// serving layer partitions work per database, so within one
// SelectDatabases call each shard is touched by exactly one worker and
// the locks are uncontended; they exist so concurrent SelectDatabases
// calls on one Metasearcher — and epoch-crossing calls on a shared
// LiveMetasearcher cache — remain safe.
class PosteriorCache {
 public:
  explicit PosteriorCache(size_t num_databases = 0);

  // Drops all entries and counters and resizes to `num_databases` shards.
  void Reset(size_t num_databases);

  size_t num_databases() const { return shards_.size(); }

  // The posterior for word sample frequency `sample_df` in `database`,
  // built on first use from the given sample parameters. The caller must
  // pass the same (sample_size, db_size, gamma, grid_points) for every
  // call with the same (database, epoch) — they are properties of the
  // database's sample at that epoch, not of the query. The shard records
  // the first-seen parameters and FEDSEARCH_DCHECKs every later same-epoch
  // call against them: a mismatch would otherwise silently return a grid
  // built from stale parameters.
  //
  // `epoch` is the caller's summary epoch for this database (see the epoch
  // contract above): newer-than-shard evicts and repins, older-than-shard
  // builds privately (a stale miss), equal hits the memo.
  //
  // All of a database's posteriors share one PosteriorGridBasis (support,
  // γ·ln d prior, binomial log-bases), built on the shard's first miss —
  // or ahead of time via PinParams — so a miss only runs the flat
  // log-likelihood + CDF pass.
  //
  // `trace` (optional): a miss records a posterior_grid_build span under
  // the caller's request trace, so timelines show which requests paid the
  // cold-grid cost. Hits record nothing (one span per memoized build, not
  // per lookup). Observational only.
  [[nodiscard]] std::shared_ptr<const DocFrequencyPosterior> Get(
      size_t database, size_t sample_df, size_t sample_size, double db_size,
      double gamma, size_t grid_points, SummaryEpoch epoch = 0,
      const util::TraceContext& trace = {});

  // Pre-registers `database`'s grid parameters at `epoch` and eagerly
  // builds its shared PosteriorGridBasis off the query path (the
  // Metasearcher calls this per database at construction). Idempotent for
  // identical parameters; a conflicting same-epoch re-pin trips the same
  // FEDSEARCH_DCHECK as a mismatched Get. A newer epoch evicts and repins;
  // an older epoch is ignored (the shard already serves a newer summary).
  void PinParams(size_t database, size_t sample_size, double db_size,
                 double gamma, size_t grid_points, SummaryEpoch epoch = 0);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    // Memoized grids dropped because a caller presented a newer epoch.
    uint64_t evictions = 0;
    // Privately built posteriors served to callers on older epochs.
    uint64_t stale_misses = 0;
    double hit_rate() const {
      const uint64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };
  [[nodiscard]] Stats stats() const;

  // Total posterior grids currently materialized (across all databases).
  [[nodiscard]] size_t size() const;

 private:
  // The per-database sample parameters every same-epoch Get call must
  // agree on.
  struct Params {
    size_t sample_size = 0;
    double db_size = 1.0;
    double gamma = 0.0;
    size_t grid_points = 0;
  };
  struct Shard {
    // Lock order: mu is terminal — shard code never takes another shard's
    // mu (each Get/PinParams touches exactly one shard) nor any other lock
    // while holding it; the recording tracer's internal lock nests inside.
    util::Mutex mu;
    SummaryEpoch epoch FEDSEARCH_GUARDED_BY(mu) = 0;
    bool has_params FEDSEARCH_GUARDED_BY(mu) = false;
    Params params FEDSEARCH_GUARDED_BY(mu);
    // Shared by every posterior of this database; built on first miss or
    // by PinParams.
    std::shared_ptr<const PosteriorGridBasis> basis FEDSEARCH_GUARDED_BY(mu);
    std::unordered_map<size_t, std::shared_ptr<const DocFrequencyPosterior>>
        by_df FEDSEARCH_GUARDED_BY(mu);
  };

  // Records (or validates) the shard's parameters and returns its basis,
  // building it on first use.
  const std::shared_ptr<const PosteriorGridBasis>& EnsureBasisLocked(
      size_t database, Shard& shard, size_t sample_size, double db_size,
      double gamma, size_t grid_points) FEDSEARCH_REQUIRES(shard.mu);

  // Drops the shard's memoized state and advances it to `epoch` when the
  // caller's epoch is newer. Returns true if the caller's epoch is older
  // than the shard's (the stale-reader case).
  bool ReconcileEpochLocked(Shard& shard, SummaryEpoch epoch)
      FEDSEARCH_REQUIRES(shard.mu);

  std::vector<std::unique_ptr<Shard>> shards_;
  // Per-instance counts (exposed via stats()); Get also mirrors them into
  // the global registry under posterior_cache.{hits,misses,evictions,
  // stale_misses}.
  util::Counter hits_;
  util::Counter misses_;
  util::Counter evictions_;
  util::Counter stale_misses_;
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_POSTERIOR_CACHE_H_
