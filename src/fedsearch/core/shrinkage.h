#ifndef FEDSEARCH_CORE_SHRINKAGE_H_
#define FEDSEARCH_CORE_SHRINKAGE_H_

#include <memory>
#include <string>
#include <vector>

#include "fedsearch/core/hierarchy_summaries.h"
#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/summary/content_summary.h"

namespace fedsearch::core {

// Parameters of the EM fit of Figure 2.
struct ShrinkageOptions {
  // Terminate when no λ changes by more than epsilon between iterations.
  double epsilon = 1e-6;
  size_t max_iterations = 500;
};

// The shrunk content summary R(D) of Definition 4, as a lazy view:
//   p̂_R(w|D) = λ_0·p̂(w|C0) + Σ_{i=1..m} λ_i·p̂(w|Ci) + λ_{m+1}·p̂(w|D)
// where C0 is the uniform dummy category, C1..Cm the database's category
// path (root first), each taken exclusive of the next level's data, and D
// the database's own sample summary.
//
// DocFrequency/TokenFrequency report p̂_R scaled by the database's
// estimated size, so selection algorithms consume shrunk and unshrunk
// summaries through the same interface.
class ShrunkSummary : public summary::SummaryView {
 public:
  // components[i] pairs with lambdas[i + 1]; lambdas[0] is the uniform
  // category's weight and lambdas.back() the database's own. The last
  // component must be the database summary itself. All referenced views
  // must outlive this object.
  ShrunkSummary(std::vector<const summary::SummaryView*> components,
                std::vector<double> lambdas, double uniform_probability);

  double num_documents() const override;
  double total_tokens() const override;
  double DocFrequency(const std::string& word) const override;
  double TokenFrequency(const std::string& word) const override;
  void ForEachWord(
      const std::function<void(const std::string&,
                               const summary::WordStats&)>& fn) const override;
  size_t vocabulary_size() const override;

  // Mixture weights, uniform first, database last (Table 2's layout).
  const std::vector<double>& lambdas() const { return lambdas_; }

  // p̂_R(w|D) itself (document-probability mixture).
  double MixtureProbDoc(const std::string& word) const;

 private:
  double MixtureProbToken(const std::string& word) const;

  std::vector<const summary::SummaryView*> components_;  // C1..Cm, then D
  std::vector<double> lambdas_;                          // C0, C1..Cm, D
  double uniform_probability_;
};

// Fits the category mixture weights λ0..λ_{m+1} for one database with the
// expectation-maximization procedure of Figure 2. `categories` holds the
// (exclusive) level summaries C1..Cm root-first; the β sums run over the
// words of the database's own sample summary, as in the paper.
//
// `sample_size` (|S|, the number of documents behind S(D)) enables the
// cross-validated EM of McCallum et al. [22], the paper's source for
// shrinkage: each word's β contribution is weighted by its sample document
// frequency (EM over word observations, as in [22]), and the database
// component's probability is the deleted estimate p̂(w|D) − 1/|S| (one
// sample occurrence removed). Without the deletion, EM run to convergence
// collapses to λ_database = 1, because S(D) is itself the empirical
// distribution of exactly the words the β sums range over. Pass 0 to run
// the uncorrected textbook iteration.
//
// Returns m + 2 weights ordered: uniform C0, C1..Cm, database.
std::vector<double> FitMixtureWeights(
    const summary::ContentSummary& database_summary,
    const std::vector<const summary::SummaryView*>& categories,
    double uniform_probability, size_t sample_size,
    const ShrinkageOptions& options = {});

// Shrinkage over a whole federation: builds category summaries, fits λ for
// every database, and exposes the shrunk summaries R(D). This is the
// "computed off-line ... when the sampling-based database content summaries
// are created" phase of Section 3.2.
class ShrinkageModel {
 public:
  // `hierarchy_summaries` must outlive the model. `sample_sizes[i]` is the
  // document-sample size |S| of database i, used for the cross-validated
  // EM (see FitMixtureWeights); pass an empty vector to disable deletion.
  ShrinkageModel(const HierarchySummaries* hierarchy_summaries,
                 std::vector<size_t> sample_sizes,
                 const ShrinkageOptions& options = {});

  size_t num_databases() const { return shrunk_.size(); }

  const ShrunkSummary& shrunk(size_t db_index) const {
    return *shrunk_[db_index];
  }

  // λ weights of database db_index: uniform, Root, ..., leaf, database.
  const std::vector<double>& lambdas(size_t db_index) const {
    return shrunk_[db_index]->lambdas();
  }

  // The category path C1..Cm (root-first) used for database db_index.
  const std::vector<corpus::CategoryId>& path(size_t db_index) const {
    return paths_[db_index];
  }

 private:
  const HierarchySummaries* summaries_;
  std::vector<std::unique_ptr<ShrunkSummary>> shrunk_;
  std::vector<std::vector<corpus::CategoryId>> paths_;
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_SHRINKAGE_H_
