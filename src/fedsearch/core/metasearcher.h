#ifndef FEDSEARCH_CORE_METASEARCHER_H_
#define FEDSEARCH_CORE_METASEARCHER_H_

#include <memory>
#include <vector>

#include "fedsearch/core/adaptive.h"
#include "fedsearch/core/hierarchy_summaries.h"
#include "fedsearch/core/posterior_cache.h"
#include "fedsearch/core/shrinkage.h"
#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/selection/flat_ranker.h"
#include "fedsearch/selection/hierarchical.h"
#include "fedsearch/selection/scoring.h"
#include "fedsearch/util/deadline.h"
#include "fedsearch/util/status.h"
#include "fedsearch/util/thread_pool.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::core {

// How content summaries are chosen per (query, database) during selection.
enum class SummaryMode {
  // Always the unshrunk sample summaries (QBS-Plain / FPS-Plain).
  kPlain,
  // Figure 3: per-database adaptive choice between S(D) and R(D)
  // (QBS-Shrinkage / FPS-Shrinkage).
  kAdaptiveShrinkage,
  // Always the shrunk summaries (the "universal" ablation of Section 6.2).
  kUniversalShrinkage,
};

class Metasearcher;

struct MetasearcherOptions {
  ShrinkageOptions shrinkage;
  AdaptiveOptions adaptive;
  // Seed for the adaptive Monte-Carlo draws (forked per query/database).
  uint64_t adaptive_seed = 0xADA9715EULL;
  // Worker threads for SelectDatabases (the per-database fan-out of the
  // adaptive evaluation and the scoring). 0 = auto: the FEDSEARCH_THREADS
  // environment variable if set, else the hardware concurrency. Rankings
  // are bit-identical for every thread count — each database's work runs
  // on its own deterministically-forked RNG stream and reductions happen
  // in index order on the calling thread.
  size_t num_threads = 0;

  // --- Live-refresh plumbing (set by LiveMetasearcher when it builds a
  // snapshot; static deployments leave all of these at their defaults). ---
  //
  // Global epoch of this snapshot and per-database summary epochs (the
  // epoch at which each database was last re-probed). An empty
  // summary_epochs means every database is at `epoch`.
  SummaryEpoch epoch = 0;
  std::vector<SummaryEpoch> summary_epochs;
  // Posterior cache shared across successive snapshots so the working set
  // of unchanged databases survives a refresh (epoch keys evict only the
  // re-probed shards). Must cover exactly this federation's database
  // count. When null, the metasearcher owns a private cache.
  std::shared_ptr<PosteriorCache> shared_posterior_cache;
  // Incremental corpus-statistics rebuild: the previous snapshot and the
  // (unique) indices whose samples differ from it. When `prior` is set,
  // plain statistics are produced via ScoringStatisticsCache::Rebuilt —
  // O(changed × vocabulary) instead of a full rescan — bit-identical to
  // the scan. Shrunk statistics always rebuild from scratch: shrinkage
  // couples every database through the category aggregates, so there is
  // no sound per-database delta. Both fields are consumed during
  // construction and cleared (the prior snapshot need not outlive this
  // one).
  const Metasearcher* prior = nullptr;
  std::vector<size_t> changed_databases;
};

// End-to-end federation layer: owns the per-database sample results and
// classifications, builds category summaries and the shrinkage model
// off-line, and answers database selection requests. This is the library's
// top-level entry point — see examples/metasearch.cpp.
class Metasearcher {
 public:
  // `hierarchy` must outlive the metasearcher. classifications[i] is the
  // category of database i — either the directory category (QBS) or the
  // sampler-derived one (FPS).
  Metasearcher(const corpus::TopicHierarchy* hierarchy,
               std::vector<sampling::SampleResult> samples,
               std::vector<corpus::CategoryId> classifications,
               MetasearcherOptions options = {});

  Metasearcher(const Metasearcher&) = delete;
  Metasearcher& operator=(const Metasearcher&) = delete;

  size_t num_databases() const { return samples_.size(); }
  const sampling::SampleResult& sample(size_t i) const { return samples_[i]; }
  const summary::ContentSummary& plain_summary(size_t i) const {
    return samples_[i].summary;
  }
  const ShrunkSummary& shrunk_summary(size_t i) const {
    return shrinkage_->shrunk(i);
  }
  const std::vector<double>& lambdas(size_t i) const {
    return shrinkage_->lambdas(i);
  }
  corpus::CategoryId classification(size_t i) const {
    return classifications_[i];
  }
  // True when database i's sample is unusable (the sampler aborted or
  // retrieved nothing). Selection scores such a database from its
  // category's aggregate summary — the shrinkage story applied as a pure
  // fallback — instead of dropping it from the federation.
  bool degraded(size_t i) const { return degraded_[i]; }
  // Count of degraded databases. Deadline-aware callers (the broker's
  // admission control) need this to replay the cost model exactly: degraded
  // databases skip the adaptive evaluation, so they never charge one.
  size_t num_degraded() const { return num_degraded_; }
  const HierarchySummaries& hierarchy_summaries() const {
    return *hierarchy_summaries_;
  }
  // The Root category summary: the "global" G of the LM scorer.
  const summary::ContentSummary& global_summary() const {
    return hierarchy_summaries_->root_aggregate();
  }
  // Threads SelectDatabases fans out over (resolved from the options).
  size_t num_threads() const { return num_threads_; }
  // Global epoch of this snapshot (0 for static deployments) and the epoch
  // at which database i's summary was last refreshed.
  SummaryEpoch epoch() const { return options_.epoch; }
  SummaryEpoch summary_epoch(size_t i) const {
    return options_.summary_epochs.empty() ? options_.epoch
                                           : options_.summary_epochs[i];
  }
  // Hit/miss/evict counters of the per-(database, sample_df) posterior
  // cache the adaptive path draws from; serving-layer instrumentation.
  // Under a shared cache (live refresh) these aggregate across snapshots.
  PosteriorCache::Stats posterior_cache_stats() const {
    return posterior_cache_->stats();
  }
  // Materialized posterior grids across all databases.
  size_t posterior_cache_size() const { return posterior_cache_->size(); }
  // Precomputed corpus statistics (cf(w) over the full vocabulary, mean
  // collection word count) for the unshrunk / shrunk summary sets.
  const selection::ScoringStatisticsCache& plain_statistics() const {
    return plain_statistics_;
  }
  const selection::ScoringStatisticsCache& shrunk_statistics() const {
    return shrunk_statistics_;
  }

  struct SelectionOutcome {
    std::vector<selection::RankedDatabase> ranking;
    // Instrumentation for Table 10: how many databases used R(D) for this
    // query, out of how many considered.
    size_t shrinkage_applied = 0;
    size_t databases_considered = 0;
    // Databases scored from their category aggregate because their sample
    // was unusable (see degraded()).
    size_t category_fallbacks = 0;
    // OK for a complete ranking; kDeadlineExceeded when a bounded request
    // ran out of budget (the ranking is then empty — a partial ranking
    // would silently misrank the databases never evaluated).
    util::Status status;
    // Databases visited by the bounded adaptive-evaluation loop before
    // completion or expiry. 0 for unbounded or non-adaptive calls.
    size_t evaluations_completed = 0;
  };

  // Ranks all databases for the query with the given base algorithm and
  // summary mode (the full pipeline of Figure 3). The ranking is a total
  // order over the selected databases; callers take prefixes for any k.
  //
  // Thread-safe: concurrent calls on one Metasearcher are supported. The
  // posterior cache shards its locks per database, the scoring statistics
  // are immutable after construction, and the shared thread pool
  // serializes concurrent ParallelFor loops internally; each call's result
  // stays bit-identical to a serial run (pinned by
  // tests/stress/parallel_select_stress_test.cc).
  //
  // A non-null, non-infinite `deadline` bounds the call: the adaptive
  // evaluation runs serially on the calling thread, charging the deadline's
  // cost model per database (inside AdaptiveSummarySelector::Evaluate) and
  // checking expiry at every per-database boundary; the scoring phase
  // charges Costs::score_ms per database the same way. An expired request
  // aborts with outcome.status == kDeadlineExceeded instead of burning the
  // worker on a ranking nobody will wait for. Charges are plain ordered
  // double additions, so whether a given request expires — and at which
  // boundary — is bit-reproducible and exactly predictable from the cost
  // model (what broker admission control relies on). Unbounded calls are
  // untouched by all of this, including their parallel fan-out.
  //
  // `trace` (optional) parents this call's spans — select_databases,
  // adaptive_evaluation, statistics_cache_fill, posterior_grid_build,
  // scoring — under the caller's request trace. Purely observational: an
  // inactive context (the default) and a disabled tracer both cost one
  // relaxed load, and recorded timings never flow back into scores.
  SelectionOutcome SelectDatabases(const selection::Query& query,
                                   const selection::ScoringFunction& scorer,
                                   SummaryMode mode,
                                   util::Deadline* deadline = nullptr,
                                   util::TraceContext trace = {}) const;

  // The hierarchical baseline of [17] over the same summaries
  // (QBS-Hierarchical / FPS-Hierarchical).
  std::vector<selection::RankedDatabase> SelectHierarchical(
      const selection::Query& query, const selection::ScoringFunction& scorer,
      size_t k) const;

 private:
  // Fills the scoring context for the chosen summary set: mean cw by the
  // same ordered reduction PrepareContextForQuery uses, cf(w) from the
  // mode's precomputed statistics plus a per-term delta for the databases
  // whose chosen summary differs from that base set (shrinkage applied or
  // category fallback) — O(terms × changed databases) instead of
  // O(terms × databases).
  void FillContextForChosen(
      const selection::Query& query,
      const std::vector<const summary::SummaryView*>& chosen,
      SummaryMode mode, selection::ScoringContext& context) const;

  const corpus::TopicHierarchy* hierarchy_;
  std::vector<sampling::SampleResult> samples_;
  std::vector<corpus::CategoryId> classifications_;
  std::vector<bool> degraded_;
  size_t num_degraded_ = 0;
  MetasearcherOptions options_;
  std::unique_ptr<HierarchySummaries> hierarchy_summaries_;
  std::unique_ptr<ShrinkageModel> shrinkage_;
  std::unique_ptr<selection::HierarchicalSelector> hierarchical_;
  AdaptiveSummarySelector adaptive_;
  selection::ScoringStatisticsCache plain_statistics_;
  selection::ScoringStatisticsCache shrunk_statistics_;
  // Private by default; LiveMetasearcher passes one shared across
  // snapshots (options.shared_posterior_cache). Never null.
  std::shared_ptr<PosteriorCache> posterior_cache_;
  size_t num_threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_;  // null when serving serially
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_METASEARCHER_H_
