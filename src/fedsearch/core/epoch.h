#ifndef FEDSEARCH_CORE_EPOCH_H_
#define FEDSEARCH_CORE_EPOCH_H_

#include <cstdint>

namespace fedsearch::core {

// Version number of a database's content summary under live refresh.
//
// A statically-built Metasearcher serves epoch 0 forever. Under a
// LiveMetasearcher (core/live_metasearcher.h), every published snapshot
// carries a global epoch plus a per-database summary epoch: the epoch at
// which that database's sample was last re-probed. Epoch-keyed caches
// (PosteriorCache) use the per-database value to decide whether their
// memoized state still describes the summary a caller is scoring with —
// strictly monotone, never reused, so "newer epoch" always means "newer
// summary".
using SummaryEpoch = uint64_t;

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_EPOCH_H_
