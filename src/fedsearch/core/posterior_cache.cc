#include "fedsearch/core/posterior_cache.h"

#include <cmath>

#include "fedsearch/util/check.h"

namespace fedsearch::core {

PosteriorCache::PosteriorCache(size_t num_databases) {
  Reset(num_databases);
}

void PosteriorCache::Reset(size_t num_databases) {
  shards_.clear();
  shards_.reserve(num_databases);
  for (size_t i = 0; i < num_databases; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  hits_.Reset();
  misses_.Reset();
}

const DocFrequencyPosterior& PosteriorCache::Get(
    size_t database, size_t sample_df, size_t sample_size, double db_size,
    double gamma, size_t grid_points, const util::TraceContext& trace) {
  // Cache-key validity: a bad database index would silently alias another
  // shard's grids (and a different-keyed rebuild would corrupt the "one
  // grid per (database, sample_df)" invariant the references depend on).
  FEDSEARCH_CHECK(database < shards_.size())
      << " database " << database << " of " << shards_.size();
  FEDSEARCH_CHECK(grid_points > 0);
  FEDSEARCH_DCHECK(sample_df <= sample_size)
      << " sample_df " << sample_df << " > sample size " << sample_size;
  FEDSEARCH_DCHECK(std::isfinite(gamma) && std::isfinite(db_size));
  Shard& shard = *shards_[database];
  std::lock_guard<std::mutex> lock(shard.mu);
  static util::Counter& global_hits =
      util::GlobalMetrics().counter("posterior_cache.hits");
  static util::Counter& global_misses =
      util::GlobalMetrics().counter("posterior_cache.misses");
  auto it = shard.by_df.find(sample_df);
  if (it != shard.by_df.end()) {
    hits_.Add();
    global_hits.Add();
    return *it->second;
  }
  misses_.Add();
  global_misses.Add();
  // Building under the shard lock keeps the invariant "one grid per key"
  // without a second lookup; construction is O(grid_points) and rare.
  util::Tracer::Scope build_span("posterior_grid_build", trace);
  build_span.AttrUint("database", database).AttrUint("sample_df", sample_df);
  auto posterior = std::make_unique<DocFrequencyPosterior>(
      sample_df, sample_size, db_size, gamma, grid_points);
  return *shard.by_df.emplace(sample_df, std::move(posterior))
              .first->second;
}

PosteriorCache::Stats PosteriorCache::stats() const {
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  return s;
}

size_t PosteriorCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->by_df.size();
  }
  return total;
}

}  // namespace fedsearch::core
