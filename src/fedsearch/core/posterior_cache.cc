#include "fedsearch/core/posterior_cache.h"

#include <cmath>

#include "fedsearch/util/check.h"

namespace fedsearch::core {

PosteriorCache::PosteriorCache(size_t num_databases) {
  Reset(num_databases);
}

void PosteriorCache::Reset(size_t num_databases) {
  shards_.clear();
  shards_.reserve(num_databases);
  for (size_t i = 0; i < num_databases; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  hits_.Reset();
  misses_.Reset();
  evictions_.Reset();
  stale_misses_.Reset();
}

const std::shared_ptr<const PosteriorGridBasis>&
PosteriorCache::EnsureBasisLocked(size_t database, Shard& shard,
                                  size_t sample_size, double db_size,
                                  double gamma, size_t grid_points) {
  if (!shard.has_params) {
    shard.params = Params{sample_size, db_size, gamma, grid_points};
    shard.has_params = true;
  } else {
    // The cache key is (database, sample_df) only: parameters that drift
    // between calls would silently hand back grids built from stale
    // values, so the first-seen parameters are pinned per shard — until a
    // newer epoch evicts the shard and re-pins them.
    FEDSEARCH_DCHECK(shard.params.sample_size == sample_size &&
                     shard.params.db_size == db_size &&
                     shard.params.gamma == gamma &&
                     shard.params.grid_points == grid_points)
        << " posterior params changed for database " << database
        << ": sample_size " << shard.params.sample_size << " vs "
        << sample_size << ", db_size " << shard.params.db_size << " vs "
        << db_size << ", gamma " << shard.params.gamma << " vs " << gamma
        << ", grid_points " << shard.params.grid_points << " vs "
        << grid_points;
  }
  if (shard.basis == nullptr) {
    shard.basis =
        std::make_shared<PosteriorGridBasis>(db_size, gamma, grid_points);
  }
  return shard.basis;
}

bool PosteriorCache::ReconcileEpochLocked(Shard& shard, SummaryEpoch epoch) {
  if (epoch < shard.epoch) {
    return true;  // Stale reader: the shard already serves a newer summary.
  }
  if (epoch > shard.epoch) {
    // First caller through a freshly published snapshot: the memoized
    // grids describe a summary that no longer exists. Dropping params and
    // basis lets the caller re-pin the new sample's parameters.
    static util::Counter& global_evictions =
        util::GlobalMetrics().counter("posterior_cache.evictions");
    const uint64_t dropped = shard.by_df.size();
    evictions_.Add(dropped);
    global_evictions.Add(dropped);
    shard.by_df.clear();
    shard.basis.reset();
    shard.has_params = false;
    shard.params = Params{};
    shard.epoch = epoch;
  }
  return false;
}

std::shared_ptr<const DocFrequencyPosterior> PosteriorCache::Get(
    size_t database, size_t sample_df, size_t sample_size, double db_size,
    double gamma, size_t grid_points, SummaryEpoch epoch,
    const util::TraceContext& trace) {
  // Cache-key validity: a bad database index would silently alias another
  // shard's grids (and a different-keyed rebuild would corrupt the "one
  // grid per (database, sample_df, epoch)" invariant).
  FEDSEARCH_CHECK(database < shards_.size())
      << " database " << database << " of " << shards_.size();
  FEDSEARCH_CHECK(grid_points > 0);
  FEDSEARCH_DCHECK(sample_df <= sample_size)
      << " sample_df " << sample_df << " > sample size " << sample_size;
  FEDSEARCH_DCHECK(std::isfinite(gamma) && std::isfinite(db_size));
  Shard& shard = *shards_[database];
  util::MutexLock lock(shard.mu);
  static util::Counter& global_hits =
      util::GlobalMetrics().counter("posterior_cache.hits");
  static util::Counter& global_misses =
      util::GlobalMetrics().counter("posterior_cache.misses");
  static util::Counter& global_stale =
      util::GlobalMetrics().counter("posterior_cache.stale_misses");
  if (ReconcileEpochLocked(shard, epoch)) {
    // A reader on an older snapshot must get exactly the posterior its
    // epoch's parameters imply, without disturbing the shard serving the
    // current epoch — build privately, skip the memo and its parameter
    // pin. Not counted as a miss: hit/miss accounting describes the
    // current-epoch working set.
    stale_misses_.Add();
    global_stale.Add();
    util::Tracer::Scope build_span("posterior_grid_build", trace);
    build_span.AttrUint("database", database)
        .AttrUint("sample_df", sample_df);
    auto basis =
        std::make_shared<PosteriorGridBasis>(db_size, gamma, grid_points);
    return std::make_shared<DocFrequencyPosterior>(std::move(basis),
                                                   sample_df, sample_size);
  }
  // Pin-or-validate the shard parameters on EVERY call, hits included: a
  // hit under drifted parameters would otherwise silently serve a grid
  // built from stale values (the key is (database, sample_df) only).
  const std::shared_ptr<const PosteriorGridBasis>& basis = EnsureBasisLocked(
      database, shard, sample_size, db_size, gamma, grid_points);
  auto it = shard.by_df.find(sample_df);
  if (it != shard.by_df.end()) {
    hits_.Add();
    global_hits.Add();
    return it->second;
  }
  misses_.Add();
  global_misses.Add();
  // Building under the shard lock keeps the invariant "one grid per key"
  // without a second lookup; construction is O(grid_points) and rare.
  util::Tracer::Scope build_span("posterior_grid_build", trace);
  build_span.AttrUint("database", database).AttrUint("sample_df", sample_df);
  auto posterior = std::make_shared<const DocFrequencyPosterior>(
      basis, sample_df, sample_size);
  return shard.by_df.emplace(sample_df, std::move(posterior)).first->second;
}

void PosteriorCache::PinParams(size_t database, size_t sample_size,
                               double db_size, double gamma,
                               size_t grid_points, SummaryEpoch epoch) {
  FEDSEARCH_CHECK(database < shards_.size())
      << " database " << database << " of " << shards_.size();
  FEDSEARCH_CHECK(grid_points > 0);
  FEDSEARCH_DCHECK(std::isfinite(gamma) && std::isfinite(db_size));
  Shard& shard = *shards_[database];
  util::MutexLock lock(shard.mu);
  if (ReconcileEpochLocked(shard, epoch)) {
    return;  // Stale pin: the shard already serves a newer summary.
  }
  EnsureBasisLocked(database, shard, sample_size, db_size, gamma,
                    grid_points);
}

PosteriorCache::Stats PosteriorCache::stats() const {
  Stats s;
  s.hits = hits_.value();
  s.misses = misses_.value();
  s.evictions = evictions_.value();
  s.stale_misses = stale_misses_.value();
  return s;
}

size_t PosteriorCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->by_df.size();
  }
  return total;
}

}  // namespace fedsearch::core
