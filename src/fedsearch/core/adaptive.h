#ifndef FEDSEARCH_CORE_ADAPTIVE_H_
#define FEDSEARCH_CORE_ADAPTIVE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fedsearch/core/epoch.h"
#include "fedsearch/sampling/sample_result.h"
#include "fedsearch/selection/scoring.h"
#include "fedsearch/summary/content_summary.h"
#include "fedsearch/util/deadline.h"
#include "fedsearch/util/rng.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::core {

// Parameters of the score-uncertainty estimation of Section 4 / Appendix B.
struct AdaptiveOptions {
  // Monte-Carlo draws over (d1, ..., dn) combinations. The paper observes
  // that "usually, after examining just a few hundred random combinations,
  // mean and variance converge to a stable value".
  size_t min_draws = 100;
  size_t max_draws = 400;
  // Early stop when mean and stddev both move less than this relative
  // amount between convergence checks.
  double convergence_tolerance = 0.02;
  // Log-spaced grid resolution of each word's posterior p(d_k | s_k).
  size_t grid_points = 64;

  // Shrinkage fires when stddev > uncertainty_threshold · (mean − default
  // score). The paper states the rule as "standard deviation ... larger
  // than its mean"; applied literally, scorers with a built-in belief
  // floor (CORI's 0.4 term, LM's global smoothing) can never qualify, so
  // the mean is first reduced by the scorer's default score and the
  // comparison is scaled by this threshold (see DESIGN.md).
  double uncertainty_threshold = 0.3;

  // Section 4's boundary cases: when every query word appears in close to
  // all sample documents — or in close to none — "shrinkage would provide
  // limited benefit and should then be avoided". With this gate on, the
  // score-distribution test only runs for mixed-evidence pairs: at least
  // one query word solidly present in the sample and at least one absent.
  bool require_mixed_evidence = true;
  // "Solidly present": sample df >= this.
  size_t present_min_df = 2;
};

// γ = 1/α − 1, the power-law prior exponent of Appendix B, from a
// database's Mandelbrot rank-frequency exponent α. Degenerate fits are
// clamped: a near-zero α (e.g. −0.01 from a two-point fit over a tiny
// sample) would yield γ ≈ −101 and collapse the posterior p(d|s) onto
// d = 1 regardless of the binomial evidence, so any α that is not safely
// negative (α > −0.25, including non-negative and non-finite values)
// falls back to the pure-Zipf default α = −1 (γ = −2), the same default
// used when no fit is available. Exposed for testing.
double PowerLawGamma(double mandelbrot_alpha);

// A summary view that overrides the document frequencies of a few words —
// the "assume w_k appears in exactly d_k documents" counterfactual of the
// Content Summary Selection step (Figure 3). Token frequencies of
// overridden words are scaled proportionally so LM-style scorers respond
// to the perturbation too — both for point lookups and for ForEachWord
// vocabulary iteration.
class OverrideSummary : public summary::SummaryView {
 public:
  // Both referents must outlive this object.
  OverrideSummary(const summary::SummaryView* base,
                  const std::unordered_map<std::string, double>* df_override);

  double num_documents() const override { return base_->num_documents(); }
  double total_tokens() const override { return base_->total_tokens(); }
  double DocFrequency(const std::string& word) const override;
  double TokenFrequency(const std::string& word) const override;
  void ForEachWord(
      const std::function<void(const std::string&,
                               const summary::WordStats&)>& fn) const override;
  size_t vocabulary_size() const override;

 private:
  const summary::SummaryView* base_;
  const std::unordered_map<std::string, double>* df_override_;
};

// The per-database constants of the Appendix B posterior grid, shared by
// every sample-frequency posterior of one database: the deduplicated
// log-spaced integer support over [1, |D|] plus, per grid point, the
// precomputed prior γ·ln d and the binomial log-bases ln(d/|D|) and
// ln(1 − d/|D|). Flat (SoA) contiguous arrays, so building one posterior
// from the basis is a single fused, vectorizable pass over the grid —
// only the two multipliers s and |S|−s depend on the word.
//
// Grid points with 1 − d/|D| <= 0 (d has reached |D|) have no finite
// ln(1 − d/|D|); the support is strictly increasing, so they form a
// suffix starting at zero_q_begin() and their log_q() slots are unused.
class PosteriorGridBasis {
 public:
  PosteriorGridBasis(double db_size, double gamma, size_t grid_points);

  size_t size() const { return support_.size(); }
  const std::vector<double>& support() const { return support_; }
  const std::vector<double>& prior_log_weight() const { return prior_; }
  const std::vector<double>& log_p() const { return log_p_; }
  const std::vector<double>& log_q() const { return log_q_; }
  size_t zero_q_begin() const { return zero_q_begin_; }

  double db_size() const { return db_size_; }
  double gamma() const { return gamma_; }
  size_t grid_points() const { return grid_points_; }

 private:
  std::vector<double> support_;
  std::vector<double> prior_;
  std::vector<double> log_p_;
  std::vector<double> log_q_;
  size_t zero_q_begin_ = 0;
  double db_size_ = 1.0;
  double gamma_ = 0.0;
  size_t grid_points_ = 0;
};

// The posterior over a query word's true document frequency given its
// sample frequency (Appendix B):
//   p(d | s) ∝ Binomial(s; |S|, d/|D|) · c·d^γ
// with γ = 1/α − 1 from the database's Mandelbrot fit. Discretized on the
// log-spaced grid of a PosteriorGridBasis; stores only the flat weight and
// CDF arrays (the basis is shared across all of a database's posteriors).
// Exposed for testing.
class DocFrequencyPosterior {
 public:
  // Convenience overload: builds a private basis. Prefer the shared-basis
  // overload on hot paths (PosteriorCache pins one basis per database).
  DocFrequencyPosterior(size_t sample_df, size_t sample_size, double db_size,
                        double gamma, size_t grid_points);
  DocFrequencyPosterior(std::shared_ptr<const PosteriorGridBasis> basis,
                        size_t sample_df, size_t sample_size);

  // Draws one d value.
  double Sample(util::Rng& rng) const {
    return basis_->support()[SampleIndex(rng)];
  }

  // Draws a grid index by inverse-CDF lookup. Consumes exactly one
  // rng.NextDouble() and returns exactly the index util::DiscreteSampler's
  // lower_bound search would (first cdf >= x, end-clamped), so the serial
  // RNG-draw stream and the drawn d sequence are unchanged from the
  // sampler-based implementation — the guide table only skips ahead to a
  // proven lower bound of that index, making the draw O(1) instead of a
  // binary search. Defined here so the Monte-Carlo draw loop inlines it.
  size_t SampleIndex(util::Rng& rng) const {
    if (cdf_.empty()) return 0;
    if (cdf_.back() <= 0.0) return 0;
    const double x = rng.NextDouble();
    // x < 1 (NextDouble is in [0, 1)), so the bucket index stays < kGuideBuckets.
    size_t i = guide_[static_cast<size_t>(x * kGuideBuckets)];
    const double* cdf = cdf_.data();
    const size_t last = cdf_.size() - 1;
    while (i < last && cdf[i] < x) ++i;
    return i;
  }

  size_t size() const { return weights_.size(); }
  const std::vector<double>& support() const { return basis_->support(); }
  const std::vector<double>& weights() const { return weights_; }
  const PosteriorGridBasis& basis() const { return *basis_; }

  // Flat views of the draw machinery for callers that unroll SampleIndex
  // into their own loop (AdaptiveSummarySelector's fast path): the
  // normalized inclusive-prefix-sum CDF and the guide table.
  const std::vector<double>& cdf() const { return cdf_; }
  const std::vector<uint32_t>& guide() const { return guide_; }

  // Guide-table resolution for SampleIndex: bucket b covers draws in
  // [b/kGuideBuckets, (b+1)/kGuideBuckets) and guide_[b] holds the first
  // index whose cdf is >= b/kGuideBuckets — a lower bound on the answer
  // for every x in the bucket, so the forward scan is O(1) on average.
  static constexpr size_t kGuideBuckets = 64;

 private:
  // The sample-frequency-dependent pass: log-likelihood over the basis
  // grid, exp-normalization, and the inclusive prefix-sum CDF.
  void BuildWeights(size_t sample_df, size_t sample_size);

  std::shared_ptr<const PosteriorGridBasis> basis_;
  std::vector<double> weights_;   // exp(lw − max lw), in [0, 1]
  std::vector<double> cdf_;       // normalized inclusive prefix sums
  std::vector<uint32_t> guide_;   // kGuideBuckets scan starting points
};

class PosteriorCache;

// Decides — per query and database — whether the sample summary is
// trustworthy or shrinkage should be applied: the Content Summary Selection
// step of Figure 3. Stateless apart from options.
class AdaptiveSummarySelector {
 public:
  explicit AdaptiveSummarySelector(AdaptiveOptions options = {});

  // Computed score-distribution statistics for one (query, database) pair.
  struct Uncertainty {
    double mean = 0.0;
    double stddev = 0.0;
    size_t draws = 0;
    bool use_shrinkage = false;
  };

  // Estimates the uncertainty of scorer's s(q, D) under the document
  // frequency posterior and applies the paper's rule: use the shrunk
  // summary iff stddev > mean. `sample` supplies s_k, |S|, |D̂| and the
  // power-law exponent; `context` must be the context the real scoring
  // will use.
  Uncertainty Evaluate(const selection::Query& query,
                       const sampling::SampleResult& sample,
                       const selection::ScoringFunction& scorer,
                       const selection::ScoringContext& context,
                       util::Rng& rng) const {
    return Evaluate(query, sample, scorer, context, rng, nullptr, 0);
  }

  // Same, but memoizing the per-word posteriors in `cache` under
  // `database_index` (see PosteriorCache). The posterior for a word
  // depends only on (s_k, |S|, |D̂|, γ, grid_points) — everything except
  // s_k is fixed per database — so across a query workload the cache
  // converges to one entry per distinct sample frequency and the hit rate
  // approaches 100%. Results are bit-identical to the uncached overload.
  //
  // `epoch` is the summary epoch of `sample` for this database (0 for
  // static deployments); the cache uses it to decide between its memo,
  // eviction, and a private stale-reader build (see PosteriorCache).
  //
  // A non-null `deadline` marks this evaluation as one unit of bounded
  // work: the call charges Costs::adaptive_evaluation_ms on entry — the
  // per-database evaluation boundary of the deadline contract — and, when
  // that charge crosses the budget, skips the Monte-Carlo work entirely
  // (the enclosing request is aborting; its decision will never be used).
  // The charge is unconditional so consumed_ms() stays an exact replay of
  // the cost model regardless of gate outcomes.
  // `trace` (optional) parents the posterior_grid_build spans recorded on
  // cache misses under the caller's request trace; observational only.
  Uncertainty Evaluate(const selection::Query& query,
                       const sampling::SampleResult& sample,
                       const selection::ScoringFunction& scorer,
                       const selection::ScoringContext& context,
                       util::Rng& rng, PosteriorCache* cache,
                       size_t database_index, SummaryEpoch epoch = 0,
                       util::Deadline* deadline = nullptr,
                       const util::TraceContext& trace = {}) const;

 private:
  AdaptiveOptions options_;
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_ADAPTIVE_H_
