#ifndef FEDSEARCH_CORE_LIVE_METASEARCHER_H_
#define FEDSEARCH_CORE_LIVE_METASEARCHER_H_

#include <memory>
#include <vector>

#include "fedsearch/core/epoch.h"
#include "fedsearch/core/metasearcher.h"
#include "fedsearch/util/mutex.h"
#include "fedsearch/util/status.h"
#include "fedsearch/util/thread_annotations.h"

namespace fedsearch::core {

// Where serving code obtains the Metasearcher it scores against. The
// indirection lets the same broker serve either a fixed federation (a
// plain Metasearcher, wrapped by FixedMetasearcherSource) or a live one
// whose summaries refresh underneath it (LiveMetasearcher). Snapshot() is
// wait-free with respect to refreshes: it never blocks on a snapshot
// build, only on the pointer swap.
class MetasearcherSource {
 public:
  virtual ~MetasearcherSource() = default;

  // The current immutable snapshot. The returned pointer (and everything
  // reachable from it) stays valid for as long as the caller holds it,
  // even across later refreshes — per-request code captures it once and
  // scores every phase of that request against the same epoch.
  [[nodiscard]] virtual std::shared_ptr<const Metasearcher> Snapshot()
      const = 0;
};

// Adapts a caller-owned, never-refreshed Metasearcher to the source
// interface. The aliasing snapshot does not own the metasearcher: the
// referent must outlive this source and every snapshot taken from it.
class FixedMetasearcherSource : public MetasearcherSource {
 public:
  explicit FixedMetasearcherSource(const Metasearcher* meta)
      : snapshot_(std::shared_ptr<const Metasearcher>(), meta) {}

  [[nodiscard]] std::shared_ptr<const Metasearcher> Snapshot()
      const override {
    return snapshot_;
  }

 private:
  std::shared_ptr<const Metasearcher> snapshot_;
};

// One database's re-probed summary, as produced by a fresh sampler run
// against the live corpus.
struct SummaryUpdate {
  size_t database = 0;
  sampling::SampleResult sample;
  corpus::CategoryId classification = 0;
};

// Posterior-cache activity attributed to one epoch: the counter deltas
// accumulated while that epoch's snapshot was current.
struct EpochCacheStats {
  SummaryEpoch epoch = 0;
  PosteriorCache::Stats stats;
};

// Epoch-versioned Metasearcher publication with RCU-style hot swap.
//
// Readers call Snapshot() and score against an immutable Metasearcher;
// a refresh builds the NEXT snapshot entirely off the publication lock —
// category aggregates, shrinkage model, corpus statistics (incrementally,
// via ScoringStatisticsCache::Rebuilt), posterior-cache re-pinning — and
// then swaps one shared_ptr. SelectDatabases therefore never blocks on a
// refresh, and a refresh never waits for in-flight queries: snapshots
// pinned by running requests are reclaimed by shared_ptr when the last
// reader drops them.
//
// The posterior cache is shared across snapshots so the working set of
// grids for unchanged databases survives a refresh; the per-database
// summary epochs carried by each snapshot key its invalidation (see
// PosteriorCache's epoch contract — re-probed shards evict lazily on
// first use, readers on older snapshots build privately).
class LiveMetasearcher : public MetasearcherSource {
 public:
  // Builds and publishes the epoch-0 snapshot. `hierarchy` must outlive
  // this object. `options.epoch`, `options.summary_epochs`,
  // `options.shared_posterior_cache`, `options.prior`, and
  // `options.changed_databases` are owned by the refresh machinery and
  // must be left at their defaults.
  LiveMetasearcher(const corpus::TopicHierarchy* hierarchy,
                   std::vector<sampling::SampleResult> samples,
                   std::vector<corpus::CategoryId> classifications,
                   MetasearcherOptions options = {});

  LiveMetasearcher(const LiveMetasearcher&) = delete;
  LiveMetasearcher& operator=(const LiveMetasearcher&) = delete;

  // The currently published snapshot; never null. Wait-free with respect
  // to snapshot builds (blocks only on the publication pointer swap).
  [[nodiscard]] std::shared_ptr<const Metasearcher> Snapshot()
      const override FEDSEARCH_EXCLUDES(mu_);

  // Applies one batch of re-probed summaries and publishes a new snapshot
  // at the next epoch. Serializes with other refreshers (writer_mu_); the
  // expensive snapshot build happens before the publication swap, so
  // concurrent Snapshot() callers are never blocked behind it. Updates
  // must name distinct in-range databases; an empty batch still advances
  // the epoch (useful for tests), touching no summaries.
  [[nodiscard]] util::Status ApplyRefresh(std::vector<SummaryUpdate> updates)
      FEDSEARCH_EXCLUDES(writer_mu_, mu_);

  // Epoch of the currently published snapshot.
  [[nodiscard]] SummaryEpoch epoch() const FEDSEARCH_EXCLUDES(mu_);

  // Cumulative shared posterior-cache counters (all epochs).
  [[nodiscard]] PosteriorCache::Stats posterior_cache_stats() const {
    return posterior_cache_->stats();
  }

  // Per-epoch cache attribution for every epoch that has been superseded:
  // entry i holds the counter deltas observed while epoch i's snapshot
  // was the published one. The current epoch's in-progress delta is not
  // included (it is still accumulating).
  [[nodiscard]] std::vector<EpochCacheStats> cache_history() const
      FEDSEARCH_EXCLUDES(writer_mu_);

 private:
  // Builds a snapshot of the master state at `epoch`; runs with
  // writer_mu_ held (master samples stay stable) but mu_ free.
  std::shared_ptr<const Metasearcher> BuildSnapshotLocked(
      const Metasearcher* prior, std::vector<size_t> changed)
      FEDSEARCH_REQUIRES(writer_mu_);

  const corpus::TopicHierarchy* hierarchy_;
  MetasearcherOptions base_options_;
  std::shared_ptr<PosteriorCache> posterior_cache_;

  // Lock order: writer_mu_ before mu_. ApplyRefresh holds writer_mu_
  // across the whole refresh (master-state mutation + snapshot build) and
  // takes mu_ only for the final pointer swap; nothing acquires
  // writer_mu_ while holding mu_.
  mutable util::Mutex writer_mu_ FEDSEARCH_ACQUIRED_BEFORE(mu_);
  // Master copies the next snapshot is built from (the published
  // snapshots hold their own immutable copies).
  std::vector<sampling::SampleResult> samples_ FEDSEARCH_GUARDED_BY(writer_mu_);
  std::vector<corpus::CategoryId> classifications_
      FEDSEARCH_GUARDED_BY(writer_mu_);
  std::vector<SummaryEpoch> summary_epochs_ FEDSEARCH_GUARDED_BY(writer_mu_);
  SummaryEpoch epoch_ FEDSEARCH_GUARDED_BY(writer_mu_) = 0;
  // Per-epoch cache attribution: counters at the last publication, and
  // the completed-epoch deltas.
  PosteriorCache::Stats stats_at_publish_ FEDSEARCH_GUARDED_BY(writer_mu_);
  std::vector<EpochCacheStats> cache_history_ FEDSEARCH_GUARDED_BY(writer_mu_);

  // Lock order: mu_ is terminal — it guards only the published pointer
  // and is never held while taking another lock (the swap and the read
  // are pointer copies).
  mutable util::Mutex mu_;
  std::shared_ptr<const Metasearcher> current_ FEDSEARCH_GUARDED_BY(mu_);
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_LIVE_METASEARCHER_H_
