#ifndef FEDSEARCH_CORE_HIERARCHY_SUMMARIES_H_
#define FEDSEARCH_CORE_HIERARCHY_SUMMARIES_H_

#include <cstddef>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fedsearch/corpus/topic_hierarchy.h"
#include "fedsearch/summary/content_summary.h"

namespace fedsearch::core {

// A lazily-subtracted summary: `minuend` minus `subtrahend`, clamped at
// zero. Used to implement Definition 4's overlap rule — "we subtract from
// S(Ci) all the data used to construct S(Ci+1)" — without materializing a
// summary per (category, child) pair per database.
class SubtractedSummary : public summary::SummaryView {
 public:
  // Both views must outlive this object. The subtrahend's data must be a
  // subset of the minuend's (a child subtree of the aggregated category).
  SubtractedSummary(const summary::SummaryView* minuend,
                    const summary::SummaryView* subtrahend);

  double num_documents() const override;
  double total_tokens() const override;
  double DocFrequency(const std::string& word) const override;
  double TokenFrequency(const std::string& word) const override;
  void ForEachWord(
      const std::function<void(const std::string&,
                               const summary::WordStats&)>& fn) const override;
  size_t vocabulary_size() const override;

 private:
  const summary::SummaryView* minuend_;
  const summary::SummaryView* subtrahend_;
};

// Category content summaries (Definition 3) over a topic hierarchy, plus
// the sibling-exclusive views shrinkage needs.
//
// For every category C, aggregate(C) combines the approximate summaries of
// all databases classified in C's subtree, size-weighted per Equation 1.
// For a database D with path C1, ..., Cm, the summary used at level i is
// aggregate(Ci) minus aggregate(Ci+1) — and at level m, aggregate(Cm)
// minus S(D) itself — so the mixture components of Definition 4 draw on
// disjoint data.
class HierarchySummaries {
 public:
  // `hierarchy` and the summaries must outlive this object.
  // classifications[i] is the category of database i (any node, not
  // necessarily a leaf).
  HierarchySummaries(
      const corpus::TopicHierarchy* hierarchy,
      std::vector<const summary::ContentSummary*> database_summaries,
      std::vector<corpus::CategoryId> classifications);

  const corpus::TopicHierarchy& hierarchy() const { return *hierarchy_; }

  // Aggregated summary of the subtree rooted at `category`.
  const summary::ContentSummary& aggregate(corpus::CategoryId category) const {
    return aggregates_[static_cast<size_t>(category)];
  }

  // The root aggregate doubles as the "global" category summary G used by
  // the LM selection algorithm (Section 5.3).
  const summary::ContentSummary& root_aggregate() const {
    return aggregates_[0];
  }

  // aggregate(category) minus aggregate(child_on_path); cached per edge.
  const SubtractedSummary& ExclusiveOfChild(
      corpus::CategoryId category, corpus::CategoryId child_on_path) const;

  // aggregate(category) minus database `db_index`'s own summary (the level-m
  // component for that database). Cached per database.
  const SubtractedSummary& ExclusiveOfDatabase(corpus::CategoryId category,
                                               size_t db_index) const;

  // Uniform word probability of the dummy category C0: 1 / |V| over the
  // union vocabulary of all approximate summaries.
  double uniform_probability() const { return uniform_probability_; }

  size_t num_databases() const { return database_summaries_.size(); }
  const summary::ContentSummary& database_summary(size_t i) const {
    return *database_summaries_[i];
  }
  corpus::CategoryId classification(size_t i) const {
    return classifications_[i];
  }

 private:
  const corpus::TopicHierarchy* hierarchy_;
  std::vector<const summary::ContentSummary*> database_summaries_;
  std::vector<corpus::CategoryId> classifications_;
  std::vector<summary::ContentSummary> aggregates_;
  double uniform_probability_ = 0.0;
  // Keyed by (parent, child) edge / by database index. std::map keeps
  // pointer stability irrelevant: values are node-allocated.
  mutable std::map<std::pair<corpus::CategoryId, corpus::CategoryId>,
                   SubtractedSummary>
      edge_exclusive_;
  mutable std::map<std::pair<corpus::CategoryId, size_t>, SubtractedSummary>
      database_exclusive_;
};

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_HIERARCHY_SUMMARIES_H_
