#include "fedsearch/core/hierarchy_summaries.h"

#include <algorithm>

namespace fedsearch::core {

SubtractedSummary::SubtractedSummary(const summary::SummaryView* minuend,
                                     const summary::SummaryView* subtrahend)
    : minuend_(minuend), subtrahend_(subtrahend) {}

double SubtractedSummary::num_documents() const {
  return std::max(0.0, minuend_->num_documents() -
                           subtrahend_->num_documents());
}

double SubtractedSummary::total_tokens() const {
  return std::max(0.0, minuend_->total_tokens() - subtrahend_->total_tokens());
}

double SubtractedSummary::DocFrequency(const std::string& word) const {
  return std::max(0.0,
                  minuend_->DocFrequency(word) - subtrahend_->DocFrequency(word));
}

double SubtractedSummary::TokenFrequency(const std::string& word) const {
  return std::max(0.0, minuend_->TokenFrequency(word) -
                           subtrahend_->TokenFrequency(word));
}

void SubtractedSummary::ForEachWord(
    const std::function<void(const std::string&, const summary::WordStats&)>&
        fn) const {
  minuend_->ForEachWord(
      [&](const std::string& word, const summary::WordStats& stats) {
        const summary::WordStats out{
            std::max(0.0, stats.df - subtrahend_->DocFrequency(word)),
            std::max(0.0, stats.ctf - subtrahend_->TokenFrequency(word))};
        if (out.df > 0.0 || out.ctf > 0.0) fn(word, out);
      });
}

size_t SubtractedSummary::vocabulary_size() const {
  size_t n = 0;
  ForEachWord([&](const std::string&, const summary::WordStats&) { ++n; });
  return n;
}

HierarchySummaries::HierarchySummaries(
    const corpus::TopicHierarchy* hierarchy,
    std::vector<const summary::ContentSummary*> database_summaries,
    std::vector<corpus::CategoryId> classifications)
    : hierarchy_(hierarchy),
      database_summaries_(std::move(database_summaries)),
      classifications_(std::move(classifications)) {
  const size_t nodes = hierarchy_->size();
  aggregates_.resize(nodes);

  // Group databases by their classification node.
  std::vector<std::vector<const summary::ContentSummary*>> at_node(nodes);
  for (size_t i = 0; i < database_summaries_.size(); ++i) {
    at_node[static_cast<size_t>(classifications_[i])].push_back(
        database_summaries_[i]);
  }

  // Nodes are allocated parents-first, so a reverse pass visits children
  // before their parents; aggregate bottom-up.
  for (size_t n = nodes; n-- > 0;) {
    summary::ContentSummary agg =
        summary::ContentSummary::AggregateCategory(at_node[n]);
    for (corpus::CategoryId c :
         hierarchy_->node(static_cast<corpus::CategoryId>(n)).children) {
      const summary::ContentSummary& child =
          aggregates_[static_cast<size_t>(c)];
      child.ForEachWord(
          [&](const std::string& w, const summary::WordStats& stats) {
            agg.AddWord(w, stats);
          });
      agg.set_num_documents(agg.num_documents() + child.num_documents());
    }
    aggregates_[n] = std::move(agg);
  }

  const size_t vocab = aggregates_[0].vocabulary_size();
  uniform_probability_ = vocab > 0 ? 1.0 / static_cast<double>(vocab) : 0.0;
}

const SubtractedSummary& HierarchySummaries::ExclusiveOfChild(
    corpus::CategoryId category, corpus::CategoryId child_on_path) const {
  const auto key = std::make_pair(category, child_on_path);
  auto it = edge_exclusive_.find(key);
  if (it == edge_exclusive_.end()) {
    it = edge_exclusive_
             .emplace(key, SubtractedSummary(
                               &aggregates_[static_cast<size_t>(category)],
                               &aggregates_[static_cast<size_t>(child_on_path)]))
             .first;
  }
  return it->second;
}

const SubtractedSummary& HierarchySummaries::ExclusiveOfDatabase(
    corpus::CategoryId category, size_t db_index) const {
  const auto key = std::make_pair(category, db_index);
  auto it = database_exclusive_.find(key);
  if (it == database_exclusive_.end()) {
    it = database_exclusive_
             .emplace(key, SubtractedSummary(
                               &aggregates_[static_cast<size_t>(category)],
                               database_summaries_[db_index]))
             .first;
  }
  return it->second;
}

}  // namespace fedsearch::core
