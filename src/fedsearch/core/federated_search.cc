#include "fedsearch/core/federated_search.h"

#include <algorithm>

namespace fedsearch::core {

namespace {

// Shared deterministic merge order: score desc, then (database, doc) asc so
// ties never depend on engine arrival order.
void SortAndTruncate(std::vector<FederatedHit>& merged, size_t keep) {
  std::sort(merged.begin(), merged.end(),
            [](const FederatedHit& a, const FederatedHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.database != b.database) return a.database < b.database;
              return a.doc < b.doc;
            });
  if (merged.size() > keep) merged.resize(keep);
}

// CORI/CSS merge weight from a min-max normalized selection score.
double MergeWeight(double score, double lo, double range) {
  const double normalized = range > 0.0 ? (score - lo) / range : 1.0;
  return (1.0 + 0.4 * normalized) / 1.4;
}

}  // namespace

std::vector<FederatedHit> SearchAndMerge(
    const std::vector<const index::TextDatabase*>& databases,
    const std::vector<selection::RankedDatabase>& ranking,
    std::string_view query_text, const FederatedSearchOptions& options) {
  std::vector<FederatedHit> merged;
  const size_t searched = std::min(options.databases_to_search, ranking.size());
  if (searched == 0) return merged;

  // Min-max normalize the selection scores of the databases searched.
  double lo = ranking[0].score;
  double hi = ranking[0].score;
  for (size_t i = 0; i < searched; ++i) {
    lo = std::min(lo, ranking[i].score);
    hi = std::max(hi, ranking[i].score);
  }
  const double range = hi - lo;

  for (size_t i = 0; i < searched; ++i) {
    const selection::RankedDatabase& entry = ranking[i];
    const double weight = MergeWeight(entry.score, lo, range);
    const index::QueryResult result = databases[entry.database]->Query(
        query_text, options.results_per_database);
    // Re-derive per-document scores: TextDatabase's public interface
    // returns ids ranked best-first; weight positions by a reciprocal-rank
    // style decay so merged scores remain comparable across engines that
    // do not expose raw scores (as real web databases do not).
    for (size_t pos = 0; pos < result.docs.size(); ++pos) {
      const double doc_score = 1.0 / static_cast<double>(pos + 1);
      merged.push_back(FederatedHit{entry.database, result.docs[pos],
                                    weight * doc_score});
    }
  }

  SortAndTruncate(merged, options.merged_results);
  return merged;
}

FederatedSearchResult SearchAndMergeRemote(
    const std::vector<index::SearchInterface*>& databases,
    const std::vector<selection::RankedDatabase>& ranking,
    std::string_view query_text, const FederatedSearchOptions& options,
    util::Deadline* deadline) {
  FederatedSearchResult out;
  const size_t searched = std::min(options.databases_to_search, ranking.size());
  if (searched == 0) return out;

  double lo = ranking[0].score;
  double hi = ranking[0].score;
  for (size_t i = 0; i < searched; ++i) {
    lo = std::min(lo, ranking[i].score);
    hi = std::max(hi, ranking[i].score);
  }
  const double range = hi - lo;

  // Tracks !expired() across charges: each ChargeSearch below reports
  // whether the budget survived, which is exactly what the old per-
  // iteration expired() head check read.
  bool budget_ok = deadline == nullptr || !deadline->expired();
  for (size_t i = 0; i < searched; ++i) {
    if (!budget_ok) {
      // Shed the remaining fan-out: a partial merge now beats a complete
      // merge the caller will never wait for.
      out.databases_skipped = searched - i;
      break;
    }
    const selection::RankedDatabase& entry = ranking[i];
    const double weight = MergeWeight(entry.score, lo, range);
    util::StatusOr<index::QueryResult> result =
        databases[entry.database]->Search(query_text,
                                          options.results_per_database);
    if (!result.ok()) {
      // Hard fault from the remote; merging continues without it. A failed
      // call still costs a round trip, so it charges the model default.
      ++out.databases_failed;
      if (deadline != nullptr) budget_ok = deadline->ChargeSearch(0.0);
      continue;
    }
    ++out.databases_searched;
    if (deadline != nullptr) {
      budget_ok = deadline->ChargeSearch(result.value().service_ms);
    }
    const std::vector<index::DocId>& docs = result.value().docs;
    for (size_t pos = 0; pos < docs.size(); ++pos) {
      const double doc_score = 1.0 / static_cast<double>(pos + 1);
      out.hits.push_back(
          FederatedHit{entry.database, docs[pos], weight * doc_score});
    }
  }

  SortAndTruncate(out.hits, options.merged_results);
  if (out.databases_skipped > 0) {
    out.status = util::Status::DeadlineExceeded(
        "deadline expired during federated fan-out");
  }
  return out;
}

}  // namespace fedsearch::core
