#include "fedsearch/core/federated_search.h"

#include <algorithm>

namespace fedsearch::core {

std::vector<FederatedHit> SearchAndMerge(
    const std::vector<const index::TextDatabase*>& databases,
    const std::vector<selection::RankedDatabase>& ranking,
    std::string_view query_text, const FederatedSearchOptions& options) {
  std::vector<FederatedHit> merged;
  const size_t searched = std::min(options.databases_to_search, ranking.size());
  if (searched == 0) return merged;

  // Min-max normalize the selection scores of the databases searched.
  double lo = ranking[0].score;
  double hi = ranking[0].score;
  for (size_t i = 0; i < searched; ++i) {
    lo = std::min(lo, ranking[i].score);
    hi = std::max(hi, ranking[i].score);
  }
  const double range = hi - lo;

  for (size_t i = 0; i < searched; ++i) {
    const selection::RankedDatabase& entry = ranking[i];
    const double normalized =
        range > 0.0 ? (entry.score - lo) / range : 1.0;
    const double weight = (1.0 + 0.4 * normalized) / 1.4;
    const index::QueryResult result = databases[entry.database]->Query(
        query_text, options.results_per_database);
    // Re-derive per-document scores: TextDatabase's public interface
    // returns ids ranked best-first; weight positions by a reciprocal-rank
    // style decay so merged scores remain comparable across engines that
    // do not expose raw scores (as real web databases do not).
    for (size_t pos = 0; pos < result.docs.size(); ++pos) {
      const double doc_score = 1.0 / static_cast<double>(pos + 1);
      merged.push_back(FederatedHit{entry.database, result.docs[pos],
                                    weight * doc_score});
    }
  }

  std::sort(merged.begin(), merged.end(),
            [](const FederatedHit& a, const FederatedHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.database != b.database) return a.database < b.database;
              return a.doc < b.doc;
            });
  if (merged.size() > options.merged_results) {
    merged.resize(options.merged_results);
  }
  return merged;
}

}  // namespace fedsearch::core
