#include "fedsearch/core/metasearcher.h"

#include <algorithm>
#include <utility>

#include "fedsearch/util/check.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::core {

namespace {

struct ServingMetrics {
  util::Counter& queries = util::GlobalMetrics().counter("serving.queries");
  util::Counter& category_fallbacks =
      util::GlobalMetrics().counter("serving.category_fallbacks");
  util::Counter& shrinkage_applied =
      util::GlobalMetrics().counter("serving.shrinkage_applied");
  util::Histogram& select_ns =
      util::GlobalMetrics().histogram("serving.select_databases_ns");
  util::Histogram& build_ns =
      util::GlobalMetrics().histogram("serving.metasearcher_build_ns");
};

ServingMetrics& Metrics() {
  static ServingMetrics* m = new ServingMetrics();
  return *m;
}

const char* ModeName(SummaryMode mode) {
  switch (mode) {
    case SummaryMode::kPlain:
      return "plain";
    case SummaryMode::kAdaptiveShrinkage:
      return "adaptive_shrinkage";
    case SummaryMode::kUniversalShrinkage:
      return "universal_shrinkage";
  }
  return "unknown";
}

}  // namespace

Metasearcher::Metasearcher(const corpus::TopicHierarchy* hierarchy,
                           std::vector<sampling::SampleResult> samples,
                           std::vector<corpus::CategoryId> classifications,
                           MetasearcherOptions options)
    : hierarchy_(hierarchy),
      samples_(std::move(samples)),
      classifications_(std::move(classifications)),
      options_(std::move(options)),
      adaptive_(options_.adaptive) {
  FEDSEARCH_TRACE_SPAN("metasearcher_build");
  util::ScopedTimer build_timer(Metrics().build_ns);
  degraded_.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    degraded_.push_back(
        s.sample_size == 0 || s.summary.vocabulary_size() == 0 ||
        s.health.outcome == sampling::SamplingOutcome::kAborted);
    if (degraded_.back()) ++num_degraded_;
  }
  std::vector<const summary::ContentSummary*> summary_ptrs;
  summary_ptrs.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    summary_ptrs.push_back(&s.summary);
  }
  hierarchy_summaries_ = std::make_unique<HierarchySummaries>(
      hierarchy_, summary_ptrs, classifications_);
  std::vector<size_t> sample_sizes;
  sample_sizes.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    sample_sizes.push_back(s.sample_size);
  }
  shrinkage_ = std::make_unique<ShrinkageModel>(
      hierarchy_summaries_.get(), std::move(sample_sizes), options_.shrinkage);
  hierarchical_ = std::make_unique<selection::HierarchicalSelector>(
      hierarchy_, summary_ptrs, classifications_);

  // Serving-layer state: the samples and shrunk summaries are immutable
  // for this snapshot's lifetime, so the corpus statistics are computed
  // once (off the per-query hot path) and the posterior cache only
  // invalidates by epoch under live refresh.
  FEDSEARCH_CHECK(options_.summary_epochs.empty() ||
                  options_.summary_epochs.size() == samples_.size())
      << " summary_epochs covers " << options_.summary_epochs.size()
      << " databases, federation has " << samples_.size();
  std::vector<const summary::SummaryView*> plain_views;
  std::vector<const summary::SummaryView*> shrunk_views;
  plain_views.reserve(samples_.size());
  shrunk_views.reserve(samples_.size());
  for (size_t i = 0; i < samples_.size(); ++i) {
    plain_views.push_back(&samples_[i].summary);
    shrunk_views.push_back(&shrinkage_->shrunk(i));
  }
  if (options_.prior != nullptr) {
    // Incremental path (live refresh): delta-update the prior snapshot's
    // plain statistics for the re-probed databases only; bit-identical to
    // the full scan below.
    const Metasearcher& prior = *options_.prior;
    FEDSEARCH_CHECK(prior.num_databases() == samples_.size())
        << " prior snapshot has " << prior.num_databases()
        << " databases, this one " << samples_.size();
    std::vector<const summary::SummaryView*> prior_views;
    prior_views.reserve(prior.num_databases());
    for (size_t i = 0; i < prior.num_databases(); ++i) {
      prior_views.push_back(&prior.samples_[i].summary);
    }
    plain_statistics_ = selection::ScoringStatisticsCache::Rebuilt(
        prior.plain_statistics_, plain_views, prior_views,
        options_.changed_databases);
  } else {
    plain_statistics_ = selection::ScoringStatisticsCache(plain_views);
  }
  // Shrunk statistics always rebuild from scratch: shrinkage couples every
  // database through the category aggregates, so one re-probed sample can
  // perturb every shrunk summary and no per-database delta is sound.
  shrunk_statistics_ = selection::ScoringStatisticsCache(shrunk_views);
  // The prior snapshot and change list are construction-time inputs only;
  // clearing them keeps options_ free of a pointer into a snapshot that
  // the refresh loop will drop.
  options_.prior = nullptr;
  options_.changed_databases.clear();
  options_.changed_databases.shrink_to_fit();
  if (options_.shared_posterior_cache != nullptr) {
    // A cache shared across snapshots is never Reset here — its value is
    // exactly the surviving working set; epoch keys evict the re-probed
    // shards lazily.
    posterior_cache_ = options_.shared_posterior_cache;
    FEDSEARCH_CHECK(posterior_cache_->num_databases() == samples_.size())
        << " shared posterior cache covers "
        << posterior_cache_->num_databases() << " databases, federation has "
        << samples_.size();
  } else {
    posterior_cache_ = std::make_shared<PosteriorCache>(samples_.size());
  }
  // Pin each shard's posterior parameters and build the shared grid basis
  // (support + γ·ln d prior + binomial log-bases) here, off the query
  // path: the parameters are constants of the database's sample at its
  // epoch, and pinning them up front turns any later mismatch into a
  // DCHECK instead of a silently stale grid. Degraded databases never
  // reach the adaptive evaluation, so their shards stay unpinned.
  for (size_t i = 0; i < samples_.size(); ++i) {
    if (degraded_[i]) continue;
    const sampling::SampleResult& s = samples_[i];
    posterior_cache_->PinParams(i, s.sample_size,
                                std::max(1.0, s.estimated_db_size),
                                PowerLawGamma(s.mandelbrot_alpha),
                                options_.adaptive.grid_points,
                                summary_epoch(i));
  }
  num_threads_ = options_.num_threads > 0
                     ? options_.num_threads
                     : util::ThreadPool::DefaultThreadCount();
  if (num_threads_ > 1) {
    pool_ = std::make_unique<util::ThreadPool>(num_threads_);
  }
  util::GlobalMetrics().gauge("serving.threads").Set(
      static_cast<double>(num_threads_));
  util::GlobalMetrics().gauge("serving.databases").Set(
      static_cast<double>(samples_.size()));
}

Metasearcher::SelectionOutcome Metasearcher::SelectDatabases(
    const selection::Query& query, const selection::ScoringFunction& scorer,
    SummaryMode mode, util::Deadline* deadline,
    util::TraceContext trace) const {
  util::Tracer::Scope select_span("select_databases", trace);
  util::ScopedTimer select_timer(Metrics().select_ns);
  Metrics().queries.Add();
  const size_t n = samples_.size();
  const bool bounded = deadline != nullptr && !deadline->infinite();
  select_span.AttrStr("mode", ModeName(mode))
      .AttrUint("databases", n)
      .AttrBool("bounded", bounded);
  SelectionOutcome outcome;
  outcome.databases_considered = n;
  if (bounded && deadline->expired()) {
    select_span.AttrStr("status", "expired_at_entry");
    outcome.status = util::Status::DeadlineExceeded(
        "deadline expired before selection started");
    return outcome;
  }

  // Content Summary Selection step (Figure 3): pick A(Di) per database.
  std::vector<const summary::SummaryView*> chosen(n);
  switch (mode) {
    case SummaryMode::kPlain:
      for (size_t i = 0; i < n; ++i) chosen[i] = &samples_[i].summary;
      break;
    case SummaryMode::kUniversalShrinkage:
      for (size_t i = 0; i < n; ++i) chosen[i] = &shrinkage_->shrunk(i);
      outcome.shrinkage_applied = n;
      break;
    case SummaryMode::kAdaptiveShrinkage: {
      util::Tracer::Scope adaptive_span("adaptive_evaluation",
                                        select_span.context());
      PosteriorCache::Stats cache_before;
      if (adaptive_span.recording()) cache_before = posterior_cache_->stats();
      // The uncertainty estimation scores against the unshrunk summaries'
      // corpus statistics.
      selection::ScoringContext decision_context;
      decision_context.ranked_summaries.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        decision_context.ranked_summaries.push_back(&samples_[i].summary);
      }
      decision_context.global_summary =
          &hierarchy_summaries_->root_aggregate();
      plain_statistics_.FillContext(query, decision_context,
                                    adaptive_span.context());

      // Every database gets its own deterministically-forked RNG stream,
      // pre-forked in index order so the streams — and therefore the
      // rankings — are identical for any thread count (and to the serial
      // fork-inside-the-loop layout this replaces). Degraded databases
      // still consume a fork to keep fault-free and faulty runs aligned.
      util::Rng rng(options_.adaptive_seed);
      std::vector<util::Rng> db_rngs;
      db_rngs.reserve(n);
      for (size_t i = 0; i < n; ++i) db_rngs.push_back(rng.Fork());

      std::vector<uint8_t> applied(n, 0);
      const util::TraceContext adaptive_ctx = adaptive_span.context();
      const auto evaluate_one = [&](size_t i) {
        if (degraded_[i]) {
          // No sample to estimate uncertainty from; the fallback below
          // supplies the summary. (No evaluation, so no deadline charge —
          // cost-model replays must subtract num_degraded().)
          chosen[i] = &samples_[i].summary;
          return;
        }
        const AdaptiveSummarySelector::Uncertainty u =
            adaptive_.Evaluate(query, samples_[i], scorer, decision_context,
                               db_rngs[i], posterior_cache_.get(), i,
                               summary_epoch(i), bounded ? deadline : nullptr,
                               adaptive_ctx);
        applied[i] = u.use_shrinkage ? 1 : 0;
        chosen[i] =
            u.use_shrinkage
                ? static_cast<const summary::SummaryView*>(
                      &shrinkage_->shrunk(i))
                : static_cast<const summary::SummaryView*>(
                      &samples_[i].summary);
      };
      if (bounded) {
        // Bounded requests evaluate serially on the calling thread: the
        // deadline charges then land in index order, making the expiry
        // boundary a pure function of the cost model. Throughput under
        // load comes from inter-query parallelism (broker workers), which
        // scales where per-query fan-out measured ~1.0x (ROADMAP).
        for (size_t i = 0; i < n; ++i) {
          if (deadline->expired()) break;
          evaluate_one(i);
          ++outcome.evaluations_completed;
        }
        if (deadline->expired()) {
          if (adaptive_span.recording()) {
            const PosteriorCache::Stats cache_after = posterior_cache_->stats();
            adaptive_span.AttrUint("evaluated", outcome.evaluations_completed)
                .AttrUint("cache_hits", cache_after.hits - cache_before.hits)
                .AttrUint("cache_misses",
                          cache_after.misses - cache_before.misses);
          }
          select_span.AttrStr("status", "expired_in_adaptive");
          outcome.status = util::Status::DeadlineExceeded(
              "deadline expired during adaptive evaluation");
          return outcome;
        }
      } else if (pool_ != nullptr) {
        pool_->ParallelFor(n, evaluate_one);
      } else {
        for (size_t i = 0; i < n; ++i) evaluate_one(i);
      }
      for (size_t i = 0; i < n; ++i) outcome.shrinkage_applied += applied[i];
      if (adaptive_span.recording()) {
        // Counter deltas across this span; under concurrent callers they
        // include the neighbors' traffic (observational, labeled as such).
        const PosteriorCache::Stats cache_after = posterior_cache_->stats();
        adaptive_span.AttrUint("evaluated", n)
            .AttrUint("cache_hits", cache_after.hits - cache_before.hits)
            .AttrUint("cache_misses", cache_after.misses - cache_before.misses)
            .AttrUint("shrinkage_applied", outcome.shrinkage_applied);
        if (bounded) {
          adaptive_span.AttrDouble("deadline_remaining_ms",
                                   deadline->remaining_ms());
        }
      }
      break;
    }
  }

  // Graceful degradation (all modes): a database whose sampling run came
  // back empty is scored from its category's aggregate summary — the
  // shrinkage hierarchy used as a pure fallback — so remote faults can
  // demote a database but never silently drop it from the federation. When
  // the database is alone in its category the aggregate holds only its own
  // empty summary, so walk up toward the root until an ancestor aggregate
  // has actual content (the root aggregate pools every database).
  for (size_t i = 0; i < n; ++i) {
    if (!degraded_[i]) continue;
    corpus::CategoryId category = classifications_[i];
    while (
        hierarchy_summaries_->aggregate(category).vocabulary_size() == 0 &&
        category != hierarchy_->root()) {
      category = hierarchy_->node(category).parent;
    }
    chosen[i] = &hierarchy_summaries_->aggregate(category);
    ++outcome.category_fallbacks;
    if (mode == SummaryMode::kUniversalShrinkage) --outcome.shrinkage_applied;
  }

  // Scoring + Ranking steps over the chosen summaries. Bounded requests
  // pre-charge the scoring cost per database in index order (the same
  // positions the cost-model replay sums), aborting at the first boundary
  // the budget no longer covers.
  {
    util::Tracer::Scope scoring_span("scoring", select_span.context());
    scoring_span.AttrUint("databases", n);
    if (bounded) {
      // Abort at the first boundary the budget no longer covers: after the
      // charge for database i, a dead budget with databases still ahead
      // means the ranking cannot complete in time. (Expiry on the *final*
      // charge falls through — that is the completed-late rule below, which
      // discards the ranking rather than never producing it.) A budget
      // already dead from the adaptive phase aborts before any charge.
      const bool born_dead = deadline->expired();
      for (size_t i = 0; i < n; ++i) {
        if (born_dead || (!deadline->ChargeScore() && i + 1 < n)) {
          select_span.AttrStr("status", "expired_in_scoring");
          outcome.status = util::Status::DeadlineExceeded(
              "deadline expired before scoring completed");
          return outcome;
        }
      }
    }
    selection::ScoringContext context;
    context.ranked_summaries = chosen;
    context.global_summary = &hierarchy_summaries_->root_aggregate();
    FillContextForChosen(query, chosen, mode, context);
    outcome.ranking =
        selection::RankDatabases(query, chosen, scorer, context, pool_.get());
  }
  Metrics().category_fallbacks.Add(outcome.category_fallbacks);
  Metrics().shrinkage_applied.Add(outcome.shrinkage_applied);
  if (bounded && deadline->expired()) {
    // The last charge crossed the budget: the ranking exists but arrived
    // past the deadline, so the caller must not serve it.
    select_span.AttrStr("status", "completed_late");
    outcome.status = util::Status::DeadlineExceeded(
        "selection completed past the deadline");
    outcome.ranking.clear();
    return outcome;
  }
  select_span.AttrStr("status", "ok")
      .AttrUint("fallbacks", outcome.category_fallbacks);
  if (bounded) {
    select_span.AttrDouble("deadline_remaining_ms", deadline->remaining_ms());
  }
  return outcome;
}

void Metasearcher::FillContextForChosen(
    const selection::Query& query,
    const std::vector<const summary::SummaryView*>& chosen, SummaryMode mode,
    selection::ScoringContext& context) const {
  const size_t n = chosen.size();
  const bool universal = mode == SummaryMode::kUniversalShrinkage;
  const selection::ScoringStatisticsCache& base =
      universal ? shrunk_statistics_ : plain_statistics_;

  // Databases whose chosen summary differs from the precomputed base set
  // (adaptive shrinkage decisions and category fallbacks). Typically a
  // small fraction of the federation.
  std::vector<size_t> changed;
  for (size_t i = 0; i < n; ++i) {
    const summary::SummaryView* base_view =
        universal ? static_cast<const summary::SummaryView*>(
                        &shrinkage_->shrunk(i))
                  : static_cast<const summary::SummaryView*>(
                        &samples_[i].summary);
    if (chosen[i] != base_view) changed.push_back(i);
  }

  if (changed.empty()) {
    context.cached_mean_cw = base.mean_cw();
  } else {
    // Same ordered reduction as PrepareContextForQuery, over the actual
    // chosen set.
    double total_cw = 0.0;
    for (const summary::SummaryView* s : chosen) total_cw += s->total_tokens();
    context.cached_mean_cw =
        n == 0 ? 1.0 : total_cw / static_cast<double>(n);
    if (context.cached_mean_cw <= 0.0) context.cached_mean_cw = 1.0;
  }

  context.cached_cf.clear();
  for (const std::string& w : query.terms) {
    if (context.cached_cf.count(w)) continue;
    long long cf = static_cast<long long>(base.CollectionFrequency(w));
    for (size_t i : changed) {
      const summary::SummaryView* base_view =
          universal ? static_cast<const summary::SummaryView*>(
                          &shrinkage_->shrunk(i))
                    : static_cast<const summary::SummaryView*>(
                          &samples_[i].summary);
      if (chosen[i]->ContainsRounded(w)) ++cf;
      if (base_view->ContainsRounded(w)) --cf;
    }
    context.cached_cf.emplace(w, cf > 0 ? static_cast<size_t>(cf) : 0);
  }
  context.has_cached_statistics = true;
}

std::vector<selection::RankedDatabase> Metasearcher::SelectHierarchical(
    const selection::Query& query, const selection::ScoringFunction& scorer,
    size_t k) const {
  return hierarchical_->Select(query, k, scorer);
}

}  // namespace fedsearch::core
