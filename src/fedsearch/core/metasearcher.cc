#include "fedsearch/core/metasearcher.h"

#include <utility>

namespace fedsearch::core {

Metasearcher::Metasearcher(const corpus::TopicHierarchy* hierarchy,
                           std::vector<sampling::SampleResult> samples,
                           std::vector<corpus::CategoryId> classifications,
                           MetasearcherOptions options)
    : hierarchy_(hierarchy),
      samples_(std::move(samples)),
      classifications_(std::move(classifications)),
      options_(options),
      adaptive_(options.adaptive) {
  degraded_.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    degraded_.push_back(
        s.sample_size == 0 || s.summary.vocabulary_size() == 0 ||
        s.health.outcome == sampling::SamplingOutcome::kAborted);
  }
  std::vector<const summary::ContentSummary*> summary_ptrs;
  summary_ptrs.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    summary_ptrs.push_back(&s.summary);
  }
  hierarchy_summaries_ = std::make_unique<HierarchySummaries>(
      hierarchy_, summary_ptrs, classifications_);
  std::vector<size_t> sample_sizes;
  sample_sizes.reserve(samples_.size());
  for (const sampling::SampleResult& s : samples_) {
    sample_sizes.push_back(s.sample_size);
  }
  shrinkage_ = std::make_unique<ShrinkageModel>(
      hierarchy_summaries_.get(), std::move(sample_sizes), options_.shrinkage);
  hierarchical_ = std::make_unique<selection::HierarchicalSelector>(
      hierarchy_, summary_ptrs, classifications_);
}

Metasearcher::SelectionOutcome Metasearcher::SelectDatabases(
    const selection::Query& query, const selection::ScoringFunction& scorer,
    SummaryMode mode) const {
  const size_t n = samples_.size();
  SelectionOutcome outcome;
  outcome.databases_considered = n;

  // Content Summary Selection step (Figure 3): pick A(Di) per database.
  std::vector<const summary::SummaryView*> chosen(n);
  switch (mode) {
    case SummaryMode::kPlain:
      for (size_t i = 0; i < n; ++i) chosen[i] = &samples_[i].summary;
      break;
    case SummaryMode::kUniversalShrinkage:
      for (size_t i = 0; i < n; ++i) chosen[i] = &shrinkage_->shrunk(i);
      outcome.shrinkage_applied = n;
      break;
    case SummaryMode::kAdaptiveShrinkage: {
      // The uncertainty estimation scores against the unshrunk summaries'
      // corpus statistics.
      selection::ScoringContext decision_context;
      decision_context.ranked_summaries.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        decision_context.ranked_summaries.push_back(&samples_[i].summary);
      }
      decision_context.global_summary =
          &hierarchy_summaries_->root_aggregate();
      selection::PrepareContextForQuery(query, decision_context);
      util::Rng rng(options_.adaptive_seed);
      for (size_t i = 0; i < n; ++i) {
        util::Rng db_rng = rng.Fork();
        if (degraded_[i]) {
          // No sample to estimate uncertainty from; the fallback below
          // supplies the summary. Fork anyway so the per-database RNG
          // streams stay aligned with the fault-free run.
          chosen[i] = &samples_[i].summary;
          continue;
        }
        const AdaptiveSummarySelector::Uncertainty u = adaptive_.Evaluate(
            query, samples_[i], scorer, decision_context, db_rng);
        if (u.use_shrinkage) {
          chosen[i] = &shrinkage_->shrunk(i);
          ++outcome.shrinkage_applied;
        } else {
          chosen[i] = &samples_[i].summary;
        }
      }
      break;
    }
  }

  // Graceful degradation (all modes): a database whose sampling run came
  // back empty is scored from its category's aggregate summary — the
  // shrinkage hierarchy used as a pure fallback — so remote faults can
  // demote a database but never silently drop it from the federation. When
  // the database is alone in its category the aggregate holds only its own
  // empty summary, so walk up toward the root until an ancestor aggregate
  // has actual content (the root aggregate pools every database).
  for (size_t i = 0; i < n; ++i) {
    if (!degraded_[i]) continue;
    corpus::CategoryId category = classifications_[i];
    while (
        hierarchy_summaries_->aggregate(category).vocabulary_size() == 0 &&
        category != hierarchy_->root()) {
      category = hierarchy_->node(category).parent;
    }
    chosen[i] = &hierarchy_summaries_->aggregate(category);
    ++outcome.category_fallbacks;
    if (mode == SummaryMode::kUniversalShrinkage) --outcome.shrinkage_applied;
  }

  // Scoring + Ranking steps over the chosen summaries.
  selection::ScoringContext context;
  context.ranked_summaries = chosen;
  context.global_summary = &hierarchy_summaries_->root_aggregate();
  selection::PrepareContextForQuery(query, context);
  outcome.ranking = selection::RankDatabases(query, chosen, scorer, context);
  return outcome;
}

std::vector<selection::RankedDatabase> Metasearcher::SelectHierarchical(
    const selection::Query& query, const selection::ScoringFunction& scorer,
    size_t k) const {
  return hierarchical_->Select(query, k, scorer);
}

}  // namespace fedsearch::core
