#ifndef FEDSEARCH_CORE_FEDERATED_SEARCH_H_
#define FEDSEARCH_CORE_FEDERATED_SEARCH_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "fedsearch/index/search_interface.h"
#include "fedsearch/index/text_database.h"
#include "fedsearch/selection/flat_ranker.h"
#include "fedsearch/util/deadline.h"
#include "fedsearch/util/status.h"

namespace fedsearch::core {

// One merged federated result.
struct FederatedHit {
  size_t database = 0;   // index into the federation's database list
  index::DocId doc = 0;  // document id within that database
  double score = 0.0;    // merged score (database belief x document score)
};

// Parameters of federated query evaluation.
struct FederatedSearchOptions {
  // How many of the top-ranked databases to actually query (the paper's
  // "evaluate q over just the databases with the highest scores").
  size_t databases_to_search = 5;
  // Results requested from each searched database.
  size_t results_per_database = 10;
  // Size of the merged result list.
  size_t merged_results = 10;
};

// Step (3) of the metasearching pipeline (Section 1): evaluates the query
// at the selected databases through their public search interfaces and
// merges the per-database ranked lists into a single list.
//
// Merging uses the CORI/CSS-style heuristic: each database's selection
// score is min-max normalized over the searched databases to s'' in
// [0, 1], and a document with engine score d from that database receives
// the merged score d * (1 + 0.4 * s'') / 1.4 — documents from
// higher-believed databases are promoted, without letting the database
// score completely dominate.
//
// `ranking` is the database-selection output (e.g. from
// Metasearcher::SelectDatabases); `databases[i]` must be the database that
// ranking entries with .database == i refer to.
std::vector<FederatedHit> SearchAndMerge(
    const std::vector<const index::TextDatabase*>& databases,
    const std::vector<selection::RankedDatabase>& ranking,
    std::string_view query_text, const FederatedSearchOptions& options = {});

// Outcome of a deadline-aware federated search: the merged hits plus an
// account of every selected database — searched, failed (the remote
// returned a hard fault; its results are simply absent), or skipped
// because the request deadline expired before it could be queried.
struct FederatedSearchResult {
  std::vector<FederatedHit> hits;
  size_t databases_searched = 0;
  size_t databases_failed = 0;
  size_t databases_skipped = 0;
  // OK when every selected database got its chance before the deadline;
  // kDeadlineExceeded when databases_skipped > 0.
  util::Status status;
};

// SearchAndMerge against remote SearchInterfaces (which may fail or report
// simulated service times — e.g. FlakyDatabase's slow-fault mode), bounded
// by a request deadline. Databases are queried in ranking order; before
// each one the deadline is checked, and each successful reply charges its
// reported service time (or Deadline::Costs::search_ms when the engine
// reports none). On expiry the remaining databases are skipped and merging
// proceeds with what arrived — degraded coverage, never a stall past the
// deadline. Pass nullptr (or an infinite deadline) for unbounded behavior.
FederatedSearchResult SearchAndMergeRemote(
    const std::vector<index::SearchInterface*>& databases,
    const std::vector<selection::RankedDatabase>& ranking,
    std::string_view query_text, const FederatedSearchOptions& options = {},
    util::Deadline* deadline = nullptr);

}  // namespace fedsearch::core

#endif  // FEDSEARCH_CORE_FEDERATED_SEARCH_H_
