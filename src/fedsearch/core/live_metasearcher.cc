#include "fedsearch/core/live_metasearcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "fedsearch/util/check.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::core {

LiveMetasearcher::LiveMetasearcher(
    const corpus::TopicHierarchy* hierarchy,
    std::vector<sampling::SampleResult> samples,
    std::vector<corpus::CategoryId> classifications,
    MetasearcherOptions options)
    : hierarchy_(hierarchy),
      base_options_(std::move(options)),
      posterior_cache_(std::make_shared<PosteriorCache>(samples.size())),
      samples_(std::move(samples)),
      classifications_(std::move(classifications)),
      summary_epochs_(samples_.size(), 0) {
  // The refresh machinery owns the live-plumbing fields; a caller
  // pre-filling them would fight the epoch/prior bookkeeping below.
  FEDSEARCH_CHECK(base_options_.epoch == 0 &&
                  base_options_.summary_epochs.empty() &&
                  base_options_.shared_posterior_cache == nullptr &&
                  base_options_.prior == nullptr &&
                  base_options_.changed_databases.empty())
      << " live-refresh option fields must be left at their defaults";
  util::MutexLock writer_lock(writer_mu_);
  std::shared_ptr<const Metasearcher> first =
      BuildSnapshotLocked(/*prior=*/nullptr, /*changed=*/{});
  stats_at_publish_ = posterior_cache_->stats();
  util::MutexLock lock(mu_);
  current_ = std::move(first);
}

std::shared_ptr<const Metasearcher> LiveMetasearcher::Snapshot() const {
  util::MutexLock lock(mu_);
  return current_;
}

SummaryEpoch LiveMetasearcher::epoch() const { return Snapshot()->epoch(); }

std::vector<EpochCacheStats> LiveMetasearcher::cache_history() const {
  util::MutexLock writer_lock(writer_mu_);
  return cache_history_;
}

std::shared_ptr<const Metasearcher> LiveMetasearcher::BuildSnapshotLocked(
    const Metasearcher* prior, std::vector<size_t> changed) {
  MetasearcherOptions options = base_options_;
  options.epoch = epoch_;
  options.summary_epochs = summary_epochs_;
  options.shared_posterior_cache = posterior_cache_;
  options.prior = prior;
  options.changed_databases = std::move(changed);
  // The snapshot copies the master samples/classifications: published
  // snapshots must stay immutable while later refreshes mutate the
  // masters.
  return std::make_shared<const Metasearcher>(
      hierarchy_, samples_, classifications_, std::move(options));
}

util::Status LiveMetasearcher::ApplyRefresh(
    std::vector<SummaryUpdate> updates) {
  util::MutexLock writer_lock(writer_mu_);
  std::vector<size_t> changed;
  changed.reserve(updates.size());
  for (const SummaryUpdate& u : updates) {
    if (u.database >= samples_.size()) {
      return util::Status::InvalidArgument(
          "refresh names database " + std::to_string(u.database) +
          " but the federation has " + std::to_string(samples_.size()));
    }
    changed.push_back(u.database);
  }
  std::sort(changed.begin(), changed.end());
  if (std::adjacent_find(changed.begin(), changed.end()) != changed.end()) {
    return util::Status::InvalidArgument(
        "refresh batch names a database more than once");
  }

  // The prior snapshot seeds the incremental corpus-statistics rebuild;
  // holding the shared_ptr keeps it alive through construction even if
  // every reader drops theirs meanwhile.
  std::shared_ptr<const Metasearcher> prior;
  {
    util::MutexLock lock(mu_);
    prior = current_;
  }
  ++epoch_;
  for (SummaryUpdate& u : updates) {
    samples_[u.database] = std::move(u.sample);
    classifications_[u.database] = u.classification;
    summary_epochs_[u.database] = epoch_;
  }
  // The expensive part — aggregates, shrinkage, statistics, re-pinning —
  // runs here with only writer_mu_ held: Snapshot() callers keep being
  // served the prior epoch until the single pointer swap below.
  std::shared_ptr<const Metasearcher> next =
      BuildSnapshotLocked(prior.get(), std::move(changed));

  // Attribute the cache counters accumulated under the superseded epoch.
  const PosteriorCache::Stats now = posterior_cache_->stats();
  EpochCacheStats completed;
  completed.epoch = epoch_ - 1;
  completed.stats.hits = now.hits - stats_at_publish_.hits;
  completed.stats.misses = now.misses - stats_at_publish_.misses;
  completed.stats.evictions = now.evictions - stats_at_publish_.evictions;
  completed.stats.stale_misses =
      now.stale_misses - stats_at_publish_.stale_misses;
  cache_history_.push_back(completed);
  stats_at_publish_ = now;
  util::GlobalMetrics().gauge("serving.summary_epoch").Set(
      static_cast<double>(epoch_));

  util::MutexLock lock(mu_);
  current_ = std::move(next);
  return util::Status::Ok();
}

}  // namespace fedsearch::core
