#include "fedsearch/core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "fedsearch/core/posterior_cache.h"
#include "fedsearch/util/check.h"
#include "fedsearch/util/math.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::core {

namespace {

struct AdaptiveMetrics {
  util::Counter& evaluations =
      util::GlobalMetrics().counter("adaptive.evaluations");
  util::Counter& gate_complete_sample =
      util::GlobalMetrics().counter("adaptive.gate_complete_sample");
  util::Counter& gate_no_mixed_evidence =
      util::GlobalMetrics().counter("adaptive.gate_no_mixed_evidence");
  util::Counter& chose_shrunk =
      util::GlobalMetrics().counter("adaptive.chose_shrunk");
  util::Counter& chose_plain =
      util::GlobalMetrics().counter("adaptive.chose_plain");
  util::Histogram& draws = util::GlobalMetrics().histogram("adaptive.draws");
  // σ / max(µ − floor) in integer milli-units; the decision threshold
  // lives on this axis, so its distribution shows how close calls are.
  util::Histogram& sigma_mu_ratio_e3 =
      util::GlobalMetrics().histogram("adaptive.sigma_mu_ratio_e3");
  util::Histogram& evaluate_ns =
      util::GlobalMetrics().histogram("adaptive.evaluate_ns");
};

AdaptiveMetrics& Metrics() {
  static AdaptiveMetrics* m = new AdaptiveMetrics();
  return *m;
}

}  // namespace

double PowerLawGamma(double mandelbrot_alpha) {
  // α must be safely negative: γ = 1/α − 1 diverges as α → 0⁻, and a
  // degenerate fit (two usable rank points, a near-flat slope) would turn
  // into an overwhelming d^γ prior that no binomial evidence can offset.
  constexpr double kMinNegativeAlpha = -0.25;
  double alpha = mandelbrot_alpha;
  if (!std::isfinite(alpha) || alpha > kMinNegativeAlpha) alpha = -1.0;
  const double gamma = 1.0 / alpha - 1.0;
  // Post-condition of the clamp above: γ stays finite (α ≤ -0.25 bounds it
  // to [-5, -1)), so the posterior's d^γ prior can never overflow.
  FEDSEARCH_CHECK(std::isfinite(gamma)) << " gamma from alpha " << alpha;
  return gamma;
}

OverrideSummary::OverrideSummary(
    const summary::SummaryView* base,
    const std::unordered_map<std::string, double>* df_override)
    : base_(base), df_override_(df_override) {}

double OverrideSummary::DocFrequency(const std::string& word) const {
  auto it = df_override_->find(word);
  if (it == df_override_->end()) return base_->DocFrequency(word);
  FEDSEARCH_DCHECK(it->second >= 0.0 && std::isfinite(it->second))
      << " df override " << it->second << " for " << word;
  return it->second;
}

double OverrideSummary::TokenFrequency(const std::string& word) const {
  auto it = df_override_->find(word);
  if (it == df_override_->end()) return base_->TokenFrequency(word);
  const double base_df = base_->DocFrequency(word);
  if (base_df > 0.0) {
    // Keep the average per-document term count of the word.
    return it->second * base_->TokenFrequency(word) / base_df;
  }
  // Word unseen in the sample: assume one occurrence per containing doc.
  return it->second;
}

void OverrideSummary::ForEachWord(
    const std::function<void(const std::string&, const summary::WordStats&)>&
        fn) const {
  // The perturbation must be visible to vocabulary-iterating consumers
  // too, not just to point lookups: overridden words are emitted with the
  // overridden df and the proportionally-scaled ctf (the same values
  // DocFrequency/TokenFrequency report), and overridden words absent from
  // the base vocabulary are appended afterwards.
  base_->ForEachWord(
      [&](const std::string& word, const summary::WordStats& stats) {
        auto it = df_override_->find(word);
        if (it == df_override_->end()) {
          fn(word, stats);
          return;
        }
        summary::WordStats overridden;
        overridden.df = it->second;
        overridden.ctf = stats.df > 0.0
                             ? it->second * stats.ctf / stats.df
                             : it->second;
        fn(word, overridden);
      });
  // ORDER-INDEPENDENT: the override map is private to one database's
  // evaluation (its contents never depend on the thread schedule), and
  // appended words only feed per-word accumulation downstream.
  for (const auto& [word, df] : *df_override_) {
    if (df <= 0.0 || base_->DocFrequency(word) > 0.0 ||
        base_->TokenFrequency(word) > 0.0) {
      continue;
    }
    // Word unseen in the sample: one occurrence per containing doc,
    // matching TokenFrequency.
    fn(word, summary::WordStats{df, df});
  }
}

size_t OverrideSummary::vocabulary_size() const {
  size_t extra = 0;
  // ORDER-INDEPENDENT: pure count; no per-element output.
  for (const auto& [word, df] : *df_override_) {
    if (df > 0.0 && base_->DocFrequency(word) <= 0.0 &&
        base_->TokenFrequency(word) <= 0.0) {
      ++extra;
    }
  }
  return base_->vocabulary_size() + extra;
}

DocFrequencyPosterior::DocFrequencyPosterior(size_t sample_df,
                                             size_t sample_size,
                                             double db_size, double gamma,
                                             size_t grid_points)
    : sampler_({}) {
  FEDSEARCH_CHECK(grid_points > 0);
  FEDSEARCH_CHECK(std::isfinite(gamma)) << " non-finite gamma";
  FEDSEARCH_DCHECK(sample_df <= sample_size)
      << " sample_df " << sample_df << " > sample size " << sample_size;
  const double n = std::max(1.0, db_size);
  // Log-spaced integer grid over [1, |D|].
  support_.reserve(grid_points);
  double prev = 0.0;
  for (size_t i = 0; i < grid_points; ++i) {
    const double frac = grid_points > 1
                            ? static_cast<double>(i) /
                                  static_cast<double>(grid_points - 1)
                            : 0.0;
    double d = std::round(std::exp(frac * std::log(n)));
    d = std::clamp(d, 1.0, n);
    if (d <= prev) continue;
    support_.push_back(d);
    prev = d;
  }

  // Log-space posterior: γ·ln d + s·ln(d/|D|) + (|S|−s)·ln(1−d/|D|).
  const double s = static_cast<double>(sample_df);
  const double trials = static_cast<double>(sample_size);
  std::vector<double> log_w(support_.size());
  double max_log = -1e300;
  for (size_t i = 0; i < support_.size(); ++i) {
    const double d = support_[i];
    const double p = d / n;
    double lw = gamma * std::log(d);
    if (s > 0.0) lw += s * std::log(p);
    const double q = 1.0 - p;
    if (trials > s) {
      if (q <= 0.0) {
        lw = -1e300;  // d == |D| impossible unless the word is in every
                      // sample document
      } else {
        lw += (trials - s) * std::log(q);
      }
    }
    log_w[i] = lw;
    max_log = std::max(max_log, lw);
  }
  // The grid always retains d = 1 (frac = 0), so the posterior support is
  // never empty and Sample() below always has mass to draw from.
  FEDSEARCH_DCHECK(!support_.empty());
  weights_.resize(support_.size());
  for (size_t i = 0; i < support_.size(); ++i) {
    weights_[i] = std::exp(log_w[i] - max_log);
    FEDSEARCH_DCHECK(std::isfinite(weights_[i]) && weights_[i] >= 0.0)
        << " posterior weight " << weights_[i] << " at grid point " << i;
  }
  sampler_ = util::DiscreteSampler(weights_);
}

double DocFrequencyPosterior::Sample(util::Rng& rng) const {
  if (support_.empty()) return 1.0;
  return support_[sampler_.Sample(rng)];
}

AdaptiveSummarySelector::AdaptiveSummarySelector(AdaptiveOptions options)
    : options_(options) {}

AdaptiveSummarySelector::Uncertainty AdaptiveSummarySelector::Evaluate(
    const selection::Query& query, const sampling::SampleResult& sample,
    const selection::ScoringFunction& scorer,
    const selection::ScoringContext& context, util::Rng& rng,
    PosteriorCache* cache, size_t database_index,
    util::Deadline* deadline, const util::TraceContext& trace) const {
  Metrics().evaluations.Add();
  util::ScopedTimer evaluate_timer(Metrics().evaluate_ns);
  Uncertainty result;
  if (deadline != nullptr) {
    deadline->ChargeAdaptiveEvaluation();
    // The charge that crosses the budget still lands (exact cost replay),
    // but the Monte-Carlo work it pays for is skipped: the enclosing
    // request is past its deadline and the decision would be discarded.
    if (deadline->expired()) return result;
  }
  const double db_size = std::max(1.0, sample.estimated_db_size);

  // A sample that covered (almost) the whole database is already
  // "sufficiently complete"; shrinkage could only add spurious words
  // (Section 4).
  if (static_cast<double>(sample.sample_size) >= 0.9 * db_size) {
    Metrics().gate_complete_sample.Add();
    Metrics().chose_plain.Add();
    return result;
  }
  if (query.terms.empty()) {
    Metrics().chose_plain.Add();
    return result;
  }

  // Section 4's boundary-case gate: all words present (summary already
  // trustworthy for this query) or all words absent (the database is
  // confidently a poor match) -> no shrinkage. A single-word query cannot
  // show mixed evidence, so it passes whenever its word is absent — the
  // paper's [hemophilia] scenario (Example 1), where the sample missing
  // one rare word is precisely the uncertainty shrinkage resolves.
  if (options_.require_mixed_evidence && query.terms.size() > 1) {
    bool any_present = false;
    bool any_absent = false;
    for (const std::string& w : query.terms) {
      auto it = sample.sample_df.find(w);
      const size_t sk = it != sample.sample_df.end() ? it->second : 0;
      if (sk >= options_.present_min_df) any_present = true;
      if (sk == 0) any_absent = true;
    }
    if (!any_present || !any_absent) {
      Metrics().gate_no_mixed_evidence.Add();
      Metrics().chose_plain.Add();
      return result;
    }
  }

  // γ = 1/α − 1 from the rank-frequency exponent (Appendix B; [1]),
  // with degenerate fits falling back to the Zipf default (PowerLawGamma).
  const double gamma = PowerLawGamma(sample.mandelbrot_alpha);

  // Per-word posteriors p(d_k | s_k) — memoized per (database, s_k) when a
  // cache is supplied, since all other posterior parameters are fixed per
  // database.
  std::vector<const DocFrequencyPosterior*> posteriors;
  posteriors.reserve(query.terms.size());
  std::vector<DocFrequencyPosterior> owned;
  owned.reserve(cache == nullptr ? query.terms.size() : 0);
  for (const std::string& w : query.terms) {
    auto it = sample.sample_df.find(w);
    const size_t sk = it != sample.sample_df.end() ? it->second : 0;
    if (cache != nullptr) {
      posteriors.push_back(&cache->Get(database_index, sk, sample.sample_size,
                                       db_size, gamma, options_.grid_points,
                                       trace));
    } else {
      owned.emplace_back(sk, sample.sample_size, db_size, gamma,
                         options_.grid_points);
      posteriors.push_back(&owned.back());
    }
  }

  // Monte-Carlo over (d1, ..., dn) combinations.
  std::unordered_map<std::string, double> overrides;
  OverrideSummary perturbed(&sample.summary, &overrides);
  util::RunningStats stats;
  double last_mean = 0.0;
  double last_std = 0.0;
  bool have_baseline = false;
  for (size_t draw = 0; draw < options_.max_draws; ++draw) {
    overrides.clear();
    for (size_t i = 0; i < query.terms.size(); ++i) {
      overrides[query.terms[i]] = posteriors[i]->Sample(rng);
    }
    stats.Add(scorer.Score(query, perturbed, context));

    if (stats.count() >= options_.min_draws && stats.count() % 50 == 0) {
      const double mean = stats.mean();
      const double stddev = stats.stddev();
      const double scale = std::max({std::fabs(mean), stddev, 1e-12});
      // The first check only seeds the baselines: comparing against the
      // zero initializers would spuriously pass at min_draws whenever the
      // true score mean and stddev are themselves near zero, so an early
      // exit requires a full check interval of observed stability.
      if (have_baseline &&
          std::fabs(mean - last_mean) < options_.convergence_tolerance * scale &&
          std::fabs(stddev - last_std) < options_.convergence_tolerance * scale) {
        break;
      }
      have_baseline = true;
      last_mean = mean;
      last_std = stddev;
    }
  }

  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.draws = stats.count();
  // Figure 3's rule: high variance relative to the mean marks the sample
  // summary as unreliable. Scorers with a built-in belief floor (CORI's
  // 0.4, LM's global smoothing) would otherwise never qualify — the floor
  // inflates the mean without carrying any database-specific evidence — so
  // the comparison uses the mean's excess over the scorer's default score,
  // scaled by the configured threshold (see AdaptiveOptions).
  const double floor = scorer.DefaultScore(query, sample.summary, context);
  const double excess = std::max(0.0, result.mean - floor);
  result.use_shrinkage =
      result.stddev > options_.uncertainty_threshold * excess;
  Metrics().draws.Record(result.draws);
  if (excess > 0.0) {
    Metrics().sigma_mu_ratio_e3.Record(
        static_cast<uint64_t>(std::min(result.stddev / excess, 1e6) * 1e3));
  }
  (result.use_shrinkage ? Metrics().chose_shrunk : Metrics().chose_plain)
      .Add();
  return result;
}

}  // namespace fedsearch::core
