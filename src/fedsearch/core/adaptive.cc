#include "fedsearch/core/adaptive.h"

#include <algorithm>
#include <cmath>

#include "fedsearch/core/posterior_cache.h"
#include "fedsearch/util/check.h"
#include "fedsearch/util/math.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::core {

namespace {

struct AdaptiveMetrics {
  util::Counter& evaluations =
      util::GlobalMetrics().counter("adaptive.evaluations");
  util::Counter& gate_complete_sample =
      util::GlobalMetrics().counter("adaptive.gate_complete_sample");
  util::Counter& gate_no_mixed_evidence =
      util::GlobalMetrics().counter("adaptive.gate_no_mixed_evidence");
  util::Counter& chose_shrunk =
      util::GlobalMetrics().counter("adaptive.chose_shrunk");
  util::Counter& chose_plain =
      util::GlobalMetrics().counter("adaptive.chose_plain");
  // Evaluations skipped because the request's deadline had already
  // expired. Every evaluation lands in exactly one disposition:
  //   chose_shrunk + chose_plain + deadline_skipped == evaluations.
  util::Counter& deadline_skipped =
      util::GlobalMetrics().counter("adaptive.deadline_skipped");
  util::Histogram& draws = util::GlobalMetrics().histogram("adaptive.draws");
  // σ / max(µ − floor) in integer milli-units; the decision threshold
  // lives on this axis, so its distribution shows how close calls are.
  util::Histogram& sigma_mu_ratio_e3 =
      util::GlobalMetrics().histogram("adaptive.sigma_mu_ratio_e3");
  util::Histogram& evaluate_ns =
      util::GlobalMetrics().histogram("adaptive.evaluate_ns");
};

AdaptiveMetrics& Metrics() {
  static AdaptiveMetrics* m = new AdaptiveMetrics();
  return *m;
}

}  // namespace

double PowerLawGamma(double mandelbrot_alpha) {
  // α must be safely negative: γ = 1/α − 1 diverges as α → 0⁻, and a
  // degenerate fit (two usable rank points, a near-flat slope) would turn
  // into an overwhelming d^γ prior that no binomial evidence can offset.
  constexpr double kMinNegativeAlpha = -0.25;
  double alpha = mandelbrot_alpha;
  if (!std::isfinite(alpha) || alpha > kMinNegativeAlpha) alpha = -1.0;
  const double gamma = 1.0 / alpha - 1.0;
  // Post-condition of the clamp above: γ stays finite (α ≤ -0.25 bounds it
  // to [-5, -1)), so the posterior's d^γ prior can never overflow.
  FEDSEARCH_CHECK(std::isfinite(gamma)) << " gamma from alpha " << alpha;
  return gamma;
}

OverrideSummary::OverrideSummary(
    const summary::SummaryView* base,
    const std::unordered_map<std::string, double>* df_override)
    : base_(base), df_override_(df_override) {}

double OverrideSummary::DocFrequency(const std::string& word) const {
  auto it = df_override_->find(word);
  if (it == df_override_->end()) return base_->DocFrequency(word);
  FEDSEARCH_DCHECK(it->second >= 0.0 && std::isfinite(it->second))
      << " df override " << it->second << " for " << word;
  return it->second;
}

double OverrideSummary::TokenFrequency(const std::string& word) const {
  auto it = df_override_->find(word);
  if (it == df_override_->end()) return base_->TokenFrequency(word);
  const double base_df = base_->DocFrequency(word);
  if (base_df > 0.0) {
    // Keep the average per-document term count of the word.
    return it->second * base_->TokenFrequency(word) / base_df;
  }
  // Word unseen in the sample: assume one occurrence per containing doc.
  return it->second;
}

void OverrideSummary::ForEachWord(
    const std::function<void(const std::string&, const summary::WordStats&)>&
        fn) const {
  // The perturbation must be visible to vocabulary-iterating consumers
  // too, not just to point lookups: overridden words are emitted with the
  // overridden df and the proportionally-scaled ctf (the same values
  // DocFrequency/TokenFrequency report), and overridden words absent from
  // the base vocabulary are appended afterwards.
  base_->ForEachWord(
      [&](const std::string& word, const summary::WordStats& stats) {
        auto it = df_override_->find(word);
        if (it == df_override_->end()) {
          fn(word, stats);
          return;
        }
        summary::WordStats overridden;
        overridden.df = it->second;
        overridden.ctf = stats.df > 0.0
                             ? it->second * stats.ctf / stats.df
                             : it->second;
        fn(word, overridden);
      });
  // ORDER-INDEPENDENT: the override map is private to one database's
  // evaluation (its contents never depend on the thread schedule), and
  // appended words only feed per-word accumulation downstream.
  for (const auto& [word, df] : *df_override_) {
    if (df <= 0.0 || base_->DocFrequency(word) > 0.0 ||
        base_->TokenFrequency(word) > 0.0) {
      continue;
    }
    // Word unseen in the sample: one occurrence per containing doc,
    // matching TokenFrequency.
    fn(word, summary::WordStats{df, df});
  }
}

size_t OverrideSummary::vocabulary_size() const {
  size_t extra = 0;
  // ORDER-INDEPENDENT: pure count; no per-element output.
  for (const auto& [word, df] : *df_override_) {
    if (df > 0.0 && base_->DocFrequency(word) <= 0.0 &&
        base_->TokenFrequency(word) <= 0.0) {
      ++extra;
    }
  }
  return base_->vocabulary_size() + extra;
}

PosteriorGridBasis::PosteriorGridBasis(double db_size, double gamma,
                                       size_t grid_points)
    : db_size_(std::max(1.0, db_size)),
      gamma_(gamma),
      grid_points_(grid_points) {
  FEDSEARCH_CHECK(grid_points > 0);
  FEDSEARCH_CHECK(std::isfinite(gamma)) << " non-finite gamma";
  const double n = db_size_;
  // Log-spaced integer grid over [1, |D|], deduplicated (rounding
  // collapses neighboring points when |D| is small relative to the grid).
  support_.reserve(grid_points);
  double prev = 0.0;
  for (size_t i = 0; i < grid_points; ++i) {
    const double frac = grid_points > 1
                            ? static_cast<double>(i) /
                                  static_cast<double>(grid_points - 1)
                            : 0.0;
    double d = std::round(std::exp(frac * std::log(n)));
    d = std::clamp(d, 1.0, n);
    if (d <= prev) continue;
    support_.push_back(d);
    prev = d;
  }
  // The grid always retains d = 1 (frac = 0), so posterior supports are
  // never empty and sampling always has mass to draw from.
  FEDSEARCH_DCHECK(!support_.empty());

  const size_t count = support_.size();
  prior_.resize(count);
  log_p_.resize(count);
  log_q_.resize(count);
  zero_q_begin_ = count;
  for (size_t i = 0; i < count; ++i) {
    const double d = support_[i];
    const double p = d / n;
    prior_[i] = gamma * std::log(d);
    log_p_[i] = std::log(p);
    const double q = 1.0 - p;
    if (q <= 0.0) {
      // d/|D| is nondecreasing over the (sorted) support, so the first
      // q <= 0 point starts the suffix where ln(1−p) has no finite value.
      if (zero_q_begin_ == count) zero_q_begin_ = i;
      log_q_[i] = 0.0;  // unused
    } else {
      log_q_[i] = std::log(q);
    }
  }
}

DocFrequencyPosterior::DocFrequencyPosterior(size_t sample_df,
                                             size_t sample_size,
                                             double db_size, double gamma,
                                             size_t grid_points)
    : basis_(std::make_shared<PosteriorGridBasis>(db_size, gamma,
                                                  grid_points)) {
  BuildWeights(sample_df, sample_size);
}

DocFrequencyPosterior::DocFrequencyPosterior(
    std::shared_ptr<const PosteriorGridBasis> basis, size_t sample_df,
    size_t sample_size)
    : basis_(std::move(basis)) {
  FEDSEARCH_CHECK(basis_ != nullptr);
  BuildWeights(sample_df, sample_size);
}

void DocFrequencyPosterior::BuildWeights(size_t sample_df,
                                         size_t sample_size) {
  FEDSEARCH_DCHECK(sample_df <= sample_size)
      << " sample_df " << sample_df << " > sample size " << sample_size;
  const size_t count = basis_->size();
  const double s = static_cast<double>(sample_df);
  const double trials = static_cast<double>(sample_size);
  const double* prior = basis_->prior_log_weight().data();
  const double* log_p = basis_->log_p().data();
  const double* log_q = basis_->log_q().data();

  // Log-space posterior: γ·ln d + s·ln(d/|D|) + (|S|−s)·ln(1−d/|D|), with
  // the basis supplying every logarithm — only the two word-dependent
  // multipliers remain. Points where 1−d/|D| <= 0 get the −1e300 sentinel
  // (d == |D| impossible unless the word is in every sample document);
  // they are a suffix of the monotone support, so each case below is a
  // branch-free contiguous pass the compiler can vectorize.
  const size_t finite_end =
      trials > s ? std::min(basis_->zero_q_begin(), count) : count;
  std::vector<double> log_w(count);
  if (s > 0.0 && trials > s) {
    for (size_t i = 0; i < finite_end; ++i) {
      double lw = prior[i];
      lw += s * log_p[i];
      lw += (trials - s) * log_q[i];
      log_w[i] = lw;
    }
  } else if (s > 0.0) {
    for (size_t i = 0; i < finite_end; ++i) {
      double lw = prior[i];
      lw += s * log_p[i];
      log_w[i] = lw;
    }
  } else if (trials > s) {
    for (size_t i = 0; i < finite_end; ++i) {
      double lw = prior[i];
      lw += (trials - s) * log_q[i];
      log_w[i] = lw;
    }
  } else {
    for (size_t i = 0; i < finite_end; ++i) log_w[i] = prior[i];
  }
  for (size_t i = finite_end; i < count; ++i) log_w[i] = -1e300;

  double max_log = -1e300;
  for (size_t i = 0; i < count; ++i) max_log = std::max(max_log, log_w[i]);
  weights_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    weights_[i] = std::exp(log_w[i] - max_log);
    FEDSEARCH_DCHECK(std::isfinite(weights_[i]) && weights_[i] >= 0.0)
        << " posterior weight " << weights_[i] << " at grid point " << i;
  }

  // Inclusive prefix-sum CDF, sum-normalized. Construction and the
  // inverse-CDF draw in SampleIndex replicate util::DiscreteSampler
  // bit-for-bit (same clamp, same normalization, same lower_bound), which
  // keeps the serial RNG-draw stream identical to the sampler-based
  // implementation.
  cdf_.resize(count);
  double acc = 0.0;
  for (size_t i = 0; i < count; ++i) {
    acc += std::max(0.0, weights_[i]);
    cdf_[i] = acc;
  }
  if (acc > 0.0) {
    for (size_t i = 0; i < count; ++i) cdf_[i] /= acc;
  }

  // Guide table: guide_[b] = first index with cdf >= b/kGuideBuckets. For
  // any draw x in bucket b (b = ⌊x·kGuideBuckets⌋, so b/kGuideBuckets <= x)
  // the lower_bound answer is >= guide_[b], making SampleIndex's forward
  // scan start at a proven lower bound — same result, O(1) average work.
  guide_.resize(kGuideBuckets);
  size_t g = 0;
  for (size_t b = 0; b < kGuideBuckets; ++b) {
    const double threshold =
        static_cast<double>(b) / static_cast<double>(kGuideBuckets);
    while (g + 1 < count && cdf_[g] < threshold) ++g;
    guide_[b] = static_cast<uint32_t>(g);
  }
}

AdaptiveSummarySelector::AdaptiveSummarySelector(AdaptiveOptions options)
    : options_(options) {}

AdaptiveSummarySelector::Uncertainty AdaptiveSummarySelector::Evaluate(
    const selection::Query& query, const sampling::SampleResult& sample,
    const selection::ScoringFunction& scorer,
    const selection::ScoringContext& context, util::Rng& rng,
    PosteriorCache* cache, size_t database_index, SummaryEpoch epoch,
    util::Deadline* deadline, const util::TraceContext& trace) const {
  Metrics().evaluations.Add();
  util::ScopedTimer evaluate_timer(Metrics().evaluate_ns);
  Uncertainty result;
  // The charge that crosses the budget still lands (exact cost replay),
  // but the Monte-Carlo work it pays for is skipped: the enclosing
  // request is past its deadline and the decision would be discarded.
  // The skip is still a disposition — counting it keeps
  // chose_shrunk + chose_plain + deadline_skipped == evaluations, so
  // /statusz consumers can reconcile the counters.
  if (deadline != nullptr && !deadline->ChargeAdaptiveEvaluation()) {
    Metrics().deadline_skipped.Add();
    return result;
  }
  const double db_size = std::max(1.0, sample.estimated_db_size);

  // A sample that covered (almost) the whole database is already
  // "sufficiently complete"; shrinkage could only add spurious words
  // (Section 4).
  if (static_cast<double>(sample.sample_size) >= 0.9 * db_size) {
    Metrics().gate_complete_sample.Add();
    Metrics().chose_plain.Add();
    return result;
  }
  if (query.terms.empty()) {
    Metrics().chose_plain.Add();
    return result;
  }

  // Section 4's boundary-case gate: all words present (summary already
  // trustworthy for this query) or all words absent (the database is
  // confidently a poor match) -> no shrinkage. A single-word query cannot
  // show mixed evidence, so it passes whenever its word is absent — the
  // paper's [hemophilia] scenario (Example 1), where the sample missing
  // one rare word is precisely the uncertainty shrinkage resolves.
  if (options_.require_mixed_evidence && query.terms.size() > 1) {
    bool any_present = false;
    bool any_absent = false;
    for (const std::string& w : query.terms) {
      auto it = sample.sample_df.find(w);
      const size_t sk = it != sample.sample_df.end() ? it->second : 0;
      if (sk >= options_.present_min_df) any_present = true;
      if (sk == 0) any_absent = true;
    }
    if (!any_present || !any_absent) {
      Metrics().gate_no_mixed_evidence.Add();
      Metrics().chose_plain.Add();
      return result;
    }
  }

  // γ = 1/α − 1 from the rank-frequency exponent (Appendix B; [1]),
  // with degenerate fits falling back to the Zipf default (PowerLawGamma).
  const double gamma = PowerLawGamma(sample.mandelbrot_alpha);

  // Duplicate query terms denote one latent document frequency: build one
  // posterior per DISTINCT term and draw it once per Monte-Carlo
  // iteration, so neither the posterior work nor the RNG stream depends on
  // how often a term is repeated. (Per-occurrence posteriors previously
  // burned one draw per duplicate with last-write-wins overrides.)
  // First-occurrence order; the linear scan keeps dedup deterministic
  // without ordered containers, and queries are a handful of terms.
  const size_t num_terms = query.terms.size();
  std::vector<size_t> occ_to_distinct(num_terms);
  std::vector<size_t> distinct_first;
  distinct_first.reserve(num_terms);
  for (size_t i = 0; i < num_terms; ++i) {
    size_t u = distinct_first.size();
    for (size_t k = 0; k < distinct_first.size(); ++k) {
      if (query.terms[distinct_first[k]] == query.terms[i]) {
        u = k;
        break;
      }
    }
    if (u == distinct_first.size()) distinct_first.push_back(i);
    occ_to_distinct[i] = u;
  }
  const size_t num_distinct = distinct_first.size();

  // Per-word posteriors p(d_k | s_k) — memoized per (database, s_k) when a
  // cache is supplied, since all other posterior parameters are fixed per
  // database. Uncached evaluations still share one grid basis across the
  // query's words.
  std::vector<const DocFrequencyPosterior*> posteriors(num_distinct);
  std::vector<DocFrequencyPosterior> owned;
  // Keep-alive for cache-returned posteriors: under live refresh a newer
  // epoch may evict the shard mid-evaluation, so the raw pointers in
  // `posteriors` (kept for the flat hot-loop reads below) must be backed
  // by owning references for the duration of the Monte-Carlo pass.
  std::vector<std::shared_ptr<const DocFrequencyPosterior>> cached;
  std::shared_ptr<const PosteriorGridBasis> local_basis;
  owned.reserve(cache == nullptr ? num_distinct : 0);
  cached.reserve(cache != nullptr ? num_distinct : 0);
  for (size_t k = 0; k < num_distinct; ++k) {
    const std::string& w = query.terms[distinct_first[k]];
    auto it = sample.sample_df.find(w);
    const size_t sk = it != sample.sample_df.end() ? it->second : 0;
    if (cache != nullptr) {
      cached.push_back(cache->Get(database_index, sk, sample.sample_size,
                                  db_size, gamma, options_.grid_points,
                                  epoch, trace));
      posteriors[k] = cached.back().get();
    } else {
      if (local_basis == nullptr) {
        local_basis = std::make_shared<PosteriorGridBasis>(
            db_size, gamma, options_.grid_points);
      }
      owned.emplace_back(local_basis, sk, sample.sample_size);
      posteriors[k] = &owned.back();
    }
  }

  // Monte-Carlo over (d1, ..., dn) combinations. Early stop shared by both
  // scoring paths below.
  util::RunningStats stats;
  double last_mean = 0.0;
  double last_std = 0.0;
  bool have_baseline = false;
  const auto converged = [&]() {
    if (stats.count() >= options_.min_draws && stats.count() % 50 == 0) {
      const double mean = stats.mean();
      const double stddev = stats.stddev();
      const double scale = std::max({std::fabs(mean), stddev, 1e-12});
      // The first check only seeds the baselines: comparing against the
      // zero initializers would spuriously pass at min_draws whenever the
      // true score mean and stddev are themselves near zero, so an early
      // exit requires a full check interval of observed stability.
      if (have_baseline &&
          std::fabs(mean - last_mean) <
              options_.convergence_tolerance * scale &&
          std::fabs(stddev - last_std) <
              options_.convergence_tolerance * scale) {
        return true;
      }
      have_baseline = true;
      last_mean = mean;
      last_std = stddev;
    }
    return false;
  };

  if (scorer.supports_delta_scoring()) {
    // Fast path: tabulate each distinct term's contribution at every grid
    // point of its posterior once, then a draw is one inverse-CDF index
    // per distinct term plus a flat fold — no per-draw summary view, no
    // hashing, no vocabulary walk. Bit-identical to the fallback path
    // below by the ScoringFunction delta contract (and both paths consume
    // the same RNG stream).
    const selection::DeltaScoreState state =
        scorer.PrepareScoreState(query, sample.summary, context);
    size_t stride = 0;
    for (size_t k = 0; k < num_distinct; ++k) {
      stride = std::max(stride, posteriors[k]->size());
    }
    std::vector<double> table(num_distinct * stride);
    for (size_t k = 0; k < num_distinct; ++k) {
      const std::vector<double>& support = posteriors[k]->support();
      scorer.TermContributionTable(query, distinct_first[k], sample.summary,
                                   context, support.data(), support.size(),
                                   table.data() + k * stride);
    }
    const selection::TermCombine combine = state.combine();
    const double init = state.init();
    // Per-distinct-term flat draw descriptors: raw CDF / guide /
    // contribution-row pointers so the inner loop touches no posterior
    // object. The unrolled draw below mirrors SampleIndex exactly (pinned
    // by the delta-vs-legacy bit-identity tests): a term whose CDF is
    // empty or sums to zero consumes no rng draw and always lands on grid
    // index 0, so its contribution folds in as the constant row[0]
    // (cdf == nullptr marks that case).
    struct TermDraw {
      const double* cdf;
      const uint32_t* guide;
      const double* row;
      size_t last;
    };
    std::vector<TermDraw> flat(num_distinct);
    for (size_t k = 0; k < num_distinct; ++k) {
      const std::vector<double>& cdf = posteriors[k]->cdf();
      const bool degenerate = cdf.empty() || cdf.back() <= 0.0;
      flat[k] = TermDraw{degenerate ? nullptr : cdf.data(),
                         posteriors[k]->guide().data(),
                         table.data() + k * stride,
                         cdf.empty() ? 0 : cdf.size() - 1};
    }
    // The RNG state is advanced in a local copy so the compiler can keep
    // the xoshiro words in registers across the whole loop; the stream is
    // identical (copy in, copy out).
    util::Rng draw_rng = rng;
    std::vector<double> drawn(num_distinct);
    for (size_t draw = 0; draw < options_.max_draws; ++draw) {
      for (size_t k = 0; k < num_distinct; ++k) {
        const TermDraw& td = flat[k];
        size_t i = 0;
        if (td.cdf != nullptr) {
          const double x = draw_rng.NextDouble();
          i = td.guide[static_cast<size_t>(
              x * DocFrequencyPosterior::kGuideBuckets)];
          while (i < td.last && td.cdf[i] < x) ++i;
        }
        drawn[k] = td.row[i];
      }
      double combined = init;
      if (combine == selection::TermCombine::kSum) {
        for (size_t j = 0; j < num_terms; ++j) {
          combined += drawn[occ_to_distinct[j]];
        }
      } else {
        for (size_t j = 0; j < num_terms; ++j) {
          combined *= drawn[occ_to_distinct[j]];
        }
      }
      stats.Add(state.Finalize(combined));
      if (converged()) break;
    }
    rng = draw_rng;
  } else {
    // Fallback for scorers without the delta protocol (custom
    // ScoringFunction implementations): one perturbed summary view,
    // overrides rebuilt per draw. Draws one value per distinct term in
    // first-occurrence order — the same RNG stream as the fast path.
    std::unordered_map<std::string, double> overrides;
    OverrideSummary perturbed(&sample.summary, &overrides);
    for (size_t draw = 0; draw < options_.max_draws; ++draw) {
      overrides.clear();
      for (size_t k = 0; k < num_distinct; ++k) {
        overrides[query.terms[distinct_first[k]]] =
            posteriors[k]->Sample(rng);
      }
      stats.Add(scorer.Score(query, perturbed, context));
      if (converged()) break;
    }
  }

  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.draws = stats.count();
  // Figure 3's rule: high variance relative to the mean marks the sample
  // summary as unreliable. Scorers with a built-in belief floor (CORI's
  // 0.4, LM's global smoothing) would otherwise never qualify — the floor
  // inflates the mean without carrying any database-specific evidence — so
  // the comparison uses the mean's excess over the scorer's default score,
  // scaled by the configured threshold (see AdaptiveOptions).
  const double floor = scorer.DefaultScore(query, sample.summary, context);
  const double excess = std::max(0.0, result.mean - floor);
  result.use_shrinkage =
      result.stddev > options_.uncertainty_threshold * excess;
  Metrics().draws.Record(result.draws);
  // σ/excess in integer milli-units, clamped to 1e6. A zero-excess
  // evaluation (mean at or below the scorer's floor) is the always-shrink
  // limit of the rule — any spread beats a zero margin — and used to be
  // dropped from the histogram, hiding exactly the decisive cases; it now
  // records at the clamp ceiling so every decided evaluation lands in a
  // bucket.
  const double clamped_ratio =
      excess > 0.0 ? std::min(result.stddev / excess, 1e6) : 1e6;
  Metrics().sigma_mu_ratio_e3.Record(
      static_cast<uint64_t>(clamped_ratio * 1e3));
  (result.use_shrinkage ? Metrics().chose_shrunk : Metrics().chose_plain)
      .Add();
  return result;
}

}  // namespace fedsearch::core
