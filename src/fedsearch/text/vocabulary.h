#ifndef FEDSEARCH_TEXT_VOCABULARY_H_
#define FEDSEARCH_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fedsearch::text {

// Dense integer id for an interned term.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

// Bidirectional string <-> TermId interning table. Ids are dense and
// allocated in first-seen order, which makes them usable as vector indices
// throughout the index and summary code.
//
// Not thread-safe; the library builds vocabularies single-threaded.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Vocabulary handles are shared widely; keep a single owner.
  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  // Returns the id for `term`, interning it if new.
  TermId Intern(std::string_view term);

  // Returns the id for `term`, or kInvalidTermId if it was never interned.
  TermId Lookup(std::string_view term) const;

  // Returns the term for a valid id. Precondition: id < size().
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> ids_;
  std::vector<std::string> terms_;
};

}  // namespace fedsearch::text

#endif  // FEDSEARCH_TEXT_VOCABULARY_H_
