#include "fedsearch/text/tokenizer.h"

#include <cctype>

namespace fedsearch::text {

void Tokenizer::Tokenize(std::string_view text,
                         std::vector<std::string>& out) const {
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.push_back(current);
      current.clear();
    }
  };
  for (char c : text) {
    const unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      if (current.size() < kMaxTokenLength) {
        current.push_back(static_cast<char>(std::tolower(uc)));
      }
    } else {
      flush();
    }
  }
  flush();
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  Tokenize(text, out);
  return out;
}

}  // namespace fedsearch::text
