#include "fedsearch/text/analyzer.h"

namespace fedsearch::text {

Analyzer::Analyzer(AnalyzerOptions options) : options_(options) {}

std::vector<std::string> Analyzer::Analyze(std::string_view text) const {
  std::vector<std::string> tokens = tokenizer_.Tokenize(text);
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::string& token : tokens) {
    if (options_.remove_stopwords && stopwords_.Contains(token)) continue;
    std::string term =
        options_.stem ? stemmer_.Stem(token) : std::move(token);
    if (term.size() < options_.min_token_length) continue;
    out.push_back(std::move(term));
  }
  return out;
}

}  // namespace fedsearch::text
