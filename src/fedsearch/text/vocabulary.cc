#include "fedsearch/text/vocabulary.h"

namespace fedsearch::text {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = ids_.find(std::string(term));
  if (it != ids_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  ids_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = ids_.find(std::string(term));
  return it == ids_.end() ? kInvalidTermId : it->second;
}

}  // namespace fedsearch::text
