#ifndef FEDSEARCH_TEXT_TOKENIZER_H_
#define FEDSEARCH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace fedsearch::text {

// Splits text into lowercase word tokens. A token is a maximal run of ASCII
// letters or digits; everything else is a separator. Tokens longer than
// kMaxTokenLength are truncated (defensive bound against pathological input).
class Tokenizer {
 public:
  static constexpr size_t kMaxTokenLength = 64;

  // Appends the tokens of `text` to `out`.
  void Tokenize(std::string_view text, std::vector<std::string>& out) const;

  // Convenience overload returning a fresh vector.
  std::vector<std::string> Tokenize(std::string_view text) const;
};

}  // namespace fedsearch::text

#endif  // FEDSEARCH_TEXT_TOKENIZER_H_
