#ifndef FEDSEARCH_TEXT_PORTER_STEMMER_H_
#define FEDSEARCH_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace fedsearch::text {

// The original Porter stemming algorithm (M.F. Porter, "An algorithm for
// suffix stripping", Program 14(3), 1980), steps 1a through 5b.
//
// Input is expected to be a lowercase ASCII word (as produced by Tokenizer);
// words shorter than 3 characters are returned unchanged, matching the
// reference implementation.
class PorterStemmer {
 public:
  // Returns the stem of `word`.
  std::string Stem(std::string_view word) const;
};

}  // namespace fedsearch::text

#endif  // FEDSEARCH_TEXT_PORTER_STEMMER_H_
