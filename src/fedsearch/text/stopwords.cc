#include "fedsearch/text/stopwords.h"

#include <string>
#include <utility>

namespace fedsearch::text {
namespace {

const char* const kDefaultStopwords[] = {
    "a",       "about",  "above",   "after",   "again",   "against", "all",
    "also",    "am",     "an",      "and",     "any",     "are",     "as",
    "at",      "be",     "because", "been",    "before",  "being",   "below",
    "between", "both",   "but",     "by",      "can",     "cannot",  "could",
    "did",     "do",     "does",    "doing",   "down",    "during",  "each",
    "few",     "for",    "from",    "further", "had",     "has",     "have",
    "having",  "he",     "her",     "here",    "hers",    "herself", "him",
    "himself", "his",    "how",     "i",       "if",      "in",      "into",
    "is",      "it",     "its",     "itself",  "just",    "me",      "more",
    "most",    "my",     "myself",  "no",      "nor",     "not",     "now",
    "of",      "off",    "on",      "once",    "only",    "or",      "other",
    "ought",   "our",    "ours",    "out",     "over",    "own",     "same",
    "she",     "should", "so",      "some",    "such",    "than",    "that",
    "the",     "their",  "theirs",  "them",    "then",    "there",   "these",
    "they",    "this",   "those",   "through", "to",      "too",     "under",
    "until",   "up",     "upon",    "very",    "was",     "we",      "were",
    "what",    "when",   "where",   "which",   "while",   "who",     "whom",
    "why",     "will",   "with",    "would",   "you",     "your",    "yours",
};

}  // namespace

StopwordList::StopwordList() {
  for (const char* w : kDefaultStopwords) words_.insert(w);
}

StopwordList::StopwordList(std::unordered_set<std::string> words)
    : words_(std::move(words)) {}

bool StopwordList::Contains(std::string_view word) const {
  // C++20 heterogeneous lookup on unordered_set<std::string> requires a
  // transparent hash; keep it simple with a temporary string.
  return words_.count(std::string(word)) > 0;
}

}  // namespace fedsearch::text
