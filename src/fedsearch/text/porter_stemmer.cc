#include "fedsearch/text/porter_stemmer.h"

#include <cstring>

namespace fedsearch::text {
namespace {

// Working buffer for one stemming run. Follows the structure of Porter's
// reference implementation: b is the word, k the offset of its last
// character, and j the offset set by ends() to the end of the stem.
struct Ctx {
  std::string b;
  int k = 0;  // index of last char
  int j = 0;  // index of stem end for the current suffix

  bool IsConsonant(int i) const {
    switch (b[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: the number of VC sequences.
  int Measure() const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem() const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b[static_cast<size_t>(i)] != b[static_cast<size_t>(i - 1)]) return false;
    return IsConsonant(i);
  }

  // cvc at positions i-2, i-1, i where the final consonant is not w, x, y.
  bool Cvc(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    const char ch = b[static_cast<size_t>(i)];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool Ends(const char* s) {
    const int length = static_cast<int>(std::strlen(s));
    if (length > k + 1) return false;
    if (std::memcmp(b.data() + (k - length + 1), s,
                    static_cast<size_t>(length)) != 0) {
      return false;
    }
    j = k - length;
    return true;
  }

  void SetTo(const char* s) {
    const int length = static_cast<int>(std::strlen(s));
    b.resize(static_cast<size_t>(j + 1));
    b.append(s);
    k = j + length;
  }

  void ReplaceIfMeasurePositive(const char* s) {
    if (Measure() > 0) SetTo(s);
  }
};

// Step 1a: plurals. Step 1b: -ed, -ing. Step 1c: y -> i.
void Step1ab(Ctx& z) {
  if (z.b[static_cast<size_t>(z.k)] == 's') {
    if (z.Ends("sses")) {
      z.k -= 2;
    } else if (z.Ends("ies")) {
      z.SetTo("i");
    } else if (z.b[static_cast<size_t>(z.k - 1)] != 's') {
      --z.k;
    }
  }
  if (z.Ends("eed")) {
    if (z.Measure() > 0) --z.k;
  } else if ((z.Ends("ed") || z.Ends("ing")) && z.VowelInStem()) {
    z.k = z.j;
    if (z.Ends("at")) {
      z.SetTo("ate");
    } else if (z.Ends("bl")) {
      z.SetTo("ble");
    } else if (z.Ends("iz")) {
      z.SetTo("ize");
    } else if (z.DoubleConsonant(z.k)) {
      --z.k;
      const char ch = z.b[static_cast<size_t>(z.k)];
      if (ch == 'l' || ch == 's' || ch == 'z') ++z.k;
    } else if (z.Measure() == 1 && z.Cvc(z.k)) {
      z.j = z.k;
      z.SetTo("e");
    }
  }
}

void Step1c(Ctx& z) {
  if (z.Ends("y") && z.VowelInStem()) {
    z.b[static_cast<size_t>(z.k)] = 'i';
  }
}

void Step2(Ctx& z) {
  switch (z.b[static_cast<size_t>(z.k - 1)]) {
    case 'a':
      if (z.Ends("ational")) { z.ReplaceIfMeasurePositive("ate"); break; }
      if (z.Ends("tional")) { z.ReplaceIfMeasurePositive("tion"); }
      break;
    case 'c':
      if (z.Ends("enci")) { z.ReplaceIfMeasurePositive("ence"); break; }
      if (z.Ends("anci")) { z.ReplaceIfMeasurePositive("ance"); }
      break;
    case 'e':
      if (z.Ends("izer")) { z.ReplaceIfMeasurePositive("ize"); }
      break;
    case 'l':
      if (z.Ends("bli")) { z.ReplaceIfMeasurePositive("ble"); break; }
      if (z.Ends("alli")) { z.ReplaceIfMeasurePositive("al"); break; }
      if (z.Ends("entli")) { z.ReplaceIfMeasurePositive("ent"); break; }
      if (z.Ends("eli")) { z.ReplaceIfMeasurePositive("e"); break; }
      if (z.Ends("ousli")) { z.ReplaceIfMeasurePositive("ous"); }
      break;
    case 'o':
      if (z.Ends("ization")) { z.ReplaceIfMeasurePositive("ize"); break; }
      if (z.Ends("ation")) { z.ReplaceIfMeasurePositive("ate"); break; }
      if (z.Ends("ator")) { z.ReplaceIfMeasurePositive("ate"); }
      break;
    case 's':
      if (z.Ends("alism")) { z.ReplaceIfMeasurePositive("al"); break; }
      if (z.Ends("iveness")) { z.ReplaceIfMeasurePositive("ive"); break; }
      if (z.Ends("fulness")) { z.ReplaceIfMeasurePositive("ful"); break; }
      if (z.Ends("ousness")) { z.ReplaceIfMeasurePositive("ous"); }
      break;
    case 't':
      if (z.Ends("aliti")) { z.ReplaceIfMeasurePositive("al"); break; }
      if (z.Ends("iviti")) { z.ReplaceIfMeasurePositive("ive"); break; }
      if (z.Ends("biliti")) { z.ReplaceIfMeasurePositive("ble"); }
      break;
    case 'g':
      if (z.Ends("logi")) { z.ReplaceIfMeasurePositive("log"); }
      break;
    default:
      break;
  }
}

void Step3(Ctx& z) {
  switch (z.b[static_cast<size_t>(z.k)]) {
    case 'e':
      if (z.Ends("icate")) { z.ReplaceIfMeasurePositive("ic"); break; }
      if (z.Ends("ative")) { z.ReplaceIfMeasurePositive(""); break; }
      if (z.Ends("alize")) { z.ReplaceIfMeasurePositive("al"); }
      break;
    case 'i':
      if (z.Ends("iciti")) { z.ReplaceIfMeasurePositive("ic"); }
      break;
    case 'l':
      if (z.Ends("ical")) { z.ReplaceIfMeasurePositive("ic"); break; }
      if (z.Ends("ful")) { z.ReplaceIfMeasurePositive(""); }
      break;
    case 's':
      if (z.Ends("ness")) { z.ReplaceIfMeasurePositive(""); }
      break;
    default:
      break;
  }
}

void Step4(Ctx& z) {
  switch (z.b[static_cast<size_t>(z.k - 1)]) {
    case 'a':
      if (z.Ends("al")) break;
      return;
    case 'c':
      if (z.Ends("ance")) break;
      if (z.Ends("ence")) break;
      return;
    case 'e':
      if (z.Ends("er")) break;
      return;
    case 'i':
      if (z.Ends("ic")) break;
      return;
    case 'l':
      if (z.Ends("able")) break;
      if (z.Ends("ible")) break;
      return;
    case 'n':
      if (z.Ends("ant")) break;
      if (z.Ends("ement")) break;
      if (z.Ends("ment")) break;
      if (z.Ends("ent")) break;
      return;
    case 'o':
      if (z.Ends("ion") && z.j >= 0 &&
          (z.b[static_cast<size_t>(z.j)] == 's' ||
           z.b[static_cast<size_t>(z.j)] == 't')) {
        break;
      }
      if (z.Ends("ou")) break;  // e.g. -ous via step 3 leftovers
      return;
    case 's':
      if (z.Ends("ism")) break;
      return;
    case 't':
      if (z.Ends("ate")) break;
      if (z.Ends("iti")) break;
      return;
    case 'u':
      if (z.Ends("ous")) break;
      return;
    case 'v':
      if (z.Ends("ive")) break;
      return;
    case 'z':
      if (z.Ends("ize")) break;
      return;
    default:
      return;
  }
  if (z.Measure() > 1) z.k = z.j;
}

void Step5(Ctx& z) {
  z.j = z.k;
  if (z.b[static_cast<size_t>(z.k)] == 'e') {
    const int a = z.Measure();
    if (a > 1 || (a == 1 && !z.Cvc(z.k - 1))) --z.k;
  }
  if (z.b[static_cast<size_t>(z.k)] == 'l' && z.DoubleConsonant(z.k) &&
      z.Measure() > 1) {
    --z.k;
  }
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  if (word.size() < 3) return std::string(word);
  Ctx z;
  z.b.assign(word);
  z.k = static_cast<int>(z.b.size()) - 1;
  Step1ab(z);
  Step1c(z);
  Step2(z);
  Step3(z);
  Step4(z);
  Step5(z);
  z.b.resize(static_cast<size_t>(z.k + 1));
  return z.b;
}

}  // namespace fedsearch::text
