#ifndef FEDSEARCH_TEXT_STOPWORDS_H_
#define FEDSEARCH_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>

namespace fedsearch::text {

// English stopword list (a subset of the SMART list commonly used in IR
// systems, plus the function words that dominate generated text).
class StopwordList {
 public:
  // Constructs the default English list.
  StopwordList();

  // Constructs from an explicit set of words.
  explicit StopwordList(std::unordered_set<std::string> words);

  bool Contains(std::string_view word) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace fedsearch::text

#endif  // FEDSEARCH_TEXT_STOPWORDS_H_
