#ifndef FEDSEARCH_TEXT_ANALYZER_H_
#define FEDSEARCH_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "fedsearch/text/porter_stemmer.h"
#include "fedsearch/text/stopwords.h"
#include "fedsearch/text/tokenizer.h"

namespace fedsearch::text {

// Options controlling the analysis pipeline. The paper reports results with
// stopword elimination and stemming enabled (Section 6.2); both can be
// switched off to reproduce the ablations it discusses.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  // Tokens shorter than this after analysis are dropped (1 = keep all).
  size_t min_token_length = 2;
};

// Tokenize -> stopword-filter -> stem pipeline, the moral equivalent of a
// Lucene Analyzer. Both documents and queries must pass through the same
// analyzer so their terms agree.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  // Analyzes raw text into index/query terms.
  std::vector<std::string> Analyze(std::string_view text) const;

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  StopwordList stopwords_;
  PorterStemmer stemmer_;
};

}  // namespace fedsearch::text

#endif  // FEDSEARCH_TEXT_ANALYZER_H_
