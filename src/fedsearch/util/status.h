#ifndef FEDSEARCH_UTIL_STATUS_H_
#define FEDSEARCH_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fedsearch::util {

// Minimal Status / StatusOr pair in the style of absl. The library does not
// use exceptions (per the project style guide); fallible operations return
// Status or StatusOr<T>.
//
// Both classes are [[nodiscard]] at the class level, so *every* function
// returning one inherits the must-check contract — a call site that drops
// a Status on the floor fails the build under -Werror=unused-result
// (lint_contracts additionally checks the declarations stay covered).
class [[nodiscard]] Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kFailedPrecondition,
    kOutOfRange,
    kInternal,
    // Transient remote-interaction failures (see IsTransient below). These
    // model the fault taxonomy of an uncooperative search interface: the
    // database is down, the call timed out, or the caller is being
    // throttled. They are retryable; the codes above are not.
    kUnavailable,
    kDeadlineExceeded,
    kResourceExhausted,
  };

  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>" for diagnostics.
  std::string ToString() const;

 private:
  Code code_;
  std::string message_;
};

// Whether `status` describes a transient condition of a remote interaction
// (unavailable / timed out / throttled) that a retry with backoff may
// resolve, as opposed to a programming or data error that will fail again.
inline bool IsTransient(const Status& status) {
  switch (status.code()) {
    case Status::Code::kUnavailable:
    case Status::Code::kDeadlineExceeded:
    case Status::Code::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// Value-or-error holder. Check ok() before calling value().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit from error status is intended
      : payload_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit from value is intended
      : payload_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_STATUS_H_
