#ifndef FEDSEARCH_UTIL_JSON_WRITER_H_
#define FEDSEARCH_UTIL_JSON_WRITER_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fedsearch::util {

// Minimal streaming JSON writer shared by the metrics/trace exporters and
// the bench report emitter. Produces strict JSON: keys and values are
// escaped, doubles use the shortest round-trip representation
// (std::to_chars), and non-finite doubles degrade to null (JSON has no
// Inf/NaN). With a positive `indent` the output is pretty-printed — the
// committed BENCH_*.json baselines use indent 2 so perf-trajectory diffs
// stay reviewable.
//
// The writer does not validate call sequences; callers are expected to
// emit well-formed structures (every BeginObject matched by EndObject,
// every Key followed by exactly one value or container).
class JsonWriter {
 public:
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject() {
    Pre();
    out_ += '{';
    frames_.push_back(Frame{true});
    return *this;
  }

  JsonWriter& EndObject() { return Close('}'); }

  JsonWriter& BeginArray() {
    Pre();
    out_ += '[';
    frames_.push_back(Frame{true});
    return *this;
  }

  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(std::string_view key) {
    Separate();
    WriteEscaped(key);
    out_ += ':';
    if (indent_ > 0) out_ += ' ';
    after_key_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view v) {
    Pre();
    WriteEscaped(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(const std::string& v) { return Value(std::string_view(v)); }

  JsonWriter& Value(bool v) {
    Pre();
    out_ += v ? "true" : "false";
    return *this;
  }

  JsonWriter& Value(double v) {
    Pre();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, result.ptr);
    return *this;
  }

  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& Value(T v) {
    Pre();
    char buf[24];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, result.ptr);
    return *this;
  }

  JsonWriter& Null() {
    Pre();
    out_ += "null";
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  struct Frame {
    bool first;
  };

  // Comma/newline bookkeeping before a key or array element.
  void Separate() {
    if (!frames_.empty()) {
      if (!frames_.back().first) out_ += ',';
      frames_.back().first = false;
    }
    NewlineIndent(frames_.size());
  }

  // Same, but a value directly after Key() attaches to its key.
  void Pre() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    Separate();
  }

  JsonWriter& Close(char c) {
    const bool empty = frames_.back().first;
    frames_.pop_back();
    if (!empty) NewlineIndent(frames_.size());
    out_ += c;
    return *this;
  }

  void NewlineIndent(size_t depth) {
    if (indent_ <= 0 || out_.empty()) return;
    out_ += '\n';
    out_.append(depth * static_cast<size_t>(indent_), ' ');
  }

  void WriteEscaped(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  int indent_;
  std::string out_;
  std::vector<Frame> frames_;
  bool after_key_ = false;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_JSON_WRITER_H_
