#include "fedsearch/util/retry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

namespace fedsearch::util {

namespace {
constexpr char kRetryAfterKey[] = "retry_after_ms=";
}  // namespace

double ParseRetryAfterMs(const Status& status) {
  const std::string& msg = status.message();
  const size_t pos = msg.find(kRetryAfterKey);
  if (pos == std::string::npos) return 0.0;
  const char* begin = msg.c_str() + pos + sizeof(kRetryAfterKey) - 1;
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || !std::isfinite(value) || value < 0.0) return 0.0;
  return value;
}

RetryController::RetryController(RetryOptions options)
    : options_(options), jitter_rng_(options.jitter_seed) {}

double RetryController::PlanBackoffMs(const Status& status, size_t attempt) {
  ++failed_attempts_;
  double backoff = options_.base_backoff_ms *
                   std::pow(options_.backoff_multiplier,
                            static_cast<double>(attempt - 1));
  backoff = std::min(backoff, options_.max_backoff_ms);
  const double j = std::clamp(options_.jitter_fraction, 0.0, 1.0);
  backoff *= 1.0 - j + 2.0 * j * jitter_rng_.NextDouble();
  // A throttling server's hint is a floor on the wait, not a suggestion.
  backoff = std::max(backoff, ParseRetryAfterMs(status));
  return backoff;
}

}  // namespace fedsearch::util
