#ifndef FEDSEARCH_UTIL_THREAD_ANNOTATIONS_H_
#define FEDSEARCH_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (no-ops on every other
// compiler). They let the lock discipline of the concurrent subsystems be
// stated in the type system and proven at compile time by
// `clang -Wthread-safety -Werror` (the ci.sh `tsa` job), instead of only
// being exercised dynamically by the TSan stress tier:
//
//   class FEDSEARCH_CAPABILITY("mutex") Mutex { ... };
//   Mutex mu_;
//   size_t depth_ FEDSEARCH_GUARDED_BY(mu_);
//   void CompactLocked() FEDSEARCH_REQUIRES(mu_);
//
// The project convention (DESIGN.md §6h): every mutex-protected member is
// GUARDED_BY its mutex; internals that assume the lock is already held are
// named `...Locked()` and annotated REQUIRES; public methods acquire via
// the RAII util::MutexLock (a SCOPED_CAPABILITY the analysis tracks).
// tools/lint_contracts.py enforces the coverage statically, so the
// discipline holds even on builds where the analysis itself cannot run.

#if defined(__clang__) && !defined(SWIG)
#define FEDSEARCH_THREAD_ATTR_(x) __attribute__((x))
#else
#define FEDSEARCH_THREAD_ATTR_(x)  // no-op off Clang
#endif

// A type that acts as a capability (lock). The string names the kind of
// capability for diagnostics ("mutex").
#define FEDSEARCH_CAPABILITY(x) FEDSEARCH_THREAD_ATTR_(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (util::MutexLock).
#define FEDSEARCH_SCOPED_CAPABILITY FEDSEARCH_THREAD_ATTR_(scoped_lockable)

// Data member readable/writable only while holding the given capability.
#define FEDSEARCH_GUARDED_BY(x) FEDSEARCH_THREAD_ATTR_(guarded_by(x))

// Pointer member whose *pointee* is protected by the given capability.
#define FEDSEARCH_PT_GUARDED_BY(x) FEDSEARCH_THREAD_ATTR_(pt_guarded_by(x))

// Function requires the capability to be held on entry (and does not
// release it): the `...Locked()` internal-method annotation.
#define FEDSEARCH_REQUIRES(...) \
  FEDSEARCH_THREAD_ATTR_(requires_capability(__VA_ARGS__))

// Function acquires the capability and holds it past return.
#define FEDSEARCH_ACQUIRE(...) \
  FEDSEARCH_THREAD_ATTR_(acquire_capability(__VA_ARGS__))

// Function releases the capability (which must be held on entry).
#define FEDSEARCH_RELEASE(...) \
  FEDSEARCH_THREAD_ATTR_(release_capability(__VA_ARGS__))

// Function acquires the capability only when returning `result`.
#define FEDSEARCH_TRY_ACQUIRE(result, ...) \
  FEDSEARCH_THREAD_ATTR_(try_acquire_capability(result, __VA_ARGS__))

// Function may not be called while holding the capability (deadlock
// guard for non-reentrant locks).
#define FEDSEARCH_EXCLUDES(...) \
  FEDSEARCH_THREAD_ATTR_(locks_excluded(__VA_ARGS__))

// Documented partial order between locks; a FEDSEARCH_ACQUIRED_BEFORE(b)
// on lock a means a is (always) taken before b.
#define FEDSEARCH_ACQUIRED_BEFORE(...) \
  FEDSEARCH_THREAD_ATTR_(acquired_before(__VA_ARGS__))
#define FEDSEARCH_ACQUIRED_AFTER(...) \
  FEDSEARCH_THREAD_ATTR_(acquired_after(__VA_ARGS__))

// Function returns a reference to the named capability.
#define FEDSEARCH_RETURN_CAPABILITY(x) \
  FEDSEARCH_THREAD_ATTR_(lock_returned(x))

// Escape hatch: the function body is deliberately not analyzed. Reserved
// for protocols the analysis cannot model (e.g. the ThreadPool generation
// handshake, where data guarded for publication is read lock-free during
// a loop's exclusive window). Every use must carry a comment explaining
// why the access is sound.
#define FEDSEARCH_NO_THREAD_SAFETY_ANALYSIS \
  FEDSEARCH_THREAD_ATTR_(no_thread_safety_analysis)

#endif  // FEDSEARCH_UTIL_THREAD_ANNOTATIONS_H_
