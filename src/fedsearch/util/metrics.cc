#include "fedsearch/util/metrics.h"

#include <bit>
#include <chrono>
#include <ctime>

#include "fedsearch/util/check.h"
#include "fedsearch/util/json_writer.h"

namespace fedsearch::util {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

uint64_t CpuClockNanos(clockid_t clock_id) {
  timespec ts{};
  if (clock_gettime(clock_id, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

uint64_t ProcessCpuNanos() { return CpuClockNanos(CLOCK_PROCESS_CPUTIME_ID); }

uint64_t ThreadCpuNanos() { return CpuClockNanos(CLOCK_THREAD_CPUTIME_ID); }

// ------------------------------------------------------------- Histogram --

uint32_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) return static_cast<uint32_t>(value);
  // exp = floor(log2(value)) >= kSubBits; the sub-bucket is the kSubBits
  // bits directly below the leading one.
  const uint32_t exp = 63u - static_cast<uint32_t>(std::countl_zero(value));
  const uint32_t sub = static_cast<uint32_t>(
      (value >> (exp - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets + (exp - kSubBits) * kSubBuckets + sub;
}

uint64_t Histogram::BucketLowerBound(uint32_t index) {
  FEDSEARCH_DCHECK(index < kNumBuckets);
  if (index < kSubBuckets) return index;
  const uint32_t exp = kSubBits + (index - kSubBuckets) / kSubBuckets;
  const uint32_t sub = (index - kSubBuckets) % kSubBuckets;
  return (uint64_t{1} << exp) + (static_cast<uint64_t>(sub) << (exp - kSubBits));
}

uint64_t Histogram::BucketWidth(uint32_t index) {
  FEDSEARCH_DCHECK(index < kNumBuckets);
  if (index < kSubBuckets) return 1;
  const uint32_t exp = kSubBits + (index - kSubBuckets) / kSubBuckets;
  return uint64_t{1} << (exp - kSubBits);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const uint64_t n = count();
  return n > 0 ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

double Histogram::Percentile(double p) const {
  // Walk a relaxed snapshot of the buckets. Concurrent recording can make
  // the snapshot internally inconsistent by a few samples — acceptable for
  // an observational percentile; totals come from the buckets themselves
  // so the walk always terminates consistently.
  uint64_t total = 0;
  std::array<uint64_t, kNumBuckets> snapshot;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0.0;
  const double clamped = p < 0.0 ? 0.0 : (p > 100.0 ? 100.0 : p);
  // 1-based rank of the percentile sample.
  uint64_t target = static_cast<uint64_t>(clamped / 100.0 *
                                          static_cast<double>(total) + 0.5);
  if (target < 1) target = 1;
  if (target > total) target = total;
  uint64_t cumulative = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    if (snapshot[i] == 0) continue;
    cumulative += snapshot[i];
    if (cumulative >= target) {
      const uint64_t into_bucket = target - (cumulative - snapshot[i]);
      const double fraction =
          static_cast<double>(into_bucket) / static_cast<double>(snapshot[i]);
      return static_cast<double>(BucketLowerBound(i)) +
             fraction * static_cast<double>(BucketWidth(i));
    }
  }
  return static_cast<double>(max());  // unreachable; keeps -Wreturn-type calm
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::WriteJson(JsonWriter& writer) const {
  writer.BeginObject();
  writer.Key("count").Value(count());
  writer.Key("sum").Value(sum());
  writer.Key("mean").Value(mean());
  writer.Key("max").Value(max());
  writer.Key("p50").Value(Percentile(50.0));
  writer.Key("p95").Value(Percentile(95.0));
  writer.Key("p99").Value(Percentile(99.0));
  writer.EndObject();
}

// ------------------------------------------------------- MetricsRegistry --

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::num_metrics() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  MutexLock lock(mu_);
  writer.BeginObject();
  writer.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) writer.Key(name).Value(c->value());
  writer.EndObject();
  writer.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) writer.Key(name).Value(g->value());
  writer.EndObject();
  writer.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    writer.Key(name);
    h->WriteJson(writer);
  }
  writer.EndObject();
  writer.EndObject();
}

std::string MetricsRegistry::ToJson(int indent) const {
  JsonWriter writer(indent);
  WriteJson(writer);
  return writer.str();
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace fedsearch::util
