#ifndef FEDSEARCH_UTIL_METRICS_H_
#define FEDSEARCH_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"

namespace fedsearch::util {

class JsonWriter;

// Monotonic timestamp in nanoseconds since an arbitrary epoch. This is the
// tree's sanctioned wall-clock read: the determinism lint bans
// std::chrono *_clock::now() outside util/, so every duration flows
// through here into metrics and traces — observational state that is kept
// strictly out of scored results (the bit-identity guarantees of the
// serving layer do not depend on wall time).
uint64_t MonotonicNanos();

// CPU time consumed by the whole process / the calling thread, in
// nanoseconds. Unlike MonotonicNanos these do not advance while the
// process is descheduled, so throughput derived from them is stable on a
// machine with noisy neighbours — the perf-regression gate compares
// CPU-time qps for exactly that reason. Same observational-only rules as
// MonotonicNanos. ThreadCpuNanos only sees the calling thread: durations
// that include ThreadPool work must use ProcessCpuNanos.
uint64_t ProcessCpuNanos();
uint64_t ThreadCpuNanos();

// Monotonically increasing event count. All operations are relaxed
// atomics: counters observe the computation, they never order it, and a
// torn read is impossible on a 64-bit word. One relaxed fetch_add on the
// hot path (~1 ns uncontended) is the entire cost of an increment.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (thread count, federation size,
// configured scale). Not for accumulation — use Counter or Histogram.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-size log-linear histogram over [0, 2^64) — the HdrHistogram
// layout: values below 16 land in exact unit buckets, and every
// power-of-two range above is split into 16 linear sub-buckets, giving
// ~6% relative resolution everywhere with a constant 976-bucket footprint
// and no allocation after construction. Record is one relaxed fetch_add
// per bucket/count/sum (plus a CAS loop for the max), so concurrent
// recording never blocks; totals are exact, percentile positions are
// accurate to one sub-bucket.
//
// Time series recorded here are nanoseconds by convention (metric names
// end in _ns); dimensionless distributions (EM iterations, Monte-Carlo
// draw counts, scaled ratios) record their natural integer value.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSubBuckets = 1u << kSubBits;  // 16
  static constexpr uint32_t kNumBuckets =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;  // 976

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  // The p-th percentile (p in [0, 100]), linearly interpolated inside the
  // landing bucket; 0 when the histogram is empty.
  double Percentile(double p) const;

  void Reset();

  // Serializes {count, sum, mean, max, p50, p95, p99} as one JSON object.
  void WriteJson(JsonWriter& writer) const;

  // Bucket geometry, exposed for the boundary unit tests.
  static uint32_t BucketIndex(uint64_t value);
  static uint64_t BucketLowerBound(uint32_t index);
  static uint64_t BucketWidth(uint32_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

// RAII wall-time recorder: measures from construction to scope exit and
// records the elapsed nanoseconds into the histogram — on every exit path,
// exceptional ones included (the destructor does the recording).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(&histogram), start_(MonotonicNanos()) {}
  ~ScopedTimer() { histogram_->Record(MonotonicNanos() - start_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_;
};

// Named metric registry. Registration (the name lookup) takes a mutex and
// is meant to happen once per site — instrumented code caches the returned
// reference in a function-local static — after which updates touch only
// the metric's own atomics. References stay valid for the registry's
// lifetime; metrics are never unregistered.
//
// ToJson output is deterministic for deterministic inputs: names are
// emitted in sorted order and values are counts/durations, so two runs
// that perform the same work produce identical counter sections (the
// histogram/timing sections differ only in measured wall time).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Zeroes every registered metric (registrations survive). Benches call
  // this between phases to scope a snapshot to one workload.
  void ResetAll();

  size_t num_metrics() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  std::string ToJson(int indent = 0) const;
  // Same object, emitted into an enclosing document (the bench reports
  // embed it under a "metrics" key).
  void WriteJson(JsonWriter& writer) const;

 private:
  // Lock order: mu_ is terminal — no other lock is acquired while it is
  // held (registration and JSON export only touch the maps below; metric
  // updates happen outside it, on the cells' own atomics).
  mutable Mutex mu_;
  // The maps are guarded; the pointed-to metric cells are deliberately not
  // (they are lock-free atomics, updated after registration returns).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      FEDSEARCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      FEDSEARCH_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      FEDSEARCH_GUARDED_BY(mu_);
};

// The process-wide registry every library-internal instrumentation site
// reports to. Never destroyed (worker threads may outlive static
// destruction order).
MetricsRegistry& GlobalMetrics();

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_METRICS_H_
