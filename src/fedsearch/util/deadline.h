#ifndef FEDSEARCH_UTIL_DEADLINE_H_
#define FEDSEARCH_UTIL_DEADLINE_H_

#include <limits>

namespace fedsearch::util {

// Charge-based request deadline.
//
// The repo's determinism contract bans wall-clock reads outside util/, so a
// deadline cannot be "a steady_clock time point". Instead it is a *budget of
// virtual milliseconds* that the serving path spends explicitly: each layer
// charges the modeled cost of the work it is about to do (one adaptive
// evaluation, one plain score, one remote search) and checks expired() at
// the next work boundary. Because the charges are plain double additions in
// a defined order, two runs with the same inputs expire at exactly the same
// boundary — which is what lets the broker's admission control *predict*
// whether a request will make its deadline and have the execution agree
// bit-for-bit.
//
// A Deadline is owned by the single worker thread executing its request; it
// is deliberately not thread-safe.
class Deadline {
 public:
  // Virtual cost model, in milliseconds, for the selection/search layers.
  // The defaults approximate the measured cold-cache costs on the TREC4
  // testbed at scale 0.25 (see bench/baselines/BENCH_serving_throughput.json:
  // adaptive ~30ms per 100-database query, plain ~0.2ms). Brokers scale the
  // whole table by a per-request service inflation to model tail faults.
  struct Costs {
    // One AdaptiveSummarySelector::Evaluate call (Monte-Carlo score draw).
    double adaptive_evaluation_ms = 0.3;
    // Scoring one database with an already-chosen summary (plain/CORI path).
    double score_ms = 0.002;
    // Querying one remote database during result merging, used when the
    // engine does not report its own service time (QueryResult::service_ms).
    double search_ms = 1.0;
  };

  // Default-constructed deadlines are infinite: they never expire and
  // charging them is a no-op. This is what un-brokered callers get.
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }

  // (Two overloads instead of a Costs{} default argument: a nested-class
  // default member initializer may not be used in a default argument of
  // the enclosing class.)
  explicit Deadline(double budget_ms) : Deadline(budget_ms, Costs()) {}
  Deadline(double budget_ms, Costs costs)
      : budget_ms_(budget_ms), costs_(costs), infinite_(false) {}

  bool infinite() const { return infinite_; }
  const Costs& costs() const { return costs_; }

  double budget_ms() const { return budget_ms_; }
  double consumed_ms() const { return consumed_ms_; }
  double remaining_ms() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return budget_ms_ > consumed_ms_ ? budget_ms_ - consumed_ms_ : 0.0;
  }

  // The budget is spent the moment consumed >= budget; a zero (or negative)
  // budget is born expired, which is how a broker marks a request that
  // already missed its deadline while queued.
  bool expired() const { return !infinite_ && consumed_ms_ >= budget_ms_; }

  // Spends `cost_ms` of the budget. Charges are unconditional — a charge
  // that crosses the budget still lands, so consumed_ms() always equals the
  // exact prefix sum of the work performed, and a cost-model replay of the
  // same work arrives at the same expiry verdict.
  //
  // Returns whether the budget is still alive (!expired()) after the
  // charge, and the result must be consumed: every charging site decides
  // something — abandon, degrade, record expiry — and a dropped verdict is
  // a deadline the caller silently stopped honoring. Callers that charge
  // for work already performed and deliberately continue regardless should
  // say so by binding the result (e.g. `const bool budget_ok = ...`).
  [[nodiscard]] bool Charge(double cost_ms) {
    if (!infinite_) consumed_ms_ += cost_ms;
    return !expired();
  }

  [[nodiscard]] bool ChargeAdaptiveEvaluation() {
    return Charge(costs_.adaptive_evaluation_ms);
  }
  [[nodiscard]] bool ChargeScore() { return Charge(costs_.score_ms); }
  // Charges a remote search: the engine-reported service time when positive,
  // otherwise the model default.
  [[nodiscard]] bool ChargeSearch(double service_ms) {
    return Charge(service_ms > 0.0 ? service_ms : costs_.search_ms);
  }

 private:
  double budget_ms_ = std::numeric_limits<double>::infinity();
  double consumed_ms_ = 0.0;
  Costs costs_;
  bool infinite_ = true;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_DEADLINE_H_
