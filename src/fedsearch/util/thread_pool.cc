#include "fedsearch/util/thread_pool.h"

#include <cstdlib>

#include "fedsearch/util/check.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::util {

namespace {

// Cached registrations: one mutex-guarded name lookup per process, then
// every update is a relaxed atomic on the metric itself.
struct PoolMetrics {
  Counter& loops_inline = GlobalMetrics().counter("threadpool.loops_inline");
  Counter& loops_pooled = GlobalMetrics().counter("threadpool.loops_pooled");
  Counter& tasks_total = GlobalMetrics().counter("threadpool.tasks_total");
  Counter& tasks_stolen = GlobalMetrics().counter("threadpool.tasks_stolen");
  Histogram& loop_ns = GlobalMetrics().histogram("threadpool.loop_ns");
  Histogram& run_wait_ns =
      GlobalMetrics().histogram("threadpool.run_queue_wait_ns");
};

PoolMetrics& Metrics() {
  static PoolMetrics* m = new PoolMetrics();
  return *m;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

// Lock-free reads of fn_/count_ here are published by ParallelFor under mu_
// and frozen for the loop's run_mu_ window; see the header.
void ThreadPool::Drain(bool stealing_worker) {
  // Count locally and publish once per drain so the accounting adds zero
  // atomics to the per-index claim loop.
  uint64_t claimed = 0;
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) break;
    (*fn_)(i);
    ++claimed;
  }
  if (claimed > 0) {
    Metrics().tasks_total.Add(claimed);
    if (stealing_worker) Metrics().tasks_stolen.Add(claimed);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_cv_.Wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
    }
    Drain(/*stealing_worker=*/true);
    {
      MutexLock lock(mu_);
      if (--pending_workers_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  FEDSEARCH_CHECK(fn != nullptr) << "ParallelFor requires a callable";
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline path touches no shared pool state, so it needs no run lock.
    Metrics().loops_inline.Add();
    ScopedTimer timer(Metrics().loop_ns);
    for (size_t i = 0; i < count; ++i) fn(i);
    Metrics().tasks_total.Add(count);
    return;
  }
  // One worker-assisted loop at a time (see header): later callers block
  // here until the current loop fully drains and resets fn_/count_.
  const uint64_t wait_start = MonotonicNanos();
  MutexLock run_lock(run_mu_);
  Metrics().run_wait_ns.Record(MonotonicNanos() - wait_start);
  Metrics().loops_pooled.Add();
  ScopedTimer timer(Metrics().loop_ns);
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.NotifyAll();
  Drain(/*stealing_worker=*/false);
  MutexLock lock(mu_);
  while (pending_workers_ != 0) done_cv_.Wait(mu_);
  fn_ = nullptr;
  count_ = 0;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("FEDSEARCH_THREADS")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

}  // namespace fedsearch::util
