#include "fedsearch/util/thread_pool.h"

#include <cstdlib>

#include "fedsearch/util/check.h"

namespace fedsearch::util {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Drain() {
  while (true) {
    const size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count_) return;
    (*fn_)(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    Drain();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  FEDSEARCH_CHECK(fn != nullptr) << "ParallelFor requires a callable";
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    // Inline path touches no shared pool state, so it needs no run lock.
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One worker-assisted loop at a time (see header): later callers block
  // here until the current loop fully drains and resets fn_/count_.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_workers_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  Drain();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
  fn_ = nullptr;
  count_ = 0;
}

size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("FEDSEARCH_THREADS")) {
    const long value = std::atol(env);
    if (value > 0) return static_cast<size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

}  // namespace fedsearch::util
