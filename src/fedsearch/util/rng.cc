#include "fedsearch/util/rng.h"

#include <algorithm>
#include <cmath>

namespace fedsearch::util {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = r * std::sin(2.0 * M_PI * u2);
  have_cached_gaussian_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : static_cast<size_t>(NextBounded(weights.size()));
  }
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(0.0, weights[i]);
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    acc += std::max(0.0, w);
    cdf_.push_back(acc);
  }
  if (acc > 0.0) {
    for (double& c : cdf_) c /= acc;
  }
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  if (cdf_.empty()) return 0;
  if (cdf_.back() <= 0.0) return 0;
  const double x = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), x);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace fedsearch::util
