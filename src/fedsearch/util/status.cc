#include "fedsearch/util/status.h"

namespace fedsearch::util {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:
      return "NOT_FOUND";
    case Status::Code::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case Status::Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Status::Code::kInternal:
      return "INTERNAL";
    case Status::Code::kUnavailable:
      return "UNAVAILABLE";
    case Status::Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Status::Code::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace fedsearch::util
