#ifndef FEDSEARCH_UTIL_CHECK_H_
#define FEDSEARCH_UTIL_CHECK_H_

#include <sstream>

// Invariant checking for the numerical core.
//
//   FEDSEARCH_CHECK(p >= 0.0) << "negative mass for " << word;
//   FEDSEARCH_DCHECK(lambda_sum_near_one);
//
// FEDSEARCH_CHECK is always on: a failed condition prints the condition
// text, source location, and any streamed message to stderr, then aborts.
// It guards invariants whose violation would silently corrupt rankings
// (cache-key validity, non-finite statistics escaping into scores).
//
// FEDSEARCH_DCHECK compiles to nothing in optimized builds unless
// FEDSEARCH_DCHECK_ALWAYS_ON is defined (the -DFEDSEARCH_DCHECK=ON cmake
// build). It guards hot-path invariants (per-word probability bounds,
// per-draw posterior samples) that are too expensive to verify in serving
// builds but must hold by construction.
//
// The condition is evaluated exactly once; the streamed operands are
// evaluated only on failure.

namespace fedsearch::util::internal {

// Accumulates the message for one failed check; the destructor (end of the
// full expression) writes everything to stderr and aborts. Never heap-held:
// only created as a temporary by the macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* kind, const char* condition,
                     const char* file, int line);
  ~CheckFailureStream();  // [[noreturn]] in effect: always aborts

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  // Size of the "file:line: KIND failed: condition" prefix; anything past
  // it is a streamed message and gets a ": " separator on output.
  size_t prefix_size_ = 0;
};

// Lowers a CheckFailureStream chain to void so it can sit in the ternary
// below; `&` binds looser than `<<`, tighter than `?:`.
struct Voidify {
  // const& so both a bare temporary (no streamed message) and the lvalue
  // returned by operator<< bind.
  void operator&(const CheckFailureStream&) const {}
};

}  // namespace fedsearch::util::internal

#define FEDSEARCH_CHECK(condition)                            \
  (condition)                                                 \
      ? (void)0                                               \
      : ::fedsearch::util::internal::Voidify() &              \
            ::fedsearch::util::internal::CheckFailureStream(  \
                "CHECK", #condition, __FILE__, __LINE__)

#if !defined(NDEBUG) || defined(FEDSEARCH_DCHECK_ALWAYS_ON)
#define FEDSEARCH_DCHECK_IS_ON 1
#else
#define FEDSEARCH_DCHECK_IS_ON 0
#endif

#if FEDSEARCH_DCHECK_IS_ON
#define FEDSEARCH_DCHECK(condition) FEDSEARCH_CHECK(condition)
#else
// Short-circuits before evaluating `condition` (or any streamed operands)
// while still odr-using everything, so disabled DCHECKs cannot cause
// unused-variable warnings or behaviour differences.
#define FEDSEARCH_DCHECK(condition) FEDSEARCH_CHECK(true || (condition))
#endif

#endif  // FEDSEARCH_UTIL_CHECK_H_
