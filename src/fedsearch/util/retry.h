#ifndef FEDSEARCH_UTIL_RETRY_H_
#define FEDSEARCH_UTIL_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <utility>

#include "fedsearch/util/deadline.h"
#include "fedsearch/util/metrics.h"
#include "fedsearch/util/rng.h"
#include "fedsearch/util/status.h"
#include "fedsearch/util/trace.h"

namespace fedsearch::util {

// Retry policy for calls against an unreliable remote interface: bounded
// exponential backoff with jitter per call, plus a per-run failure budget
// shared by every call routed through one RetryController. The budget is
// what guarantees that no sampling run loops forever against a dead
// database — once it is spent, Run() refuses further work and the caller
// must finalize with whatever it has (graceful degradation).
struct RetryOptions {
  // Attempts per call, including the first (1 disables retrying).
  size_t max_attempts = 4;
  // Total failed attempts tolerated across the run before the controller
  // reports exhaustion. Every failed attempt — retried or not — counts.
  size_t failure_budget = 96;
  // Backoff schedule: base · multiplier^(attempt-1), capped at max, then
  // jittered by ±jitter_fraction. A rate-limit retry-after hint (see
  // ParseRetryAfterMs) raises the wait to at least the hinted value.
  double base_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  double jitter_fraction = 0.5;
  // Seed of the jitter stream. Kept separate from the sampler RNGs so that
  // retry timing never perturbs the sampling decisions themselves.
  uint64_t jitter_seed = 0x5EEDBACC0FFEEULL;
};

// Extracts a "retry_after_ms=<n>" hint from a status message (the way a
// rate-limiting server communicates Retry-After). Returns 0 when absent or
// unparseable.
double ParseRetryAfterMs(const Status& status);

// Per-run retry state. Create one per (database, sampling run) and route
// every Query/Fetch through Run(). There is no real network here, so the
// controller does not sleep; it accrues the waits it *would* have made in
// simulated_backoff_ms(), which benches report as the latency cost of the
// fault rate.
class RetryController {
 public:
  explicit RetryController(RetryOptions options = {});

  const RetryOptions& options() const { return options_; }

  // Attaches the caller's request deadline. When set, every simulated
  // backoff wait charges the deadline, and a wait that would cross the
  // remaining budget is not taken at all: Run() abandons the call with
  // kDeadlineExceeded instead of accruing a wait the request could never
  // afford. Pass nullptr (the default) for the legacy unbounded behavior,
  // which is bit-identical to pre-deadline builds. The deadline must
  // outlive the controller's use of it.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

  // Attaches a request trace context. Every simulated backoff wait then
  // records a "retry_backoff" span under it (zero wall duration — the wait
  // is virtual — with the charged backoff_ms as an attribute), so timeline
  // analysis can attribute request latency to retries. Observational only.
  void set_trace(const TraceContext& trace) { trace_ = trace; }

  // True once the failure budget is spent. Callers must stop issuing
  // requests and finalize a partial result.
  bool exhausted() const { return failed_attempts_ >= options_.failure_budget; }

  // Failed attempts observed so far (across all calls).
  size_t failed_attempts() const { return failed_attempts_; }
  // Calls abandoned after max_attempts (or budget exhaustion mid-call).
  size_t abandoned_calls() const { return abandoned_calls_; }
  // Total simulated backoff wait accumulated by retries.
  double simulated_backoff_ms() const { return simulated_backoff_ms_; }

  // Invokes `call` (returning a StatusOr<T>) until it succeeds, fails with
  // a non-transient error, or runs out of attempts/budget/deadline. Returns
  // the last result; when the budget is already spent, returns
  // kResourceExhausted without invoking `call` at all; when the next backoff
  // wait would cross an attached deadline, returns kDeadlineExceeded without
  // accruing that wait.
  template <typename Fn>
  auto Run(Fn&& call) -> decltype(call()) {
    if (exhausted()) {
      return Status::ResourceExhausted("per-run failure budget exhausted");
    }
    if (deadline_ != nullptr && deadline_->expired()) {
      return Status::DeadlineExceeded("request deadline already expired");
    }
    for (size_t attempt = 1;; ++attempt) {
      auto result = call();
      if (result.ok() || !IsTransient(result.status())) return result;
      // The failed attempt always counts against the budget; whether the
      // *wait* is affordable is a separate, deadline-owned decision.
      const double backoff = PlanBackoffMs(result.status(), attempt);
      if (deadline_ != nullptr && backoff >= deadline_->remaining_ms()) {
        ++abandoned_calls_;
        return Status::DeadlineExceeded(
            "retry backoff would cross the request deadline");
      }
      simulated_backoff_ms_ += backoff;
      if (deadline_ != nullptr && !deadline_->Charge(backoff)) {
        // Unreachable while the affordability check above holds (backoff <
        // remaining), but a dead budget after the charge means the same
        // thing the pre-check guards against: no more waiting.
        ++abandoned_calls_;
        return Status::DeadlineExceeded(
            "retry backoff exhausted the request deadline");
      }
      if (trace_.active()) {
        const uint64_t now = MonotonicNanos();
        Tracer::Global().EmitSpan(
            "retry_backoff", trace_, now, now,
            {Tracer::DoubleAttr("backoff_ms", backoff),
             Tracer::UintAttr("attempt", attempt)});
      }
      if (attempt >= options_.max_attempts || exhausted()) {
        ++abandoned_calls_;
        return result;
      }
    }
  }

 private:
  // Accounts one failed attempt (spends budget, draws jitter) and returns
  // the (jittered, hint-respecting) backoff wait the caller would make.
  double PlanBackoffMs(const Status& status, size_t attempt);

  RetryOptions options_;
  Rng jitter_rng_;
  Deadline* deadline_ = nullptr;
  TraceContext trace_;
  size_t failed_attempts_ = 0;
  size_t abandoned_calls_ = 0;
  double simulated_backoff_ms_ = 0.0;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_RETRY_H_
