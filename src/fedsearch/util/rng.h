#ifndef FEDSEARCH_UTIL_RNG_H_
#define FEDSEARCH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fedsearch::util {

// Deterministic pseudo-random number generator (xoshiro256** seeded via
// SplitMix64). All randomness in the library flows through this class so
// that every experiment is reproducible bit-for-bit given its seed.
//
// The class is intentionally self-contained (no <random>) because libstdc++
// distributions are not guaranteed to be reproducible across versions.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value (xoshiro256** step). Defined inline: hot
  // Monte-Carlo loops draw millions of values and must not pay a call per
  // draw.
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller.
  double NextGaussian();

  // True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional
  // to weights[i]. Weights must be non-negative with a positive sum;
  // otherwise returns a uniform index.
  size_t NextDiscrete(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  // Forks an independent, deterministically-derived child generator.
  // Useful to give each database / sampler its own stream.
  Rng Fork();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Cumulative-table sampler for repeatedly drawing from one fixed discrete
// distribution (binary search over the CDF).
class DiscreteSampler {
 public:
  // Weights must be non-negative; a zero total makes every draw return 0.
  explicit DiscreteSampler(const std::vector<double>& weights);

  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized inclusive prefix sums
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_RNG_H_
