#ifndef FEDSEARCH_UTIL_MUTEX_H_
#define FEDSEARCH_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "fedsearch/util/thread_annotations.h"

namespace fedsearch::util {

// Annotated mutex: std::mutex wrapped as a Clang thread-safety capability.
//
// libstdc++'s std::mutex and lock guards carry no capability annotations,
// so code locking a bare std::mutex is invisible to -Wthread-safety. Every
// mutex-guarded class in the tree therefore holds a util::Mutex and locks
// it through util::MutexLock, which the analysis does track. The wrapper
// is zero-cost: all members are inline forwarding calls.
//
// This file is the one place allowed to own an unannotated std::mutex
// member (tools/lint_contracts.py allowlists it): the wrapper *is* the
// capability, so there is nothing for it to be guarded by.
class FEDSEARCH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FEDSEARCH_ACQUIRE() { mu_.lock(); }
  void unlock() FEDSEARCH_RELEASE() { mu_.unlock(); }
  bool try_lock() FEDSEARCH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for util::Mutex — std::lock_guard semantics, visible to the
// thread-safety analysis as a scoped capability.
class FEDSEARCH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FEDSEARCH_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~MutexLock() FEDSEARCH_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable paired with util::Mutex. Wait requires the mutex held
// and holds it again on return, which is exactly what the analysis
// assumes; predicates are written as explicit while-loops at the call site
// (`while (!pred) cv.Wait(mu);`) so guarded reads inside the predicate are
// analyzed in the scope that holds the lock (lambda bodies are analyzed as
// separate functions and would not inherit the capability).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, and reacquires `mu` before returning.
  void Wait(Mutex& mu) FEDSEARCH_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock's ownership claim so the wrapper's invariant (the caller
    // holds mu) is restored on return.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_MUTEX_H_
