#ifndef FEDSEARCH_UTIL_TRACE_H_
#define FEDSEARCH_UTIL_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"

namespace fedsearch::util {

// Explicit request-scoped causal context. Carried by value through call
// signatures — deliberately no thread-local propagation: the serving path
// migrates work across pool threads on a virtual-time schedule, so ambient
// per-thread state would attach spans to the wrong request (and hiding a
// mutable channel in TLS invites reads that break the determinism story).
// A default-constructed context is inactive; spans opened under it record
// as anonymous (trace_id 0) when the tracer is enabled.
struct TraceContext {
  uint64_t trace_id = 0;  // one id per request; 0 = no request attached
  uint64_t span_id = 0;   // the span to parent children under; 0 = root
  bool active() const { return trace_id != 0; }
};

// Lightweight span tracing for the serving and offline-build pipelines.
//
// Disabled by default: an inactive FEDSEARCH_TRACE_SPAN costs one relaxed
// atomic load and nothing else, so spans can stay compiled into the hot
// paths permanently. When enabled, each scope records (name, causal ids,
// start, duration, thread ordinal, nesting depth, typed attributes) into a
// bounded in-memory buffer under a mutex — recording happens once per span
// on scope exit, not per event, so the lock is far off any inner loop.
// When the buffer fills, new spans are dropped and counted rather than
// blocking or reallocating.
//
// Like the metrics registry, traces are observational by construction:
// they capture wall time but never feed it back into computation, so
// enabling tracing cannot perturb scored results. lint_determinism rule 4
// enforces the read-back ban outside util/.
//
// Span names and attribute keys/string values must be string literals
// (the tracer stores the pointers).
class Tracer {
 public:
  // Typed attribute value. A small tagged union rather than std::variant
  // so Span stays trivially copyable and the recording path never
  // allocates.
  struct AttrValue {
    enum class Kind : uint8_t { kInt, kUint, kDouble, kBool, kString };
    Kind kind = Kind::kInt;
    union {
      int64_t i;
      uint64_t u;
      double d;
      bool b;
      const char* s;  // string literal only
    };
    AttrValue() : i(0) {}
  };

  struct Attr {
    const char* key = nullptr;
    AttrValue value;
  };

  // Attributes beyond this many per span are silently ignored; the broker
  // root span is the widest producer and stays within this bound.
  static constexpr size_t kMaxAttrs = 12;

  struct Span {
    const char* name;
    uint64_t trace_id;     // 0 for anonymous (request-less) spans
    uint64_t span_id;      // unique while recording; 0 when dropped early
    uint64_t parent_id;    // 0 = root of its trace
    uint64_t start_ns;     // MonotonicNanos at scope entry
    uint64_t duration_ns;  // scope exit - entry
    uint32_t thread;       // small per-process thread ordinal
    uint32_t depth;        // nesting depth within the recording thread
    uint32_t num_attrs = 0;
    std::array<Attr, kMaxAttrs> attrs;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Caps the number of retained spans (default 65536). Takes effect for
  // subsequent records only: shrinking below the current span count keeps
  // every already-recorded span (the buffer is never truncated) and drops
  // new ones, bumping dropped(). Analyzers detect truncated timelines from
  // the exported "capacity" + "dropped" fields.
  void set_capacity(size_t max_spans);
  size_t capacity() const;

  // Starts a new trace: allocates a fresh trace id with no parent span.
  // Returns an inactive context when tracing is disabled, so callers can
  // thread the result unconditionally.
  TraceContext StartTrace();

  // Records a span retroactively from externally captured timestamps —
  // used for intervals that no single scope can bracket, e.g. queue wait
  // between the submitting thread and the worker that dequeues. Returns
  // the recorded span's context (for parenting children), or `parent`
  // unchanged when tracing is disabled.
  TraceContext EmitSpan(const char* name, const TraceContext& parent,
                        uint64_t start_ns, uint64_t end_ns,
                        std::initializer_list<Attr> attrs = {});

  static Attr IntAttr(const char* key, int64_t v);
  static Attr UintAttr(const char* key, uint64_t v);
  static Attr DoubleAttr(const char* key, double v);
  static Attr BoolAttr(const char* key, bool v);
  static Attr StrAttr(const char* key, const char* v);  // literal only

  std::vector<Span> snapshot() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  // {"schema_version": 2, "dropped": N, "capacity": C, "spans": [{name,
  // trace_id, span_id, parent_id, ts_us, dur_us, thread, depth, attrs?},
  // ...]} with ts_us relative to the earliest span.
  std::string ToJson(int indent = 0) const;

  // Chrome trace event format (the JSON flavor chrome://tracing and
  // Perfetto load directly): one complete ("ph":"X") event per span, with
  // pid = trace id so each request renders as its own track group and
  // tid = thread ordinal so same-request spans on different pool threads
  // stay distinguishable. Causal ids and attributes ride in "args".
  std::string ToPerfettoJson(int indent = 0) const;

  // The process-wide tracer the library's FEDSEARCH_TRACE_SPAN sites
  // report to. Never destroyed.
  static Tracer& Global();

  // RAII span handle. Reads the enabled flag once at construction: a scope
  // that starts disabled records nothing even if tracing is switched on
  // mid-span, which keeps per-thread depth accounting balanced.
  class Scope {
   public:
    explicit Scope(const char* name, Tracer& tracer = Global());
    // Opens a child span of `parent` (same trace id, parented under
    // parent.span_id). An inactive parent still records the span, as
    // anonymous.
    Scope(const char* name, const TraceContext& parent,
          Tracer& tracer = Global());
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    // True when this scope will record a span on exit. Guard attribute
    // computation with it when the values aren't free to produce.
    bool recording() const { return tracer_ != nullptr; }

    // Context for children of this span. When not recording, passes the
    // construction-time parent through so propagation chains survive a
    // disabled tracer.
    TraceContext context() const {
      return recording() ? TraceContext{parent_.trace_id, span_id_} : parent_;
    }

    // Typed attributes, chainable; no-ops when not recording. At most
    // kMaxAttrs stick; extras are ignored.
    Scope& AttrInt(const char* key, int64_t v);
    Scope& AttrUint(const char* key, uint64_t v);
    Scope& AttrDouble(const char* key, double v);
    Scope& AttrBool(const char* key, bool v);
    Scope& AttrStr(const char* key, const char* v);  // literal only

   private:
    void Add(const char* key, const AttrValue& value);

    Tracer* tracer_ = nullptr;  // null when tracing was off at entry
    const char* name_ = nullptr;
    TraceContext parent_;  // as passed in (trace id + parent span id)
    uint64_t span_id_ = 0;
    uint64_t start_ = 0;
    uint32_t depth_ = 0;
    uint32_t num_attrs_ = 0;
    std::array<Attr, kMaxAttrs> attrs_;
  };

 private:
  void Record(const Span& span);
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  // Trace and span ids share one process-wide counter; uniqueness is all
  // that matters. Relaxed: ids are observational labels, never ordered
  // against payload data.
  std::atomic<uint64_t> next_id_{1};
  // Lock order: mu_ is terminal — recording/snapshotting never acquires
  // another lock while holding it. Callers may hold their own locks when a
  // Scope exit records here (broker mu_ -> tracer mu_); the tracer never
  // calls back out, so no inversion is possible.
  mutable Mutex mu_;
  std::vector<Span> spans_ FEDSEARCH_GUARDED_BY(mu_);
  size_t capacity_ FEDSEARCH_GUARDED_BY(mu_) = 65536;
};

}  // namespace fedsearch::util

// Records the enclosing scope as a span named `name` (a string literal) in
// the global tracer. Free when tracing is disabled.
#define FEDSEARCH_TRACE_CONCAT_INNER_(a, b) a##b
#define FEDSEARCH_TRACE_CONCAT_(a, b) FEDSEARCH_TRACE_CONCAT_INNER_(a, b)
#define FEDSEARCH_TRACE_SPAN(name)                                     \
  ::fedsearch::util::Tracer::Scope FEDSEARCH_TRACE_CONCAT_(            \
      fedsearch_trace_scope_, __LINE__)(name)

#endif  // FEDSEARCH_UTIL_TRACE_H_
