#ifndef FEDSEARCH_UTIL_TRACE_H_
#define FEDSEARCH_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fedsearch::util {

// Lightweight span tracing for the serving and offline-build pipelines.
//
// Disabled by default: an inactive FEDSEARCH_TRACE_SPAN costs one relaxed
// atomic load and nothing else, so spans can stay compiled into the hot
// paths permanently. When enabled, each scope records (name, start,
// duration, thread ordinal, nesting depth) into a bounded in-memory buffer
// under a mutex — recording happens once per span on scope exit, not per
// event, so the lock is far off any inner loop. When the buffer fills,
// new spans are dropped and counted rather than blocking or reallocating.
//
// Like the metrics registry, traces are observational by construction:
// they capture wall time but never feed it back into computation, so
// enabling tracing cannot perturb scored results.
//
// Span names must be string literals (the tracer stores the pointer).
class Tracer {
 public:
  struct Span {
    const char* name;
    uint64_t start_ns;     // MonotonicNanos at scope entry
    uint64_t duration_ns;  // scope exit - entry
    uint32_t thread;       // small per-process thread ordinal
    uint32_t depth;        // nesting depth within the recording thread
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Caps the number of retained spans (default 65536). Takes effect for
  // subsequent records; existing spans are kept.
  void set_capacity(size_t max_spans);

  std::vector<Span> snapshot() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  // {"schema_version": 1, "dropped": N, "spans": [{name, ts_us, dur_us,
  // thread, depth}, ...]} with ts_us relative to the earliest span.
  std::string ToJson(int indent = 0) const;

  // The process-wide tracer the library's FEDSEARCH_TRACE_SPAN sites
  // report to. Never destroyed.
  static Tracer& Global();

  // RAII span handle. Reads the enabled flag once at construction: a scope
  // that starts disabled records nothing even if tracing is switched on
  // mid-span, which keeps per-thread depth accounting balanced.
  class Scope {
   public:
    explicit Scope(const char* name, Tracer& tracer = Global());
    ~Scope();

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Tracer* tracer_ = nullptr;  // null when tracing was off at entry
    const char* name_ = nullptr;
    uint64_t start_ = 0;
    uint32_t depth_ = 0;
  };

 private:
  void Record(const Span& span);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  size_t capacity_ = 65536;
};

}  // namespace fedsearch::util

// Records the enclosing scope as a span named `name` (a string literal) in
// the global tracer. Free when tracing is disabled.
#define FEDSEARCH_TRACE_CONCAT_INNER_(a, b) a##b
#define FEDSEARCH_TRACE_CONCAT_(a, b) FEDSEARCH_TRACE_CONCAT_INNER_(a, b)
#define FEDSEARCH_TRACE_SPAN(name)                                     \
  ::fedsearch::util::Tracer::Scope FEDSEARCH_TRACE_CONCAT_(            \
      fedsearch_trace_scope_, __LINE__)(name)

#endif  // FEDSEARCH_UTIL_TRACE_H_
