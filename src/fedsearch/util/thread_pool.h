#ifndef FEDSEARCH_UTIL_THREAD_POOL_H_
#define FEDSEARCH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "fedsearch/util/mutex.h"
#include "fedsearch/util/thread_annotations.h"

namespace fedsearch::util {

// Fixed-size pool of worker threads for data-parallel loops over database
// indices (the query-serving fan-out). The design constraints, in order:
//
//  1. Determinism. ParallelFor partitions work dynamically (an atomic index
//     counter), but callers must only write to per-index slots and reduce
//     after the join, so results are independent of the work/thread
//     assignment. The serving layer's bit-identical serial/parallel
//     guarantee rests on this contract.
//  2. No queue allocation per task. One loop is one "generation": workers
//     park on a condition variable between loops and chase a shared atomic
//     counter during one, so per-call overhead is two lock acquisitions,
//     not one allocation per index.
//  3. The calling thread participates, so ThreadPool(1) spawns no workers
//     and ParallelFor degenerates to the plain serial loop.
//
// Concurrent ParallelFor calls from distinct threads are safe: a run lock
// serializes them, so each loop runs exclusively and callers simply queue.
// (Concurrent SelectDatabases calls on one Metasearcher share its pool and
// rely on this.) ParallelFor is still not reentrant — fn must not call
// back into the same pool, which would self-deadlock on the run lock.
//
// Lock order: run_mu_ -> mu_ (ParallelFor holds run_mu_ across the whole
// loop and takes mu_ inside for the publication handshake); neither lock
// is ever taken while holding mu_. Both are terminal with respect to every
// other lock in the tree: pool code never calls out while holding them.
class ThreadPool {
 public:
  // `num_threads` counts the calling thread: the pool spawns
  // max(num_threads, 1) - 1 workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads that execute a ParallelFor (workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, count), distributed over the pool, and
  // blocks until all indices completed. fn must not throw, must not call
  // back into this pool, and must only touch per-index state (see class
  // comment). With no workers (or count <= 1) the loop runs inline.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn)
      FEDSEARCH_EXCLUDES(run_mu_, mu_);

  // Thread count to use when the caller does not specify one: the
  // FEDSEARCH_THREADS environment variable if set to a positive integer,
  // otherwise the hardware concurrency (at least 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop() FEDSEARCH_EXCLUDES(mu_);
  // `stealing_worker` only labels the claimed-index metric (worker-claimed
  // indices count as "stolen" from the calling thread's serial order).
  // Reads fn_/count_ without mu_ — sound via the publication handshake
  // (see the members), which the analysis cannot model.
  void Drain(bool stealing_worker) FEDSEARCH_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;

  // Held for the whole of a worker-assisted ParallelFor: one loop at a
  // time owns fn_/count_/next_/generation_. Without it, concurrent callers
  // would race on the generation handshake (and workers could observe one
  // caller's fn_ reset while draining another's loop).
  // LOCK-FREE: guards no member directly — it is a capability over the
  // loop's exclusive time window; the loop data itself is published under
  // mu_ below.
  Mutex run_mu_ FEDSEARCH_ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  // Current generation's loop, guarded by mu_ for publication; workers read
  // them lock-free in Drain only after observing the generation bump under
  // mu_, and the publishing ParallelFor holds run_mu_ until every worker
  // reported done — so the values are frozen for the whole window in which
  // they are read (the handshake PR 3's race fix pinned).
  const std::function<void(size_t)>* fn_ FEDSEARCH_GUARDED_BY(mu_) = nullptr;
  size_t count_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  std::atomic<size_t> next_{0};
  size_t pending_workers_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  uint64_t generation_ FEDSEARCH_GUARDED_BY(mu_) = 0;
  bool stop_ FEDSEARCH_GUARDED_BY(mu_) = false;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_THREAD_POOL_H_
