#ifndef FEDSEARCH_UTIL_THREAD_POOL_H_
#define FEDSEARCH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedsearch::util {

// Fixed-size pool of worker threads for data-parallel loops over database
// indices (the query-serving fan-out). The design constraints, in order:
//
//  1. Determinism. ParallelFor partitions work dynamically (an atomic index
//     counter), but callers must only write to per-index slots and reduce
//     after the join, so results are independent of the work/thread
//     assignment. The serving layer's bit-identical serial/parallel
//     guarantee rests on this contract.
//  2. No queue allocation per task. One loop is one "generation": workers
//     park on a condition variable between loops and chase a shared atomic
//     counter during one, so per-call overhead is two lock acquisitions,
//     not one allocation per index.
//  3. The calling thread participates, so ThreadPool(1) spawns no workers
//     and ParallelFor degenerates to the plain serial loop.
//
// Concurrent ParallelFor calls from distinct threads are safe: a run lock
// serializes them, so each loop runs exclusively and callers simply queue.
// (Concurrent SelectDatabases calls on one Metasearcher share its pool and
// rely on this.) ParallelFor is still not reentrant — fn must not call
// back into the same pool, which would self-deadlock on the run lock.
class ThreadPool {
 public:
  // `num_threads` counts the calling thread: the pool spawns
  // max(num_threads, 1) - 1 workers.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total threads that execute a ParallelFor (workers + caller).
  size_t num_threads() const { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, count), distributed over the pool, and
  // blocks until all indices completed. fn must not throw, must not call
  // back into this pool, and must only touch per-index state (see class
  // comment). With no workers (or count <= 1) the loop runs inline.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  // Thread count to use when the caller does not specify one: the
  // FEDSEARCH_THREADS environment variable if set to a positive integer,
  // otherwise the hardware concurrency (at least 1).
  static size_t DefaultThreadCount();

 private:
  void WorkerLoop();
  // `stealing_worker` only labels the claimed-index metric (worker-claimed
  // indices count as "stolen" from the calling thread's serial order).
  void Drain(bool stealing_worker);

  std::vector<std::thread> workers_;

  // Held for the whole of a worker-assisted ParallelFor: one loop at a
  // time owns fn_/count_/next_/generation_. Without it, concurrent callers
  // would race on the generation handshake (and workers could observe one
  // caller's fn_ reset while draining another's loop).
  std::mutex run_mu_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Current generation's loop, guarded by mu_ for publication; workers read
  // it only after observing the generation bump under mu_.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};
  size_t pending_workers_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_THREAD_POOL_H_
