#ifndef FEDSEARCH_UTIL_MATH_H_
#define FEDSEARCH_UTIL_MATH_H_

#include <cstddef>
#include <vector>

namespace fedsearch::util {

// Result of a simple least-squares line fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
};

// Ordinary least squares over (x[i], y[i]). Requires xs.size() == ys.size().
// With fewer than two points (or zero x-variance) the fit degenerates to a
// horizontal line through the mean.
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

// Spearman rank correlation coefficient between two paired samples (average
// ranks for ties, Pearson correlation of the rank vectors). Returns 0 when
// either side has zero rank variance or fewer than two points.
double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b);

// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Average ranks (1-based) of the values, with ties assigned the mean of the
// tied positions. Exposed for testing.
std::vector<double> AverageRanks(const std::vector<double>& values);

// Paired two-sided t-test on the per-pair differences a[i] - b[i].
// Returns the t statistic; |t| > ~2.6 is significant at the 1% level for the
// sample sizes used in the experiments. Returns 0 if the difference variance
// is zero or fewer than two pairs are given.
double PairedTStatistic(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace fedsearch::util

#endif  // FEDSEARCH_UTIL_MATH_H_
