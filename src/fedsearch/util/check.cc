#include "fedsearch/util/check.h"

#include <cstdio>
#include <cstdlib>

namespace fedsearch::util::internal {

CheckFailureStream::CheckFailureStream(const char* kind,
                                       const char* condition,
                                       const char* file, int line) {
  stream_ << file << ':' << line << ": " << kind << " failed: " << condition;
  prefix_size_ = stream_.str().size();
}

CheckFailureStream::~CheckFailureStream() {
  std::string message = stream_.str();
  if (message.size() > prefix_size_) message.insert(prefix_size_, ": ");
  // fwrite + fflush rather than iostreams: the process is about to abort
  // and stderr must carry the message even if cerr is in a broken state.
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fedsearch::util::internal
