#include "fedsearch/util/math.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedsearch::util {

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  LinearFit fit;
  const size_t n = std::min(xs.size(), ys.size());
  if (n == 0) return fit;
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (n < 2 || sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  if (syy > 0.0) {
    const double ss_res = syy - fit.slope * sxy;
    fit.r_squared = std::max(0.0, 1.0 - ss_res / syy);
  } else {
    fit.r_squared = 1.0;
  }
  return fit;
}

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j are tied; assign the mean 1-based rank.
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanRankCorrelation(const std::vector<double>& a,
                               const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  std::vector<double> ra = AverageRanks({a.begin(), a.begin() + n});
  std::vector<double> rb = AverageRanks({b.begin(), b.begin() + n});
  double ma = 0.0, mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double saa = 0.0, sbb = 0.0, sab = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    saa += da * da;
    sbb += db * db;
    sab += da * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PairedTStatistic(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = (a[i] - b[i]) - mean;
    var += d * d;
  }
  var /= static_cast<double>(n - 1);
  if (var <= 0.0) return 0.0;
  return mean / std::sqrt(var / static_cast<double>(n));
}

}  // namespace fedsearch::util
