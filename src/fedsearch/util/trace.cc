#include "fedsearch/util/trace.h"

#include <algorithm>

#include "fedsearch/util/json_writer.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::util {

namespace {

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local uint32_t t_span_depth = 0;

void WriteAttrValue(JsonWriter& writer, const Tracer::AttrValue& value) {
  switch (value.kind) {
    case Tracer::AttrValue::Kind::kInt:
      writer.Value(value.i);
      break;
    case Tracer::AttrValue::Kind::kUint:
      writer.Value(value.u);
      break;
    case Tracer::AttrValue::Kind::kDouble:
      writer.Value(value.d);
      break;
    case Tracer::AttrValue::Kind::kBool:
      writer.Value(value.b);
      break;
    case Tracer::AttrValue::Kind::kString:
      writer.Value(value.s);
      break;
  }
}

std::vector<Tracer::Span> SortedByStart(std::vector<Tracer::Span> spans) {
  // Buffer order is completion order across threads; start order is the
  // natural reading order for a timeline.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Tracer::Span& a, const Tracer::Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  return spans;
}

}  // namespace

void Tracer::set_capacity(size_t max_spans) {
  MutexLock lock(mu_);
  capacity_ = max_spans;
}

size_t Tracer::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

TraceContext Tracer::StartTrace() {
  if (!enabled()) return TraceContext{};
  return TraceContext{NextId(), 0};
}

TraceContext Tracer::EmitSpan(const char* name, const TraceContext& parent,
                              uint64_t start_ns, uint64_t end_ns,
                              std::initializer_list<Attr> attrs) {
  if (!enabled()) return parent;
  Span span;
  span.name = name;
  span.trace_id = parent.trace_id;
  span.span_id = NextId();
  span.parent_id = parent.span_id;
  span.start_ns = start_ns;
  span.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  span.thread = ThreadOrdinal();
  span.depth = 0;
  for (const Attr& attr : attrs) {
    if (span.num_attrs >= kMaxAttrs) break;
    span.attrs[span.num_attrs++] = attr;
  }
  Record(span);
  return TraceContext{parent.trace_id, span.span_id};
}

Tracer::Attr Tracer::IntAttr(const char* key, int64_t v) {
  Attr attr;
  attr.key = key;
  attr.value.kind = AttrValue::Kind::kInt;
  attr.value.i = v;
  return attr;
}

Tracer::Attr Tracer::UintAttr(const char* key, uint64_t v) {
  Attr attr;
  attr.key = key;
  attr.value.kind = AttrValue::Kind::kUint;
  attr.value.u = v;
  return attr;
}

Tracer::Attr Tracer::DoubleAttr(const char* key, double v) {
  Attr attr;
  attr.key = key;
  attr.value.kind = AttrValue::Kind::kDouble;
  attr.value.d = v;
  return attr;
}

Tracer::Attr Tracer::BoolAttr(const char* key, bool v) {
  Attr attr;
  attr.key = key;
  attr.value.kind = AttrValue::Kind::kBool;
  attr.value.b = v;
  return attr;
}

Tracer::Attr Tracer::StrAttr(const char* key, const char* v) {
  Attr attr;
  attr.key = key;
  attr.value.kind = AttrValue::Kind::kString;
  attr.value.s = v;
  return attr;
}

std::vector<Tracer::Span> Tracer::snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

void Tracer::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::Record(const Span& span) {
  MutexLock lock(mu_);
  if (spans_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(span);
}

std::string Tracer::ToJson(int indent) const {
  const std::vector<Span> spans = SortedByStart(snapshot());
  const uint64_t epoch = spans.empty() ? 0 : spans.front().start_ns;
  JsonWriter writer(indent);
  writer.BeginObject();
  writer.Key("schema_version").Value(2);
  writer.Key("dropped").Value(dropped());
  writer.Key("capacity").Value(capacity());
  writer.Key("spans").BeginArray();
  for (const Span& span : spans) {
    writer.BeginObject();
    writer.Key("name").Value(span.name);
    writer.Key("trace_id").Value(span.trace_id);
    writer.Key("span_id").Value(span.span_id);
    writer.Key("parent_id").Value(span.parent_id);
    writer.Key("ts_us").Value(static_cast<double>(span.start_ns - epoch) /
                              1000.0);
    writer.Key("dur_us").Value(static_cast<double>(span.duration_ns) / 1000.0);
    writer.Key("thread").Value(span.thread);
    writer.Key("depth").Value(span.depth);
    if (span.num_attrs > 0) {
      writer.Key("attrs").BeginObject();
      for (uint32_t i = 0; i < span.num_attrs; ++i) {
        writer.Key(span.attrs[i].key);
        WriteAttrValue(writer, span.attrs[i].value);
      }
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

std::string Tracer::ToPerfettoJson(int indent) const {
  const std::vector<Span> spans = SortedByStart(snapshot());
  const uint64_t epoch = spans.empty() ? 0 : spans.front().start_ns;
  JsonWriter writer(indent);
  writer.BeginObject();
  writer.Key("displayTimeUnit").Value("ms");
  writer.Key("otherData").BeginObject();
  writer.Key("schema_version").Value(2);
  writer.Key("dropped").Value(dropped());
  writer.Key("capacity").Value(capacity());
  writer.EndObject();
  writer.Key("traceEvents").BeginArray();
  // One "process" per request (pid = trace id) so chrome://tracing groups
  // each request's spans into its own track; pid 0 collects anonymous
  // spans recorded outside any request.
  std::vector<uint64_t> pids;
  pids.reserve(spans.size());
  for (const Span& span : spans) pids.push_back(span.trace_id);
  std::sort(pids.begin(), pids.end());
  pids.erase(std::unique(pids.begin(), pids.end()), pids.end());
  for (uint64_t pid : pids) {
    writer.BeginObject();
    writer.Key("name").Value("process_name");
    writer.Key("ph").Value("M");
    writer.Key("pid").Value(pid);
    writer.Key("tid").Value(0);
    writer.Key("args").BeginObject();
    if (pid == 0) {
      writer.Key("name").Value("untraced");
    } else {
      writer.Key("name").Value("request " + std::to_string(pid));
    }
    writer.EndObject();
    writer.EndObject();
  }
  for (const Span& span : spans) {
    writer.BeginObject();
    writer.Key("name").Value(span.name);
    writer.Key("cat").Value("fedsearch");
    writer.Key("ph").Value("X");
    writer.Key("ts").Value(static_cast<double>(span.start_ns - epoch) /
                           1000.0);
    writer.Key("dur").Value(static_cast<double>(span.duration_ns) / 1000.0);
    writer.Key("pid").Value(span.trace_id);
    writer.Key("tid").Value(span.thread);
    writer.Key("args").BeginObject();
    writer.Key("trace_id").Value(span.trace_id);
    writer.Key("span_id").Value(span.span_id);
    writer.Key("parent_id").Value(span.parent_id);
    for (uint32_t i = 0; i < span.num_attrs; ++i) {
      writer.Key(span.attrs[i].key);
      WriteAttrValue(writer, span.attrs[i].value);
    }
    writer.EndObject();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Scope::Scope(const char* name, Tracer& tracer)
    : Scope(name, TraceContext{}, tracer) {}

Tracer::Scope::Scope(const char* name, const TraceContext& parent,
                     Tracer& tracer)
    : parent_(parent) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  span_id_ = tracer.NextId();
  depth_ = t_span_depth++;
  start_ = MonotonicNanos();
}

Tracer::Scope::~Scope() {
  if (tracer_ == nullptr) return;
  const uint64_t end = MonotonicNanos();
  --t_span_depth;
  Span span;
  span.name = name_;
  span.trace_id = parent_.trace_id;
  span.span_id = span_id_;
  span.parent_id = parent_.span_id;
  span.start_ns = start_;
  span.duration_ns = end - start_;
  span.thread = ThreadOrdinal();
  span.depth = depth_;
  span.num_attrs = num_attrs_;
  span.attrs = attrs_;
  tracer_->Record(span);
}

void Tracer::Scope::Add(const char* key, const AttrValue& value) {
  if (num_attrs_ >= kMaxAttrs) return;
  attrs_[num_attrs_].key = key;
  attrs_[num_attrs_].value = value;
  ++num_attrs_;
}

Tracer::Scope& Tracer::Scope::AttrInt(const char* key, int64_t v) {
  if (recording()) Add(key, IntAttr(key, v).value);
  return *this;
}

Tracer::Scope& Tracer::Scope::AttrUint(const char* key, uint64_t v) {
  if (recording()) Add(key, UintAttr(key, v).value);
  return *this;
}

Tracer::Scope& Tracer::Scope::AttrDouble(const char* key, double v) {
  if (recording()) Add(key, DoubleAttr(key, v).value);
  return *this;
}

Tracer::Scope& Tracer::Scope::AttrBool(const char* key, bool v) {
  if (recording()) Add(key, BoolAttr(key, v).value);
  return *this;
}

Tracer::Scope& Tracer::Scope::AttrStr(const char* key, const char* v) {
  if (recording()) Add(key, StrAttr(key, v).value);
  return *this;
}

}  // namespace fedsearch::util
