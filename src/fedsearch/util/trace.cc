#include "fedsearch/util/trace.h"

#include <algorithm>

#include "fedsearch/util/json_writer.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::util {

namespace {

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

thread_local uint32_t t_span_depth = 0;

}  // namespace

void Tracer::set_capacity(size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_spans;
}

std::vector<Tracer::Span> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::Record(const Span& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(span);
}

std::string Tracer::ToJson(int indent) const {
  std::vector<Span> spans = snapshot();
  // Buffer order is completion order across threads; start order is the
  // natural reading order for a timeline.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  const uint64_t epoch = spans.empty() ? 0 : spans.front().start_ns;
  JsonWriter writer(indent);
  writer.BeginObject();
  writer.Key("schema_version").Value(1);
  writer.Key("dropped").Value(dropped());
  writer.Key("spans").BeginArray();
  for (const Span& span : spans) {
    writer.BeginObject();
    writer.Key("name").Value(span.name);
    writer.Key("ts_us").Value(static_cast<double>(span.start_ns - epoch) /
                              1000.0);
    writer.Key("dur_us").Value(static_cast<double>(span.duration_ns) / 1000.0);
    writer.Key("thread").Value(span.thread);
    writer.Key("depth").Value(span.depth);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.str();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Scope::Scope(const char* name, Tracer& tracer) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  name_ = name;
  depth_ = t_span_depth++;
  start_ = MonotonicNanos();
}

Tracer::Scope::~Scope() {
  if (tracer_ == nullptr) return;
  const uint64_t end = MonotonicNanos();
  --t_span_depth;
  tracer_->Record(Span{name_, start_, end - start_, ThreadOrdinal(), depth_});
}

}  // namespace fedsearch::util
