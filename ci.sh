#!/usr/bin/env bash
# CI matrix, selectable per job:
#
#   ./ci.sh                                  # all jobs, cheap ones first
#   ./ci.sh --jobs lint,tidy                 # fast static tier only
#   ./ci.sh --jobs asan,tsan,ubsan           # sanitizer matrix
#   ./ci.sh --jobs fuzz-regression -j 4      # corpus replay, 4-way builds
#   ./ci.sh --clean --jobs release           # rebuild the tree from scratch
#
# Jobs (run in the order listed, regardless of --jobs order):
#   lint            determinism + concurrency/contract lints over src/ with
#                   their self-tests, plus the timeline-analyzer self-test
#                   (python3)
#   tidy            clang-tidy over src/, tests/, and bench/; gating checks
#                   come from .clang-tidy WarningsAsErrors
#   tsa             clang -Wthread-safety -Werror replay of every project TU
#                   (tools/run_clang_tsa.py) — enforces the FEDSEARCH_*
#                   thread-safety annotations that gcc compiles as no-ops
#   asan            Debug + AddressSanitizer, full ctest suite (minus bench)
#   ubsan           Debug + UndefinedBehaviorSanitizer, same suite as asan
#   tsan            Debug + ThreadSanitizer, concurrency tests only
#                   (labels: stress + threads) to bound runtime
#   release         Release tree, full ctest suite (minus bench)
#   fuzz-regression corpus replay + bounded deterministic mutations
#   smoke           serving-throughput bench smoke (serial==parallel check)
#                   + Perfetto trace export validated by analyze_timeline.py
#   broker          broker-labeled tests + overload bench smoke with request
#                   tracing on, gated against bench/baselines/
#                   BENCH_broker.json (virtual-time numbers: the gate
#                   doubles as a bit-reproducibility check) and its timeline
#                   validated by analyze_timeline.py
#   churn           churn-labeled tests (corpus churn, refresh scheduling,
#                   epoch-versioned publication) + churn-degradation bench
#                   smoke gated against bench/baselines/BENCH_churn.json;
#                   the bench reruns every scenario internally and fails on
#                   any non-bit-identical request stream, so the gate
#                   doubles as a determinism check
#   perf-smoke      Release bench smoke with --json telemetry, gated against
#                   the committed baseline in bench/baselines/ by
#                   tools/check_bench_regression.py (>15% qps drop or
#                   >25% p95 growth fails the job), plus the adaptive-kernel
#                   microbenchmarks gated at a jitter-tolerant 30%
#
# The tidy and tsa jobs need a clang toolchain. Without one they skip
# with a notice by default; set FEDSEARCH_CI_STRICT=1 to make a missing
# analyzer fail the job instead of skipping (for CI runners that are
# supposed to have the toolchain, so a broken image cannot silently
# drop the static tier). Both jobs share one configure-only tree,
# build-ci/static, whose compile_commands.json drives them.
#
# All build trees live under build-ci/<name> and are reused across
# invocations (configure+build runs at most once per tree per run);
# --clean removes build-ci/ first for a from-scratch rebuild. The bench
# label is excluded from the sanitizer/release ctest sweeps — perf numbers
# from instrumented trees would gate on noise; perf-smoke owns the
# telemetry run, against the Release tree.
#
# Every tree builds with -DFEDSEARCH_DCHECK=ON so debug-only invariants
# (lambda simplex, finite gamma, cache-key bounds) are checked in CI even
# in the Release job.
set -euo pipefail
cd "$(dirname "$0")"

ALL_JOBS="lint tidy tsa asan ubsan tsan release fuzz-regression smoke broker churn perf-smoke"
SELECTED="$ALL_JOBS"
JOBS="$(nproc)"
CLEAN=0
STRICT="${FEDSEARCH_CI_STRICT:-0}"

usage() {
  cat >&2 <<EOF
usage: ./ci.sh [--jobs <job>[,<job>...]] [-j N] [--clean]

  --jobs   comma- or space-separated subset of the CI matrix; jobs always
           run in the canonical order below, regardless of --jobs order
  -j N     parallel build/test width (default: nproc)
  --clean  remove build-ci/ first for a from-scratch rebuild

jobs:
  $ALL_JOBS
EOF
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)   SELECTED="${2//,/ }"; shift 2 ;;
    --jobs=*) SELECTED="${1#--jobs=}"; SELECTED="${SELECTED//,/ }"; shift ;;
    -j)       JOBS="$2"; shift 2 ;;
    -j*)      JOBS="${1#-j}"; shift ;;
    --clean)  CLEAN=1; shift ;;
    *) echo "ci.sh: unknown argument: $1" >&2; usage; exit 2 ;;
  esac
done

for job in $SELECTED; do
  case " $ALL_JOBS " in
    *" $job "*) ;;
    *) echo "ci.sh: unknown job: $job" >&2; usage; exit 2 ;;
  esac
done

selected() { case " $SELECTED " in *" $1 "*) return 0 ;; *) return 1 ;; esac; }

run() {
  echo "+ $*"
  "$@"
}

# Per-job wall-time accounting: every job block opens with begin_job and
# closes with end_job; the summary table at the bottom makes CI-budget
# regressions visible without digging through runner logs. Shared
# build-tree setup (ensure_tree) is charged to the first job that needs it.
declare -a TIMED_JOBS=()
declare -a TIMED_SECS=()
CURRENT_JOB=""
CURRENT_JOB_T0=0
begin_job() {
  CURRENT_JOB="$1"
  CURRENT_JOB_T0="$(date +%s)"
  echo "=== job: $1 ==="
}
end_job() {
  TIMED_JOBS+=("$CURRENT_JOB")
  TIMED_SECS+=("$(( $(date +%s) - CURRENT_JOB_T0 ))")
}
print_job_times() {
  [[ "${#TIMED_JOBS[@]}" -gt 0 ]] || return 0
  local total=0 i
  echo "ci.sh: job wall times"
  for i in "${!TIMED_JOBS[@]}"; do
    printf '  %-16s %5ss\n' "${TIMED_JOBS[$i]}" "${TIMED_SECS[$i]}"
    total=$(( total + TIMED_SECS[i] ))
  done
  printf '  %-16s %5ss\n' total "$total"
}

# missing_tool <job> <tool>: skip notice by default, hard failure under
# FEDSEARCH_CI_STRICT=1 so a runner image without the analyzer cannot
# silently pass the static tier.
missing_tool() {
  if [[ "$STRICT" == 1 ]]; then
    echo "ci.sh: $2 not installed and FEDSEARCH_CI_STRICT=1;" \
         "failing $1 job" >&2
    exit 1
  fi
  echo "ci.sh: $2 not installed; skipping $1 job" \
       "(FEDSEARCH_CI_STRICT=1 fails instead)"
}

if [[ "$CLEAN" == 1 ]]; then
  run rm -rf build-ci
fi
# Stray roots from the pre-build-ci/ layout; remove so they cannot be
# mistaken for live trees (they are also .gitignored).
for legacy in build-ci-*; do
  if [[ -d "$legacy" ]]; then run rm -rf "$legacy"; fi
done

# Configure + build a tree once per invocation, even if several jobs use it.
declare -A BUILT=()
ensure_tree() {
  local dir="build-ci/$1"; shift
  [[ -n "${BUILT[$dir]:-}" ]] && return 0
  run cmake -B "$dir" -S . -DFEDSEARCH_DCHECK=ON "$@"
  run cmake --build "$dir" -j "$JOBS"
  BUILT[$dir]=1
}

# Configure-only tree shared by the tidy and tsa jobs. Both consume its
# compile_commands.json (exported unconditionally by the top-level
# CMakeLists) and never need object files, so it is never built.
STATIC_CONFIGURED=0
ensure_static_tree() {
  [[ "$STATIC_CONFIGURED" == 1 ]] && return 0
  run cmake -B build-ci/static -S . -DCMAKE_BUILD_TYPE=Debug \
    -DFEDSEARCH_DCHECK=ON
  STATIC_CONFIGURED=1
}

# --- Static tier: fail fast before any compilation -----------------------
if selected lint; then
  begin_job lint
  run python3 tools/lint_determinism.py src
  run python3 tools/lint_determinism_selftest.py
  run python3 tools/lint_contracts.py src
  run python3 tools/lint_contracts_selftest.py
  run python3 tools/analyze_timeline.py --selftest
  # A committed baseline no job compares against gates nothing; fail fast.
  run python3 tools/check_bench_regression.py --check-orphans \
    ci.sh bench/baselines
  end_job
fi

if selected tidy; then
  begin_job tidy
  if command -v clang-tidy >/dev/null 2>&1; then
    ensure_static_tree
    # Tests and benches are covered too — they hold most of the raw
    # concurrency (stress harnesses, bench worker pools). Which checks
    # gate is owned by WarningsAsErrors in .clang-tidy, not overridden
    # here.
    mapfile -t TIDY_SOURCES < <(find src tests bench -name '*.cc' | sort)
    run clang-tidy -p build-ci/static --quiet "${TIDY_SOURCES[@]}"
  else
    missing_tool tidy clang-tidy
  fi
  end_job
fi

if selected tsa; then
  begin_job tsa
  # gcc compiles the FEDSEARCH_* thread-safety macros as no-ops; this
  # replay is where the annotations are actually enforced.
  if command -v clang++ >/dev/null 2>&1; then
    ensure_static_tree
    run python3 tools/run_clang_tsa.py \
      build-ci/static/compile_commands.json -j "$JOBS"
  else
    missing_tool tsa clang++
  fi
  end_job
fi

# --- Sanitizer matrix ----------------------------------------------------
if selected asan; then
  begin_job asan
  ensure_tree asan -DCMAKE_BUILD_TYPE=Debug -DFEDSEARCH_SANITIZE=address
  run ctest --test-dir build-ci/asan --output-on-failure -j "$JOBS" -LE bench
  end_job
fi

if selected ubsan; then
  begin_job ubsan
  ensure_tree ubsan -DCMAKE_BUILD_TYPE=Debug -DFEDSEARCH_SANITIZE=undefined
  run ctest --test-dir build-ci/ubsan --output-on-failure -j "$JOBS" -LE bench
  end_job
fi

if selected tsan; then
  begin_job tsan
  ensure_tree tsan -DCMAKE_BUILD_TYPE=Debug -DFEDSEARCH_SANITIZE=thread
  # Stress + thread-touching unit tests only: TSan's ~10x slowdown makes the
  # full suite blow the CI budget, and single-threaded tests add no signal.
  run ctest --test-dir build-ci/tsan --output-on-failure -j "$JOBS" \
    -L 'stress|threads'
  end_job
fi

# --- Release + dynamic regression tiers ----------------------------------
if selected release || selected fuzz-regression || selected smoke || \
    selected broker || selected churn || selected perf-smoke; then
  ensure_tree release -DCMAKE_BUILD_TYPE=Release
fi

if selected release; then
  begin_job release
  run ctest --test-dir build-ci/release --output-on-failure -j "$JOBS" \
    -LE bench
  end_job
fi

if selected fuzz-regression; then
  begin_job fuzz-regression
  # The ctest fuzz label replays corpora with the default mutation budget;
  # CI adds a deeper deterministic mutation pass on top.
  run ctest --test-dir build-ci/release --output-on-failure -L fuzz
  run ./build-ci/release/tests/fuzz_summary_io_replay \
    --mutate 512 --seed 7 tests/fuzz/corpus/summary_io
  run ./build-ci/release/tests/fuzz_analyzer_replay \
    --mutate 512 --seed 7 tests/fuzz/corpus/analyzer
  end_job
fi

if selected smoke; then
  begin_job smoke
  # Exits non-zero if parallel rankings ever diverge from serial. The run
  # doubles as trace-export coverage: the Perfetto timeline it writes must
  # be valid, non-empty JSON the analyzer accepts.
  run ./build-ci/release/bench/bench_serving_throughput --smoke \
    --trace-out build-ci/release/serving_trace.json
  run python3 tools/analyze_timeline.py build-ci/release/serving_trace.json
  end_job
fi

if selected broker; then
  begin_job broker
  # Unit + stress + bench-smoke coverage for the serving broker, then the
  # overload bench gated against its committed baseline. The bench reports
  # only virtual-time numbers, so the gate tolerances are slack for real
  # regressions and the comparison is effectively exact.
  run ctest --test-dir build-ci/release --output-on-failure -j "$JOBS" \
    -L broker
  # Tracing rides along: the per-request timeline the smoke run exports
  # must be valid JSON with a connected span tree per request (the
  # analyzer attributes every request's latency or exits non-zero). The
  # gated virtual-time numbers are produced with tracing ON, so this also
  # pins "observational by construction" in CI.
  run ./build-ci/release/bench/bench_broker --smoke \
    --json build-ci/release/BENCH_broker.json \
    --trace-out build-ci/release/broker_trace.json
  run python3 tools/analyze_timeline.py build-ci/release/broker_trace.json
  run python3 tools/check_bench_regression.py \
    bench/baselines/BENCH_broker.json build-ci/release/BENCH_broker.json
  end_job
fi

if selected churn; then
  begin_job churn
  # Unit + stress coverage for the live-churn subsystem (the bench label
  # is excluded: the ctest bench tier re-runs the same smoke binary; the
  # gated run below owns that here). Then the churn-degradation bench —
  # which internally reruns every scenario and fails on any
  # non-bit-identical request stream — gated against its committed
  # baseline. Scores and virtual-time numbers are deterministic, so the
  # gate doubles as a reproducibility check; only wall_* metrics carry
  # load noise and those are informational.
  run ctest --test-dir build-ci/release --output-on-failure -j "$JOBS" \
    -L churn -LE bench
  run ./build-ci/release/bench/bench_churn_degradation --smoke \
    --json build-ci/release/BENCH_churn.json
  run python3 tools/check_bench_regression.py \
    bench/baselines/BENCH_churn.json build-ci/release/BENCH_churn.json
  end_job
fi

if selected perf-smoke; then
  begin_job perf-smoke
  # Gate the telemetry first (a broken gate passes everything), then the
  # numbers: a fresh Release smoke report against the committed baseline.
  run python3 tools/check_bench_regression_selftest.py
  run ./build-ci/release/bench/bench_serving_throughput --smoke \
    --json build-ci/release/BENCH_serving_throughput.json
  run python3 tools/check_bench_regression.py \
    bench/baselines/BENCH_serving_throughput.json \
    build-ci/release/BENCH_serving_throughput.json
  # Adaptive-kernel microbenchmarks (basis build, flat grid build, delta
  # evaluation). Gated via their qps_op values with a looser threshold —
  # sub-microsecond kernels see more scheduler jitter than whole-query
  # scenarios. The committed baseline holds only the kernel scenarios, so
  # only those gate.
  run ./build-ci/release/bench/bench_micro --smoke \
    --benchmark_filter='Posterior|AdaptiveDelta' \
    --json build-ci/release/BENCH_micro.json
  run python3 tools/check_bench_regression.py \
    bench/baselines/BENCH_micro.json build-ci/release/BENCH_micro.json \
    --max-qps-drop 0.30
  end_job
fi

print_job_times
echo "ci.sh: all green ($SELECTED)"
