#!/usr/bin/env bash
# Tier-1 verification: the full test suite in a Debug+ASan tree and a
# Release tree, plus a smoke run of the serving-throughput bench (which
# exits non-zero if parallel rankings ever diverge from serial).
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

run() {
  echo "+ $*"
  "$@"
}

# --- Debug + AddressSanitizer -------------------------------------------
run cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug -DFEDSEARCH_SANITIZE=address
run cmake --build build-ci-asan -j "$JOBS"
run ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

# --- Release -------------------------------------------------------------
run cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build-ci-release -j "$JOBS"
run ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

# --- Serving-layer smoke -------------------------------------------------
# Verifies bit-identical serial-vs-parallel rankings on the TREC4 testbed
# and prints qps + posterior-cache hit rates.
run ./build-ci-release/bench/bench_serving_throughput --smoke

echo "ci.sh: all green"
