# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("fedsearch/util")
subdirs("fedsearch/text")
subdirs("fedsearch/index")
subdirs("fedsearch/corpus")
subdirs("fedsearch/summary")
subdirs("fedsearch/sampling")
subdirs("fedsearch/selection")
subdirs("fedsearch/core")
