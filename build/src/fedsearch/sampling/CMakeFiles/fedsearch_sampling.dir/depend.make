# Empty dependencies file for fedsearch_sampling.
# This may be replaced when dependencies are built.
