file(REMOVE_RECURSE
  "libfedsearch_sampling.a"
)
