
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/sampling/fps_sampler.cc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/fps_sampler.cc.o" "gcc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/fps_sampler.cc.o.d"
  "/root/repo/src/fedsearch/sampling/freq_estimator.cc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/freq_estimator.cc.o" "gcc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/freq_estimator.cc.o.d"
  "/root/repo/src/fedsearch/sampling/qbs_sampler.cc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/qbs_sampler.cc.o" "gcc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/qbs_sampler.cc.o.d"
  "/root/repo/src/fedsearch/sampling/sample_collector.cc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/sample_collector.cc.o" "gcc" "src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/sample_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
