file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_sampling.dir/fps_sampler.cc.o"
  "CMakeFiles/fedsearch_sampling.dir/fps_sampler.cc.o.d"
  "CMakeFiles/fedsearch_sampling.dir/freq_estimator.cc.o"
  "CMakeFiles/fedsearch_sampling.dir/freq_estimator.cc.o.d"
  "CMakeFiles/fedsearch_sampling.dir/qbs_sampler.cc.o"
  "CMakeFiles/fedsearch_sampling.dir/qbs_sampler.cc.o.d"
  "CMakeFiles/fedsearch_sampling.dir/sample_collector.cc.o"
  "CMakeFiles/fedsearch_sampling.dir/sample_collector.cc.o.d"
  "libfedsearch_sampling.a"
  "libfedsearch_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
