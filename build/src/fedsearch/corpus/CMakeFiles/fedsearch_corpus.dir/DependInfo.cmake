
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/corpus/testbed.cc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/testbed.cc.o" "gcc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/testbed.cc.o.d"
  "/root/repo/src/fedsearch/corpus/topic_hierarchy.cc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/topic_hierarchy.cc.o" "gcc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/topic_hierarchy.cc.o.d"
  "/root/repo/src/fedsearch/corpus/topic_model.cc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/topic_model.cc.o" "gcc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/topic_model.cc.o.d"
  "/root/repo/src/fedsearch/corpus/word_factory.cc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/word_factory.cc.o" "gcc" "src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/word_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
