file(REMOVE_RECURSE
  "libfedsearch_corpus.a"
)
