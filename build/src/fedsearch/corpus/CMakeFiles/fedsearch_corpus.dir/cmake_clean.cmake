file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_corpus.dir/testbed.cc.o"
  "CMakeFiles/fedsearch_corpus.dir/testbed.cc.o.d"
  "CMakeFiles/fedsearch_corpus.dir/topic_hierarchy.cc.o"
  "CMakeFiles/fedsearch_corpus.dir/topic_hierarchy.cc.o.d"
  "CMakeFiles/fedsearch_corpus.dir/topic_model.cc.o"
  "CMakeFiles/fedsearch_corpus.dir/topic_model.cc.o.d"
  "CMakeFiles/fedsearch_corpus.dir/word_factory.cc.o"
  "CMakeFiles/fedsearch_corpus.dir/word_factory.cc.o.d"
  "libfedsearch_corpus.a"
  "libfedsearch_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
