# Empty compiler generated dependencies file for fedsearch_corpus.
# This may be replaced when dependencies are built.
