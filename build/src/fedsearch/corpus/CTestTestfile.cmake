# CMake generated Testfile for 
# Source directory: /root/repo/src/fedsearch/corpus
# Build directory: /root/repo/build/src/fedsearch/corpus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
