# Empty compiler generated dependencies file for fedsearch_util.
# This may be replaced when dependencies are built.
