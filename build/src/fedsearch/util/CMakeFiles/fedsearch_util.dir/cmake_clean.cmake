file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_util.dir/math.cc.o"
  "CMakeFiles/fedsearch_util.dir/math.cc.o.d"
  "CMakeFiles/fedsearch_util.dir/rng.cc.o"
  "CMakeFiles/fedsearch_util.dir/rng.cc.o.d"
  "CMakeFiles/fedsearch_util.dir/status.cc.o"
  "CMakeFiles/fedsearch_util.dir/status.cc.o.d"
  "libfedsearch_util.a"
  "libfedsearch_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
