file(REMOVE_RECURSE
  "libfedsearch_util.a"
)
