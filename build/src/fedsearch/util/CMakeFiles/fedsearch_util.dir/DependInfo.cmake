
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/util/math.cc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/math.cc.o" "gcc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/math.cc.o.d"
  "/root/repo/src/fedsearch/util/rng.cc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/rng.cc.o" "gcc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/rng.cc.o.d"
  "/root/repo/src/fedsearch/util/status.cc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/status.cc.o" "gcc" "src/fedsearch/util/CMakeFiles/fedsearch_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
