file(REMOVE_RECURSE
  "libfedsearch_summary.a"
)
