# Empty dependencies file for fedsearch_summary.
# This may be replaced when dependencies are built.
