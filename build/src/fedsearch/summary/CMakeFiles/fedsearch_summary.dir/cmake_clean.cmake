file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_summary.dir/content_summary.cc.o"
  "CMakeFiles/fedsearch_summary.dir/content_summary.cc.o.d"
  "CMakeFiles/fedsearch_summary.dir/metrics.cc.o"
  "CMakeFiles/fedsearch_summary.dir/metrics.cc.o.d"
  "CMakeFiles/fedsearch_summary.dir/summary_io.cc.o"
  "CMakeFiles/fedsearch_summary.dir/summary_io.cc.o.d"
  "libfedsearch_summary.a"
  "libfedsearch_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
