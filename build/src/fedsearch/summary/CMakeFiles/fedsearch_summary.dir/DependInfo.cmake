
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/summary/content_summary.cc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/content_summary.cc.o" "gcc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/content_summary.cc.o.d"
  "/root/repo/src/fedsearch/summary/metrics.cc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/metrics.cc.o" "gcc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/metrics.cc.o.d"
  "/root/repo/src/fedsearch/summary/summary_io.cc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/summary_io.cc.o" "gcc" "src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/summary_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
