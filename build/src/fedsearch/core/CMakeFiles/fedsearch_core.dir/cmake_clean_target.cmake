file(REMOVE_RECURSE
  "libfedsearch_core.a"
)
