file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_core.dir/adaptive.cc.o"
  "CMakeFiles/fedsearch_core.dir/adaptive.cc.o.d"
  "CMakeFiles/fedsearch_core.dir/federated_search.cc.o"
  "CMakeFiles/fedsearch_core.dir/federated_search.cc.o.d"
  "CMakeFiles/fedsearch_core.dir/hierarchy_summaries.cc.o"
  "CMakeFiles/fedsearch_core.dir/hierarchy_summaries.cc.o.d"
  "CMakeFiles/fedsearch_core.dir/metasearcher.cc.o"
  "CMakeFiles/fedsearch_core.dir/metasearcher.cc.o.d"
  "CMakeFiles/fedsearch_core.dir/shrinkage.cc.o"
  "CMakeFiles/fedsearch_core.dir/shrinkage.cc.o.d"
  "libfedsearch_core.a"
  "libfedsearch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
