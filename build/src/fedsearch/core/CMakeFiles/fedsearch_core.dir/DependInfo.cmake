
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/core/adaptive.cc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/adaptive.cc.o" "gcc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/adaptive.cc.o.d"
  "/root/repo/src/fedsearch/core/federated_search.cc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/federated_search.cc.o" "gcc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/federated_search.cc.o.d"
  "/root/repo/src/fedsearch/core/hierarchy_summaries.cc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/hierarchy_summaries.cc.o" "gcc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/hierarchy_summaries.cc.o.d"
  "/root/repo/src/fedsearch/core/metasearcher.cc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/metasearcher.cc.o" "gcc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/metasearcher.cc.o.d"
  "/root/repo/src/fedsearch/core/shrinkage.cc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/shrinkage.cc.o" "gcc" "src/fedsearch/core/CMakeFiles/fedsearch_core.dir/shrinkage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
