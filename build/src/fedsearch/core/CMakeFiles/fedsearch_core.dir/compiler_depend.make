# Empty compiler generated dependencies file for fedsearch_core.
# This may be replaced when dependencies are built.
