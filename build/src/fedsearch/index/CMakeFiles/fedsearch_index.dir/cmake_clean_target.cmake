file(REMOVE_RECURSE
  "libfedsearch_index.a"
)
