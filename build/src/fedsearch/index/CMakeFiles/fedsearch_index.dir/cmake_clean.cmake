file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_index.dir/inverted_index.cc.o"
  "CMakeFiles/fedsearch_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/fedsearch_index.dir/text_database.cc.o"
  "CMakeFiles/fedsearch_index.dir/text_database.cc.o.d"
  "libfedsearch_index.a"
  "libfedsearch_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
