# Empty dependencies file for fedsearch_index.
# This may be replaced when dependencies are built.
