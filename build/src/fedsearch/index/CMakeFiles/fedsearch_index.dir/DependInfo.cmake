
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/index/inverted_index.cc" "src/fedsearch/index/CMakeFiles/fedsearch_index.dir/inverted_index.cc.o" "gcc" "src/fedsearch/index/CMakeFiles/fedsearch_index.dir/inverted_index.cc.o.d"
  "/root/repo/src/fedsearch/index/text_database.cc" "src/fedsearch/index/CMakeFiles/fedsearch_index.dir/text_database.cc.o" "gcc" "src/fedsearch/index/CMakeFiles/fedsearch_index.dir/text_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
