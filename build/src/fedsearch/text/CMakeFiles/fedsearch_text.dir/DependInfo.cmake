
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/text/analyzer.cc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/analyzer.cc.o" "gcc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/analyzer.cc.o.d"
  "/root/repo/src/fedsearch/text/porter_stemmer.cc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/porter_stemmer.cc.o" "gcc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/porter_stemmer.cc.o.d"
  "/root/repo/src/fedsearch/text/stopwords.cc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/stopwords.cc.o" "gcc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/stopwords.cc.o.d"
  "/root/repo/src/fedsearch/text/tokenizer.cc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/tokenizer.cc.o" "gcc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/fedsearch/text/vocabulary.cc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/vocabulary.cc.o" "gcc" "src/fedsearch/text/CMakeFiles/fedsearch_text.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
