# Empty dependencies file for fedsearch_text.
# This may be replaced when dependencies are built.
