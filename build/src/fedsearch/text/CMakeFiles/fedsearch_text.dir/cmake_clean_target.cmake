file(REMOVE_RECURSE
  "libfedsearch_text.a"
)
