file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_text.dir/analyzer.cc.o"
  "CMakeFiles/fedsearch_text.dir/analyzer.cc.o.d"
  "CMakeFiles/fedsearch_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/fedsearch_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/fedsearch_text.dir/stopwords.cc.o"
  "CMakeFiles/fedsearch_text.dir/stopwords.cc.o.d"
  "CMakeFiles/fedsearch_text.dir/tokenizer.cc.o"
  "CMakeFiles/fedsearch_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/fedsearch_text.dir/vocabulary.cc.o"
  "CMakeFiles/fedsearch_text.dir/vocabulary.cc.o.d"
  "libfedsearch_text.a"
  "libfedsearch_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
