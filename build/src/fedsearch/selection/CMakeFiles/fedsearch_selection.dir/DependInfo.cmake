
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fedsearch/selection/bgloss.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/bgloss.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/bgloss.cc.o.d"
  "/root/repo/src/fedsearch/selection/cori.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/cori.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/cori.cc.o.d"
  "/root/repo/src/fedsearch/selection/flat_ranker.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/flat_ranker.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/flat_ranker.cc.o.d"
  "/root/repo/src/fedsearch/selection/hierarchical.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/hierarchical.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/hierarchical.cc.o.d"
  "/root/repo/src/fedsearch/selection/lm.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/lm.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/lm.cc.o.d"
  "/root/repo/src/fedsearch/selection/redde.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/redde.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/redde.cc.o.d"
  "/root/repo/src/fedsearch/selection/rk_metric.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/rk_metric.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/rk_metric.cc.o.d"
  "/root/repo/src/fedsearch/selection/scoring.cc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/scoring.cc.o" "gcc" "src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/scoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
