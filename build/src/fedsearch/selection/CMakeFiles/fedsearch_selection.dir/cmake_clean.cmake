file(REMOVE_RECURSE
  "CMakeFiles/fedsearch_selection.dir/bgloss.cc.o"
  "CMakeFiles/fedsearch_selection.dir/bgloss.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/cori.cc.o"
  "CMakeFiles/fedsearch_selection.dir/cori.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/flat_ranker.cc.o"
  "CMakeFiles/fedsearch_selection.dir/flat_ranker.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/hierarchical.cc.o"
  "CMakeFiles/fedsearch_selection.dir/hierarchical.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/lm.cc.o"
  "CMakeFiles/fedsearch_selection.dir/lm.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/redde.cc.o"
  "CMakeFiles/fedsearch_selection.dir/redde.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/rk_metric.cc.o"
  "CMakeFiles/fedsearch_selection.dir/rk_metric.cc.o.d"
  "CMakeFiles/fedsearch_selection.dir/scoring.cc.o"
  "CMakeFiles/fedsearch_selection.dir/scoring.cc.o.d"
  "libfedsearch_selection.a"
  "libfedsearch_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
