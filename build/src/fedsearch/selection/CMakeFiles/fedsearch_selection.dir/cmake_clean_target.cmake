file(REMOVE_RECURSE
  "libfedsearch_selection.a"
)
