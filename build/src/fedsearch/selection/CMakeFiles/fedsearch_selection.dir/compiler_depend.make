# Empty compiler generated dependencies file for fedsearch_selection.
# This may be replaced when dependencies are built.
