# Empty dependencies file for bench_table4_weighted_recall.
# This may be replaced when dependencies are built.
