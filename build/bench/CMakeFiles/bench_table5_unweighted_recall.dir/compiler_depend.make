# Empty compiler generated dependencies file for bench_table5_unweighted_recall.
# This may be replaced when dependencies are built.
