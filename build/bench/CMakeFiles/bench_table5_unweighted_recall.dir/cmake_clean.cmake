file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_unweighted_recall.dir/bench_table5_unweighted_recall.cc.o"
  "CMakeFiles/bench_table5_unweighted_recall.dir/bench_table5_unweighted_recall.cc.o.d"
  "bench_table5_unweighted_recall"
  "bench_table5_unweighted_recall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_unweighted_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
