# Empty compiler generated dependencies file for bench_table6_weighted_precision.
# This may be replaced when dependencies are built.
