file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_weighted_precision.dir/bench_table6_weighted_precision.cc.o"
  "CMakeFiles/bench_table6_weighted_precision.dir/bench_table6_weighted_precision.cc.o.d"
  "bench_table6_weighted_precision"
  "bench_table6_weighted_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_weighted_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
