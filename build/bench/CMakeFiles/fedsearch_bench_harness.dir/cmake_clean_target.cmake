file(REMOVE_RECURSE
  "../lib/libfedsearch_bench_harness.a"
)
