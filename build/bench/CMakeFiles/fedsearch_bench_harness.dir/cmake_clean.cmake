file(REMOVE_RECURSE
  "../lib/libfedsearch_bench_harness.a"
  "../lib/libfedsearch_bench_harness.pdb"
  "CMakeFiles/fedsearch_bench_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/fedsearch_bench_harness.dir/harness/experiment.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedsearch_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
