# Empty dependencies file for fedsearch_bench_harness.
# This may be replaced when dependencies are built.
