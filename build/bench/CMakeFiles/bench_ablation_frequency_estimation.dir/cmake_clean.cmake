file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_frequency_estimation.dir/bench_ablation_frequency_estimation.cc.o"
  "CMakeFiles/bench_ablation_frequency_estimation.dir/bench_ablation_frequency_estimation.cc.o.d"
  "bench_ablation_frequency_estimation"
  "bench_ablation_frequency_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_frequency_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
