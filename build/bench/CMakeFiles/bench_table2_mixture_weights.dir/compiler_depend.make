# Empty compiler generated dependencies file for bench_table2_mixture_weights.
# This may be replaced when dependencies are built.
