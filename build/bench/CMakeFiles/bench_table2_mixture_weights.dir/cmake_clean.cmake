file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_mixture_weights.dir/bench_table2_mixture_weights.cc.o"
  "CMakeFiles/bench_table2_mixture_weights.dir/bench_table2_mixture_weights.cc.o.d"
  "bench_table2_mixture_weights"
  "bench_table2_mixture_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_mixture_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
