# Empty dependencies file for bench_ablation_universal_shrinkage.
# This may be replaced when dependencies are built.
