file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_universal_shrinkage.dir/bench_ablation_universal_shrinkage.cc.o"
  "CMakeFiles/bench_ablation_universal_shrinkage.dir/bench_ablation_universal_shrinkage.cc.o.d"
  "bench_ablation_universal_shrinkage"
  "bench_ablation_universal_shrinkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_universal_shrinkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
