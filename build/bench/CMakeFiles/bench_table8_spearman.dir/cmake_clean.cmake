file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_spearman.dir/bench_table8_spearman.cc.o"
  "CMakeFiles/bench_table8_spearman.dir/bench_table8_spearman.cc.o.d"
  "bench_table8_spearman"
  "bench_table8_spearman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_spearman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
