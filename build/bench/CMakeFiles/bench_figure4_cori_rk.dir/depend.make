# Empty dependencies file for bench_figure4_cori_rk.
# This may be replaced when dependencies are built.
