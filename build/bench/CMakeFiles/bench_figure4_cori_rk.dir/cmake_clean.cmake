file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_cori_rk.dir/bench_figure4_cori_rk.cc.o"
  "CMakeFiles/bench_figure4_cori_rk.dir/bench_figure4_cori_rk.cc.o.d"
  "bench_figure4_cori_rk"
  "bench_figure4_cori_rk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_cori_rk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
