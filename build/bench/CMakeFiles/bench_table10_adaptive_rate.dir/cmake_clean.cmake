file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_adaptive_rate.dir/bench_table10_adaptive_rate.cc.o"
  "CMakeFiles/bench_table10_adaptive_rate.dir/bench_table10_adaptive_rate.cc.o.d"
  "bench_table10_adaptive_rate"
  "bench_table10_adaptive_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_adaptive_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
