# Empty dependencies file for bench_table10_adaptive_rate.
# This may be replaced when dependencies are built.
