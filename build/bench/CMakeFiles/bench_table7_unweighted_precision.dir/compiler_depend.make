# Empty compiler generated dependencies file for bench_table7_unweighted_precision.
# This may be replaced when dependencies are built.
