file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_unweighted_precision.dir/bench_table7_unweighted_precision.cc.o"
  "CMakeFiles/bench_table7_unweighted_precision.dir/bench_table7_unweighted_precision.cc.o.d"
  "bench_table7_unweighted_precision"
  "bench_table7_unweighted_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_unweighted_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
