# Empty dependencies file for bench_table9_kl.
# This may be replaced when dependencies are built.
