file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_kl.dir/bench_table9_kl.cc.o"
  "CMakeFiles/bench_table9_kl.dir/bench_table9_kl.cc.o.d"
  "bench_table9_kl"
  "bench_table9_kl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_kl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
