
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table9_kl.cc" "bench/CMakeFiles/bench_table9_kl.dir/bench_table9_kl.cc.o" "gcc" "bench/CMakeFiles/bench_table9_kl.dir/bench_table9_kl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/fedsearch_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/core/CMakeFiles/fedsearch_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/selection/CMakeFiles/fedsearch_selection.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/sampling/CMakeFiles/fedsearch_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/corpus/CMakeFiles/fedsearch_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/summary/CMakeFiles/fedsearch_summary.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/index/CMakeFiles/fedsearch_index.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/text/CMakeFiles/fedsearch_text.dir/DependInfo.cmake"
  "/root/repo/build/src/fedsearch/util/CMakeFiles/fedsearch_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
