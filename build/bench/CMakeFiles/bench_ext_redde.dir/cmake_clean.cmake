file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_redde.dir/bench_ext_redde.cc.o"
  "CMakeFiles/bench_ext_redde.dir/bench_ext_redde.cc.o.d"
  "bench_ext_redde"
  "bench_ext_redde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_redde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
