# Empty compiler generated dependencies file for bench_ext_redde.
# This may be replaced when dependencies are built.
