# Empty dependencies file for bench_figure5_bgloss_lm_rk.
# This may be replaced when dependencies are built.
