file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_bgloss_lm_rk.dir/bench_figure5_bgloss_lm_rk.cc.o"
  "CMakeFiles/bench_figure5_bgloss_lm_rk.dir/bench_figure5_bgloss_lm_rk.cc.o.d"
  "bench_figure5_bgloss_lm_rk"
  "bench_figure5_bgloss_lm_rk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_bgloss_lm_rk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
