# Empty dependencies file for summary_inspector.
# This may be replaced when dependencies are built.
