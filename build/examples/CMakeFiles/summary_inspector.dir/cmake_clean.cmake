file(REMOVE_RECURSE
  "CMakeFiles/summary_inspector.dir/summary_inspector.cpp.o"
  "CMakeFiles/summary_inspector.dir/summary_inspector.cpp.o.d"
  "summary_inspector"
  "summary_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
