# Empty compiler generated dependencies file for classify_probe.
# This may be replaced when dependencies are built.
