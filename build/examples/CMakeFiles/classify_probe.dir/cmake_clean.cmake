file(REMOVE_RECURSE
  "CMakeFiles/classify_probe.dir/classify_probe.cpp.o"
  "CMakeFiles/classify_probe.dir/classify_probe.cpp.o.d"
  "classify_probe"
  "classify_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
