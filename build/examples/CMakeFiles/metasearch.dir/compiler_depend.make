# Empty compiler generated dependencies file for metasearch.
# This may be replaced when dependencies are built.
