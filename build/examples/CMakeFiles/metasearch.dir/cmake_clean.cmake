file(REMOVE_RECURSE
  "CMakeFiles/metasearch.dir/metasearch.cpp.o"
  "CMakeFiles/metasearch.dir/metasearch.cpp.o.d"
  "metasearch"
  "metasearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metasearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
