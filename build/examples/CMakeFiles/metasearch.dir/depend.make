# Empty dependencies file for metasearch.
# This may be replaced when dependencies are built.
