file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/adaptive_test.cc.o"
  "CMakeFiles/test_core.dir/core/adaptive_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/federated_search_test.cc.o"
  "CMakeFiles/test_core.dir/core/federated_search_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/hierarchy_summaries_test.cc.o"
  "CMakeFiles/test_core.dir/core/hierarchy_summaries_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/metasearcher_test.cc.o"
  "CMakeFiles/test_core.dir/core/metasearcher_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/shrinkage_test.cc.o"
  "CMakeFiles/test_core.dir/core/shrinkage_test.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
