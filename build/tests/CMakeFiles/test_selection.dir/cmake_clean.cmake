file(REMOVE_RECURSE
  "CMakeFiles/test_selection.dir/selection/flat_ranker_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/flat_ranker_test.cc.o.d"
  "CMakeFiles/test_selection.dir/selection/hierarchical_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/hierarchical_test.cc.o.d"
  "CMakeFiles/test_selection.dir/selection/redde_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/redde_test.cc.o.d"
  "CMakeFiles/test_selection.dir/selection/rk_metric_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/rk_metric_test.cc.o.d"
  "CMakeFiles/test_selection.dir/selection/scorers_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/scorers_test.cc.o.d"
  "CMakeFiles/test_selection.dir/selection/scoring_context_test.cc.o"
  "CMakeFiles/test_selection.dir/selection/scoring_context_test.cc.o.d"
  "test_selection"
  "test_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
