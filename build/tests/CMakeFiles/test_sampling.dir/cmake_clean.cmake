file(REMOVE_RECURSE
  "CMakeFiles/test_sampling.dir/sampling/fps_sampler_test.cc.o"
  "CMakeFiles/test_sampling.dir/sampling/fps_sampler_test.cc.o.d"
  "CMakeFiles/test_sampling.dir/sampling/freq_estimator_test.cc.o"
  "CMakeFiles/test_sampling.dir/sampling/freq_estimator_test.cc.o.d"
  "CMakeFiles/test_sampling.dir/sampling/qbs_sampler_test.cc.o"
  "CMakeFiles/test_sampling.dir/sampling/qbs_sampler_test.cc.o.d"
  "CMakeFiles/test_sampling.dir/sampling/sample_collector_test.cc.o"
  "CMakeFiles/test_sampling.dir/sampling/sample_collector_test.cc.o.d"
  "test_sampling"
  "test_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
