file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/math_test.cc.o"
  "CMakeFiles/test_util.dir/util/math_test.cc.o.d"
  "CMakeFiles/test_util.dir/util/rng_test.cc.o"
  "CMakeFiles/test_util.dir/util/rng_test.cc.o.d"
  "CMakeFiles/test_util.dir/util/status_test.cc.o"
  "CMakeFiles/test_util.dir/util/status_test.cc.o.d"
  "test_util"
  "test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
