file(REMOVE_RECURSE
  "CMakeFiles/test_index.dir/index/inverted_index_test.cc.o"
  "CMakeFiles/test_index.dir/index/inverted_index_test.cc.o.d"
  "CMakeFiles/test_index.dir/index/text_database_test.cc.o"
  "CMakeFiles/test_index.dir/index/text_database_test.cc.o.d"
  "test_index"
  "test_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
