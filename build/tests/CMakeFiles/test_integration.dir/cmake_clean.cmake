file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/edge_cases_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/edge_cases_test.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/end_to_end_test.cc.o.d"
  "CMakeFiles/test_integration.dir/integration/properties_test.cc.o"
  "CMakeFiles/test_integration.dir/integration/properties_test.cc.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
