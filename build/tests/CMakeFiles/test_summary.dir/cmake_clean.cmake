file(REMOVE_RECURSE
  "CMakeFiles/test_summary.dir/summary/content_summary_test.cc.o"
  "CMakeFiles/test_summary.dir/summary/content_summary_test.cc.o.d"
  "CMakeFiles/test_summary.dir/summary/metrics_test.cc.o"
  "CMakeFiles/test_summary.dir/summary/metrics_test.cc.o.d"
  "CMakeFiles/test_summary.dir/summary/summary_io_test.cc.o"
  "CMakeFiles/test_summary.dir/summary/summary_io_test.cc.o.d"
  "test_summary"
  "test_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
