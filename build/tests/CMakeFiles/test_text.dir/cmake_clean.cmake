file(REMOVE_RECURSE
  "CMakeFiles/test_text.dir/text/analyzer_test.cc.o"
  "CMakeFiles/test_text.dir/text/analyzer_test.cc.o.d"
  "CMakeFiles/test_text.dir/text/porter_stemmer_test.cc.o"
  "CMakeFiles/test_text.dir/text/porter_stemmer_test.cc.o.d"
  "CMakeFiles/test_text.dir/text/stopwords_test.cc.o"
  "CMakeFiles/test_text.dir/text/stopwords_test.cc.o.d"
  "CMakeFiles/test_text.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/test_text.dir/text/tokenizer_test.cc.o.d"
  "CMakeFiles/test_text.dir/text/vocabulary_test.cc.o"
  "CMakeFiles/test_text.dir/text/vocabulary_test.cc.o.d"
  "test_text"
  "test_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
