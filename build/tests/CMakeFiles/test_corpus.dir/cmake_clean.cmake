file(REMOVE_RECURSE
  "CMakeFiles/test_corpus.dir/corpus/testbed_test.cc.o"
  "CMakeFiles/test_corpus.dir/corpus/testbed_test.cc.o.d"
  "CMakeFiles/test_corpus.dir/corpus/topic_hierarchy_test.cc.o"
  "CMakeFiles/test_corpus.dir/corpus/topic_hierarchy_test.cc.o.d"
  "CMakeFiles/test_corpus.dir/corpus/topic_model_test.cc.o"
  "CMakeFiles/test_corpus.dir/corpus/topic_model_test.cc.o.d"
  "CMakeFiles/test_corpus.dir/corpus/word_factory_test.cc.o"
  "CMakeFiles/test_corpus.dir/corpus/word_factory_test.cc.o.d"
  "test_corpus"
  "test_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
