# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_util "/root/repo/build/tests/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_text "/root/repo/build/tests/test_text")
set_tests_properties(test_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_index "/root/repo/build/tests/test_index")
set_tests_properties(test_index PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_corpus "/root/repo/build/tests/test_corpus")
set_tests_properties(test_corpus PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;27;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_summary "/root/repo/build/tests/test_summary")
set_tests_properties(test_summary PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;33;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sampling "/root/repo/build/tests/test_sampling")
set_tests_properties(test_sampling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;38;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_selection "/root/repo/build/tests/test_selection")
set_tests_properties(test_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;44;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;52;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;59;fedsearch_test;/root/repo/tests/CMakeLists.txt;0;")
