#include "fedsearch/text/analyzer.h"

#include <gtest/gtest.h>

namespace fedsearch::text {
namespace {

TEST(AnalyzerTest, FullPipeline) {
  Analyzer analyzer;
  // "the" is a stopword; remaining words are stemmed.
  EXPECT_EQ(analyzer.Analyze("The connected databases"),
            (std::vector<std::string>{"connect", "databas"}));
}

TEST(AnalyzerTest, StemmingCanBeDisabled) {
  Analyzer analyzer(AnalyzerOptions{.remove_stopwords = true, .stem = false});
  EXPECT_EQ(analyzer.Analyze("the connected databases"),
            (std::vector<std::string>{"connected", "databases"}));
}

TEST(AnalyzerTest, StopwordsCanBeKept) {
  Analyzer analyzer(AnalyzerOptions{.remove_stopwords = false, .stem = false});
  EXPECT_EQ(analyzer.Analyze("the cat"),
            (std::vector<std::string>{"the", "cat"}));
}

TEST(AnalyzerTest, MinTokenLengthFilters) {
  Analyzer analyzer(AnalyzerOptions{
      .remove_stopwords = false, .stem = false, .min_token_length = 4});
  EXPECT_EQ(analyzer.Analyze("a bb ccc dddd eeeee"),
            (std::vector<std::string>{"dddd", "eeeee"}));
}

TEST(AnalyzerTest, QueryAndDocumentAgree) {
  // The core invariant for the whole system: the same analyzer maps query
  // words and document words to identical terms.
  Analyzer analyzer;
  const auto doc = analyzer.Analyze("Computing hypertension studies");
  const auto query = analyzer.Analyze("computers hypertension study");
  ASSERT_EQ(doc.size(), 3u);
  ASSERT_EQ(query.size(), 3u);
  EXPECT_EQ(doc[0], query[0]);
  EXPECT_EQ(doc[1], query[1]);
  EXPECT_EQ(doc[2], query[2]);
}

TEST(AnalyzerTest, EmptyInput) {
  Analyzer analyzer;
  EXPECT_TRUE(analyzer.Analyze("").empty());
  EXPECT_TRUE(analyzer.Analyze("the of and").empty());
}

}  // namespace
}  // namespace fedsearch::text
