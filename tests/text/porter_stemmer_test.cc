#include "fedsearch/text/porter_stemmer.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::text {
namespace {

// Reference pairs from Porter's published vocabulary examples.
struct Case {
  const char* word;
  const char* stem;
};

class PorterStemmerParamTest : public ::testing::TestWithParam<Case> {};

TEST_P(PorterStemmerParamTest, MatchesReferenceOutput) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().word), GetParam().stem)
      << "input: " << GetParam().word;
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVocabulary, PorterStemmerParamTest,
    ::testing::Values(
        // Step 1a
        Case{"caresses", "caress"}, Case{"ponies", "poni"},
        Case{"ties", "ti"}, Case{"caress", "caress"}, Case{"cats", "cat"},
        // Step 1b
        Case{"feed", "feed"}, Case{"agreed", "agre"},
        Case{"plastered", "plaster"}, Case{"bled", "bled"},
        Case{"motoring", "motor"}, Case{"sing", "sing"},
        Case{"conflated", "conflat"}, Case{"troubled", "troubl"},
        Case{"sized", "size"}, Case{"hopping", "hop"},
        Case{"tanned", "tan"}, Case{"falling", "fall"},
        Case{"hissing", "hiss"}, Case{"fizzed", "fizz"},
        Case{"failing", "fail"}, Case{"filing", "file"},
        // Step 1c
        Case{"happy", "happi"}, Case{"sky", "sky"},
        // Step 2
        Case{"relational", "relat"}, Case{"conditional", "condit"},
        Case{"rational", "ration"}, Case{"valenci", "valenc"},
        Case{"hesitanci", "hesit"}, Case{"digitizer", "digit"},
        Case{"conformabli", "conform"}, Case{"radicalli", "radic"},
        Case{"differentli", "differ"}, Case{"vileli", "vile"},
        Case{"analogousli", "analog"}, Case{"vietnamization", "vietnam"},
        Case{"predication", "predic"}, Case{"operator", "oper"},
        Case{"feudalism", "feudal"}, Case{"decisiveness", "decis"},
        Case{"hopefulness", "hope"}, Case{"callousness", "callous"},
        Case{"formaliti", "formal"}, Case{"sensitiviti", "sensit"},
        Case{"sensibiliti", "sensibl"},
        // Step 3
        Case{"triplicate", "triplic"}, Case{"formative", "form"},
        Case{"formalize", "formal"}, Case{"electriciti", "electr"},
        Case{"electrical", "electr"}, Case{"hopeful", "hope"},
        Case{"goodness", "good"},
        // Step 4
        Case{"revival", "reviv"}, Case{"allowance", "allow"},
        Case{"inference", "infer"}, Case{"airliner", "airlin"},
        Case{"gyroscopic", "gyroscop"}, Case{"adjustable", "adjust"},
        Case{"defensible", "defens"}, Case{"irritant", "irrit"},
        Case{"replacement", "replac"}, Case{"adjustment", "adjust"},
        Case{"dependent", "depend"}, Case{"adoption", "adopt"},
        Case{"homologou", "homolog"}, Case{"communism", "commun"},
        Case{"activate", "activ"}, Case{"angulariti", "angular"},
        Case{"homologous", "homolog"}, Case{"effective", "effect"},
        Case{"bowdlerize", "bowdler"},
        // Step 5
        Case{"probate", "probat"}, Case{"rate", "rate"},
        Case{"cease", "ceas"}, Case{"controll", "control"},
        Case{"roll", "roll"},
        // General behavior
        Case{"computers", "comput"}, Case{"computing", "comput"},
        Case{"computation", "comput"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("a"), "a");
  EXPECT_EQ(stemmer.Stem("is"), "is");
  EXPECT_EQ(stemmer.Stem(""), "");
}

TEST(PorterStemmerTest, StemmingIsIdempotentOnCommonWords) {
  PorterStemmer stemmer;
  // Note: Porter is not idempotent for every word (e.g. "databases" ->
  // "databas" -> "databa"), so this checks a set where it is.
  const std::vector<std::string> words = {
      "computers", "relational", "hoping",   "happiness", "nationality",
      "selection", "sampling",   "shrinkage", "probabilistic"};
  for (const std::string& w : words) {
    const std::string once = stemmer.Stem(w);
    EXPECT_EQ(stemmer.Stem(once), once) << "word: " << w;
  }
}

TEST(PorterStemmerTest, RelatedFormsShareAStem) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connected"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connecting"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connection"));
  EXPECT_EQ(stemmer.Stem("connect"), stemmer.Stem("connections"));
}

}  // namespace
}  // namespace fedsearch::text
