#include "fedsearch/text/tokenizer.h"

#include <gtest/gtest.h>

namespace fedsearch::text {
namespace {

TEST(TokenizerTest, SplitsOnWhitespaceAndPunctuation) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("Hello, world! foo-bar"),
            (std::vector<std::string>{"hello", "world", "foo", "bar"}));
}

TEST(TokenizerTest, Lowercases) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("MiXeD CASE"),
            (std::vector<std::string>{"mixed", "case"}));
}

TEST(TokenizerTest, KeepsDigitsInsideTokens) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("covid19 2x4"),
            (std::vector<std::string>{"covid19", "2x4"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnlyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ... !!! \t\n").empty());
}

TEST(TokenizerTest, TruncatesPathologicallyLongTokens) {
  Tokenizer t;
  const std::string longword(500, 'a');
  const std::vector<std::string> tokens = t.Tokenize(longword);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].size(), Tokenizer::kMaxTokenLength);
}

TEST(TokenizerTest, AppendOverloadAccumulates) {
  Tokenizer t;
  std::vector<std::string> out;
  t.Tokenize("one two", out);
  t.Tokenize("three", out);
  EXPECT_EQ(out, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(TokenizerTest, NonAsciiBytesActAsSeparators) {
  Tokenizer t;
  EXPECT_EQ(t.Tokenize("caf\xc3\xa9 bar"),
            (std::vector<std::string>{"caf", "bar"}));
}

}  // namespace
}  // namespace fedsearch::text
