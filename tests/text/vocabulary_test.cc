#include "fedsearch/text/vocabulary.h"

#include <gtest/gtest.h>

namespace fedsearch::text {
namespace {

TEST(VocabularyTest, InternAssignsDenseIdsInOrder) {
  Vocabulary v;
  EXPECT_EQ(v.Intern("alpha"), 0u);
  EXPECT_EQ(v.Intern("beta"), 1u);
  EXPECT_EQ(v.Intern("gamma"), 2u);
  EXPECT_EQ(v.size(), 3u);
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary v;
  const TermId a = v.Intern("word");
  EXPECT_EQ(v.Intern("word"), a);
  EXPECT_EQ(v.size(), 1u);
}

TEST(VocabularyTest, LookupMissesReturnInvalid) {
  Vocabulary v;
  v.Intern("present");
  EXPECT_EQ(v.Lookup("absent"), kInvalidTermId);
  EXPECT_EQ(v.Lookup("present"), 0u);
}

TEST(VocabularyTest, TermOfRoundTrips) {
  Vocabulary v;
  const TermId id = v.Intern("roundtrip");
  EXPECT_EQ(v.TermOf(id), "roundtrip");
}

TEST(VocabularyTest, ManyTermsKeepConsistency) {
  Vocabulary v;
  for (int i = 0; i < 1000; ++i) {
    const std::string term = "term" + std::to_string(i);
    const TermId id = v.Intern(term);
    ASSERT_EQ(v.TermOf(id), term);
    ASSERT_EQ(v.Lookup(term), id);
  }
  EXPECT_EQ(v.size(), 1000u);
}

}  // namespace
}  // namespace fedsearch::text
