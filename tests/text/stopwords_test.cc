#include "fedsearch/text/stopwords.h"

#include <gtest/gtest.h>

namespace fedsearch::text {
namespace {

TEST(StopwordListTest, ContainsCommonFunctionWords) {
  StopwordList list;
  for (const char* w : {"the", "and", "of", "is", "with", "they", "what"}) {
    EXPECT_TRUE(list.Contains(w)) << w;
  }
}

TEST(StopwordListTest, DoesNotContainContentWords) {
  StopwordList list;
  for (const char* w : {"database", "hypertension", "algorithm", "soccer"}) {
    EXPECT_FALSE(list.Contains(w)) << w;
  }
}

TEST(StopwordListTest, CaseSensitiveByDesign) {
  // The analyzer lowercases before consulting the list.
  StopwordList list;
  EXPECT_FALSE(list.Contains("The"));
}

TEST(StopwordListTest, CustomList) {
  StopwordList list(std::unordered_set<std::string>{"foo", "bar"});
  EXPECT_TRUE(list.Contains("foo"));
  EXPECT_FALSE(list.Contains("the"));
  EXPECT_EQ(list.size(), 2u);
}

}  // namespace
}  // namespace fedsearch::text
