#include "fedsearch/corpus/topic_hierarchy.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace fedsearch::corpus {
namespace {

TEST(TopicHierarchyTest, DefaultMatchesPaperDimensions) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  // "72 nodes organized in a 4-level hierarchy" with "54 leaf categories"
  // (Section 5.1).
  EXPECT_EQ(h.size(), 72u);
  EXPECT_EQ(h.Leaves().size(), 54u);
  EXPECT_EQ(h.max_depth(), 3);  // root + 3 levels = 4 levels
}

TEST(TopicHierarchyTest, RootIsNodeZero) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  EXPECT_EQ(h.root(), 0);
  EXPECT_EQ(h.node(0).name, "Root");
  EXPECT_EQ(h.node(0).parent, kInvalidCategory);
  EXPECT_EQ(h.node(0).depth, 0);
}

TEST(TopicHierarchyTest, ChildIdsAlwaysExceedParentIds) {
  // Aggregation code relies on a reverse-id scan visiting children first.
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  for (CategoryId c = 1; c < static_cast<CategoryId>(h.size()); ++c) {
    EXPECT_LT(h.node(c).parent, c);
  }
}

TEST(TopicHierarchyTest, PaperExamplePathsExist) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  // Figure 1 / Table 2 / Table 3 categories.
  EXPECT_NE(h.FindByPath("Root/Health/Diseases/Aids"), kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Health/Diseases/Heart"), kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Science/SocialSciences/Economics"),
            kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Arts/Literature/Texts"), kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Computers/Programming/Java"),
            kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Science/Mathematics"), kInvalidCategory);
  EXPECT_NE(h.FindByPath("Root/Sports/Soccer"), kInvalidCategory);
}

TEST(TopicHierarchyTest, FindByPathRejectsBogusPaths) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  EXPECT_EQ(h.FindByPath("Root/Nonexistent"), kInvalidCategory);
  EXPECT_EQ(h.FindByPath("NotRoot"), kInvalidCategory);
  EXPECT_EQ(h.FindByPath("Root/Health/Soccer"), kInvalidCategory);
}

TEST(TopicHierarchyTest, PathFromRootIsRootFirstAndConsistent) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  const CategoryId aids = h.FindByPath("Root/Health/Diseases/Aids");
  const std::vector<CategoryId> path = h.PathFromRoot(aids);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], h.root());
  EXPECT_EQ(h.node(path[1]).name, "Health");
  EXPECT_EQ(h.node(path[2]).name, "Diseases");
  EXPECT_EQ(path[3], aids);
  for (size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(h.node(path[i]).parent, path[i - 1]);
  }
}

TEST(TopicHierarchyTest, SubtreeCoversDescendantsExactlyOnce) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  std::vector<CategoryId> root_subtree = h.Subtree(h.root());
  std::sort(root_subtree.begin(), root_subtree.end());
  ASSERT_EQ(root_subtree.size(), h.size());
  for (size_t i = 0; i < root_subtree.size(); ++i) {
    EXPECT_EQ(root_subtree[i], static_cast<CategoryId>(i));
  }

  const CategoryId diseases = h.FindByPath("Root/Health/Diseases");
  const std::vector<CategoryId> sub = h.Subtree(diseases);
  EXPECT_EQ(sub.size(), 5u);  // Diseases + Aids/Cancer/Diabetes/Heart
}

TEST(TopicHierarchyTest, PathStringFormatting) {
  const TopicHierarchy h = TopicHierarchy::BuildDefault();
  const CategoryId heart = h.FindByPath("Root/Health/Diseases/Heart");
  EXPECT_EQ(h.PathString(heart), "Root -> Health -> Diseases -> Heart");
}

TEST(TopicHierarchyTest, AddCategoryTracksDepthAndChildren) {
  TopicHierarchy h("Top");
  const CategoryId a = h.AddCategory("A", h.root());
  const CategoryId b = h.AddCategory("B", a);
  EXPECT_EQ(h.node(b).depth, 2);
  EXPECT_EQ(h.max_depth(), 2);
  ASSERT_EQ(h.node(a).children.size(), 1u);
  EXPECT_EQ(h.node(a).children[0], b);
  EXPECT_TRUE(h.IsLeaf(b));
  EXPECT_FALSE(h.IsLeaf(a));
}

}  // namespace
}  // namespace fedsearch::corpus
