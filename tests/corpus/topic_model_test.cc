#include "fedsearch/corpus/topic_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "fedsearch/corpus/topic_hierarchy.h"

namespace fedsearch::corpus {
namespace {

class TopicModelTest : public ::testing::Test {
 protected:
  TopicModelTest() : hierarchy_(TopicHierarchy::BuildDefault()) {
    options_.vocab_size_by_depth[0] = 3000;
    options_.vocab_size_by_depth[1] = 1000;
    options_.vocab_size_by_depth[2] = 800;
    options_.vocab_size_by_depth[3] = 600;
    util::Rng rng(7);
    model_ = std::make_unique<TopicModel>(&hierarchy_, options_, rng);
  }

  TopicHierarchy hierarchy_;
  TopicModelOptions options_;
  std::unique_ptr<TopicModel> model_;
};

TEST_F(TopicModelTest, NodeVocabulariesHaveConfiguredSizes) {
  EXPECT_EQ(model_->WordsOf(hierarchy_.root()).size(), 3000u);
  const CategoryId health = hierarchy_.FindByPath("Root/Health");
  const CategoryId diseases = hierarchy_.FindByPath("Root/Health/Diseases");
  const CategoryId heart = hierarchy_.FindByPath("Root/Health/Diseases/Heart");
  EXPECT_EQ(model_->WordsOf(health).size(), 1000u);
  EXPECT_EQ(model_->WordsOf(diseases).size(), 800u);
  EXPECT_EQ(model_->WordsOf(heart).size(), 600u);
}

TEST_F(TopicModelTest, NodeVocabulariesAreDisjoint) {
  std::unordered_set<std::string> all;
  size_t total = 0;
  for (CategoryId c = 0; c < static_cast<CategoryId>(hierarchy_.size()); ++c) {
    for (const std::string& w : model_->WordsOf(c)) {
      all.insert(w);
      ++total;
    }
  }
  EXPECT_EQ(all.size(), total);
}

TEST_F(TopicModelTest, CuratedSeedsLandAtTopRanks) {
  const CategoryId heart = hierarchy_.FindByPath("Root/Health/Diseases/Heart");
  const std::vector<std::string> top = model_->CharacteristicWords(heart, 5);
  EXPECT_NE(std::find(top.begin(), top.end(), "hypertension"), top.end());
  EXPECT_NE(std::find(top.begin(), top.end(), "heart"), top.end());
}

TEST_F(TopicModelTest, NodeWordSamplingFollowsZipfShape) {
  // The most frequent word should be sampled far more often than a
  // mid-rank one.
  const CategoryId root = hierarchy_.root();
  util::Rng rng(11);
  std::map<std::string, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[model_->SampleNodeWord(root, rng)];
  const std::string& top = model_->WordsOf(root)[0];
  const std::string& mid = model_->WordsOf(root)[100];
  EXPECT_GT(counts[top], 10 * std::max(1, counts[mid]));
}

TEST_F(TopicModelTest, DocumentsMixPathLevels) {
  const CategoryId heart = hierarchy_.FindByPath("Root/Health/Diseases/Heart");
  const CategoryId health = hierarchy_.FindByPath("Root/Health");
  const CategoryId diseases = hierarchy_.FindByPath("Root/Health/Diseases");
  std::unordered_set<std::string> root_words(
      model_->WordsOf(hierarchy_.root()).begin(),
      model_->WordsOf(hierarchy_.root()).end());
  std::unordered_set<std::string> leaf_words(model_->WordsOf(heart).begin(),
                                             model_->WordsOf(heart).end());
  std::unordered_set<std::string> mid_words(model_->WordsOf(health).begin(),
                                            model_->WordsOf(health).end());
  for (const std::string& w : model_->WordsOf(diseases)) mid_words.insert(w);

  util::Rng rng(13);
  int from_root = 0, from_leaf = 0, from_mid = 0, other = 0;
  for (int d = 0; d < 50; ++d) {
    const std::string text = model_->GenerateDocumentText(heart, rng);
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) end = text.size();
      const std::string tok = text.substr(start, end - start);
      start = end + 1;
      if (root_words.count(tok)) ++from_root;
      else if (leaf_words.count(tok)) ++from_leaf;
      else if (mid_words.count(tok)) ++from_mid;
      else ++other;  // function words
    }
  }
  EXPECT_GT(from_root, 0);
  EXPECT_GT(from_leaf, 0);
  EXPECT_GT(from_mid, 0);
  EXPECT_GT(other, 0);
  // Leaf-specific mass should be substantial (0.30 of content tokens).
  EXPECT_GT(from_leaf, from_mid / 3);
}

TEST_F(TopicModelTest, DocumentLengthRespectsBounds) {
  util::Rng rng(17);
  const CategoryId soccer = hierarchy_.FindByPath("Root/Sports/Soccer");
  for (int i = 0; i < 100; ++i) {
    const std::string text = model_->GenerateDocumentText(soccer, rng);
    const size_t tokens =
        static_cast<size_t>(std::count(text.begin(), text.end(), ' ')) + 1;
    EXPECT_GE(tokens, options_.min_doc_tokens);
    EXPECT_LE(tokens, options_.max_doc_tokens);
  }
}

TEST_F(TopicModelTest, QueryTermsAreDistinctAndOnTopic) {
  util::Rng rng(19);
  const CategoryId econ =
      hierarchy_.FindByPath("Root/Science/SocialSciences/Economics");
  const std::vector<std::string> terms =
      model_->GenerateQueryTerms(econ, 8, rng);
  EXPECT_EQ(terms.size(), 8u);
  std::unordered_set<std::string> unique(terms.begin(), terms.end());
  EXPECT_EQ(unique.size(), terms.size());
  // All terms must come from the query topic's path vocabularies.
  std::unordered_set<std::string> path_words;
  for (CategoryId c : hierarchy_.PathFromRoot(econ)) {
    for (const std::string& w : model_->WordsOf(c)) path_words.insert(w);
  }
  for (const std::string& t : terms) {
    EXPECT_TRUE(path_words.count(t)) << t;
  }
}

TEST_F(TopicModelTest, DatabaseVocabularyIsPrivateAndZipfian) {
  util::Rng rng(23);
  DatabaseVocabulary v1 = model_->MakeDatabaseVocabulary(rng);
  DatabaseVocabulary v2 = model_->MakeDatabaseVocabulary(rng);
  EXPECT_EQ(v1.words.size(), options_.database_vocab_size);
  std::unordered_set<std::string> w1(v1.words.begin(), v1.words.end());
  for (const std::string& w : v2.words) EXPECT_FALSE(w1.count(w));
  // Disjoint from every category vocabulary.
  for (CategoryId c = 0; c < static_cast<CategoryId>(hierarchy_.size()); ++c) {
    for (const std::string& w : model_->WordsOf(c)) {
      ASSERT_FALSE(w1.count(w));
    }
  }
}

TEST_F(TopicModelTest, SamplerDictionaryCoversEveryCategory) {
  const std::vector<std::string> dict =
      BuildSamplerDictionary(*model_, /*per_node=*/3);
  EXPECT_EQ(dict.size(), hierarchy_.size() * 3);
  std::unordered_set<std::string> set(dict.begin(), dict.end());
  for (CategoryId c = 0; c < static_cast<CategoryId>(hierarchy_.size()); ++c) {
    EXPECT_TRUE(set.count(model_->WordsOf(c)[0]));
  }
}

TEST_F(TopicModelTest, DeterministicAcrossRebuilds) {
  util::Rng rng(7);
  TopicModel other(&hierarchy_, options_, rng);
  for (CategoryId c : {0, 5, 30}) {
    EXPECT_EQ(model_->WordsOf(c), other.WordsOf(c));
  }
}

}  // namespace
}  // namespace fedsearch::corpus
