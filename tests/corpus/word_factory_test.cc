#include "fedsearch/corpus/word_factory.h"

#include <cctype>
#include <unordered_set>

#include <gtest/gtest.h>

namespace fedsearch::corpus {
namespace {

TEST(WordFactoryTest, WordsAreUnique) {
  WordFactory factory;
  util::Rng rng(1);
  std::unordered_set<std::string> seen;
  for (const std::string& w : factory.MakeWords(20000, rng)) {
    EXPECT_TRUE(seen.insert(w).second) << "duplicate: " << w;
  }
  EXPECT_EQ(factory.words_issued(), 20000u);
}

TEST(WordFactoryTest, WordsAreLowercaseAlpha) {
  WordFactory factory;
  util::Rng rng(2);
  for (const std::string& w : factory.MakeWords(500, rng)) {
    EXPECT_GE(w.size(), 4u);
    EXPECT_LE(w.size(), 11u);
    for (char c : w) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c))) << w;
    }
  }
}

TEST(WordFactoryTest, ClaimRegistersCuratedWords) {
  WordFactory factory;
  const auto claimed = factory.Claim({"hypertension", "cardiac"});
  EXPECT_EQ(claimed.size(), 2u);
  // Second claim of the same word yields nothing.
  EXPECT_TRUE(factory.Claim({"cardiac"}).empty());
}

TEST(WordFactoryTest, GeneratedWordsAvoidClaimedOnes) {
  WordFactory factory;
  factory.Claim({"bobo"});  // a plausible generator output
  util::Rng rng(3);
  for (const std::string& w : factory.MakeWords(50000, rng)) {
    EXPECT_NE(w, "bobo");
  }
}

TEST(WordFactoryTest, DeterministicGivenSeed) {
  WordFactory f1, f2;
  util::Rng r1(99), r2(99);
  EXPECT_EQ(f1.MakeWords(100, r1), f2.MakeWords(100, r2));
}

}  // namespace
}  // namespace fedsearch::corpus
