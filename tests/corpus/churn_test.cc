#include "fedsearch/corpus/churn.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "testing/churn_testbed.h"

namespace fedsearch::corpus {
namespace {

using fedsearch::testing::SharedChurnTestbed;

TEST(ChurnTestbedTest, DriftClassPartitionMatchesFractions) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  size_t num_static = 0;
  size_t num_fast = 0;
  size_t num_slow = 0;
  for (size_t i = 0; i < churn.num_databases(); ++i) {
    switch (churn.drift_class(i)) {
      case DriftClass::kStatic:
        ++num_static;
        break;
      case DriftClass::kFast:
        ++num_fast;
        break;
      case DriftClass::kSlow:
        ++num_slow;
        break;
    }
  }
  const auto& o = churn.options();
  const double n = static_cast<double>(churn.num_databases());
  EXPECT_EQ(num_static,
            static_cast<size_t>(std::lround(o.static_fraction * n)));
  EXPECT_EQ(num_fast, static_cast<size_t>(std::lround(o.fast_fraction * n)));
  EXPECT_EQ(num_static + num_fast + num_slow, churn.num_databases());
}

TEST(ChurnTestbedTest, StaticDatabasesNeverChange) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  for (int e = 0; e < 3; ++e) {
    const std::vector<size_t> changed = churn.AdvanceEpoch();
    for (size_t db : changed) {
      EXPECT_NE(churn.drift_class(db), DriftClass::kStatic);
    }
  }
  for (size_t i = 0; i < churn.num_databases(); ++i) {
    if (churn.drift_class(i) == DriftClass::kStatic) {
      // Unchanged databases alias the frozen testbed index outright.
      EXPECT_EQ(&churn.live_database(i), &bed.database(i));
    }
  }
  EXPECT_EQ(churn.epoch(), 3u);
}

TEST(ChurnTestbedTest, DatabaseSizesStayConstantUnderChurn) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  (void)churn.AdvanceEpoch();
  (void)churn.AdvanceEpoch();
  for (size_t i = 0; i < churn.num_databases(); ++i) {
    EXPECT_EQ(churn.live_database(i).num_documents(),
              bed.database(i).num_documents())
        << "db " << i;
    EXPECT_EQ(churn.doc_topics_of(i).size(), bed.database(i).num_documents());
  }
}

TEST(ChurnTestbedTest, ChurnIsAPureFunctionOfSeedAndEpoch) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed a(&bed);
  ChurnTestbed b(&bed);
  // Interleave accessor traffic on `a` only: per-epoch replacement draws
  // must not depend on what else ran between epochs.
  for (int e = 0; e < 3; ++e) {
    const std::vector<size_t> changed_a = a.AdvanceEpoch();
    (void)a.CountRelevant(0, 0);
    (void)a.live_database(changed_a.empty() ? 0 : changed_a.front());
    const std::vector<size_t> changed_b = b.AdvanceEpoch();
    EXPECT_EQ(changed_a, changed_b);
  }
  for (size_t i = 0; i < a.num_databases(); ++i) {
    EXPECT_EQ(a.doc_topics_of(i), b.doc_topics_of(i)) << "db " << i;
  }
  for (size_t q = 0; q < bed.queries().size(); ++q) {
    for (size_t d = 0; d < a.num_databases(); ++d) {
      EXPECT_EQ(a.CountRelevant(q, d), b.CountRelevant(q, d))
          << "query " << q << " db " << d;
    }
  }
}

TEST(ChurnTestbedTest, FastDatabasesMigrateTowardTargetTopic) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  for (int e = 0; e < 4; ++e) (void)churn.AdvanceEpoch();
  bool any_fast = false;
  for (size_t i = 0; i < churn.num_databases(); ++i) {
    if (churn.drift_class(i) != DriftClass::kFast) continue;
    any_fast = true;
    EXPECT_NE(churn.migration_target(i), bed.category_of(i));
    size_t migrated = 0;
    for (CategoryId t : churn.doc_topics_of(i)) {
      if (t == churn.migration_target(i)) ++migrated;
    }
    // Four epochs of 25% replacement at 70% migration probability: the
    // expected migrated share is ~0.7·(1 - 0.75^4) ≈ 48%; even a very
    // unlucky draw clears a 10% floor.
    const double fraction = static_cast<double>(migrated) /
                            static_cast<double>(churn.doc_topics_of(i).size());
    EXPECT_GT(fraction, 0.1) << "fast db " << i;
  }
  EXPECT_TRUE(any_fast);
}

TEST(ChurnTestbedTest, SlowDatabasesKeepTheirTopicMix) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  for (int e = 0; e < 4; ++e) (void)churn.AdvanceEpoch();
  for (size_t i = 0; i < churn.num_databases(); ++i) {
    if (churn.drift_class(i) != DriftClass::kSlow) continue;
    EXPECT_EQ(churn.migration_target(i), bed.category_of(i));
    size_t on_topic = 0;
    for (CategoryId t : churn.doc_topics_of(i)) {
      if (t == bed.category_of(i)) ++on_topic;
    }
    // Slow churn replaces documents with same-topic ones; the on-topic
    // share must stay near the testbed's offtopic_fraction complement.
    const double fraction = static_cast<double>(on_topic) /
                            static_cast<double>(churn.doc_topics_of(i).size());
    EXPECT_GT(fraction, 0.7) << "slow db " << i;
  }
}

TEST(ChurnTestbedTest, RelevanceIsRecomputedPerEpoch) {
  const Testbed& bed = SharedChurnTestbed();
  ChurnTestbed churn(&bed);
  // Epoch 0 matches the frozen testbed's ground truth exactly.
  for (size_t q = 0; q < bed.queries().size(); ++q) {
    for (size_t d = 0; d < churn.num_databases(); ++d) {
      EXPECT_EQ(churn.CountRelevant(q, d), bed.CountRelevant(q, d));
    }
  }
  for (int e = 0; e < 3; ++e) (void)churn.AdvanceEpoch();
  // Static databases keep their counts; the churned corpus as a whole
  // must have moved somewhere.
  bool any_moved = false;
  for (size_t q = 0; q < bed.queries().size(); ++q) {
    for (size_t d = 0; d < churn.num_databases(); ++d) {
      const size_t now = churn.CountRelevant(q, d);
      if (churn.drift_class(d) == DriftClass::kStatic) {
        EXPECT_EQ(now, bed.CountRelevant(q, d));
      } else if (now != bed.CountRelevant(q, d)) {
        any_moved = true;
      }
    }
  }
  EXPECT_TRUE(any_moved);
}

}  // namespace
}  // namespace fedsearch::corpus
