#include "fedsearch/corpus/testbed.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "testing/small_testbed.h"

namespace fedsearch::corpus {
namespace {

TEST(TestbedTest, BuildsRequestedDatabases) {
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  EXPECT_EQ(bed.num_databases(), 12u);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    EXPECT_GE(bed.database(i).num_documents(), 120u);
    EXPECT_LE(bed.database(i).num_documents(), 600u);
    EXPECT_TRUE(bed.hierarchy().IsLeaf(bed.category_of(i)));
  }
}

TEST(TestbedTest, DocTopicsMostlyMatchDatabaseCategory) {
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    const auto& topics = bed.doc_topics_of(i);
    ASSERT_EQ(topics.size(), bed.database(i).num_documents());
    size_t on_topic = 0;
    for (CategoryId t : topics) {
      if (t == bed.category_of(i)) ++on_topic;
    }
    const double fraction =
        static_cast<double>(on_topic) / static_cast<double>(topics.size());
    EXPECT_GT(fraction, 0.8) << "db " << i;
  }
}

TEST(TestbedTest, QueriesHaveTopicsWithDatabases) {
  // Query topics are populated leaves or (for "cuts across categories"
  // queries) internal ancestors of populated leaves.
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  std::unordered_set<CategoryId> populated_or_ancestor;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    for (CategoryId c : bed.hierarchy().PathFromRoot(bed.category_of(i))) {
      populated_or_ancestor.insert(c);
    }
  }
  ASSERT_EQ(bed.queries().size(), 6u);
  for (const TestQuery& q : bed.queries()) {
    EXPECT_TRUE(populated_or_ancestor.count(q.topic));
    EXPECT_GE(q.words.size(), 1u);
    EXPECT_FALSE(q.text.empty());
  }
}

TEST(TestbedTest, RelevanceConcentratesOnQueryTopicSubtree) {
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  for (size_t q = 0; q < bed.queries().size(); ++q) {
    std::unordered_set<CategoryId> subtree;
    for (CategoryId c : bed.hierarchy().Subtree(bed.queries()[q].topic)) {
      subtree.insert(c);
    }
    size_t on_topic_relevant = 0;
    size_t off_topic_relevant = 0;
    for (size_t d = 0; d < bed.num_databases(); ++d) {
      const size_t r = bed.CountRelevant(q, d);
      if (subtree.count(bed.category_of(d)) > 0) {
        on_topic_relevant += r;
      } else {
        off_topic_relevant += r;
      }
    }
    EXPECT_GE(on_topic_relevant, off_topic_relevant) << "query " << q;
  }
}

TEST(TestbedTest, RelevanceIsCachedAndStable) {
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  const size_t first = bed.CountRelevant(0, 0);
  EXPECT_EQ(bed.CountRelevant(0, 0), first);
}

TEST(TestbedTest, SameSeedReproducesIdenticalCorpus) {
  corpus::TestbedOptions o = fedsearch::testing::SmallTestbedOptions();
  o.num_databases = 3;
  o.num_queries = 2;
  const Testbed a(o);
  const Testbed b(o);
  ASSERT_EQ(a.num_databases(), b.num_databases());
  for (size_t i = 0; i < a.num_databases(); ++i) {
    ASSERT_EQ(a.database(i).num_documents(), b.database(i).num_documents());
    EXPECT_EQ(a.database(i).FetchDocument(0).text,
              b.database(i).FetchDocument(0).text);
    EXPECT_EQ(a.category_of(i), b.category_of(i));
  }
  for (size_t q = 0; q < a.queries().size(); ++q) {
    EXPECT_EQ(a.queries()[q].text, b.queries()[q].text);
  }
}

TEST(TestbedTest, WebLayoutPlacesFivePerLeaf) {
  corpus::TestbedOptions o = corpus::Testbed::WebOptions(/*scale=*/0.02);
  o.num_databases = 120;  // fewer than 54 * 5: truncated in order
  o.databases_per_leaf = 2;
  o.model.vocab_size_by_depth[0] = 2000;
  o.model.vocab_size_by_depth[1] = 800;
  o.model.vocab_size_by_depth[2] = 600;
  o.model.vocab_size_by_depth[3] = 500;
  o.model.database_vocab_size = 100;
  const Testbed bed(o);
  EXPECT_EQ(bed.num_databases(), 120u);
  // 54 leaves x 2 + 12 extras; every leaf has at least two databases.
  std::unordered_map<CategoryId, int> per_leaf;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    ++per_leaf[bed.category_of(i)];
  }
  for (CategoryId leaf : bed.hierarchy().Leaves()) {
    EXPECT_GE(per_leaf[leaf], 2) << bed.hierarchy().PathString(leaf);
  }
}

TEST(TestbedTest, DirectoryCategoriesMostlyMatchTruth) {
  const Testbed& bed = fedsearch::testing::SharedSmallTestbed();
  size_t matches = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    const CategoryId dir = bed.directory_category_of(i);
    EXPECT_TRUE(bed.hierarchy().IsLeaf(dir));
    if (dir == bed.category_of(i)) ++matches;
  }
  // With 8% misclassification, the clear majority must match.
  EXPECT_GE(matches * 10, bed.num_databases() * 7);
}

TEST(TestbedTest, MisclassificationCanBeDisabled) {
  corpus::TestbedOptions o = fedsearch::testing::SmallTestbedOptions();
  o.num_databases = 6;
  o.num_queries = 0;
  o.misclassified_fraction = 0.0;
  const Testbed bed(o);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    EXPECT_EQ(bed.directory_category_of(i), bed.category_of(i));
  }
}

TEST(TestbedTest, TrecOptionsScaleDatabaseSizes) {
  const TestbedOptions full = Testbed::Trec4Options(1.0);
  const TestbedOptions half = Testbed::Trec4Options(0.5);
  EXPECT_GT(full.max_db_docs, half.max_db_docs);
  EXPECT_EQ(full.num_databases, 100u);
  EXPECT_EQ(full.num_queries, 50u);
}

TEST(TestbedTest, Trec6QueriesAreShort) {
  const TestbedOptions o = Testbed::Trec6Options(1.0);
  EXPECT_GE(o.min_query_words, 2u);
  EXPECT_LE(o.max_query_words, 5u);
}

}  // namespace
}  // namespace fedsearch::corpus
