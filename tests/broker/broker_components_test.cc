#include <gtest/gtest.h>

#include <vector>

#include "fedsearch/broker/admission.h"
#include "fedsearch/broker/degradation.h"
#include "fedsearch/broker/load_generator.h"

namespace fedsearch::broker {
namespace {

// --- AdmissionController --------------------------------------------------

TEST(AdmissionControllerTest, StartsFromTheOptimisticPrior) {
  AdmissionOptions options;
  options.initial_service_ms = 2.5;
  AdmissionController admission(options);
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 2.5);
  EXPECT_EQ(admission.observations(), 0u);
}

TEST(AdmissionControllerTest, EwmaTracksObservedServiceTimes) {
  AdmissionOptions options;
  options.ewma_alpha = 0.5;
  options.initial_service_ms = 1.0;
  AdmissionController admission(options);
  admission.ObserveService(3.0);  // 0.5*1 + 0.5*3 = 2
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 2.0);
  admission.ObserveService(6.0);  // 0.5*2 + 0.5*6 = 4
  EXPECT_DOUBLE_EQ(admission.ewma_service_ms(), 4.0);
  EXPECT_EQ(admission.observations(), 2u);
}

TEST(AdmissionControllerTest, EstimatedDelayIsDepthTimesEwmaPerWorker) {
  AdmissionOptions options;
  options.initial_service_ms = 10.0;
  AdmissionController admission(options);
  EXPECT_DOUBLE_EQ(admission.EstimatedQueueDelayMs(8, 4), 20.0);
  EXPECT_DOUBLE_EQ(admission.EstimatedQueueDelayMs(0, 4), 0.0);
  // Worker count is clamped to at least one.
  EXPECT_DOUBLE_EQ(admission.EstimatedQueueDelayMs(3, 0), 30.0);
}

TEST(AdmissionControllerTest, QueueFullTakesPrecedenceOverPrediction) {
  AdmissionOptions options;
  options.queue_capacity = 4;
  options.initial_service_ms = 1000.0;  // any depth predicts a miss
  AdmissionController admission(options);
  EXPECT_EQ(admission.Consider(4, 1, 10.0),
            AdmissionController::Verdict::kRejectQueueFull);
  EXPECT_EQ(admission.Consider(2, 1, 10.0),
            AdmissionController::Verdict::kRejectPredictedMiss);
}

TEST(AdmissionControllerTest, AdmitsWhileTheEstimateFitsTheBudget) {
  AdmissionOptions options;
  options.initial_service_ms = 10.0;
  AdmissionController admission(options);
  // depth 3 / 1 worker -> 30ms estimate: under a 40ms budget, at a 30ms one.
  EXPECT_EQ(admission.Consider(3, 1, 40.0),
            AdmissionController::Verdict::kAdmit);
  EXPECT_EQ(admission.Consider(3, 1, 30.0),
            AdmissionController::Verdict::kRejectPredictedMiss);
  // An empty queue always admits (estimate 0 < any positive budget).
  EXPECT_EQ(admission.Consider(0, 1, 1e-6),
            AdmissionController::Verdict::kAdmit);
}

// --- DegradationPolicy ----------------------------------------------------

TEST(DegradationPolicyTest, HysteresisSeparatesEnterAndExit) {
  DegradationOptions options;
  options.enter_fraction = 0.5;
  options.exit_fraction = 0.2;
  DegradationPolicy policy(options);
  const double deadline = 100.0;
  EXPECT_EQ(policy.Update(49.0, deadline), ServiceLevel::kFull);
  EXPECT_EQ(policy.Update(50.0, deadline), ServiceLevel::kDegraded);
  // Between the watermarks the level is sticky: 30ms would not have
  // triggered entry, but it does not allow exit either.
  EXPECT_EQ(policy.Update(30.0, deadline), ServiceLevel::kDegraded);
  EXPECT_EQ(policy.Update(20.0, deadline), ServiceLevel::kDegraded);
  EXPECT_EQ(policy.Update(19.9, deadline), ServiceLevel::kFull);
  EXPECT_EQ(policy.degraded_episodes(), 1u);
}

TEST(DegradationPolicyTest, CountsEpisodesNotRequests) {
  DegradationPolicy policy;
  const double deadline = 100.0;
  for (int episode = 0; episode < 3; ++episode) {
    policy.Update(90.0, deadline);
    policy.Update(90.0, deadline);  // staying degraded is the same episode
    policy.Update(0.0, deadline);
  }
  EXPECT_EQ(policy.degraded_episodes(), 3u);
  EXPECT_EQ(policy.level(), ServiceLevel::kFull);
}

// --- OpenLoopGenerator ----------------------------------------------------

TEST(OpenLoopGeneratorTest, SameSeedSameArrivals) {
  OpenLoopOptions options;
  options.arrival_rate_qps = 200.0;
  options.seed = 42;
  options.slow_rate = 0.3;
  OpenLoopGenerator a(options, 10), b(options, 10);
  for (int i = 0; i < 500; ++i) {
    const Arrival x = a.Next();
    const Arrival y = b.Next();
    EXPECT_EQ(x.arrival_ms, y.arrival_ms);
    EXPECT_EQ(x.query_index, y.query_index);
    EXPECT_EQ(x.slow_fault, y.slow_fault);
    EXPECT_EQ(x.service_inflation, y.service_inflation);
  }
}

TEST(OpenLoopGeneratorTest, ArrivalsAdvanceAtTheConfiguredRate) {
  OpenLoopOptions options;
  options.arrival_rate_qps = 100.0;  // mean gap 10ms
  options.seed = 7;
  OpenLoopGenerator gen(options, 5);
  double prev = 0.0;
  double last = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const Arrival a = gen.Next();
    EXPECT_GE(a.arrival_ms, prev);
    EXPECT_LT(a.query_index, 5u);
    prev = a.arrival_ms;
    last = a.arrival_ms;
  }
  const double mean_gap_ms = last / n;
  EXPECT_GT(mean_gap_ms, 8.0);
  EXPECT_LT(mean_gap_ms, 12.0);
}

TEST(OpenLoopGeneratorTest, SlowRateControlsInflation) {
  OpenLoopOptions never;
  never.slow_rate = 0.0;
  OpenLoopGenerator quiet(never, 3);
  OpenLoopOptions always;
  always.slow_rate = 1.0;
  always.slow_factor = 8.0;
  OpenLoopGenerator noisy(always, 3);
  for (int i = 0; i < 200; ++i) {
    const Arrival q = quiet.Next();
    EXPECT_FALSE(q.slow_fault);
    EXPECT_DOUBLE_EQ(q.service_inflation, 1.0);
    const Arrival s = noisy.Next();
    EXPECT_TRUE(s.slow_fault);
    EXPECT_GE(s.service_inflation, 1.0);
    EXPECT_LT(s.service_inflation, 8.0);
  }
}

TEST(OpenLoopGeneratorTest, FaultDrawsDoNotPerturbTheArrivalClock) {
  // The generator burns a fixed four draws per arrival, so turning slow
  // faults on changes inflations but not times or query choices.
  OpenLoopOptions base;
  base.seed = 99;
  base.slow_rate = 0.0;
  OpenLoopOptions faulty = base;
  faulty.slow_rate = 0.5;
  OpenLoopGenerator a(base, 7), b(faulty, 7);
  for (int i = 0; i < 300; ++i) {
    const Arrival x = a.Next();
    const Arrival y = b.Next();
    EXPECT_EQ(x.arrival_ms, y.arrival_ms);
    EXPECT_EQ(x.query_index, y.query_index);
  }
}

}  // namespace
}  // namespace fedsearch::broker
