#include "fedsearch/broker/slo.h"

#include <gtest/gtest.h>

namespace fedsearch::broker {
namespace {

TEST(SloTrackerTest, EmptyWindowIsHealthy) {
  SloTracker slo;
  EXPECT_EQ(slo.in_window(), 0u);
  EXPECT_EQ(slo.total(), 0u);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.0);
}

TEST(SloTrackerTest, BurnRateIsOneWhenFailuresMatchTheBudget) {
  SloOptions options;
  options.target_good_fraction = 0.95;
  options.window = 100;
  SloTracker slo(options);
  for (int i = 0; i < 95; ++i) slo.Observe(true);
  for (int i = 0; i < 5; ++i) slo.Observe(false);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 0.95);
  EXPECT_DOUBLE_EQ(slo.burn_rate(), 1.0);
}

TEST(SloTrackerTest, BurnRateScalesWithBadFraction) {
  SloOptions options;
  options.target_good_fraction = 0.95;
  options.window = 100;
  SloTracker slo(options);
  for (int i = 0; i < 90; ++i) slo.Observe(true);
  for (int i = 0; i < 10; ++i) slo.Observe(false);
  EXPECT_NEAR(slo.burn_rate(), 2.0, 1e-12);  // 10% bad / 5% allowed
}

TEST(SloTrackerTest, WindowSlidesAndForgets) {
  SloOptions options;
  options.window = 4;
  SloTracker slo(options);
  for (int i = 0; i < 4; ++i) slo.Observe(false);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 0.0);
  // Four good outcomes push the failures out entirely.
  for (int i = 0; i < 4; ++i) slo.Observe(true);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 1.0);
  EXPECT_EQ(slo.in_window(), 4u);
  EXPECT_EQ(slo.total(), 8u);
}

TEST(SloTrackerTest, PartialWindowUsesObservedCountAsDenominator) {
  SloOptions options;
  options.window = 10;
  SloTracker slo(options);
  slo.Observe(true);
  slo.Observe(false);
  EXPECT_EQ(slo.in_window(), 2u);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 0.5);
}

TEST(SloTrackerTest, ZeroErrorBudgetStaysFiniteAndGrows) {
  SloOptions options;
  options.target_good_fraction = 1.0;
  options.window = 8;
  SloTracker slo(options);
  for (int i = 0; i < 7; ++i) slo.Observe(true);
  EXPECT_DOUBLE_EQ(slo.burn_rate(), 0.0);
  slo.Observe(false);
  const double one_failure = slo.burn_rate();
  EXPECT_GT(one_failure, 0.0);
  slo.Observe(false);
  EXPECT_GT(slo.burn_rate(), one_failure);
}

TEST(SloTrackerTest, DegenerateOptionsAreClamped) {
  SloOptions options;
  options.window = 0;
  options.target_good_fraction = 1.5;
  SloTracker slo(options);
  EXPECT_EQ(slo.options().window, 1u);
  EXPECT_DOUBLE_EQ(slo.options().target_good_fraction, 1.0);
  slo.Observe(false);
  EXPECT_DOUBLE_EQ(slo.good_fraction(), 0.0);
}

TEST(SloTrackerTest, DeterministicForAGivenObservationSequence) {
  SloOptions options;
  options.window = 16;
  SloTracker a(options);
  SloTracker b(options);
  for (int i = 0; i < 100; ++i) {
    const bool good = (i % 7) != 0;
    a.Observe(good);
    b.Observe(good);
  }
  EXPECT_DOUBLE_EQ(a.good_fraction(), b.good_fraction());
  EXPECT_DOUBLE_EQ(a.burn_rate(), b.burn_rate());
}

}  // namespace
}  // namespace fedsearch::broker
