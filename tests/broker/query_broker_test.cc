#include "fedsearch/broker/query_broker.h"

#include <gtest/gtest.h>

#include <vector>

#include "fedsearch/broker/load_generator.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch::broker {
namespace {

using fedsearch::testing::SharedSmallTestbed;

// One serial metasearcher shared by every broker test: the broker supplies
// the parallelism, the metasearcher must not.
class QueryBrokerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 80;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(77);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    core::MetasearcherOptions meta_options;
    meta_options.num_threads = 1;
    meta_ = new core::Metasearcher(&bed.hierarchy(), std::move(samples),
                                   std::move(classifications), meta_options);
    queries_ = new std::vector<selection::Query>();
    for (const corpus::TestQuery& tq : bed.queries()) {
      queries_->push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
    }
  }

  // Full-quality cost of one request under the broker's (default) cost
  // table — the same fold QueryBroker::PredictCostMs performs.
  static double AdaptiveCostMs(const BrokerOptions& options) {
    double cost = 0.0;
    const size_t n = meta_->num_databases();
    for (size_t i = 0; i < n - meta_->num_degraded(); ++i) {
      cost += options.costs.adaptive_evaluation_ms;
    }
    for (size_t i = 0; i < n; ++i) cost += options.costs.score_ms;
    return cost;
  }

  // Drives one broker over `n` generated arrivals and returns its
  // per-request accounts.
  static std::vector<RequestResult> RunLoad(const BrokerOptions& broker_opts,
                                            const OpenLoopOptions& load_opts,
                                            size_t n) {
    const selection::CoriScorer cori;
    QueryBroker broker(meta_, &cori, broker_opts);
    OpenLoopGenerator gen(load_opts, queries_->size());
    for (size_t i = 0; i < n; ++i) {
      const Arrival a = gen.Next();
      broker.Submit((*queries_)[a.query_index], a.arrival_ms,
                    a.service_inflation);
    }
    broker.Drain();
    std::vector<RequestResult> results = broker.results();
    broker.Shutdown();
    return results;
  }

  static core::Metasearcher* meta_;
  static std::vector<selection::Query>* queries_;
};

core::Metasearcher* QueryBrokerTest::meta_ = nullptr;
std::vector<selection::Query>* QueryBrokerTest::queries_ = nullptr;

TEST_F(QueryBrokerTest, EveryRequestResolvesUnderOverloadWithSlowFaults) {
  BrokerOptions broker_opts;
  broker_opts.num_workers = 2;
  broker_opts.deadline_ms = 10.0;
  OpenLoopOptions load_opts;
  load_opts.seed = 4242;
  load_opts.slow_rate = 0.1;
  load_opts.slow_factor = 8.0;
  // 2x the sustainable full-quality rate: genuine overload.
  load_opts.arrival_rate_qps =
      2.0 * broker_opts.num_workers * 1000.0 / AdaptiveCostMs(broker_opts);

  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, broker_opts);
  OpenLoopGenerator gen(load_opts, queries_->size());
  const size_t n = 300;
  for (size_t i = 0; i < n; ++i) {
    const Arrival a = gen.Next();
    broker.Submit((*queries_)[a.query_index], a.arrival_ms,
                  a.service_inflation);
  }
  broker.Drain();
  // ComputeStats CHECK-fails on any request left pending, so this line is
  // itself the every-request-resolves assertion.
  const BrokerStats stats = broker.ComputeStats();
  EXPECT_EQ(stats.submitted, n);
  EXPECT_EQ(stats.resolved(), n);
  EXPECT_EQ(stats.cancelled, 0u);
  for (const RequestResult& r : broker.results()) {
    if (r.admitted()) {
      // The client-observed latency never exceeds the deadline: a request
      // that cannot finish in time resolves as its timeout fires.
      EXPECT_LE(r.e2e_ms(), broker_opts.deadline_ms + 1e-9);
    }
    if (r.served()) {
      EXPECT_NE(r.ranking_hash, 0u);
    } else {
      EXPECT_EQ(r.ranking_hash, 0u);
    }
  }
  broker.Shutdown();
}

TEST_F(QueryBrokerTest, OutcomesAreDeterministicForAFixedArrivalSeed) {
  BrokerOptions broker_opts;
  broker_opts.num_workers = 3;
  broker_opts.deadline_ms = 8.0;
  OpenLoopOptions load_opts;
  load_opts.seed = 777;
  load_opts.slow_rate = 0.15;
  load_opts.arrival_rate_qps =
      2.5 * broker_opts.num_workers * 1000.0 / AdaptiveCostMs(broker_opts);

  const std::vector<RequestResult> a = RunLoad(broker_opts, load_opts, 200);
  const std::vector<RequestResult> b = RunLoad(broker_opts, load_opts, 200);
  ASSERT_EQ(a.size(), b.size());
  size_t sheds = 0, downgrades = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    // Admission rejections, downgrades, virtual times, and served rankings
    // are all pinned by the seed — real thread interleaving must not leak
    // into any recorded value.
    EXPECT_EQ(a[i].disposition, b[i].disposition) << i;
    EXPECT_EQ(a[i].downgraded, b[i].downgraded) << i;
    EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms) << i;
    EXPECT_EQ(a[i].start_ms, b[i].start_ms) << i;
    EXPECT_EQ(a[i].finish_ms, b[i].finish_ms) << i;
    EXPECT_EQ(a[i].service_ms, b[i].service_ms) << i;
    EXPECT_EQ(a[i].predicted_cost_ms, b[i].predicted_cost_ms) << i;
    EXPECT_EQ(a[i].evaluations_completed, b[i].evaluations_completed) << i;
    EXPECT_EQ(a[i].ranking_hash, b[i].ranking_hash) << i;
    if (!a[i].admitted()) ++sheds;
    if (a[i].downgraded) ++downgrades;
  }
  // At 2.5x overload the robustness layers must actually engage — quality
  // sheds first, so downgrades dominate rejections.
  EXPECT_GT(downgrades, 0u);
  EXPECT_LT(sheds, downgrades);
}

TEST_F(QueryBrokerTest, QueueFullShedsDeterministically) {
  // No RNG at all: 8 simultaneous arrivals against 2 workers and a
  // 2-deep queue. The first four occupy workers and queue; the rest are
  // shed with kShedQueueFull at admission.
  BrokerOptions broker_opts;
  broker_opts.num_workers = 2;
  broker_opts.deadline_ms = 1000.0;
  broker_opts.admission.queue_capacity = 2;
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, broker_opts);
  for (int i = 0; i < 8; ++i) {
    broker.Submit((*queries_)[0], /*arrival_ms=*/0.0);
  }
  broker.Drain();
  const BrokerStats stats = broker.ComputeStats();
  EXPECT_EQ(stats.served_full, 4u);
  EXPECT_EQ(stats.shed_queue_full, 4u);
  EXPECT_EQ(stats.shed_predicted_miss, 0u);
  const auto& results = broker.results();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[i].disposition, Disposition::kServedFull) << i;
  }
  for (int i = 4; i < 8; ++i) {
    EXPECT_EQ(results[i].disposition, Disposition::kShedQueueFull) << i;
    EXPECT_DOUBLE_EQ(results[i].e2e_ms(), 0.0) << i;  // rejected on arrival
  }
}

TEST_F(QueryBrokerTest, HopelesslySlowRequestResolvesExactlyAtTheDeadline) {
  BrokerOptions broker_opts;
  broker_opts.num_workers = 1;
  broker_opts.deadline_ms = 10.0;
  const double cost = AdaptiveCostMs(broker_opts);
  // Inflate so the request cannot possibly finish: cost * 10 >> deadline.
  const double inflation = 10.0;
  ASSERT_GT(cost * inflation, broker_opts.deadline_ms);
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, broker_opts);
  const size_t seq = broker.Submit((*queries_)[1], /*arrival_ms=*/5.0,
                                   inflation);
  broker.Drain();
  const RequestResult& r = broker.results()[seq];
  EXPECT_EQ(r.disposition, Disposition::kExpiredExecuting);
  // The client's timeout fires at exactly arrival + deadline on the
  // virtual clock; the worker abandoned the selection at the first
  // evaluation boundary past the budget.
  EXPECT_DOUBLE_EQ(r.e2e_ms(), broker_opts.deadline_ms);
  EXPECT_GT(r.evaluations_completed, 0u);
  EXPECT_LT(r.evaluations_completed, meta_->num_databases());
  EXPECT_EQ(r.ranking_hash, 0u);
}

TEST_F(QueryBrokerTest, SubmitAfterShutdownResolvesAsCancelled) {
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, BrokerOptions{});
  broker.Shutdown();
  const size_t seq = broker.Submit((*queries_)[0], 1.0);
  const RequestResult& r = broker.results()[seq];
  EXPECT_EQ(r.disposition, Disposition::kCancelledShutdown);
  EXPECT_EQ(broker.ComputeStats().cancelled, 1u);
  broker.Shutdown();  // idempotent
}

TEST_F(QueryBrokerTest, DrainWithNoSubmissionsReturnsImmediately) {
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, BrokerOptions{});
  broker.Drain();
  EXPECT_EQ(broker.ComputeStats().submitted, 0u);
}

}  // namespace
}  // namespace fedsearch::broker
