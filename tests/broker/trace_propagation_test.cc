// End-to-end trace propagation through the serving path: one brokered
// query must leave a connected span tree — a single trace id shared by
// the submit-side spans (admission, queue) and the worker-side spans
// (execute, selection, cache fills) — with every child's parent_id
// resolving to another span in the same tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fedsearch/broker/query_broker.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/trace.h"
#include "testing/small_testbed.h"

namespace fedsearch::broker {
namespace {

using fedsearch::testing::SharedSmallTestbed;

class TracePropagationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 80;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(77);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    core::MetasearcherOptions meta_options;
    meta_options.num_threads = 1;
    meta_ = new core::Metasearcher(&bed.hierarchy(), std::move(samples),
                                   std::move(classifications), meta_options);
    queries_ = new std::vector<selection::Query>();
    for (const corpus::TestQuery& tq : bed.queries()) {
      queries_->push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
    }
  }

  void SetUp() override {
    util::Tracer::Global().set_enabled(true);
    util::Tracer::Global().Clear();
  }

  void TearDown() override {
    util::Tracer::Global().set_enabled(false);
    util::Tracer::Global().Clear();
  }

  static core::Metasearcher* meta_;
  static std::vector<selection::Query>* queries_;
};

core::Metasearcher* TracePropagationTest::meta_ = nullptr;
std::vector<selection::Query>* TracePropagationTest::queries_ = nullptr;

std::string AttrStr(const util::Tracer::Span& span, const char* key) {
  for (uint32_t i = 0; i < span.num_attrs; ++i) {
    if (std::string(span.attrs[i].key) == key &&
        span.attrs[i].value.kind ==
            util::Tracer::AttrValue::Kind::kString) {
      return span.attrs[i].value.s;
    }
  }
  return "";
}

TEST_F(TracePropagationTest, OneQueryYieldsAConnectedSpanTree) {
  const selection::CoriScorer cori;
  BrokerOptions broker_opts;
  broker_opts.num_workers = 1;
  QueryBroker broker(meta_, &cori, broker_opts);
  const size_t seq = broker.Submit((*queries_)[0], /*arrival_ms=*/0.0);
  broker.Drain();
  const RequestResult result = broker.results()[seq];
  broker.Shutdown();

  ASSERT_NE(result.trace_id, 0u) << "submit did not start a trace";
  EXPECT_EQ(result.disposition, Disposition::kServedFull);

  std::vector<util::Tracer::Span> tree;
  for (const util::Tracer::Span& span : util::Tracer::Global().snapshot()) {
    if (span.trace_id == result.trace_id) tree.push_back(span);
  }
  // The acceptance bar: at least five causally linked spans in one trace.
  ASSERT_GE(tree.size(), 5u);

  std::map<std::string, size_t> count_by_name;
  std::set<uint64_t> span_ids;
  uint64_t root_span_id = 0;
  for (const util::Tracer::Span& span : tree) {
    ++count_by_name[span.name];
    EXPECT_TRUE(span_ids.insert(span.span_id).second)
        << "duplicate span id " << span.span_id;
    if (std::string(span.name) == "broker_submit") root_span_id = span.span_id;
  }
  for (const char* name :
       {"broker_submit", "admission", "broker_queue", "broker_execute",
        "select_databases", "adaptive_evaluation",
        "statistics_cache_fill"}) {
    EXPECT_EQ(count_by_name[name], 1u) << "missing span " << name;
  }
  // A cold posterior cache records at least one grid build under the trace.
  EXPECT_GE(count_by_name["posterior_grid_build"], 1u);

  // Every parent link resolves inside the tree; only the root is parented
  // on the trace itself (parent_id 0).
  ASSERT_NE(root_span_id, 0u);
  for (const util::Tracer::Span& span : tree) {
    if (span.span_id == root_span_id) {
      EXPECT_EQ(span.parent_id, 0u);
    } else {
      EXPECT_TRUE(span_ids.count(span.parent_id))
          << span.name << " parent " << span.parent_id
          << " is not a span of this trace";
    }
  }

  // The root span carries the request's full account as attributes.
  const util::Tracer::Span& root =
      *std::find_if(tree.begin(), tree.end(),
                    [&](const util::Tracer::Span& s) {
                      return s.span_id == root_span_id;
                    });
  EXPECT_EQ(AttrStr(root, "disposition"), "served_full");
}

TEST_F(TracePropagationTest, ConcurrentRequestsKeepDisjointSpanTrees) {
  const selection::CoriScorer cori;
  BrokerOptions broker_opts;
  broker_opts.num_workers = 2;
  QueryBroker broker(meta_, &cori, broker_opts);
  constexpr size_t kRequests = 6;
  std::vector<size_t> seqs;
  for (size_t i = 0; i < kRequests; ++i) {
    seqs.push_back(broker.Submit((*queries_)[i % queries_->size()],
                                 static_cast<double>(i)));
  }
  broker.Drain();
  const std::vector<RequestResult> results = broker.results();
  broker.Shutdown();

  std::set<uint64_t> trace_ids;
  for (size_t seq : seqs) {
    ASSERT_NE(results[seq].trace_id, 0u);
    EXPECT_TRUE(trace_ids.insert(results[seq].trace_id).second)
        << "two requests shared a trace id";
  }
  // Each admitted request's spans stay within its own trace: every
  // broker_execute span's seq attribute maps back to the trace id the
  // broker recorded for that request.
  std::map<uint64_t, uint64_t> trace_by_seq;
  for (size_t seq : seqs) trace_by_seq[seq] = results[seq].trace_id;
  for (const util::Tracer::Span& span : util::Tracer::Global().snapshot()) {
    if (std::string(span.name) != "broker_execute") continue;
    for (uint32_t i = 0; i < span.num_attrs; ++i) {
      if (std::string(span.attrs[i].key) == "seq") {
        EXPECT_EQ(span.trace_id, trace_by_seq[span.attrs[i].value.u])
            << "broker_execute for seq " << span.attrs[i].value.u
            << " landed in a foreign trace";
      }
    }
  }
}

TEST_F(TracePropagationTest, ShedRequestsStillGetARootedTrace) {
  const selection::CoriScorer cori;
  BrokerOptions broker_opts;
  broker_opts.num_workers = 1;
  broker_opts.admission.queue_capacity = 1;
  QueryBroker broker(meta_, &cori, broker_opts);
  // A burst at t=0 against a one-slot queue forces queue-full sheds.
  std::vector<size_t> seqs;
  for (size_t i = 0; i < 8; ++i) {
    seqs.push_back(broker.Submit((*queries_)[0], 0.0));
  }
  broker.Drain();
  const std::vector<RequestResult> results = broker.results();
  broker.Shutdown();

  size_t sheds = 0;
  for (size_t seq : seqs) {
    if (results[seq].admitted()) continue;
    ++sheds;
    ASSERT_NE(results[seq].trace_id, 0u);
    size_t tree_size = 0;
    bool found_disposition = false;
    for (const util::Tracer::Span& span :
         util::Tracer::Global().snapshot()) {
      if (span.trace_id != results[seq].trace_id) continue;
      ++tree_size;
      if (std::string(span.name) == "broker_submit") {
        found_disposition =
            AttrStr(span, "disposition") ==
            DispositionName(results[seq].disposition);
      }
    }
    // Sheds resolve at admission: root + admission span, nothing more.
    EXPECT_EQ(tree_size, 2u);
    EXPECT_TRUE(found_disposition);
  }
  EXPECT_GT(sheds, 0u) << "test did not provoke any sheds";
}

}  // namespace
}  // namespace fedsearch::broker
