#include "fedsearch/core/posterior_cache.h"

#include <gtest/gtest.h>

#include "fedsearch/util/check.h"

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"

namespace fedsearch::core {
namespace {

TEST(PosteriorCacheTest, MissThenHitPerKey) {
  PosteriorCache cache(3);
  const std::shared_ptr<const DocFrequencyPosterior> a =
      cache.Get(/*database=*/0, /*sample_df=*/5, /*sample_size=*/100,
                /*db_size=*/10000, /*gamma=*/-2.0, /*grid_points=*/64);
  const std::shared_ptr<const DocFrequencyPosterior> b =
      cache.Get(0, 5, 100, 10000, -2.0, 64);
  EXPECT_EQ(a.get(), b.get());  // one grid per key, pointer-stable
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PosteriorCacheTest, KeysAreScopedPerDatabase) {
  PosteriorCache cache(2);
  const std::shared_ptr<const DocFrequencyPosterior> a =
      cache.Get(0, 5, 100, 10000, -2.0, 64);
  const std::shared_ptr<const DocFrequencyPosterior> b =
      cache.Get(1, 5, 200, 50000, -3.0, 64);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PosteriorCacheTest, CachedGridMatchesDirectConstruction) {
  PosteriorCache cache(1);
  const std::shared_ptr<const DocFrequencyPosterior> cached =
      cache.Get(0, 30, 100, 1000, -2.0, 128);
  const DocFrequencyPosterior direct(30, 100, 1000, -2.0, 128);
  ASSERT_EQ(cached->support().size(), direct.support().size());
  for (size_t i = 0; i < cached->support().size(); ++i) {
    EXPECT_EQ(cached->support()[i], direct.support()[i]);
    EXPECT_EQ(cached->weights()[i], direct.weights()[i]);
  }
}

TEST(PosteriorCacheTest, ResetDropsEntriesAndCounters) {
  PosteriorCache cache(1);
  (void)cache.Get(0, 1, 10, 100, -2.0, 16);
  (void)cache.Get(0, 1, 10, 100, -2.0, 16);
  cache.Reset(4);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.num_databases(), 4u);
}

TEST(PosteriorCacheTest, HitRate) {
  PosteriorCache cache(1);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
  (void)cache.Get(0, 2, 10, 100, -2.0, 16);
  (void)cache.Get(0, 2, 10, 100, -2.0, 16);
  (void)cache.Get(0, 2, 10, 100, -2.0, 16);
  (void)cache.Get(0, 3, 10, 100, -2.0, 16);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

// The serving-layer guarantee: Evaluate through the cache is bit-identical
// to Evaluate without it.
TEST(PosteriorCacheTest, CachedEvaluateIsBitIdenticalToUncached) {
  sampling::SampleResult s;
  s.sample_size = 300;
  s.estimated_db_size = 50000;
  s.mandelbrot_alpha = -1.2;
  s.summary.set_num_documents(50000);
  s.summary.SetWord("present", summary::WordStats{5000, 6000});
  s.sample_df["present"] = 30;

  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  const selection::Query query{{"present", "missing"}};

  PosteriorCache cache(1);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng_cached(seed);
    util::Rng rng_plain(seed);
    const auto cached = selector.Evaluate(query, s, bgloss, ctx, rng_cached,
                                          &cache, 0);
    const auto plain = selector.Evaluate(query, s, bgloss, ctx, rng_plain);
    EXPECT_EQ(cached.mean, plain.mean);
    EXPECT_EQ(cached.stddev, plain.stddev);
    EXPECT_EQ(cached.draws, plain.draws);
    EXPECT_EQ(cached.use_shrinkage, plain.use_shrinkage);
  }
  // Two words per evaluation, five evaluations: after the first, every
  // lookup hits.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 8u);
}

TEST(PosteriorCacheTest, PosteriorsOfOneDatabaseShareOneGridBasis) {
  // The flat-grid contract: every posterior of a shard is built from the
  // same pinned PosteriorGridBasis (support / prior / log-base arrays are
  // word-independent), whether the basis was pinned ahead of time or
  // created by the first Get.
  PosteriorCache cache(2);
  cache.PinParams(/*database=*/0, /*sample_size=*/100, /*db_size=*/10000.0,
                  /*gamma=*/-2.0, /*grid_points=*/64);
  const auto a = cache.Get(0, 5, 100, 10000, -2.0, 64);
  const auto b = cache.Get(0, 9, 100, 10000, -2.0, 64);
  EXPECT_EQ(&a->basis(), &b->basis());
  // A shard without PinParams pins on first use and shares thereafter.
  const auto c = cache.Get(1, 5, 100, 20000, -3.0, 64);
  const auto d = cache.Get(1, 9, 100, 20000, -3.0, 64);
  EXPECT_EQ(&c->basis(), &d->basis());
  EXPECT_NE(&a->basis(), &c->basis());
  EXPECT_DOUBLE_EQ(a->basis().db_size(), 10000.0);
}

TEST(PosteriorCacheTest, PinParamsCostsNoCacheTraffic) {
  PosteriorCache cache(1);
  cache.PinParams(0, 100, 10000.0, -2.0, 64);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.size(), 0u);  // bases are not posterior entries
}

TEST(PosteriorCacheTest, NewerEpochEvictsShardEntries) {
  PosteriorCache cache(2);
  (void)cache.Get(0, 5, 100, 10000, -2.0, 64, /*epoch=*/0);
  (void)cache.Get(0, 9, 100, 10000, -2.0, 64, /*epoch=*/0);
  ASSERT_EQ(cache.size(), 2u);
  // Epoch 1 arrives: the shard's epoch-0 grids are stale and go away. The
  // refreshed summary may carry different parameters — that must NOT trip
  // the param-drift DCHECK, because eviction resets the pinned params too.
  const auto fresh = cache.Get(0, 5, 120, 20000, -2.5, 64, /*epoch=*/1);
  EXPECT_NE(fresh, nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 1u);
  // Other shards are untouched: invalidation is per-database.
  (void)cache.Get(1, 5, 100, 10000, -2.0, 64, /*epoch=*/0);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PosteriorCacheTest, StaleEpochGetsPrivateGridWithoutEviction) {
  PosteriorCache cache(1);
  const auto current = cache.Get(0, 5, 100, 10000, -2.0, 64, /*epoch=*/3);
  // A reader still scoring against epoch 2 neither pollutes nor evicts the
  // shard: it gets a privately built grid, counted as a stale miss (not a
  // miss — hits + misses stays the same-epoch traffic).
  const auto stale = cache.Get(0, 5, 90, 9000, -2.0, 64, /*epoch=*/2);
  EXPECT_NE(stale.get(), current.get());
  EXPECT_EQ(cache.stats().stale_misses, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
  // The current epoch's entry still hits.
  const auto again = cache.Get(0, 5, 100, 10000, -2.0, 64, /*epoch=*/3);
  EXPECT_EQ(again.get(), current.get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PosteriorCacheTest, EvictedGridStaysAliveForHolders) {
  // The RCU half of the contract: eviction must not free a grid a reader
  // is still iterating. The shared_ptr keeps it alive past the epoch swap.
  PosteriorCache cache(1);
  const auto held = cache.Get(0, 5, 100, 10000, -2.0, 64, /*epoch=*/0);
  const double support_front = held->support().front();
  (void)cache.Get(0, 5, 100, 10000, -2.0, 64, /*epoch=*/1);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(held->support().front(), support_front);  // still valid
  EXPECT_EQ(held.use_count(), 1);                     // cache let go
}

#if FEDSEARCH_DCHECK_IS_ON
TEST(PosteriorCacheDeathTest, ParameterDriftIsFatal) {
  // The cache key is (database, sample_df) only: parameters that drift
  // between calls would silently hand back grids built from stale values.
  PosteriorCache cache(1);
  (void)cache.Get(0, 5, 100, 10000, -2.0, 64);
  EXPECT_DEATH((void)cache.Get(0, 5, 100, 20000, -2.0, 64),
               "posterior params changed for database 0");
  EXPECT_DEATH((void)cache.Get(0, 5, 200, 10000, -2.0, 64),
               "posterior params changed");
  EXPECT_DEATH((void)cache.Get(0, 5, 100, 10000, -1.5, 64),
               "posterior params changed");
  EXPECT_DEATH((void)cache.Get(0, 5, 100, 10000, -2.0, 32),
               "posterior params changed");
}

TEST(PosteriorCacheDeathTest, PinnedParameterMismatchIsFatal) {
  PosteriorCache cache(1);
  cache.PinParams(0, 100, 10000.0, -2.0, 64);
  EXPECT_DEATH(cache.PinParams(0, 100, 12000.0, -2.0, 64),
               "posterior params changed");
  EXPECT_DEATH((void)cache.Get(0, 5, 100, 12000, -2.0, 64),
               "posterior params changed");
}
#endif  // FEDSEARCH_DCHECK_IS_ON

}  // namespace
}  // namespace fedsearch::core
