#include "fedsearch/core/hierarchy_summaries.h"

#include <gtest/gtest.h>

namespace fedsearch::core {
namespace {

summary::ContentSummary MakeDb(
    double n, std::vector<std::tuple<std::string, double, double>> words) {
  summary::ContentSummary s;
  s.set_num_documents(n);
  for (const auto& [w, df, ctf] : words) {
    s.SetWord(w, summary::WordStats{df, ctf});
  }
  return s;
}

class HierarchySummariesTest : public ::testing::Test {
 protected:
  HierarchySummariesTest() : hierarchy_("Root") {
    health_ = hierarchy_.AddCategory("Health", hierarchy_.root());
    heart_ = hierarchy_.AddCategory("Heart", health_);
    sports_ = hierarchy_.AddCategory("Sports", hierarchy_.root());

    // db0, db1 under Heart; db2 under Health directly; db3 under Sports.
    dbs_.push_back(MakeDb(100, {{"cardiac", 50, 80}, {"shared", 10, 10}}));
    dbs_.push_back(MakeDb(300, {{"cardiac", 60, 90}, {"hypertension", 30, 40}}));
    dbs_.push_back(MakeDb(200, {{"clinical", 80, 100}, {"shared", 20, 20}}));
    dbs_.push_back(MakeDb(400, {{"goal", 200, 300}}));
    for (const auto& d : dbs_) ptrs_.push_back(&d);
    classifications_ = {heart_, heart_, health_, sports_};
    hs_ = std::make_unique<HierarchySummaries>(&hierarchy_, ptrs_,
                                               classifications_);
  }

  corpus::TopicHierarchy hierarchy_;
  corpus::CategoryId health_, heart_, sports_;
  std::vector<summary::ContentSummary> dbs_;
  std::vector<const summary::ContentSummary*> ptrs_;
  std::vector<corpus::CategoryId> classifications_;
  std::unique_ptr<HierarchySummaries> hs_;
};

TEST_F(HierarchySummariesTest, AggregatesBottomUp) {
  // Heart aggregates db0 + db1.
  const auto& heart = hs_->aggregate(heart_);
  EXPECT_DOUBLE_EQ(heart.num_documents(), 400.0);
  EXPECT_DOUBLE_EQ(heart.DocFrequency("cardiac"), 110.0);
  // Health adds db2 on top of the Heart subtree.
  const auto& health = hs_->aggregate(health_);
  EXPECT_DOUBLE_EQ(health.num_documents(), 600.0);
  EXPECT_DOUBLE_EQ(health.DocFrequency("clinical"), 80.0);
  EXPECT_DOUBLE_EQ(health.DocFrequency("cardiac"), 110.0);
  // Root covers everything.
  const auto& root = hs_->root_aggregate();
  EXPECT_DOUBLE_EQ(root.num_documents(), 1000.0);
  EXPECT_DOUBLE_EQ(root.DocFrequency("goal"), 200.0);
}

TEST_F(HierarchySummariesTest, Equation1SizeWeighting) {
  // p̂(cardiac|Heart) = (0.5*100 + 0.2*300) / 400 = 110/400.
  EXPECT_DOUBLE_EQ(hs_->aggregate(heart_).ProbDoc("cardiac"), 110.0 / 400.0);
}

TEST_F(HierarchySummariesTest, ExclusiveOfChildSubtractsSubtree) {
  // Health exclusive of Heart = db2 only.
  const auto& excl = hs_->ExclusiveOfChild(health_, heart_);
  EXPECT_DOUBLE_EQ(excl.num_documents(), 200.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("clinical"), 80.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("cardiac"), 0.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("shared"), 20.0);
}

TEST_F(HierarchySummariesTest, ExclusiveOfDatabaseSubtractsOneDb) {
  // Heart exclusive of db0 = db1 only.
  const auto& excl = hs_->ExclusiveOfDatabase(heart_, 0);
  EXPECT_DOUBLE_EQ(excl.num_documents(), 300.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("cardiac"), 60.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("hypertension"), 30.0);
  EXPECT_DOUBLE_EQ(excl.DocFrequency("shared"), 0.0);
}

TEST_F(HierarchySummariesTest, ExclusiveViewsAreCached) {
  const auto& a = hs_->ExclusiveOfChild(health_, heart_);
  const auto& b = hs_->ExclusiveOfChild(health_, heart_);
  EXPECT_EQ(&a, &b);
  const auto& c = hs_->ExclusiveOfDatabase(heart_, 1);
  const auto& d = hs_->ExclusiveOfDatabase(heart_, 1);
  EXPECT_EQ(&c, &d);
}

TEST_F(HierarchySummariesTest, UniformProbabilityIsInverseVocabulary) {
  // Union vocabulary: cardiac, shared, hypertension, clinical, goal = 5.
  EXPECT_DOUBLE_EQ(hs_->uniform_probability(), 1.0 / 5.0);
}

TEST_F(HierarchySummariesTest, SubtractedSummaryIterationSkipsZeroedWords) {
  const auto& excl = hs_->ExclusiveOfChild(health_, heart_);
  size_t count = 0;
  excl.ForEachWord([&](const std::string& w, const summary::WordStats& s) {
    EXPECT_GT(s.df + s.ctf, 0.0) << w;
    ++count;
  });
  EXPECT_EQ(count, excl.vocabulary_size());
  EXPECT_EQ(count, 2u);  // clinical + shared
}

TEST_F(HierarchySummariesTest, SubtractedTotalsClampAtZero) {
  // Subtracting a view from itself yields an all-zero summary.
  SubtractedSummary self(&hs_->aggregate(heart_), &hs_->aggregate(heart_));
  EXPECT_DOUBLE_EQ(self.num_documents(), 0.0);
  EXPECT_DOUBLE_EQ(self.total_tokens(), 0.0);
  EXPECT_EQ(self.vocabulary_size(), 0u);
}

TEST_F(HierarchySummariesTest, EmptyCategoryAggregatesToEmpty) {
  // Sports has one db; a fresh category with none aggregates to empty.
  corpus::TopicHierarchy h2("Root");
  const corpus::CategoryId lonely = h2.AddCategory("Lonely", h2.root());
  HierarchySummaries hs(&h2, {}, {});
  EXPECT_DOUBLE_EQ(hs.aggregate(lonely).num_documents(), 0.0);
  EXPECT_EQ(hs.uniform_probability(), 0.0);
}

}  // namespace
}  // namespace fedsearch::core
