#include "fedsearch/core/adaptive.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fedsearch/selection/bgloss.h"

namespace fedsearch::core {
namespace {

// ------------------------------------------------------------ OverrideSummary

TEST(OverrideSummaryTest, OverridesDfAndScalesCtf) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});  // 3 occurrences per doc
  std::unordered_map<std::string, double> overrides = {{"w", 20.0}};
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("w"), 20.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("w"), 60.0);  // ratio preserved
  EXPECT_DOUBLE_EQ(view.num_documents(), 100.0);
}

TEST(OverrideSummaryTest, UnseenWordGetsOneOccurrencePerDoc) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  std::unordered_map<std::string, double> overrides = {{"new", 5.0}};
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("new"), 5.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("new"), 5.0);
}

TEST(OverrideSummaryTest, PassesThroughOtherWords) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("kept", summary::WordStats{7, 9});
  std::unordered_map<std::string, double> overrides;
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("kept"), 7.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("kept"), 9.0);
}

// A scorer that sees the database only through ForEachWord vocabulary
// iteration (the way coverage-style scorers consume summaries). Used to pin
// the regression where OverrideSummary::ForEachWord leaked the unperturbed
// base statistics.
class VocabularyIteratingScorer : public selection::ScoringFunction {
 public:
  std::string_view name() const override { return "vocab-sum"; }
  double Score(const selection::Query& query, const summary::SummaryView& db,
               const selection::ScoringContext&) const override {
    double total = 0.0;
    db.ForEachWord(
        [&](const std::string& word, const summary::WordStats& stats) {
          for (const std::string& term : query.terms) {
            if (term == word) total += stats.df + stats.ctf;
          }
        });
    return total;
  }
  double DefaultScore(const selection::Query&, const summary::SummaryView&,
                      const selection::ScoringContext&) const override {
    return 0.0;
  }
};

TEST(OverrideSummaryTest, ForEachWordAppliesOverrides) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});  // 3 occurrences per doc
  base.SetWord("kept", summary::WordStats{7, 9});
  std::unordered_map<std::string, double> overrides = {{"w", 20.0},
                                                       {"new", 5.0}};
  OverrideSummary view(&base, &overrides);
  std::unordered_map<std::string, summary::WordStats> seen;
  view.ForEachWord([&](const std::string& word,
                       const summary::WordStats& stats) {
    EXPECT_TRUE(seen.emplace(word, stats).second) << word << " emitted twice";
  });
  ASSERT_EQ(seen.size(), 3u);
  // Iteration must report the same perturbed values as point lookups.
  EXPECT_DOUBLE_EQ(seen.at("w").df, 20.0);
  EXPECT_DOUBLE_EQ(seen.at("w").ctf, 60.0);  // per-doc ratio preserved
  EXPECT_DOUBLE_EQ(seen.at("kept").df, 7.0);
  EXPECT_DOUBLE_EQ(seen.at("kept").ctf, 9.0);
  // Overridden word unseen in the base vocabulary is emitted too.
  EXPECT_DOUBLE_EQ(seen.at("new").df, 5.0);
  EXPECT_DOUBLE_EQ(seen.at("new").ctf, 5.0);
  EXPECT_EQ(view.vocabulary_size(), 3u);
}

TEST(OverrideSummaryTest, VocabularyIteratingScorerSeesPerturbedValues) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});
  std::unordered_map<std::string, double> overrides = {{"w", 20.0}};
  OverrideSummary view(&base, &overrides);
  VocabularyIteratingScorer scorer;
  selection::ScoringContext ctx;
  const selection::Query query{{"w"}};
  // df 20 + ctf 60, not the base's df 10 + ctf 30.
  EXPECT_DOUBLE_EQ(scorer.Score(query, view, ctx), 80.0);
}

// ------------------------------------------------------ DocFrequencyPosterior

TEST(DocFrequencyPosteriorTest, SupportSpansOneToDbSize) {
  DocFrequencyPosterior post(/*sample_df=*/5, /*sample_size=*/100,
                             /*db_size=*/10000, /*gamma=*/-2.0,
                             /*grid_points=*/64);
  ASSERT_FALSE(post.support().empty());
  EXPECT_DOUBLE_EQ(post.support().front(), 1.0);
  EXPECT_DOUBLE_EQ(post.support().back(), 10000.0);
}

TEST(DocFrequencyPosteriorTest, PosteriorPeaksNearScaledSampleFrequency) {
  // s_k = 30 of |S| = 100 from |D| = 1000: the likelihood peaks near
  // d = 300 (the prior pulls it somewhat lower).
  DocFrequencyPosterior post(30, 100, 1000, -2.0, 128);
  const auto& support = post.support();
  const auto& weights = post.weights();
  size_t argmax = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[argmax]) argmax = i;
  }
  EXPECT_GT(support[argmax], 150.0);
  EXPECT_LT(support[argmax], 400.0);
}

TEST(DocFrequencyPosteriorTest, UnseenWordsConcentrateOnSmallD) {
  DocFrequencyPosterior post(/*sample_df=*/0, /*sample_size=*/300,
                             /*db_size=*/100000, -2.0, 128);
  // Expected d under the posterior must be a vanishing fraction of |D|.
  double mean = 0.0, total = 0.0;
  for (size_t i = 0; i < post.support().size(); ++i) {
    mean += post.support()[i] * post.weights()[i];
    total += post.weights()[i];
  }
  mean /= total;
  EXPECT_LT(mean, 1000.0);
}

TEST(DocFrequencyPosteriorTest, SamplesStayInSupport) {
  DocFrequencyPosterior post(10, 100, 5000, -1.8, 64);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double d = post.Sample(rng);
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 5000.0);
  }
}

// -------------------------------------------------------------- PowerLawGamma

TEST(PowerLawGammaTest, HealthyFitsPassThrough) {
  EXPECT_DOUBLE_EQ(PowerLawGamma(-1.0), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-1.2), 1.0 / -1.2 - 1.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.5), -3.0);
}

TEST(PowerLawGammaTest, DegenerateFitsFallBackToZipfDefault) {
  // A near-zero slope (e.g. a two-point fit over a flat tail) would give
  // γ ≈ −101 and collapse the posterior onto d = 1.
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.01), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.1), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(0.0), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(0.7), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(std::nan("")), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-std::numeric_limits<double>::infinity()),
                   -2.0);
}

// --------------------------------------------------- AdaptiveSummarySelector

sampling::SampleResult MakeSample(double db_size, size_t sample_size) {
  sampling::SampleResult s;
  s.sample_size = sample_size;
  s.estimated_db_size = db_size;
  s.mandelbrot_alpha = -1.2;
  s.summary.set_num_documents(db_size);
  return s;
}

TEST(AdaptiveSelectorTest, FullyCoveredDatabaseNeverShrinks) {
  // Section 4: if the sample covered (almost) the whole database, the
  // summary is already sufficiently complete.
  sampling::SampleResult s = MakeSample(100, 100);
  s.summary.SetWord("w", summary::WordStats{40, 40});
  s.sample_df["w"] = 40;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(1);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_EQ(u.draws, 0u);
}

TEST(AdaptiveSelectorTest, UnseenQueryWordTriggersShrinkage) {
  // Mixed evidence — one query word solidly sampled, one absent — makes
  // the bGlOSS score wildly uncertain: the absent word's true frequency
  // could be anything small.
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("other", summary::WordStats{5000, 6000});
  s.sample_df["other"] = 30;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"other", "missing"}}, s,
                                   bgloss, ctx, rng);
  EXPECT_GT(u.draws, 0u);
  EXPECT_TRUE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, AllWordsAbsentSkipsShrinkage) {
  // Section 4: "every query word appears in close to no sample documents"
  // -> the database is confidently a poor match; no shrinkage.
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("other", summary::WordStats{5000, 6000});
  s.sample_df["other"] = 30;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"missing", "gone"}}, s,
                                   bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_EQ(u.draws, 0u);
}

TEST(AdaptiveSelectorTest, GateCanBeDisabled) {
  sampling::SampleResult s = MakeSample(50000, 300);
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"missing"}}, s, bgloss,
                                   ctx, rng);
  EXPECT_GT(u.draws, 0u);
  EXPECT_TRUE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, UbiquitousWordNeedsNoShrinkage) {
  // "If every word in a query appears in close to all the sample
  // documents ... there is little uncertainty" (Section 4). Checked with
  // the evidence gate off so the score-distribution path runs.
  sampling::SampleResult s = MakeSample(10000, 300);
  s.summary.SetWord("always", summary::WordStats{9800, 20000});
  s.sample_df["always"] = 297;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(3);
  const auto u = selector.Evaluate(selection::Query{{"always"}}, s, bgloss,
                                   ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_GT(u.mean, 0.0);
}

TEST(AdaptiveSelectorTest, EmptyQueryNeverShrinks) {
  sampling::SampleResult s = MakeSample(10000, 300);
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(4);
  const auto u = selector.Evaluate(selection::Query{}, s, bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, DegenerateMandelbrotFitDoesNotCollapsePosterior) {
  // With γ computed naively from α = −0.01 (γ ≈ −101) the d^γ prior
  // overwhelms the binomial likelihood and every Monte-Carlo draw lands on
  // d = 1, so a word sampled in 30% of the sample documents would score as
  // if it occurred in ~1 of 1000 documents.
  sampling::SampleResult s = MakeSample(1000, 100);
  s.mandelbrot_alpha = -0.01;  // degenerate two-point fit
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 30;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(6);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  // bGlOSS scores |D| · d/|D| = d; the posterior for s=30/|S|=100 must put
  // its mass near d ≈ 300, far above the collapsed d = 1.
  EXPECT_GT(u.mean, 50.0);
}

// Scores every database identically at (numerically) zero — the regime
// where comparing the first convergence check against the 0.0 baseline
// initializers spuriously terminates the Monte-Carlo at min_draws.
class NearZeroScorer : public selection::ScoringFunction {
 public:
  std::string_view name() const override { return "near-zero"; }
  double Score(const selection::Query&, const summary::SummaryView&,
               const selection::ScoringContext&) const override {
    return 0.0;
  }
  double DefaultScore(const selection::Query&, const summary::SummaryView&,
                      const selection::ScoringContext&) const override {
    return -1.0;  // keep mean − default positive so the rule still runs
  }
};

TEST(AdaptiveSelectorTest, NearZeroMeanStillRunsFullCheckInterval) {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 2;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  NearZeroScorer scorer;
  selection::ScoringContext ctx;
  util::Rng rng(7);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, scorer, ctx, rng);
  // The first check (at min_draws) may only seed the convergence
  // baselines; the earliest legitimate exit is one full check interval
  // later.
  EXPECT_GE(u.draws, options.min_draws + 50);
}

TEST(AdaptiveSelectorTest, DrawCountBounded) {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 2;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  options.min_draws = 50;
  options.max_draws = 120;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(5);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  EXPECT_GE(u.draws, 50u);
  EXPECT_LE(u.draws, 120u);
}

}  // namespace
}  // namespace fedsearch::core
