#include "fedsearch/core/adaptive.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "fedsearch/core/posterior_cache.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/deadline.h"
#include "fedsearch/util/metrics.h"

namespace fedsearch::core {
namespace {

// ------------------------------------------------------------ OverrideSummary

TEST(OverrideSummaryTest, OverridesDfAndScalesCtf) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});  // 3 occurrences per doc
  std::unordered_map<std::string, double> overrides = {{"w", 20.0}};
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("w"), 20.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("w"), 60.0);  // ratio preserved
  EXPECT_DOUBLE_EQ(view.num_documents(), 100.0);
}

TEST(OverrideSummaryTest, UnseenWordGetsOneOccurrencePerDoc) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  std::unordered_map<std::string, double> overrides = {{"new", 5.0}};
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("new"), 5.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("new"), 5.0);
}

TEST(OverrideSummaryTest, PassesThroughOtherWords) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("kept", summary::WordStats{7, 9});
  std::unordered_map<std::string, double> overrides;
  OverrideSummary view(&base, &overrides);
  EXPECT_DOUBLE_EQ(view.DocFrequency("kept"), 7.0);
  EXPECT_DOUBLE_EQ(view.TokenFrequency("kept"), 9.0);
}

// A scorer that sees the database only through ForEachWord vocabulary
// iteration (the way coverage-style scorers consume summaries). Used to pin
// the regression where OverrideSummary::ForEachWord leaked the unperturbed
// base statistics.
class VocabularyIteratingScorer : public selection::ScoringFunction {
 public:
  std::string_view name() const override { return "vocab-sum"; }
  double Score(const selection::Query& query, const summary::SummaryView& db,
               const selection::ScoringContext&) const override {
    double total = 0.0;
    db.ForEachWord(
        [&](const std::string& word, const summary::WordStats& stats) {
          for (const std::string& term : query.terms) {
            if (term == word) total += stats.df + stats.ctf;
          }
        });
    return total;
  }
  double DefaultScore(const selection::Query&, const summary::SummaryView&,
                      const selection::ScoringContext&) const override {
    return 0.0;
  }
};

TEST(OverrideSummaryTest, ForEachWordAppliesOverrides) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});  // 3 occurrences per doc
  base.SetWord("kept", summary::WordStats{7, 9});
  std::unordered_map<std::string, double> overrides = {{"w", 20.0},
                                                       {"new", 5.0}};
  OverrideSummary view(&base, &overrides);
  std::unordered_map<std::string, summary::WordStats> seen;
  view.ForEachWord([&](const std::string& word,
                       const summary::WordStats& stats) {
    EXPECT_TRUE(seen.emplace(word, stats).second) << word << " emitted twice";
  });
  ASSERT_EQ(seen.size(), 3u);
  // Iteration must report the same perturbed values as point lookups.
  EXPECT_DOUBLE_EQ(seen.at("w").df, 20.0);
  EXPECT_DOUBLE_EQ(seen.at("w").ctf, 60.0);  // per-doc ratio preserved
  EXPECT_DOUBLE_EQ(seen.at("kept").df, 7.0);
  EXPECT_DOUBLE_EQ(seen.at("kept").ctf, 9.0);
  // Overridden word unseen in the base vocabulary is emitted too.
  EXPECT_DOUBLE_EQ(seen.at("new").df, 5.0);
  EXPECT_DOUBLE_EQ(seen.at("new").ctf, 5.0);
  EXPECT_EQ(view.vocabulary_size(), 3u);
}

TEST(OverrideSummaryTest, VocabularyIteratingScorerSeesPerturbedValues) {
  summary::ContentSummary base;
  base.set_num_documents(100);
  base.SetWord("w", summary::WordStats{10, 30});
  std::unordered_map<std::string, double> overrides = {{"w", 20.0}};
  OverrideSummary view(&base, &overrides);
  VocabularyIteratingScorer scorer;
  selection::ScoringContext ctx;
  const selection::Query query{{"w"}};
  // df 20 + ctf 60, not the base's df 10 + ctf 30.
  EXPECT_DOUBLE_EQ(scorer.Score(query, view, ctx), 80.0);
}

// ------------------------------------------------------ DocFrequencyPosterior

TEST(DocFrequencyPosteriorTest, SupportSpansOneToDbSize) {
  DocFrequencyPosterior post(/*sample_df=*/5, /*sample_size=*/100,
                             /*db_size=*/10000, /*gamma=*/-2.0,
                             /*grid_points=*/64);
  ASSERT_FALSE(post.support().empty());
  EXPECT_DOUBLE_EQ(post.support().front(), 1.0);
  EXPECT_DOUBLE_EQ(post.support().back(), 10000.0);
}

TEST(DocFrequencyPosteriorTest, PosteriorPeaksNearScaledSampleFrequency) {
  // s_k = 30 of |S| = 100 from |D| = 1000: the likelihood peaks near
  // d = 300 (the prior pulls it somewhat lower).
  DocFrequencyPosterior post(30, 100, 1000, -2.0, 128);
  const auto& support = post.support();
  const auto& weights = post.weights();
  size_t argmax = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[argmax]) argmax = i;
  }
  EXPECT_GT(support[argmax], 150.0);
  EXPECT_LT(support[argmax], 400.0);
}

TEST(DocFrequencyPosteriorTest, UnseenWordsConcentrateOnSmallD) {
  DocFrequencyPosterior post(/*sample_df=*/0, /*sample_size=*/300,
                             /*db_size=*/100000, -2.0, 128);
  // Expected d under the posterior must be a vanishing fraction of |D|.
  double mean = 0.0, total = 0.0;
  for (size_t i = 0; i < post.support().size(); ++i) {
    mean += post.support()[i] * post.weights()[i];
    total += post.weights()[i];
  }
  mean /= total;
  EXPECT_LT(mean, 1000.0);
}

TEST(DocFrequencyPosteriorTest, SamplesStayInSupport) {
  DocFrequencyPosterior post(10, 100, 5000, -1.8, 64);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const double d = post.Sample(rng);
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 5000.0);
  }
}

TEST(DocFrequencyPosteriorTest, SampleIndexMatchesDiscreteSamplerStream) {
  // The flat CDF + guide-table draw must replicate util::DiscreteSampler
  // bit-for-bit: same single NextDouble per draw, same index. This is the
  // contract that keeps the serial RNG-draw stream identical to the
  // sampler-based implementation.
  const DocFrequencyPosterior posts[] = {
      DocFrequencyPosterior(7, 200, 30000, -2.0, 64),
      DocFrequencyPosterior(0, 300, 100000, -2.0, 128),
      DocFrequencyPosterior(95, 100, 1000, -1.5, 64),
  };
  for (const DocFrequencyPosterior& post : posts) {
    util::DiscreteSampler sampler(post.weights());
    util::Rng a(42);
    util::Rng b(42);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(post.SampleIndex(a), sampler.Sample(b));
    }
    ASSERT_EQ(a.NextUint64(), b.NextUint64());  // streams stayed in step
  }
}

TEST(DocFrequencyPosteriorTest, SingleDocumentDatabaseEdgeGrid) {
  // |D| = 1 collapses the grid to the single point d = 1; every draw must
  // land there with a well-formed (finite, normalized) weight.
  const DocFrequencyPosterior post(/*sample_df=*/0, /*sample_size=*/10,
                                   /*db_size=*/1.0, -2.0, 64);
  ASSERT_EQ(post.support().size(), 1u);
  EXPECT_DOUBLE_EQ(post.support()[0], 1.0);
  ASSERT_EQ(post.weights().size(), 1u);
  EXPECT_TRUE(std::isfinite(post.weights()[0]));
  util::Rng rng(29);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(post.Sample(rng), 1.0);
}

TEST(DocFrequencyPosteriorTest, FullySampledWordEdgeGrid) {
  // sample_df == sample_size: the (|S|−s)·ln(1−d/|D|) factor vanishes, so
  // even the d = |D| grid point (where ln(1−d/|D|) is −inf) keeps a
  // finite, positive weight — the posterior must lean toward large d.
  const DocFrequencyPosterior post(/*sample_df=*/100, /*sample_size=*/100,
                                   /*db_size=*/1000, -2.0, 64);
  const auto& support = post.support();
  const auto& weights = post.weights();
  ASSERT_EQ(support.back(), 1000.0);
  for (const double w : weights) {
    ASSERT_TRUE(std::isfinite(w));
    ASSERT_GE(w, 0.0);
  }
  EXPECT_GT(weights.back(), 0.0);  // d = |D| not struck by the -inf sentinel
  size_t argmax = 0;
  for (size_t i = 1; i < weights.size(); ++i) {
    if (weights[i] > weights[argmax]) argmax = i;
  }
  EXPECT_GT(support[argmax], 500.0);
}

TEST(DocFrequencyPosteriorTest, SmallDatabaseSupportIsStrictlyIncreasing) {
  // More grid points than integers in [1, |D|]: the log-spaced grid
  // collides and must deduplicate into a strictly increasing support.
  const DocFrequencyPosterior post(2, 10, 10.0, -2.0, 64);
  const auto& support = post.support();
  ASSERT_LE(support.size(), 10u);
  for (size_t i = 1; i < support.size(); ++i) {
    ASSERT_LT(support[i - 1], support[i]);
  }
  EXPECT_DOUBLE_EQ(support.front(), 1.0);
  EXPECT_DOUBLE_EQ(support.back(), 10.0);
}

TEST(DocFrequencyPosteriorTest, SharedBasisMatchesPrivateBasisBitwise) {
  // The two constructors must build identical grids: the shared-basis
  // overload only hoists the word-independent arrays.
  auto basis = std::make_shared<PosteriorGridBasis>(30000.0, -2.0, 64);
  for (const size_t sample_df : {size_t{0}, size_t{7}, size_t{200}}) {
    const DocFrequencyPosterior shared(basis, sample_df, 200);
    const DocFrequencyPosterior priv(sample_df, 200, 30000.0, -2.0, 64);
    ASSERT_EQ(shared.size(), priv.size());
    for (size_t i = 0; i < shared.size(); ++i) {
      ASSERT_EQ(shared.support()[i], priv.support()[i]);
      ASSERT_EQ(shared.weights()[i], priv.weights()[i]);
    }
  }
}

// -------------------------------------------------------------- PowerLawGamma

TEST(PowerLawGammaTest, HealthyFitsPassThrough) {
  EXPECT_DOUBLE_EQ(PowerLawGamma(-1.0), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-1.2), 1.0 / -1.2 - 1.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.5), -3.0);
}

TEST(PowerLawGammaTest, DegenerateFitsFallBackToZipfDefault) {
  // A near-zero slope (e.g. a two-point fit over a flat tail) would give
  // γ ≈ −101 and collapse the posterior onto d = 1.
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.01), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-0.1), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(0.0), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(0.7), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(std::nan("")), -2.0);
  EXPECT_DOUBLE_EQ(PowerLawGamma(-std::numeric_limits<double>::infinity()),
                   -2.0);
}

// --------------------------------------------------- AdaptiveSummarySelector

sampling::SampleResult MakeSample(double db_size, size_t sample_size) {
  sampling::SampleResult s;
  s.sample_size = sample_size;
  s.estimated_db_size = db_size;
  s.mandelbrot_alpha = -1.2;
  s.summary.set_num_documents(db_size);
  return s;
}

TEST(AdaptiveSelectorTest, FullyCoveredDatabaseNeverShrinks) {
  // Section 4: if the sample covered (almost) the whole database, the
  // summary is already sufficiently complete.
  sampling::SampleResult s = MakeSample(100, 100);
  s.summary.SetWord("w", summary::WordStats{40, 40});
  s.sample_df["w"] = 40;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(1);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_EQ(u.draws, 0u);
}

TEST(AdaptiveSelectorTest, UnseenQueryWordTriggersShrinkage) {
  // Mixed evidence — one query word solidly sampled, one absent — makes
  // the bGlOSS score wildly uncertain: the absent word's true frequency
  // could be anything small.
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("other", summary::WordStats{5000, 6000});
  s.sample_df["other"] = 30;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"other", "missing"}}, s,
                                   bgloss, ctx, rng);
  EXPECT_GT(u.draws, 0u);
  EXPECT_TRUE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, AllWordsAbsentSkipsShrinkage) {
  // Section 4: "every query word appears in close to no sample documents"
  // -> the database is confidently a poor match; no shrinkage.
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("other", summary::WordStats{5000, 6000});
  s.sample_df["other"] = 30;
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"missing", "gone"}}, s,
                                   bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_EQ(u.draws, 0u);
}

TEST(AdaptiveSelectorTest, GateCanBeDisabled) {
  sampling::SampleResult s = MakeSample(50000, 300);
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(2);
  const auto u = selector.Evaluate(selection::Query{{"missing"}}, s, bgloss,
                                   ctx, rng);
  EXPECT_GT(u.draws, 0u);
  EXPECT_TRUE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, UbiquitousWordNeedsNoShrinkage) {
  // "If every word in a query appears in close to all the sample
  // documents ... there is little uncertainty" (Section 4). Checked with
  // the evidence gate off so the score-distribution path runs.
  sampling::SampleResult s = MakeSample(10000, 300);
  s.summary.SetWord("always", summary::WordStats{9800, 20000});
  s.sample_df["always"] = 297;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(3);
  const auto u = selector.Evaluate(selection::Query{{"always"}}, s, bgloss,
                                   ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_GT(u.mean, 0.0);
}

TEST(AdaptiveSelectorTest, EmptyQueryNeverShrinks) {
  sampling::SampleResult s = MakeSample(10000, 300);
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(4);
  const auto u = selector.Evaluate(selection::Query{}, s, bgloss, ctx, rng);
  EXPECT_FALSE(u.use_shrinkage);
}

TEST(AdaptiveSelectorTest, DegenerateMandelbrotFitDoesNotCollapsePosterior) {
  // With γ computed naively from α = −0.01 (γ ≈ −101) the d^γ prior
  // overwhelms the binomial likelihood and every Monte-Carlo draw lands on
  // d = 1, so a word sampled in 30% of the sample documents would score as
  // if it occurred in ~1 of 1000 documents.
  sampling::SampleResult s = MakeSample(1000, 100);
  s.mandelbrot_alpha = -0.01;  // degenerate two-point fit
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 30;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(6);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  // bGlOSS scores |D| · d/|D| = d; the posterior for s=30/|S|=100 must put
  // its mass near d ≈ 300, far above the collapsed d = 1.
  EXPECT_GT(u.mean, 50.0);
}

// Scores every database identically at (numerically) zero — the regime
// where comparing the first convergence check against the 0.0 baseline
// initializers spuriously terminates the Monte-Carlo at min_draws.
class NearZeroScorer : public selection::ScoringFunction {
 public:
  std::string_view name() const override { return "near-zero"; }
  double Score(const selection::Query&, const summary::SummaryView&,
               const selection::ScoringContext&) const override {
    return 0.0;
  }
  double DefaultScore(const selection::Query&, const summary::SummaryView&,
                      const selection::ScoringContext&) const override {
    return -1.0;  // keep mean − default positive so the rule still runs
  }
};

TEST(AdaptiveSelectorTest, NearZeroMeanStillRunsFullCheckInterval) {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 2;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  NearZeroScorer scorer;
  selection::ScoringContext ctx;
  util::Rng rng(7);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, scorer, ctx, rng);
  // The first check (at min_draws) may only seed the convergence
  // baselines; the earliest legitimate exit is one full check interval
  // later.
  EXPECT_GE(u.draws, options.min_draws + 50);
}

// CORI with the delta protocol switched off: Evaluate takes the legacy
// OverrideSummary fallback path while scoring identically, so comparing
// against the real CoriScorer pins fast-path-vs-fallback bit-identity.
class NonDeltaCori : public selection::CoriScorer {
 public:
  bool supports_delta_scoring() const override { return false; }
};

sampling::SampleResult MakeMixedEvidenceSample() {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("present", summary::WordStats{5000, 6000});
  s.sample_df["present"] = 30;
  s.summary.SetWord("other", summary::WordStats{900, 1500});
  s.sample_df["other"] = 9;
  return s;
}

TEST(AdaptiveSelectorTest, DeltaPathBitIdenticalToFallbackPath) {
  const sampling::SampleResult s = MakeMixedEvidenceSample();
  AdaptiveSummarySelector selector;
  selection::CoriScorer delta;
  NonDeltaCori fallback;
  ASSERT_TRUE(delta.supports_delta_scoring());
  ASSERT_FALSE(fallback.supports_delta_scoring());
  selection::ScoringContext ctx;
  ctx.ranked_summaries = {&s.summary};
  const selection::Query query{{"present", "missing", "other"}};
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng_fast(seed);
    util::Rng rng_slow(seed);
    const auto fast = selector.Evaluate(query, s, delta, ctx, rng_fast);
    const auto slow = selector.Evaluate(query, s, fallback, ctx, rng_slow);
    EXPECT_GT(fast.draws, 0u);
    EXPECT_EQ(fast.mean, slow.mean);
    EXPECT_EQ(fast.stddev, slow.stddev);
    EXPECT_EQ(fast.draws, slow.draws);
    EXPECT_EQ(fast.use_shrinkage, slow.use_shrinkage);
    // Both paths must also have consumed the identical RNG stream.
    EXPECT_EQ(rng_fast.NextUint64(), rng_slow.NextUint64());
  }
}

// ------------------------------------------------- duplicate query terms --

TEST(AdaptiveSelectorTest, DuplicateTermsConsumeOneDrawPerDistinctWord) {
  // A repeated query word denotes ONE latent document frequency: the RNG
  // stream (and thus every downstream draw) must be identical whether the
  // word appears once or twice.
  const sampling::SampleResult s = MakeMixedEvidenceSample();
  AdaptiveOptions options;
  options.min_draws = 60;
  options.max_draws = 60;  // fixed draw count -> comparable streams
  AdaptiveSummarySelector selector(options);
  selection::CoriScorer cori;
  selection::ScoringContext ctx;
  ctx.ranked_summaries = {&s.summary};
  util::Rng rng_dup(11);
  util::Rng rng_plain(11);
  const auto dup = selector.Evaluate(
      selection::Query{{"present", "missing", "present"}}, s, cori, ctx,
      rng_dup);
  const auto plain = selector.Evaluate(
      selection::Query{{"present", "missing"}}, s, cori, ctx, rng_plain);
  EXPECT_EQ(dup.draws, plain.draws);
  EXPECT_EQ(rng_dup.NextUint64(), rng_plain.NextUint64());
}

TEST(AdaptiveSelectorTest, DuplicatedWordScoresAsItsSingleOccurrence) {
  // CORI averages over occurrences, so q = [w w] must produce exactly the
  // per-draw scores of q = [w]: (c + c) / 2 == c in IEEE double.
  const sampling::SampleResult s = MakeMixedEvidenceSample();
  AdaptiveOptions options;
  options.require_mixed_evidence = false;  // single-word query variants
  options.min_draws = 60;
  options.max_draws = 60;
  AdaptiveSummarySelector selector(options);
  selection::CoriScorer cori;
  selection::ScoringContext ctx;
  ctx.ranked_summaries = {&s.summary};
  util::Rng rng_dup(13);
  util::Rng rng_single(13);
  const auto dup = selector.Evaluate(selection::Query{{"present", "present"}},
                                     s, cori, ctx, rng_dup);
  const auto single =
      selector.Evaluate(selection::Query{{"present"}}, s, cori, ctx,
                        rng_single);
  EXPECT_EQ(dup.mean, single.mean);
  EXPECT_EQ(dup.stddev, single.stddev);
  EXPECT_EQ(rng_dup.NextUint64(), rng_single.NextUint64());
}

TEST(AdaptiveSelectorTest, DuplicateTermsBuildOnePosteriorPerDistinctWord) {
  const sampling::SampleResult s = MakeMixedEvidenceSample();
  AdaptiveSummarySelector selector;
  selection::CoriScorer cori;
  selection::ScoringContext ctx;
  ctx.ranked_summaries = {&s.summary};
  PosteriorCache cache(1);
  util::Rng rng(17);
  selector.Evaluate(selection::Query{{"present", "missing", "present"}}, s,
                    cori, ctx, rng, &cache, 0);
  // Three occurrences, two distinct words -> exactly two grid builds.
  EXPECT_EQ(cache.stats().misses, 2u);
}

// ------------------------------------------------------ deadline skipping --

TEST(AdaptiveSelectorTest, ExpiredDeadlineSkipIsCountedAsDisposition) {
  const sampling::SampleResult s = MakeMixedEvidenceSample();
  AdaptiveSummarySelector selector;
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(19);
  util::Counter& evals = util::GlobalMetrics().counter("adaptive.evaluations");
  util::Counter& skipped =
      util::GlobalMetrics().counter("adaptive.deadline_skipped");
  util::Counter& shrunk =
      util::GlobalMetrics().counter("adaptive.chose_shrunk");
  util::Counter& plain = util::GlobalMetrics().counter("adaptive.chose_plain");
  const uint64_t evals0 = evals.value();
  const uint64_t skipped0 = skipped.value();
  const uint64_t decided0 = shrunk.value() + plain.value();
  PosteriorCache cache(1);
  util::Deadline expired(0.0);  // born expired: zero budget
  const auto u =
      selector.Evaluate(selection::Query{{"present", "missing"}}, s, bgloss,
                        ctx, rng, &cache, 0, /*epoch=*/0, &expired);
  EXPECT_FALSE(u.use_shrinkage);
  EXPECT_EQ(u.draws, 0u);
  EXPECT_EQ(evals.value() - evals0, 1u);
  EXPECT_EQ(skipped.value() - skipped0, 1u);
  // The skip IS the disposition: chose_* stay untouched, preserving
  // chose_shrunk + chose_plain + deadline_skipped == evaluations.
  EXPECT_EQ(shrunk.value() + plain.value(), decided0);
  EXPECT_EQ(cache.stats().misses + cache.stats().hits, 0u);
}

// --------------------------------------------------- zero-excess sentinel --

// Scores above DefaultScore never (mean - default <= 0): the always-shrink
// limit of the decision rule.
class FloorHuggingScorer : public selection::ScoringFunction {
 public:
  std::string_view name() const override { return "floor-hugging"; }
  double Score(const selection::Query&, const summary::SummaryView&,
               const selection::ScoringContext&) const override {
    return 0.25;
  }
  double DefaultScore(const selection::Query&, const summary::SummaryView&,
                      const selection::ScoringContext&) const override {
    return 0.5;
  }
};

TEST(AdaptiveSelectorTest, ZeroExcessRecordsClampSentinelInRatioHistogram) {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 2;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  AdaptiveSummarySelector selector(options);
  FloorHuggingScorer scorer;
  selection::ScoringContext ctx;
  util::Rng rng(23);
  util::Histogram& ratio =
      util::GlobalMetrics().histogram("adaptive.sigma_mu_ratio_e3");
  const uint64_t count0 = ratio.count();
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, scorer, ctx, rng);
  // mean (0.25) is below the default score (0.5): excess is clamped to 0
  // and any spread wins, i.e. shrinkage — but with zero stddev the rule
  // needs strict inequality, so the decision is "plain" while the ratio
  // histogram still records the 1e6-ratio sentinel (in milli-units).
  EXPECT_EQ(ratio.count() - count0, 1u);
  EXPECT_EQ(ratio.max(), static_cast<uint64_t>(1e6 * 1e3));
  EXPECT_FALSE(u.use_shrinkage);  // stddev == 0 beats nothing
}

TEST(AdaptiveSelectorTest, DrawCountBounded) {
  sampling::SampleResult s = MakeSample(50000, 300);
  s.summary.SetWord("w", summary::WordStats{300, 400});
  s.sample_df["w"] = 2;
  AdaptiveOptions options;
  options.require_mixed_evidence = false;
  options.min_draws = 50;
  options.max_draws = 120;
  AdaptiveSummarySelector selector(options);
  selection::BglossScorer bgloss;
  selection::ScoringContext ctx;
  util::Rng rng(5);
  const auto u =
      selector.Evaluate(selection::Query{{"w"}}, s, bgloss, ctx, rng);
  EXPECT_GE(u.draws, 50u);
  EXPECT_LE(u.draws, 120u);
}

}  // namespace
}  // namespace fedsearch::core
