#include "fedsearch/core/live_metasearcher.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/corpus/churn.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "testing/churn_testbed.h"

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedChurnTestbed;

sampling::QbsSampler MakeSampler() {
  const corpus::Testbed& bed = SharedChurnTestbed();
  sampling::QbsOptions options;
  options.target_documents = 60;
  return sampling::QbsSampler(options,
                              corpus::BuildSamplerDictionary(bed.model(), 10));
}

// Epoch-0 samples of the frozen testbed, deterministic per `seed`.
std::vector<sampling::SampleResult> SampleFederation(uint64_t seed) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  sampling::QbsSampler sampler = MakeSampler();
  std::vector<sampling::SampleResult> samples;
  util::Rng rng(seed);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
  }
  return samples;
}

std::vector<corpus::CategoryId> Classifications() {
  const corpus::Testbed& bed = SharedChurnTestbed();
  std::vector<corpus::CategoryId> c;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    c.push_back(bed.category_of(i));
  }
  return c;
}

std::vector<std::pair<size_t, double>> Rank(
    const Metasearcher& meta, const selection::Query& query,
    const selection::ScoringFunction& scorer) {
  const auto outcome =
      meta.SelectDatabases(query, scorer, SummaryMode::kAdaptiveShrinkage);
  std::vector<std::pair<size_t, double>> ranking;
  for (const auto& r : outcome.ranking) ranking.emplace_back(r.database, r.score);
  return ranking;
}

TEST(LiveMetasearcherTest, PublishesEpochZeroSnapshotOnConstruction) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  LiveMetasearcher live(&bed.hierarchy(), SampleFederation(77),
                        Classifications());
  EXPECT_EQ(live.epoch(), 0u);
  const std::shared_ptr<const Metasearcher> snap = live.Snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 0u);
  EXPECT_EQ(snap->num_databases(), bed.num_databases());

  // Scores match a plain, never-refreshed Metasearcher over the same
  // samples bit-for-bit.
  const Metasearcher fixed(&bed.hierarchy(), SampleFederation(77),
                           Classifications());
  selection::BglossScorer bgloss;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    EXPECT_EQ(Rank(*snap, q, bgloss), Rank(fixed, q, bgloss));
  }
}

TEST(LiveMetasearcherTest, FixedSourceHandsOutTheSameSnapshot) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  const Metasearcher fixed(&bed.hierarchy(), SampleFederation(77),
                           Classifications());
  FixedMetasearcherSource source(&fixed);
  EXPECT_EQ(source.Snapshot().get(), &fixed);
  EXPECT_EQ(source.Snapshot().get(), source.Snapshot().get());
}

TEST(LiveMetasearcherTest, RefreshAdvancesEpochAndKeepsOldSnapshotAlive) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  LiveMetasearcher live(&bed.hierarchy(), SampleFederation(77),
                        Classifications());
  const std::shared_ptr<const Metasearcher> snap0 = live.Snapshot();

  // Re-probe database 0 with a different sampler stream.
  sampling::QbsSampler sampler = MakeSampler();
  util::Rng rng(123456);
  SummaryUpdate update;
  update.database = 0;
  update.sample = sampler.Sample(bed.database(0), rng);
  update.classification = bed.category_of(0);
  ASSERT_TRUE(live.ApplyRefresh({std::move(update)}).ok());

  EXPECT_EQ(live.epoch(), 1u);
  const std::shared_ptr<const Metasearcher> snap1 = live.Snapshot();
  EXPECT_NE(snap0.get(), snap1.get());
  EXPECT_EQ(snap0->epoch(), 0u);  // pinned readers keep their epoch
  EXPECT_EQ(snap1->epoch(), 1u);
  EXPECT_EQ(snap1->summary_epoch(0), 1u);  // only db 0 was re-probed
  EXPECT_EQ(snap1->summary_epoch(1), 0u);

  // The superseded snapshot still serves — RCU, not invalidation.
  selection::BglossScorer bgloss;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  EXPECT_FALSE(Rank(*snap0, q, bgloss).empty());
  EXPECT_FALSE(Rank(*snap1, q, bgloss).empty());
}

TEST(LiveMetasearcherTest, RefreshedSnapshotMatchesFromScratchBuild) {
  // The incremental path (ScoringStatisticsCache::Rebuilt + shared
  // posterior cache + prior-based construction) must be invisible: after
  // any refresh sequence, scoring is bit-identical to a Metasearcher
  // built from scratch over the final samples.
  const corpus::Testbed& bed = SharedChurnTestbed();
  std::vector<sampling::SampleResult> samples = SampleFederation(77);
  std::vector<corpus::CategoryId> classifications = Classifications();
  LiveMetasearcher live(&bed.hierarchy(), samples, classifications);

  sampling::QbsSampler sampler = MakeSampler();
  util::Rng rng(98765);
  // Two refresh rounds touching different database sets.
  for (const std::vector<size_t>& round :
       {std::vector<size_t>{1, 4}, std::vector<size_t>{1, 7, 9}}) {
    std::vector<SummaryUpdate> updates;
    for (size_t db : round) {
      SummaryUpdate u;
      u.database = db;
      util::Rng db_rng = rng.Fork();
      u.sample = sampler.Sample(bed.database(db), db_rng);
      u.classification = bed.category_of(db);
      samples[db] = u.sample;  // mirror for the from-scratch build
      updates.push_back(std::move(u));
    }
    ASSERT_TRUE(live.ApplyRefresh(std::move(updates)).ok());
  }
  ASSERT_EQ(live.epoch(), 2u);

  const Metasearcher scratch(&bed.hierarchy(), std::move(samples),
                             std::move(classifications));
  const std::shared_ptr<const Metasearcher> snap = live.Snapshot();
  selection::BglossScorer bgloss;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    EXPECT_EQ(Rank(*snap, q, bgloss), Rank(scratch, q, bgloss));
  }
}

TEST(LiveMetasearcherTest, RejectsMalformedRefreshBatches) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  LiveMetasearcher live(&bed.hierarchy(), SampleFederation(77),
                        Classifications());

  SummaryUpdate out_of_range;
  out_of_range.database = bed.num_databases();
  util::Status status = live.ApplyRefresh({out_of_range});
  EXPECT_EQ(status.code(), util::Status::Code::kInvalidArgument);

  SummaryUpdate a;
  a.database = 2;
  SummaryUpdate b;
  b.database = 2;
  status = live.ApplyRefresh({a, b});
  EXPECT_EQ(status.code(), util::Status::Code::kInvalidArgument);

  // Failed refreshes publish nothing.
  EXPECT_EQ(live.epoch(), 0u);
  EXPECT_EQ(live.Snapshot()->epoch(), 0u);
}

TEST(LiveMetasearcherTest, EmptyRefreshStillAdvancesTheEpoch) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  LiveMetasearcher live(&bed.hierarchy(), SampleFederation(77),
                        Classifications());
  ASSERT_TRUE(live.ApplyRefresh({}).ok());
  EXPECT_EQ(live.epoch(), 1u);
  EXPECT_EQ(live.Snapshot()->epoch(), 1u);
  EXPECT_EQ(live.Snapshot()->summary_epoch(0), 0u);  // nothing re-probed
}

TEST(LiveMetasearcherTest, CacheHistoryAttributesTrafficToEpochs) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  LiveMetasearcher live(&bed.hierarchy(), SampleFederation(77),
                        Classifications());
  EXPECT_TRUE(live.cache_history().empty());

  // Drive posterior-cache traffic on epoch 0, then retire it.
  selection::BglossScorer bgloss;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  (void)Rank(*live.Snapshot(), q, bgloss);
  const PosteriorCache::Stats epoch0 = live.posterior_cache_stats();
  ASSERT_TRUE(live.ApplyRefresh({}).ok());

  const std::vector<EpochCacheStats> history = live.cache_history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].epoch, 0u);
  EXPECT_EQ(history[0].stats.hits, epoch0.hits);
  EXPECT_EQ(history[0].stats.misses, epoch0.misses);
  EXPECT_EQ(history[0].stats.evictions, 0u);
}

}  // namespace
}  // namespace fedsearch::core
