#include "fedsearch/core/metasearcher.h"

#include <gtest/gtest.h>

#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedSmallTestbed;

// One sampled federation shared by the tests in this file.
class MetasearcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 80;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(77);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    meta_ = new Metasearcher(&bed.hierarchy(), std::move(samples),
                             std::move(classifications));
  }

  static Metasearcher* meta_;
};

Metasearcher* MetasearcherTest::meta_ = nullptr;

TEST_F(MetasearcherTest, ExposesPerDatabaseArtifacts) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  ASSERT_EQ(meta_->num_databases(), bed.num_databases());
  for (size_t i = 0; i < meta_->num_databases(); ++i) {
    EXPECT_GT(meta_->plain_summary(i).vocabulary_size(), 0u);
    EXPECT_GE(meta_->shrunk_summary(i).vocabulary_size(),
              meta_->plain_summary(i).vocabulary_size());
    const auto& lambdas = meta_->lambdas(i);
    double sum = 0.0;
    for (double l : lambdas) sum += l;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(MetasearcherTest, GlobalSummaryIsRootAggregate) {
  EXPECT_DOUBLE_EQ(
      meta_->global_summary().num_documents(),
      meta_->hierarchy_summaries().root_aggregate().num_documents());
  EXPECT_GT(meta_->global_summary().vocabulary_size(), 0u);
}

TEST_F(MetasearcherTest, PlainModeNeverAppliesShrinkage) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto outcome = meta_->SelectDatabases(q, cori, SummaryMode::kPlain);
  EXPECT_EQ(outcome.shrinkage_applied, 0u);
  EXPECT_EQ(outcome.databases_considered, meta_->num_databases());
}

TEST_F(MetasearcherTest, UniversalModeAlwaysAppliesShrinkage) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto outcome =
      meta_->SelectDatabases(q, cori, SummaryMode::kUniversalShrinkage);
  EXPECT_EQ(outcome.shrinkage_applied, meta_->num_databases());
}

TEST_F(MetasearcherTest, AdaptiveModeAppliesShrinkageSelectively) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  size_t total_applied = 0;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    const auto outcome =
        meta_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
    total_applied += outcome.shrinkage_applied;
    EXPECT_LE(outcome.shrinkage_applied, outcome.databases_considered);
  }
  // Across several queries, the adaptive rule should fire at least once
  // and not for every single pair (Table 10 reports 11%-78%).
  EXPECT_GT(total_applied, 0u);
  EXPECT_LT(total_applied,
            bed.queries().size() * meta_->num_databases());
}

TEST_F(MetasearcherTest, AdaptiveDecisionsAreDeterministic) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::BglossScorer bgloss;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[1].text)};
  const auto a =
      meta_->SelectDatabases(q, bgloss, SummaryMode::kAdaptiveShrinkage);
  const auto b =
      meta_->SelectDatabases(q, bgloss, SummaryMode::kAdaptiveShrinkage);
  EXPECT_EQ(a.shrinkage_applied, b.shrinkage_applied);
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].database, b.ranking[i].database);
  }
}

TEST_F(MetasearcherTest, RankingsAreSortedAndDeduplicated) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    const auto outcome =
        meta_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
    std::unordered_set<size_t> seen;
    double prev = 1e300;
    for (const auto& r : outcome.ranking) {
      EXPECT_TRUE(seen.insert(r.database).second);
      EXPECT_LE(r.score, prev);
      prev = r.score;
    }
  }
}

TEST_F(MetasearcherTest, HierarchicalSelectionReturnsAtMostK) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto ranking = meta_->SelectHierarchical(q, cori, 5);
  EXPECT_LE(ranking.size(), 5u);
}

}  // namespace
}  // namespace fedsearch::core
