#include "fedsearch/core/metasearcher.h"

#include <gtest/gtest.h>

#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedSmallTestbed;

// One sampled federation shared by the tests in this file.
class MetasearcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 80;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(77);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    meta_ = new Metasearcher(&bed.hierarchy(), std::move(samples),
                             std::move(classifications));
  }

  static Metasearcher* meta_;
};

Metasearcher* MetasearcherTest::meta_ = nullptr;

TEST_F(MetasearcherTest, ExposesPerDatabaseArtifacts) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  ASSERT_EQ(meta_->num_databases(), bed.num_databases());
  for (size_t i = 0; i < meta_->num_databases(); ++i) {
    EXPECT_GT(meta_->plain_summary(i).vocabulary_size(), 0u);
    EXPECT_GE(meta_->shrunk_summary(i).vocabulary_size(),
              meta_->plain_summary(i).vocabulary_size());
    const auto& lambdas = meta_->lambdas(i);
    double sum = 0.0;
    for (double l : lambdas) sum += l;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(MetasearcherTest, GlobalSummaryIsRootAggregate) {
  EXPECT_DOUBLE_EQ(
      meta_->global_summary().num_documents(),
      meta_->hierarchy_summaries().root_aggregate().num_documents());
  EXPECT_GT(meta_->global_summary().vocabulary_size(), 0u);
}

TEST_F(MetasearcherTest, PlainModeNeverAppliesShrinkage) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto outcome = meta_->SelectDatabases(q, cori, SummaryMode::kPlain);
  EXPECT_EQ(outcome.shrinkage_applied, 0u);
  EXPECT_EQ(outcome.databases_considered, meta_->num_databases());
}

TEST_F(MetasearcherTest, UniversalModeAlwaysAppliesShrinkage) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto outcome =
      meta_->SelectDatabases(q, cori, SummaryMode::kUniversalShrinkage);
  EXPECT_EQ(outcome.shrinkage_applied, meta_->num_databases());
}

TEST_F(MetasearcherTest, AdaptiveModeAppliesShrinkageSelectively) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  size_t total_applied = 0;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    const auto outcome =
        meta_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
    total_applied += outcome.shrinkage_applied;
    EXPECT_LE(outcome.shrinkage_applied, outcome.databases_considered);
  }
  // Across several queries, the adaptive rule should fire at least once
  // and not for every single pair (Table 10 reports 11%-78%).
  EXPECT_GT(total_applied, 0u);
  EXPECT_LT(total_applied,
            bed.queries().size() * meta_->num_databases());
}

TEST_F(MetasearcherTest, AdaptiveDecisionsAreDeterministic) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::BglossScorer bgloss;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[1].text)};
  const auto a =
      meta_->SelectDatabases(q, bgloss, SummaryMode::kAdaptiveShrinkage);
  const auto b =
      meta_->SelectDatabases(q, bgloss, SummaryMode::kAdaptiveShrinkage);
  EXPECT_EQ(a.shrinkage_applied, b.shrinkage_applied);
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].database, b.ranking[i].database);
  }
}

TEST_F(MetasearcherTest, RankingsAreSortedAndDeduplicated) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    const auto outcome =
        meta_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
    std::unordered_set<size_t> seen;
    double prev = 1e300;
    for (const auto& r : outcome.ranking) {
      EXPECT_TRUE(seen.insert(r.database).second);
      EXPECT_LE(r.score, prev);
      prev = r.score;
    }
  }
}

// --- Bounded (deadline-carrying) selection --------------------------------

TEST_F(MetasearcherTest, BornExpiredDeadlineAbortsBeforeAnyWork) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  util::Deadline deadline(0.0);
  const auto outcome = meta_->SelectDatabases(
      q, cori, SummaryMode::kAdaptiveShrinkage, &deadline);
  EXPECT_EQ(outcome.status.code(), util::Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(outcome.ranking.empty());
  EXPECT_EQ(outcome.evaluations_completed, 0u);
}

TEST_F(MetasearcherTest, BoundedAbortBoundaryMatchesTheCostModel) {
  // Each adaptive evaluation charges 1ms; a 3.5ms budget is crossed by the
  // fourth charge, so exactly four evaluations run (the fourth lands its
  // charge, sees the spent budget, and skips its Monte-Carlo work) and the
  // fifth boundary aborts the request.
  ASSERT_EQ(meta_->num_degraded(), 0u);  // healthy federation: every
                                         // database charges one evaluation
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  util::Deadline::Costs costs;
  costs.adaptive_evaluation_ms = 1.0;
  costs.score_ms = 0.25;
  util::Deadline deadline(3.5, costs);
  const auto outcome = meta_->SelectDatabases(
      q, cori, SummaryMode::kAdaptiveShrinkage, &deadline);
  EXPECT_EQ(outcome.status.code(), util::Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(outcome.ranking.empty());
  EXPECT_EQ(outcome.evaluations_completed, 4u);
  EXPECT_DOUBLE_EQ(deadline.consumed_ms(), 4.0);
}

TEST_F(MetasearcherTest, GenerousDeadlineMatchesUnboundedBitForBit) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[1].text)};
  const auto unbounded =
      meta_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
  util::Deadline deadline(1e9);
  const auto bounded = meta_->SelectDatabases(
      q, cori, SummaryMode::kAdaptiveShrinkage, &deadline);
  EXPECT_TRUE(bounded.status.ok());
  EXPECT_EQ(bounded.shrinkage_applied, unbounded.shrinkage_applied);
  ASSERT_EQ(bounded.ranking.size(), unbounded.ranking.size());
  for (size_t i = 0; i < bounded.ranking.size(); ++i) {
    EXPECT_EQ(bounded.ranking[i].database, unbounded.ranking[i].database);
    EXPECT_EQ(bounded.ranking[i].score, unbounded.ranking[i].score);
  }
  // Consumption is the exact fold of the charge sequence: one evaluation
  // per non-degraded database, then one scoring charge per database.
  const util::Deadline::Costs costs;  // defaults, as used above
  double replay = 0.0;
  const size_t n = meta_->num_databases();
  for (size_t i = 0; i < n - meta_->num_degraded(); ++i) {
    replay += costs.adaptive_evaluation_ms;
  }
  for (size_t i = 0; i < n; ++i) replay += costs.score_ms;
  EXPECT_EQ(deadline.consumed_ms(), replay);
}

TEST_F(MetasearcherTest, SelectionCompletedPastTheDeadlineIsNotServed) {
  // A budget equal to the exact total cost is spent by the final scoring
  // charge: the ranking exists but arrived late, so the caller gets
  // kDeadlineExceeded and an empty ranking, never a stale answer.
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  util::Deadline::Costs costs;
  costs.adaptive_evaluation_ms = 1.0;
  costs.score_ms = 0.25;
  double budget = 0.0;
  const size_t n = meta_->num_databases();
  for (size_t i = 0; i < n - meta_->num_degraded(); ++i) {
    budget += costs.adaptive_evaluation_ms;
  }
  for (size_t i = 0; i < n; ++i) budget += costs.score_ms;
  util::Deadline deadline(budget, costs);
  const auto outcome = meta_->SelectDatabases(
      q, cori, SummaryMode::kAdaptiveShrinkage, &deadline);
  EXPECT_EQ(outcome.status.code(), util::Status::Code::kDeadlineExceeded);
  EXPECT_TRUE(outcome.ranking.empty());
  EXPECT_EQ(outcome.evaluations_completed, n - meta_->num_degraded());
  EXPECT_EQ(deadline.consumed_ms(), budget);
}

TEST_F(MetasearcherTest, PlainModeChargesOnlyScoring) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto unbounded = meta_->SelectDatabases(q, cori, SummaryMode::kPlain);
  util::Deadline::Costs costs;
  costs.adaptive_evaluation_ms = 1e9;  // would blow any budget if charged
  costs.score_ms = 0.25;
  util::Deadline deadline(100.0, costs);
  const auto outcome =
      meta_->SelectDatabases(q, cori, SummaryMode::kPlain, &deadline);
  EXPECT_TRUE(outcome.status.ok());
  ASSERT_EQ(outcome.ranking.size(), unbounded.ranking.size());
  for (size_t i = 0; i < outcome.ranking.size(); ++i) {
    EXPECT_EQ(outcome.ranking[i].database, unbounded.ranking[i].database);
    EXPECT_EQ(outcome.ranking[i].score, unbounded.ranking[i].score);
  }
  double replay = 0.0;
  for (size_t i = 0; i < meta_->num_databases(); ++i) replay += costs.score_ms;
  EXPECT_EQ(deadline.consumed_ms(), replay);
}

TEST_F(MetasearcherTest, HierarchicalSelectionReturnsAtMostK) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto ranking = meta_->SelectHierarchical(q, cori, 5);
  EXPECT_LE(ranking.size(), 5u);
}

}  // namespace
}  // namespace fedsearch::core
