#include "fedsearch/core/shrinkage.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace fedsearch::core {
namespace {

summary::ContentSummary MakeDb(
    double n, std::vector<std::tuple<std::string, double, double>> words) {
  summary::ContentSummary s;
  s.set_num_documents(n);
  for (const auto& [w, df, ctf] : words) {
    s.SetWord(w, summary::WordStats{df, ctf});
  }
  return s;
}

// ----------------------------------------------------------- ShrunkSummary

class ShrunkSummaryTest : public ::testing::Test {
 protected:
  ShrunkSummaryTest()
      : category_(MakeDb(1000, {{"shared", 400, 600}, {"cat-only", 100, 150}})),
        db_(MakeDb(100, {{"shared", 30, 60}, {"db-only", 10, 20}})),
        shrunk_({&category_, &db_}, {0.1, 0.4, 0.5}, /*uniform=*/0.001) {}

  summary::ContentSummary category_;
  summary::ContentSummary db_;
  ShrunkSummary shrunk_;
};

TEST_F(ShrunkSummaryTest, MixtureProbMatchesDefinition4) {
  // p̂_R(w|D) = λ0·u + λ1·p̂(w|C) + λ2·p̂(w|D).
  EXPECT_NEAR(shrunk_.MixtureProbDoc("shared"),
              0.1 * 0.001 + 0.4 * 0.4 + 0.5 * 0.3, 1e-12);
  EXPECT_NEAR(shrunk_.MixtureProbDoc("cat-only"),
              0.1 * 0.001 + 0.4 * 0.1, 1e-12);
  EXPECT_NEAR(shrunk_.MixtureProbDoc("db-only"),
              0.1 * 0.001 + 0.5 * 0.1, 1e-12);
  // Unknown words still get the uniform floor: "every word in any content
  // summary" has non-zero probability (Section 5.3).
  EXPECT_NEAR(shrunk_.MixtureProbDoc("never-seen"), 0.1 * 0.001, 1e-15);
}

TEST_F(ShrunkSummaryTest, SizeComesFromDatabase) {
  EXPECT_DOUBLE_EQ(shrunk_.num_documents(), 100.0);
  EXPECT_DOUBLE_EQ(shrunk_.total_tokens(), 80.0);
}

TEST_F(ShrunkSummaryTest, DocFrequencyScalesMixture) {
  EXPECT_NEAR(shrunk_.DocFrequency("db-only"),
              shrunk_.MixtureProbDoc("db-only") * 100.0, 1e-12);
}

TEST_F(ShrunkSummaryTest, ForEachWordCoversUnionOnce) {
  size_t count = 0;
  bool saw_cat_only = false;
  shrunk_.ForEachWord([&](const std::string& w, const summary::WordStats& s) {
    ++count;
    saw_cat_only |= w == "cat-only";
    EXPECT_GT(s.df, 0.0);
  });
  EXPECT_EQ(count, 3u);  // shared, cat-only, db-only
  EXPECT_TRUE(saw_cat_only);
  EXPECT_EQ(shrunk_.vocabulary_size(), 3u);
}

TEST_F(ShrunkSummaryTest, LambdasAccessible) {
  EXPECT_EQ(shrunk_.lambdas().size(), 3u);
  EXPECT_DOUBLE_EQ(shrunk_.lambdas()[0], 0.1);
}

// -------------------------------------------------------- FitMixtureWeights

TEST(FitMixtureWeightsTest, LambdasFormADistribution) {
  const summary::ContentSummary db =
      MakeDb(100, {{"a", 50, 60}, {"b", 10, 12}, {"c", 1, 1}});
  const summary::ContentSummary cat =
      MakeDb(500, {{"a", 200, 240}, {"b", 60, 70}, {"d", 40, 50}});
  const std::vector<double> lambdas =
      FitMixtureWeights(db, {&cat}, 1e-4, /*sample_size=*/100);
  ASSERT_EQ(lambdas.size(), 3u);
  EXPECT_NEAR(std::accumulate(lambdas.begin(), lambdas.end(), 0.0), 1.0,
              1e-9);
  for (double l : lambdas) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
}

TEST(FitMixtureWeightsTest, IrrelevantCategoryGetsTinyWeight) {
  const summary::ContentSummary db =
      MakeDb(100, {{"a", 60, 80}, {"b", 30, 40}, {"c", 10, 12}});
  const summary::ContentSummary matching =
      MakeDb(400, {{"a", 240, 300}, {"b", 120, 160}, {"c", 40, 50}});
  const summary::ContentSummary unrelated =
      MakeDb(400, {{"x", 200, 220}, {"y", 100, 110}});
  const std::vector<double> lambdas =
      FitMixtureWeights(db, {&unrelated, &matching}, 1e-4, 100);
  // Order: uniform, unrelated, matching, database.
  EXPECT_LT(lambdas[1], 0.05);
  EXPECT_GT(lambdas[2] + lambdas[3], 0.8);
}

TEST(FitMixtureWeightsTest, TextbookIterationWithoutDeletionDegenerates) {
  // Documents why the cross-validated fit exists: with sample_size == 0
  // (no deletion), EM run to convergence hands everything to the database
  // component.
  const summary::ContentSummary db =
      MakeDb(100, {{"a", 50, 60}, {"b", 10, 12}, {"c", 2, 2}});
  // The category overlaps but is pointwise less likely for S(D)'s words,
  // so the database component is the maximum-likelihood explanation.
  const summary::ContentSummary cat =
      MakeDb(500, {{"a", 100, 120}, {"b", 20, 25}, {"c", 4, 5}});
  const std::vector<double> lambdas =
      FitMixtureWeights(db, {&cat}, 1e-4, /*sample_size=*/0,
                        ShrinkageOptions{.epsilon = 1e-12,
                                         .max_iterations = 5000});
  EXPECT_GT(lambdas.back(), 0.98);
}

TEST(FitMixtureWeightsTest, EmptySummaryGivesUniformLambdas) {
  summary::ContentSummary db;
  db.set_num_documents(10);
  const summary::ContentSummary cat = MakeDb(100, {{"a", 10, 10}});
  const std::vector<double> lambdas = FitMixtureWeights(db, {&cat}, 1e-4, 10);
  ASSERT_EQ(lambdas.size(), 3u);
  for (double l : lambdas) EXPECT_NEAR(l, 1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------------ ShrinkageModel

class ShrinkageModelTest : public ::testing::Test {
 protected:
  ShrinkageModelTest() : hierarchy_("Root") {
    health_ = hierarchy_.AddCategory("Health", hierarchy_.root());
    heart_ = hierarchy_.AddCategory("Heart", health_);
    sports_ = hierarchy_.AddCategory("Sports", hierarchy_.root());

    dbs_.push_back(MakeDb(
        200, {{"cardiac", 100, 150}, {"blood", 40, 60}, {"rare0", 2, 2}}));
    dbs_.push_back(MakeDb(300, {{"cardiac", 120, 160},
                                {"hypertension", 90, 120},
                                {"blood", 150, 200}}));
    dbs_.push_back(MakeDb(400, {{"goal", 300, 400}, {"league", 100, 120}}));
    for (const auto& d : dbs_) ptrs_.push_back(&d);
    classifications_ = {heart_, heart_, sports_};
    hs_ = std::make_unique<HierarchySummaries>(&hierarchy_, ptrs_,
                                               classifications_);
    model_ = std::make_unique<ShrinkageModel>(hs_.get(),
                                              std::vector<size_t>{50, 50, 50});
  }

  corpus::TopicHierarchy hierarchy_;
  corpus::CategoryId health_, heart_, sports_;
  std::vector<summary::ContentSummary> dbs_;
  std::vector<const summary::ContentSummary*> ptrs_;
  std::vector<corpus::CategoryId> classifications_;
  std::unique_ptr<HierarchySummaries> hs_;
  std::unique_ptr<ShrinkageModel> model_;
};

TEST_F(ShrinkageModelTest, PathsIncludeRootPerTable2) {
  // Table 2 lists Uniform, Root, ..., leaf, database — so the fitted path
  // must start at the root category.
  ASSERT_EQ(model_->path(0).size(), 3u);  // Root, Health, Heart
  EXPECT_EQ(model_->path(0)[0], hierarchy_.root());
  EXPECT_EQ(model_->path(0)[2], heart_);
  EXPECT_EQ(model_->lambdas(0).size(), 5u);  // uniform + 3 + database
}

TEST_F(ShrinkageModelTest, ShrunkSummaryImportsSiblingWords) {
  // db0 lacks "hypertension"; its Heart sibling has it. The Example 3
  // scenario: shrinkage must lift it well above the uniform floor that an
  // entirely unknown word receives.
  const ShrunkSummary& shrunk = model_->shrunk(0);
  EXPECT_GT(shrunk.MixtureProbDoc("hypertension"),
            3 * shrunk.MixtureProbDoc("word-from-nowhere"));
}

TEST_F(ShrinkageModelTest, OffTopicWordsStayNearUniformFloor) {
  const ShrunkSummary& shrunk = model_->shrunk(0);
  // "goal" lives under Sports; for a Heart database only the Root-exclusive
  // component and the uniform floor can supply it.
  EXPECT_LT(shrunk.MixtureProbDoc("goal"),
            shrunk.MixtureProbDoc("hypertension"));
}

TEST_F(ShrinkageModelTest, DatabaseWordsKeepHighProbability) {
  const ShrunkSummary& shrunk = model_->shrunk(0);
  EXPECT_GT(shrunk.MixtureProbDoc("cardiac"), 0.1);
  EXPECT_GT(shrunk.MixtureProbDoc("cardiac"),
            shrunk.MixtureProbDoc("hypertension"));
}

TEST_F(ShrinkageModelTest, LambdasSumToOneForEveryDatabase) {
  for (size_t i = 0; i < model_->num_databases(); ++i) {
    const auto& l = model_->lambdas(i);
    EXPECT_NEAR(std::accumulate(l.begin(), l.end(), 0.0), 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace fedsearch::core
