#include "fedsearch/core/federated_search.h"

#include <gtest/gtest.h>

#include "fedsearch/text/analyzer.h"

namespace fedsearch::core {
namespace {

class FederatedSearchTest : public ::testing::Test {
 protected:
  FederatedSearchTest()
      : medical_("medical", &analyzer_), sports_("sports", &analyzer_) {
    medical_.AddDocument("cardiac surgery outcome study");   // doc 0
    medical_.AddDocument("cardiac rehabilitation program");  // doc 1
    medical_.AddDocument("nutrition advice");                // doc 2
    sports_.AddDocument("cardiac arrest during a match");    // doc 0
    sports_.AddDocument("league standings");                 // doc 1
    databases_ = {&medical_, &sports_};
  }

  text::Analyzer analyzer_;
  index::TextDatabase medical_;
  index::TextDatabase sports_;
  std::vector<const index::TextDatabase*> databases_;
};

TEST_F(FederatedSearchTest, MergesAcrossDatabases) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_EQ(hits.size(), 3u);  // two medical docs + one sports doc
  bool saw_sports = false;
  for (const FederatedHit& h : hits) saw_sports |= h.database == 1;
  EXPECT_TRUE(saw_sports);
  // The top hit comes from the higher-believed database.
  EXPECT_EQ(hits[0].database, 0u);
}

TEST_F(FederatedSearchTest, DatabaseBeliefBreaksDocumentTies) {
  // Both databases return a rank-1 document; the higher-scored database's
  // document must be merged first.
  const std::vector<selection::RankedDatabase> ranking = {{1, 5.0}, {0, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].database, 1u);
}

TEST_F(FederatedSearchTest, HonorsDatabaseBudget) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  FederatedSearchOptions options;
  options.databases_to_search = 1;
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac", options);
  for (const FederatedHit& h : hits) EXPECT_EQ(h.database, 0u);
}

TEST_F(FederatedSearchTest, HonorsMergedResultBudget) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  FederatedSearchOptions options;
  options.merged_results = 2;
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac", options);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(FederatedSearchTest, ScoresAreNonIncreasing) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST_F(FederatedSearchTest, EmptyRankingOrNoMatches) {
  EXPECT_TRUE(SearchAndMerge(databases_, {}, "cardiac").empty());
  const std::vector<selection::RankedDatabase> ranking = {{0, 1.0}};
  EXPECT_TRUE(SearchAndMerge(databases_, ranking, "nonexistent").empty());
}

TEST_F(FederatedSearchTest, SingleDatabaseGetsFullWeight) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 7.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_FALSE(hits.empty());
  // With one database, normalization degenerates to weight 1: the top
  // document keeps its reciprocal-rank score of 1.0.
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

}  // namespace
}  // namespace fedsearch::core
