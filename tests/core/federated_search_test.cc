#include "fedsearch/core/federated_search.h"

#include <gtest/gtest.h>

#include "fedsearch/index/flaky_database.h"
#include "fedsearch/index/search_interface.h"
#include "fedsearch/text/analyzer.h"
#include "fedsearch/util/deadline.h"

namespace fedsearch::core {
namespace {

class FederatedSearchTest : public ::testing::Test {
 protected:
  FederatedSearchTest()
      : medical_("medical", &analyzer_), sports_("sports", &analyzer_) {
    medical_.AddDocument("cardiac surgery outcome study");   // doc 0
    medical_.AddDocument("cardiac rehabilitation program");  // doc 1
    medical_.AddDocument("nutrition advice");                // doc 2
    sports_.AddDocument("cardiac arrest during a match");    // doc 0
    sports_.AddDocument("league standings");                 // doc 1
    databases_ = {&medical_, &sports_};
  }

  text::Analyzer analyzer_;
  index::TextDatabase medical_;
  index::TextDatabase sports_;
  std::vector<const index::TextDatabase*> databases_;
};

TEST_F(FederatedSearchTest, MergesAcrossDatabases) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_EQ(hits.size(), 3u);  // two medical docs + one sports doc
  bool saw_sports = false;
  for (const FederatedHit& h : hits) saw_sports |= h.database == 1;
  EXPECT_TRUE(saw_sports);
  // The top hit comes from the higher-believed database.
  EXPECT_EQ(hits[0].database, 0u);
}

TEST_F(FederatedSearchTest, DatabaseBeliefBreaksDocumentTies) {
  // Both databases return a rank-1 document; the higher-scored database's
  // document must be merged first.
  const std::vector<selection::RankedDatabase> ranking = {{1, 5.0}, {0, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_GE(hits.size(), 2u);
  EXPECT_EQ(hits[0].database, 1u);
}

TEST_F(FederatedSearchTest, HonorsDatabaseBudget) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  FederatedSearchOptions options;
  options.databases_to_search = 1;
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac", options);
  for (const FederatedHit& h : hits) EXPECT_EQ(h.database, 0u);
}

TEST_F(FederatedSearchTest, HonorsMergedResultBudget) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  FederatedSearchOptions options;
  options.merged_results = 2;
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac", options);
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(FederatedSearchTest, ScoresAreNonIncreasing) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i].score, hits[i - 1].score);
  }
}

TEST_F(FederatedSearchTest, EmptyRankingOrNoMatches) {
  EXPECT_TRUE(SearchAndMerge(databases_, {}, "cardiac").empty());
  const std::vector<selection::RankedDatabase> ranking = {{0, 1.0}};
  EXPECT_TRUE(SearchAndMerge(databases_, ranking, "nonexistent").empty());
}

TEST_F(FederatedSearchTest, SingleDatabaseGetsFullWeight) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 7.0}};
  const auto hits = SearchAndMerge(databases_, ranking, "cardiac");
  ASSERT_FALSE(hits.empty());
  // With one database, normalization degenerates to weight 1: the top
  // document keeps its reciprocal-rank score of 1.0.
  EXPECT_DOUBLE_EQ(hits[0].score, 1.0);
}

TEST_F(FederatedSearchTest, RemoteMergeMatchesTheLocalPath) {
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  const auto local_hits = SearchAndMerge(databases_, ranking, "cardiac");

  index::LocalDatabase medical(&medical_), sports(&sports_);
  std::vector<index::SearchInterface*> remotes = {&medical, &sports};
  const FederatedSearchResult out =
      SearchAndMergeRemote(remotes, ranking, "cardiac");
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.databases_searched, 2u);
  EXPECT_EQ(out.databases_failed, 0u);
  EXPECT_EQ(out.databases_skipped, 0u);
  ASSERT_EQ(out.hits.size(), local_hits.size());
  for (size_t i = 0; i < out.hits.size(); ++i) {
    EXPECT_EQ(out.hits[i].database, local_hits[i].database);
    EXPECT_EQ(out.hits[i].doc, local_hits[i].doc);
    EXPECT_DOUBLE_EQ(out.hits[i].score, local_hits[i].score);
  }
}

TEST_F(FederatedSearchTest, DeadlineShedsTheTailOfTheFanOut) {
  index::LocalDatabase medical(&medical_), sports(&sports_);
  std::vector<index::SearchInterface*> remotes = {&medical, &sports};
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  // Budget covers exactly one model-default search (1ms): the charge for
  // database 0 spends it, so database 1 is skipped at the next boundary.
  util::Deadline deadline(1.0);
  const FederatedSearchResult out = SearchAndMergeRemote(
      remotes, ranking, "cardiac", FederatedSearchOptions{}, &deadline);
  EXPECT_EQ(out.databases_searched, 1u);
  EXPECT_EQ(out.databases_skipped, 1u);
  ASSERT_FALSE(out.status.ok());
  EXPECT_EQ(out.status.code(), util::Status::Code::kDeadlineExceeded);
  // The partial merge still carries database 0's hits.
  ASSERT_FALSE(out.hits.empty());
  for (const FederatedHit& h : out.hits) EXPECT_EQ(h.database, 0u);
}

TEST_F(FederatedSearchTest, FailedRemoteChargesTheModelDefaultAndContinues) {
  index::LocalDatabase medical(&medical_), sports(&sports_);
  index::FaultProfile always_down;
  always_down.unavailable_rate = 1.0;
  index::FlakyDatabase flaky_medical(&medical, always_down, /*seed=*/3);
  std::vector<index::SearchInterface*> remotes = {&flaky_medical, &sports};
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  util::Deadline deadline(10.0);
  const FederatedSearchResult out = SearchAndMergeRemote(
      remotes, ranking, "cardiac", FederatedSearchOptions{}, &deadline);
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.databases_failed, 1u);
  EXPECT_EQ(out.databases_searched, 1u);
  // The failed round trip and the successful one each cost the default.
  EXPECT_DOUBLE_EQ(deadline.consumed_ms(), 2.0);
  for (const FederatedHit& h : out.hits) EXPECT_EQ(h.database, 1u);
}

TEST_F(FederatedSearchTest, SlowRemoteServiceTimeConsumesTheBudget) {
  index::LocalDatabase medical(&medical_), sports(&sports_);
  index::FaultProfile slow;
  slow.slow_rate = 1.0;
  slow.base_service_ms = 5.0;
  index::FlakyDatabase slow_medical(&medical, slow, /*seed=*/37);
  std::vector<index::SearchInterface*> remotes = {&slow_medical, &sports};
  const std::vector<selection::RankedDatabase> ranking = {{0, 2.0}, {1, 1.0}};
  // 4ms would cover four model-default searches, but the slow engine
  // reports >= 5ms of service time, so the budget is gone after one call.
  util::Deadline deadline(4.0);
  const FederatedSearchResult out = SearchAndMergeRemote(
      remotes, ranking, "cardiac", FederatedSearchOptions{}, &deadline);
  EXPECT_EQ(out.databases_searched, 1u);
  EXPECT_EQ(out.databases_skipped, 1u);
  EXPECT_EQ(out.status.code(), util::Status::Code::kDeadlineExceeded);
  EXPECT_GE(deadline.consumed_ms(), 5.0);
}

}  // namespace
}  // namespace fedsearch::core
