#include "fedsearch/summary/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedsearch::summary {
namespace {

ContentSummary MakeTruth() {
  ContentSummary s;
  s.set_num_documents(100);
  s.SetWord("common", WordStats{80, 200});
  s.SetWord("mid", WordStats{20, 40});
  s.SetWord("rare", WordStats{2, 2});
  return s;
}

TEST(MetricsTest, IdenticalSummariesArePerfect) {
  const ContentSummary truth = MakeTruth();
  EXPECT_DOUBLE_EQ(WeightedRecall(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(UnweightedRecall(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(WeightedPrecision(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(UnweightedPrecision(truth, truth), 1.0);
  EXPECT_NEAR(SpearmanCorrelation(truth, truth), 1.0, 1e-12);
  EXPECT_NEAR(KlDivergence(truth, truth), 0.0, 1e-12);
}

TEST(MetricsTest, WeightedRecallWeighsByTruthProbability) {
  const ContentSummary truth = MakeTruth();
  ContentSummary approx;
  approx.set_num_documents(100);
  approx.SetWord("common", WordStats{80, 200});  // covers the heavy word only
  // wr = p(common) / (p(common)+p(mid)+p(rare)) = 0.8 / 1.02
  EXPECT_NEAR(WeightedRecall(approx, truth), 0.8 / 1.02, 1e-12);
  // ur = 1/3
  EXPECT_NEAR(UnweightedRecall(approx, truth), 1.0 / 3.0, 1e-12);
}

TEST(MetricsTest, PrecisionPenalizesSpuriousWords) {
  const ContentSummary truth = MakeTruth();
  ContentSummary approx;
  approx.set_num_documents(100);
  approx.SetWord("common", WordStats{80, 200});
  approx.SetWord("spurious", WordStats{20, 20});  // not in the database
  // wp = 0.8 / (0.8 + 0.2) = 0.8; up = 1/2.
  EXPECT_NEAR(WeightedPrecision(approx, truth), 0.8, 1e-12);
  EXPECT_NEAR(UnweightedPrecision(approx, truth), 0.5, 1e-12);
}

TEST(MetricsTest, SpuriousWordsDoNotAffectRecall) {
  const ContentSummary truth = MakeTruth();
  ContentSummary approx = MakeTruth();
  approx.SetWord("spurious", WordStats{50, 50});
  EXPECT_DOUBLE_EQ(WeightedRecall(approx, truth), 1.0);
  EXPECT_DOUBLE_EQ(UnweightedRecall(approx, truth), 1.0);
}

TEST(MetricsTest, SpearmanDetectsRankInversion) {
  const ContentSummary truth = MakeTruth();
  ContentSummary approx;
  approx.set_num_documents(100);
  // Reverse the frequency order.
  approx.SetWord("common", WordStats{2, 2});
  approx.SetWord("mid", WordStats{20, 40});
  approx.SetWord("rare", WordStats{80, 200});
  EXPECT_NEAR(SpearmanCorrelation(approx, truth), -1.0, 1e-12);
}

TEST(MetricsTest, KlGrowsWithDistributionDistortion) {
  const ContentSummary truth = MakeTruth();
  ContentSummary mild = MakeTruth();
  mild.SetWord("common", WordStats{80, 150});  // slightly distorted tf

  ContentSummary severe;
  severe.set_num_documents(100);
  severe.SetWord("common", WordStats{80, 2});
  severe.SetWord("mid", WordStats{20, 40});
  severe.SetWord("rare", WordStats{2, 200});

  const double kl_mild = KlDivergence(mild, truth);
  const double kl_severe = KlDivergence(severe, truth);
  EXPECT_GT(kl_mild, 0.0);
  EXPECT_GT(kl_severe, kl_mild);
}

TEST(MetricsTest, EmptyApproximationScoresZero) {
  const ContentSummary truth = MakeTruth();
  ContentSummary empty;
  empty.set_num_documents(100);
  EXPECT_EQ(WeightedRecall(empty, truth), 0.0);
  EXPECT_EQ(UnweightedRecall(empty, truth), 0.0);
  EXPECT_EQ(WeightedPrecision(empty, truth), 0.0);
  EXPECT_EQ(UnweightedPrecision(empty, truth), 0.0);
}

TEST(MetricsTest, EvaluateSummaryBundlesAllSix) {
  const ContentSummary truth = MakeTruth();
  const SummaryQuality q = EvaluateSummary(truth, truth);
  EXPECT_DOUBLE_EQ(q.weighted_recall, 1.0);
  EXPECT_DOUBLE_EQ(q.unweighted_recall, 1.0);
  EXPECT_DOUBLE_EQ(q.weighted_precision, 1.0);
  EXPECT_DOUBLE_EQ(q.unweighted_precision, 1.0);
  EXPECT_NEAR(q.spearman, 1.0, 1e-12);
  EXPECT_NEAR(q.kl_divergence, 0.0, 1e-12);
}

}  // namespace
}  // namespace fedsearch::summary
