#include "fedsearch/summary/content_summary.h"

#include <gtest/gtest.h>

namespace fedsearch::summary {
namespace {

TEST(ContentSummaryTest, SetAndLookup) {
  ContentSummary s;
  s.set_num_documents(100);
  s.SetWord("alpha", WordStats{10, 25});
  EXPECT_EQ(s.DocFrequency("alpha"), 10.0);
  EXPECT_EQ(s.TokenFrequency("alpha"), 25.0);
  EXPECT_EQ(s.DocFrequency("missing"), 0.0);
  EXPECT_EQ(s.vocabulary_size(), 1u);
}

TEST(ContentSummaryTest, SetWordReplacesAndTracksTotalTokens) {
  ContentSummary s;
  s.SetWord("w", WordStats{1, 5});
  s.SetWord("v", WordStats{1, 3});
  EXPECT_EQ(s.total_tokens(), 8.0);
  s.SetWord("w", WordStats{2, 1});  // replace
  EXPECT_EQ(s.total_tokens(), 4.0);
  EXPECT_EQ(s.DocFrequency("w"), 2.0);
}

TEST(ContentSummaryTest, AddWordAccumulates) {
  ContentSummary s;
  s.AddWord("w", WordStats{1, 2});
  s.AddWord("w", WordStats{3, 4});
  EXPECT_EQ(s.DocFrequency("w"), 4.0);
  EXPECT_EQ(s.TokenFrequency("w"), 6.0);
  EXPECT_EQ(s.total_tokens(), 6.0);
}

TEST(ContentSummaryTest, ProbDocDefinition) {
  // Definition 1: p(w|D) = |docs containing w| / |D|.
  ContentSummary s;
  s.set_num_documents(200);
  s.SetWord("w", WordStats{50, 80});
  EXPECT_DOUBLE_EQ(s.ProbDoc("w"), 0.25);
  EXPECT_DOUBLE_EQ(s.ProbDoc("missing"), 0.0);
}

TEST(ContentSummaryTest, ProbDocClampedToOne) {
  ContentSummary s;
  s.set_num_documents(10);
  s.SetWord("w", WordStats{15, 15});  // over-estimated df
  EXPECT_DOUBLE_EQ(s.ProbDoc("w"), 1.0);
}

TEST(ContentSummaryTest, ProbTokenDefinition) {
  // LM probabilities: p(w|D) = tf(w) / Σ tf (Section 5.3).
  ContentSummary s;
  s.set_num_documents(10);
  s.SetWord("a", WordStats{1, 30});
  s.SetWord("b", WordStats{1, 70});
  EXPECT_DOUBLE_EQ(s.ProbToken("a"), 0.3);
  EXPECT_DOUBLE_EQ(s.ProbToken("b"), 0.7);
}

TEST(ContentSummaryTest, ContainsRoundedRule) {
  // Sections 5.3/6.1: w counts as present iff round(|D|·p̂(w|D)) >= 1.
  ContentSummary s;
  s.set_num_documents(1000);
  s.SetWord("kept", WordStats{0.6, 1});     // rounds to 1
  s.SetWord("dropped", WordStats{0.4, 1});  // rounds to 0
  EXPECT_TRUE(s.ContainsRounded("kept"));
  EXPECT_FALSE(s.ContainsRounded("dropped"));
  EXPECT_FALSE(s.ContainsRounded("missing"));
}

TEST(ContentSummaryTest, MaterializeTrimsSubOneDocumentWords) {
  ContentSummary s;
  s.set_num_documents(1000);
  s.SetWord("kept", WordStats{2.0, 4});
  s.SetWord("dropped", WordStats{0.2, 1});
  const ContentSummary trimmed = ContentSummary::Materialize(s, /*trim=*/true);
  EXPECT_EQ(trimmed.vocabulary_size(), 1u);
  EXPECT_EQ(trimmed.DocFrequency("kept"), 2.0);
  const ContentSummary untrimmed =
      ContentSummary::Materialize(s, /*trim=*/false);
  EXPECT_EQ(untrimmed.vocabulary_size(), 2u);
}

TEST(ContentSummaryTest, FromIndexMatchesIndexStatistics) {
  index::InvertedIndex idx;
  idx.AddDocument({"x", "x", "y"});
  idx.AddDocument({"y", "z"});
  const ContentSummary s = ContentSummary::FromIndex(idx);
  EXPECT_EQ(s.num_documents(), 2.0);
  EXPECT_EQ(s.DocFrequency("x"), 1.0);
  EXPECT_EQ(s.TokenFrequency("x"), 2.0);
  EXPECT_EQ(s.DocFrequency("y"), 2.0);
  EXPECT_EQ(s.total_tokens(), 5.0);
}

TEST(ContentSummaryTest, AggregateCategoryIsSizeWeighted) {
  // Definition 3 / Equation 1: p̂(w|C) = Σ p̂(w|D)|D| / Σ |D|.
  ContentSummary d1;
  d1.set_num_documents(100);
  d1.SetWord("w", WordStats{50, 60});  // p = 0.5
  ContentSummary d2;
  d2.set_num_documents(300);
  d2.SetWord("w", WordStats{30, 40});  // p = 0.1
  d2.SetWord("only2", WordStats{3, 3});
  const ContentSummary c = ContentSummary::AggregateCategory({&d1, &d2});
  EXPECT_EQ(c.num_documents(), 400.0);
  // (0.5*100 + 0.1*300) / 400 = 80/400 = 0.2
  EXPECT_DOUBLE_EQ(c.ProbDoc("w"), 0.2);
  EXPECT_DOUBLE_EQ(c.DocFrequency("only2"), 3.0);
}

TEST(ContentSummaryTest, AggregateOfNothingIsEmpty) {
  const ContentSummary c = ContentSummary::AggregateCategory({});
  EXPECT_EQ(c.num_documents(), 0.0);
  EXPECT_EQ(c.vocabulary_size(), 0u);
}

TEST(ContentSummaryTest, ForEachWordVisitsAll) {
  ContentSummary s;
  s.SetWord("a", WordStats{1, 1});
  s.SetWord("b", WordStats{2, 2});
  size_t count = 0;
  s.ForEachWord([&](const std::string&, const WordStats&) { ++count; });
  EXPECT_EQ(count, 2u);
}

}  // namespace
}  // namespace fedsearch::summary
