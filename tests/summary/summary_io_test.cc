#include "fedsearch/summary/summary_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace fedsearch::summary {
namespace {

ContentSummary MakeSummary() {
  ContentSummary s;
  s.set_num_documents(1234.5);  // fractional (estimated) sizes are legal
  s.SetWord("alpha", WordStats{10.25, 30.75});
  s.SetWord("beta", WordStats{1, 2});
  s.SetWord("gamma", WordStats{0.125, 0.5});
  return s;
}

TEST(SummaryIoTest, RoundTripIsLossless) {
  const ContentSummary original = MakeSummary();
  std::stringstream buffer;
  ASSERT_TRUE(WriteSummary(original, buffer).ok());
  util::StatusOr<ContentSummary> loaded = ReadSummary(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ContentSummary& restored = loaded.value();
  EXPECT_DOUBLE_EQ(restored.num_documents(), original.num_documents());
  EXPECT_EQ(restored.vocabulary_size(), original.vocabulary_size());
  original.ForEachWord([&](const std::string& w, const WordStats& stats) {
    EXPECT_DOUBLE_EQ(restored.DocFrequency(w), stats.df) << w;
    EXPECT_DOUBLE_EQ(restored.TokenFrequency(w), stats.ctf) << w;
  });
}

TEST(SummaryIoTest, EmptySummaryRoundTrips) {
  ContentSummary empty;
  empty.set_num_documents(42);
  std::stringstream buffer;
  ASSERT_TRUE(WriteSummary(empty, buffer).ok());
  util::StatusOr<ContentSummary> loaded = ReadSummary(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().vocabulary_size(), 0u);
  EXPECT_DOUBLE_EQ(loaded.value().num_documents(), 42.0);
}

TEST(SummaryIoTest, RejectsWrongMagic) {
  std::stringstream buffer("other-format 1 10 0\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(SummaryIoTest, RejectsWrongVersion) {
  std::stringstream buffer("fedsearch-summary 99 10 0\n");
  EXPECT_FALSE(ReadSummary(buffer).ok());
}

TEST(SummaryIoTest, RejectsTruncatedBody) {
  std::stringstream buffer("fedsearch-summary 1 10 2\nalpha 1 2\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST(SummaryIoTest, RejectsNegativeStatistics) {
  std::stringstream buffer("fedsearch-summary 1 10 1\nalpha -1 2\n");
  EXPECT_FALSE(ReadSummary(buffer).ok());
}

TEST(SummaryIoTest, RejectsGarbageHeader) {
  std::stringstream buffer("");
  EXPECT_FALSE(ReadSummary(buffer).ok());
}

TEST(SummaryIoTest, RejectsNonNumericStatistics) {
  std::stringstream buffer("fedsearch-summary 1 10 1\nalpha 1x2 3\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(SummaryIoTest, RejectsOverflowingStatistics) {
  // 1e999 overflows double to inf; a summary must never carry it.
  std::stringstream buffer("fedsearch-summary 1 10 1\nalpha 1e999 3\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(SummaryIoTest, RejectsNanStatistics) {
  std::stringstream buffer("fedsearch-summary 1 10 1\nalpha nan 3\n");
  EXPECT_FALSE(ReadSummary(buffer).ok());
}

TEST(SummaryIoTest, RejectsDuplicateWords) {
  std::stringstream buffer(
      "fedsearch-summary 1 10 2\nalpha 1 2\nalpha 3 4\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("duplicate"), std::string::npos);
}

TEST(SummaryIoTest, RejectsBodyLongerThanDeclared) {
  std::stringstream buffer(
      "fedsearch-summary 1 10 1\nalpha 1 2\nbeta 3 4\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kInvalidArgument);
}

TEST(SummaryIoTest, RejectsNegativeWordCount) {
  std::stringstream buffer("fedsearch-summary 1 10 -5\n");
  const auto loaded = ReadSummary(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("word count"), std::string::npos);
}

TEST(SummaryIoTest, RejectsBadDocumentCount) {
  std::stringstream buffer("fedsearch-summary 1 -10 0\n");
  EXPECT_FALSE(ReadSummary(buffer).ok());
  std::stringstream inf_buffer("fedsearch-summary 1 1e999 0\n");
  EXPECT_FALSE(ReadSummary(inf_buffer).ok());
  std::stringstream garbage_buffer("fedsearch-summary 1 10abc 0\n");
  EXPECT_FALSE(ReadSummary(garbage_buffer).ok());
}

TEST(SummaryIoTest, FileRoundTrip) {
  const ContentSummary original = MakeSummary();
  const std::string path = ::testing::TempDir() + "/summary_io_test.fss";
  ASSERT_TRUE(SaveSummaryToFile(original, path).ok());
  const auto loaded = LoadSummaryFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().vocabulary_size(), 3u);
}

TEST(SummaryIoTest, MissingFileIsNotFound) {
  const auto loaded = LoadSummaryFromFile("/nonexistent/path/summary.fss");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::Status::Code::kNotFound);
}

}  // namespace
}  // namespace fedsearch::summary
