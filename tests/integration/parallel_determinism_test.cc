// Serving-layer determinism contract: SelectDatabases with one thread and
// with many threads must produce byte-identical SelectionOutcomes. The
// parallel path pre-forks one RNG stream per database in index order (the
// same layout the serial loop produced), writes per-index slots, and
// reduces on the calling thread — so there is nothing for a scheduler to
// perturb.
#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedSmallTestbed;

std::vector<sampling::SampleResult> CollectSamples(
    const corpus::Testbed& bed, std::vector<corpus::CategoryId>* classes) {
  sampling::QbsOptions options;
  options.target_documents = 80;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  std::vector<sampling::SampleResult> samples;
  util::Rng rng(2024);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    classes->push_back(bed.category_of(i));
  }
  return samples;
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    // Two metasearchers over identical federations, differing only in
    // thread count.
    for (size_t threads : {size_t{1}, size_t{4}}) {
      std::vector<corpus::CategoryId> classes;
      std::vector<sampling::SampleResult> samples =
          CollectSamples(bed, &classes);
      MetasearcherOptions options;
      options.num_threads = threads;
      auto* meta = new Metasearcher(&bed.hierarchy(), std::move(samples),
                                    std::move(classes), options);
      (threads == 1 ? serial_ : parallel_) = meta;
    }
    ASSERT_EQ(serial_->num_threads(), 1u);
    ASSERT_EQ(parallel_->num_threads(), 4u);
  }

  static void ExpectIdenticalOutcomes(const selection::ScoringFunction& scorer,
                                      SummaryMode mode) {
    const corpus::Testbed& bed = SharedSmallTestbed();
    for (const corpus::TestQuery& tq : bed.queries()) {
      const selection::Query q{bed.analyzer().Analyze(tq.text)};
      const auto a = serial_->SelectDatabases(q, scorer, mode);
      const auto b = parallel_->SelectDatabases(q, scorer, mode);
      EXPECT_EQ(a.shrinkage_applied, b.shrinkage_applied);
      EXPECT_EQ(a.databases_considered, b.databases_considered);
      EXPECT_EQ(a.category_fallbacks, b.category_fallbacks);
      ASSERT_EQ(a.ranking.size(), b.ranking.size());
      for (size_t i = 0; i < a.ranking.size(); ++i) {
        EXPECT_EQ(a.ranking[i].database, b.ranking[i].database);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(a.ranking[i].score, b.ranking[i].score);
      }
    }
  }

  static Metasearcher* serial_;
  static Metasearcher* parallel_;
};

Metasearcher* ParallelDeterminismTest::serial_ = nullptr;
Metasearcher* ParallelDeterminismTest::parallel_ = nullptr;

TEST_F(ParallelDeterminismTest, PlainModeCori) {
  ExpectIdenticalOutcomes(selection::CoriScorer(), SummaryMode::kPlain);
}

TEST_F(ParallelDeterminismTest, PlainModeBgloss) {
  ExpectIdenticalOutcomes(selection::BglossScorer(), SummaryMode::kPlain);
}

TEST_F(ParallelDeterminismTest, UniversalModeCori) {
  ExpectIdenticalOutcomes(selection::CoriScorer(),
                          SummaryMode::kUniversalShrinkage);
}

TEST_F(ParallelDeterminismTest, AdaptiveModeCori) {
  ExpectIdenticalOutcomes(selection::CoriScorer(),
                          SummaryMode::kAdaptiveShrinkage);
}

TEST_F(ParallelDeterminismTest, AdaptiveModeBgloss) {
  ExpectIdenticalOutcomes(selection::BglossScorer(),
                          SummaryMode::kAdaptiveShrinkage);
}

// The posterior cache is shared across modes and thread counts by design;
// after the adaptive runs above it must have absorbed repeat lookups.
TEST_F(ParallelDeterminismTest, PosteriorCacheCollectsHits) {
  const auto serial_stats = serial_->posterior_cache_stats();
  const auto parallel_stats = parallel_->posterior_cache_stats();
  EXPECT_GT(serial_stats.hits + serial_stats.misses, 0u);
  // Identical federations + identical query streams -> identical key sets.
  EXPECT_EQ(serial_stats.misses, parallel_stats.misses);
}

}  // namespace
}  // namespace fedsearch::core
