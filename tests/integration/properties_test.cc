// Parameterized property sweeps over seeds and sampler configurations:
// invariants that must hold for ANY run of the pipeline.

#include <numeric>

#include <gtest/gtest.h>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/summary/metrics.h"
#include "testing/small_testbed.h"

namespace fedsearch {
namespace {

using fedsearch::testing::SharedSmallTestbed;

// ------------------------------------------------ sampling invariants sweep

class SamplingPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t, bool>> {};

TEST_P(SamplingPropertyTest, SampleInvariantsHold) {
  const auto [seed, target_docs, freq_est] = GetParam();
  const corpus::Testbed& bed = SharedSmallTestbed();
  sampling::QbsOptions options;
  options.target_documents = target_docs;
  options.build.frequency_estimation = freq_est;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  util::Rng rng(seed);
  const size_t db_index = seed % bed.num_databases();
  const sampling::SampleResult r =
      sampler.Sample(bed.database(db_index), rng);

  // |S| is bounded by the target (plus one final batch) and the database.
  EXPECT_LE(r.sample_size,
            std::min(target_docs + options.docs_per_query,
                     bed.database(db_index).num_documents()));
  // |D̂| >= |S| always.
  EXPECT_GE(r.estimated_db_size, static_cast<double>(r.sample_size));
  // Summary df estimates are positive and bounded by |D̂|.
  r.summary.ForEachWord(
      [&](const std::string& w, const summary::WordStats& stats) {
        EXPECT_GE(stats.df, 0.0) << w;
        EXPECT_LE(stats.df, r.estimated_db_size + 1e-6) << w;
        EXPECT_GE(stats.ctf + 1e-12, stats.df * 0.0) << w;
      });
  // Every sampled word has a sample df in [1, |S|].
  for (const auto& [w, df] : r.sample_df) {
    EXPECT_GE(df, 1u) << w;
    EXPECT_LE(df, r.sample_size) << w;
  }
  // The Mandelbrot exponent of a Zipfian corpus is negative.
  EXPECT_LT(r.mandelbrot_alpha, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndConfigs, SamplingPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(40u, 80u),
                       ::testing::Bool()));

// ------------------------------------------------ shrinkage invariants sweep

class ShrinkagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShrinkagePropertyTest, ShrunkSummaryInvariantsHold) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  sampling::QbsOptions options;
  options.target_documents = 60;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  util::Rng rng(GetParam());
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    classifications.push_back(bed.category_of(i));
  }
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          classifications);

  for (size_t i = 0; i < meta.num_databases(); ++i) {
    // λ is a probability distribution with m+2 components.
    const auto& lambdas = meta.lambdas(i);
    EXPECT_EQ(lambdas.size(),
              bed.hierarchy().PathFromRoot(classifications[i]).size() + 2);
    EXPECT_NEAR(std::accumulate(lambdas.begin(), lambdas.end(), 0.0), 1.0,
                1e-9);
    for (double l : lambdas) EXPECT_GE(l, 0.0);

    // Shrinkage never removes a word: p̂_R > 0 wherever p̂ > 0, and the
    // mixture stays a probability.
    const auto& shrunk = meta.shrunk_summary(i);
    meta.plain_summary(i).ForEachWord(
        [&](const std::string& w, const summary::WordStats&) {
          const double p = shrunk.MixtureProbDoc(w);
          EXPECT_GT(p, 0.0) << w;
          EXPECT_LE(p, 1.0) << w;
        });

    // The shrunk vocabulary is a superset of the plain one.
    EXPECT_GE(shrunk.vocabulary_size(),
              meta.plain_summary(i).vocabulary_size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShrinkagePropertyTest,
                         ::testing::Values(11u, 22u, 33u));

// ------------------------------------------------ metric invariants sweep

class MetricPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MetricPropertyTest, MetricsStayInRange) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  const size_t db = GetParam();
  sampling::QbsOptions options;
  options.target_documents = 50;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  util::Rng rng(db + 1);
  const sampling::SampleResult r = sampler.Sample(bed.database(db), rng);
  const summary::ContentSummary truth =
      summary::ContentSummary::FromIndex(bed.database(db).index());
  const summary::SummaryQuality q = summary::EvaluateSummary(r.summary, truth);
  EXPECT_GE(q.weighted_recall, 0.0);
  EXPECT_LE(q.weighted_recall, 1.0);
  EXPECT_GE(q.unweighted_recall, 0.0);
  EXPECT_LE(q.unweighted_recall, 1.0);
  EXPECT_GE(q.weighted_precision, 0.0);
  EXPECT_LE(q.weighted_precision, 1.0);
  EXPECT_GE(q.unweighted_precision, 0.0);
  EXPECT_LE(q.unweighted_precision, 1.0);
  EXPECT_GE(q.spearman, -1.0);
  EXPECT_LE(q.spearman, 1.0);
  EXPECT_GE(q.kl_divergence, 0.0);
  // Weighted recall dominates unweighted recall under Zipf: samples catch
  // the frequent words first.
  EXPECT_GE(q.weighted_recall, q.unweighted_recall);
  // A sampled (unshrunk) summary has perfect precision by construction.
  EXPECT_DOUBLE_EQ(q.unweighted_precision, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Databases, MetricPropertyTest,
                         ::testing::Values(0u, 3u, 7u, 11u));

}  // namespace
}  // namespace fedsearch
