// End-to-end fault tolerance: every database is sampled through a
// FlakyDatabase decorator, two of them are completely dead, and the
// pipeline must (a) terminate, (b) finalize partial samples with honest
// health metadata, (c) stay deterministic per seed, and (d) still rank
// every database in every summary mode.

#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/corpus/topic_model.h"
#include "fedsearch/index/flaky_database.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch {
namespace {

using testing::SharedSmallTestbed;

constexpr size_t kDeadDatabases = 2;  // databases 0 and 1 never answer
constexpr double kFaultRate = 0.2;    // mixed faults for the rest
constexpr uint64_t kRunSeed = 20040613;

struct FaultyFederation {
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
};

FaultyFederation SampleThroughFaults(uint64_t seed) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  sampling::QbsOptions options;
  options.target_documents = 150;
  sampling::QbsSampler qbs(options,
                           corpus::BuildSamplerDictionary(bed.model(), 20));
  util::Rng rng(seed);
  FaultyFederation federation;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    index::LocalDatabase local(&bed.database(i));
    index::FaultProfile profile;
    if (i < kDeadDatabases) {
      profile.unavailable_rate = 1.0;
    } else {
      profile = index::FaultProfile::Mixed(kFaultRate);
    }
    index::FlakyDatabase flaky(&local, profile, seed * 7919 + i);
    util::Rng db_rng = rng.Fork();
    federation.samples.push_back(
        qbs.Sample(flaky, bed.analyzer(), db_rng));
    federation.classifications.push_back(bed.directory_category_of(i));
  }
  return federation;
}

// Built once: QBS over 12 databases under faults is the expensive part.
const FaultyFederation& SharedFaultyFederation() {
  static const FaultyFederation* federation =
      new FaultyFederation(SampleThroughFaults(kRunSeed));
  return *federation;
}

TEST(RobustnessTest, DeadDatabasesAbortWithoutLooping) {
  const FaultyFederation& federation = SharedFaultyFederation();
  for (size_t i = 0; i < kDeadDatabases; ++i) {
    const sampling::SampleResult& s = federation.samples[i];
    EXPECT_EQ(s.sample_size, 0u) << i;
    EXPECT_EQ(s.summary.vocabulary_size(), 0u) << i;
    EXPECT_EQ(s.health.outcome, sampling::SamplingOutcome::kAborted) << i;
    EXPECT_TRUE(s.health.budget_exhausted) << i;
    EXPECT_GT(s.health.transient_failures, 0u) << i;
  }
}

TEST(RobustnessTest, FlakyDatabasesStillYieldUsableSamples) {
  const FaultyFederation& federation = SharedFaultyFederation();
  for (size_t i = kDeadDatabases; i < federation.samples.size(); ++i) {
    const sampling::SampleResult& s = federation.samples[i];
    EXPECT_GT(s.sample_size, 0u) << i;
    EXPECT_GT(s.summary.vocabulary_size(), 0u) << i;
    EXPECT_NE(s.health.outcome, sampling::SamplingOutcome::kAborted) << i;
    // 20% fault rate must leave scars in the health metadata somewhere.
  }
  size_t total_failures = 0;
  for (const sampling::SampleResult& s : federation.samples) {
    total_failures += s.health.transient_failures;
  }
  EXPECT_GT(total_failures, 0u);
}

TEST(RobustnessTest, SamplingUnderFaultsIsDeterministicPerSeed) {
  const FaultyFederation& a = SharedFaultyFederation();
  const FaultyFederation b = SampleThroughFaults(kRunSeed);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i) {
    const sampling::SampleResult& sa = a.samples[i];
    const sampling::SampleResult& sb = b.samples[i];
    EXPECT_EQ(sa.sample_size, sb.sample_size) << i;
    EXPECT_EQ(sa.summary.vocabulary_size(), sb.summary.vocabulary_size())
        << i;
    EXPECT_DOUBLE_EQ(sa.estimated_db_size, sb.estimated_db_size) << i;
    EXPECT_EQ(sa.health.outcome, sb.health.outcome) << i;
    EXPECT_EQ(sa.health.transient_failures, sb.health.transient_failures)
        << i;
    EXPECT_EQ(sa.health.queries_abandoned, sb.health.queries_abandoned) << i;
    EXPECT_EQ(sa.health.documents_lost, sb.health.documents_lost) << i;
    EXPECT_DOUBLE_EQ(sa.health.simulated_backoff_ms,
                     sb.health.simulated_backoff_ms)
        << i;
    sa.summary.ForEachWord([&](const std::string& w,
                               const summary::WordStats& stats) {
      EXPECT_DOUBLE_EQ(sb.summary.DocFrequency(w), stats.df) << i << " " << w;
      EXPECT_DOUBLE_EQ(sb.summary.TokenFrequency(w), stats.ctf)
          << i << " " << w;
    });
  }
}

TEST(RobustnessTest, MetasearcherRanksEveryDatabaseInEveryMode) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  const FaultyFederation& federation = SharedFaultyFederation();
  std::vector<sampling::SampleResult> samples = federation.samples;
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          federation.classifications);
  for (size_t i = 0; i < kDeadDatabases; ++i) EXPECT_TRUE(meta.degraded(i));
  for (size_t i = kDeadDatabases; i < bed.num_databases(); ++i) {
    EXPECT_FALSE(meta.degraded(i)) << i;
  }

  selection::CoriScorer cori;
  std::vector<size_t> dead_appearances(kDeadDatabases, 0);
  for (const core::SummaryMode mode :
       {core::SummaryMode::kPlain, core::SummaryMode::kUniversalShrinkage,
        core::SummaryMode::kAdaptiveShrinkage}) {
    for (const corpus::TestQuery& tq : bed.queries()) {
      const selection::Query q{bed.analyzer().Analyze(tq.text)};
      const auto outcome = meta.SelectDatabases(q, cori, mode);
      EXPECT_EQ(outcome.category_fallbacks, kDeadDatabases);
      std::vector<bool> ranked(bed.num_databases(), false);
      for (const selection::RankedDatabase& r : outcome.ranking) {
        ranked[r.database] = true;
      }
      // Graceful degradation: a dead database is demoted, never dropped.
      // Its fallback summary is the aggregate of its category, so whenever
      // a healthy same-category database has query evidence (it is ranked),
      // the aggregate has that evidence too and the dead database must
      // appear in the ranking as well.
      for (size_t dead = 0; dead < kDeadDatabases; ++dead) {
        bool sibling_ranked = false;
        for (size_t i = kDeadDatabases; i < bed.num_databases(); ++i) {
          if (federation.classifications[i] ==
                  federation.classifications[dead] &&
              ranked[i]) {
            sibling_ranked = true;
          }
        }
        if (sibling_ranked) {
          EXPECT_TRUE(ranked[dead])
              << "dead db " << dead << " dropped, mode="
              << static_cast<int>(mode) << " query=" << tq.text;
        }
        if (ranked[dead]) ++dead_appearances[dead];
      }
    }
  }
  // Across the workload the fallback must actually fire: each dead
  // database surfaces in at least one ranking.
  for (size_t dead = 0; dead < kDeadDatabases; ++dead) {
    EXPECT_GT(dead_appearances[dead], 0u) << dead;
  }
}

}  // namespace
}  // namespace fedsearch
