// End-to-end pipeline tests: generate corpus -> sample -> shrink -> select,
// asserting the paper's headline directional results on a reduced testbed.

#include <gtest/gtest.h>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/fps_sampler.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"
#include "fedsearch/selection/rk_metric.h"
#include "fedsearch/summary/metrics.h"
#include "testing/small_testbed.h"

namespace fedsearch {
namespace {

using fedsearch::testing::SharedSmallTestbed;

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 100;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(2024);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    meta_ = new core::Metasearcher(&bed.hierarchy(), std::move(samples),
                                   std::move(classifications));
  }

  static core::Metasearcher* meta_;
};

core::Metasearcher* EndToEndTest::meta_ = nullptr;

TEST_F(EndToEndTest, ShrinkageImprovesAverageRecall) {
  // The paper's central content-summary result (Tables 4-5): shrunk
  // summaries have higher weighted and unweighted recall on average.
  const corpus::Testbed& bed = SharedSmallTestbed();
  double wr_plain = 0, wr_shrunk = 0, ur_plain = 0, ur_shrunk = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    const summary::ContentSummary truth =
        summary::ContentSummary::FromIndex(bed.database(i).index());
    const summary::ContentSummary shrunk =
        summary::ContentSummary::Materialize(meta_->shrunk_summary(i),
                                             /*trim=*/true);
    wr_plain += summary::WeightedRecall(meta_->plain_summary(i), truth);
    wr_shrunk += summary::WeightedRecall(shrunk, truth);
    ur_plain += summary::UnweightedRecall(meta_->plain_summary(i), truth);
    ur_shrunk += summary::UnweightedRecall(shrunk, truth);
  }
  EXPECT_GT(wr_shrunk, wr_plain);
  EXPECT_GT(ur_shrunk, ur_plain);
}

TEST_F(EndToEndTest, ShrinkageTradesSomePrecision) {
  // Tables 6-7: unshrunk summaries have perfect precision by construction;
  // shrinkage trades a little of it for recall but keeps it high.
  const corpus::Testbed& bed = SharedSmallTestbed();
  double up_plain = 0, up_shrunk = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    const summary::ContentSummary truth =
        summary::ContentSummary::FromIndex(bed.database(i).index());
    const summary::ContentSummary shrunk =
        summary::ContentSummary::Materialize(meta_->shrunk_summary(i), true);
    up_plain += summary::UnweightedPrecision(meta_->plain_summary(i), truth);
    up_shrunk += summary::UnweightedPrecision(shrunk, truth);
  }
  const double n = static_cast<double>(bed.num_databases());
  EXPECT_NEAR(up_plain / n, 1.0, 1e-9);
  EXPECT_LT(up_shrunk / n, 1.0);
  EXPECT_GT(up_shrunk / n, 0.5);
}

TEST_F(EndToEndTest, AdaptiveShrinkageDoesNotHurtSelectionOnAverage) {
  // Figure 4's directional claim at reduced scale: averaged over queries
  // and k, the adaptive shrinkage ranking is at least as good as plain.
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  double rk_plain = 0, rk_shrunk = 0;
  int measurements = 0;
  for (size_t qi = 0; qi < bed.queries().size(); ++qi) {
    const selection::Query q{
        bed.analyzer().Analyze(bed.queries()[qi].text)};
    std::vector<size_t> relevant(bed.num_databases());
    size_t total_relevant = 0;
    for (size_t d = 0; d < bed.num_databases(); ++d) {
      relevant[d] = bed.CountRelevant(qi, d);
      total_relevant += relevant[d];
    }
    if (total_relevant == 0) continue;
    const auto plain =
        meta_->SelectDatabases(q, cori, core::SummaryMode::kPlain);
    const auto shrunk =
        meta_->SelectDatabases(q, cori, core::SummaryMode::kAdaptiveShrinkage);
    for (size_t k = 1; k <= 5; ++k) {
      rk_plain += selection::RkScore(plain.ranking, relevant, k);
      rk_shrunk += selection::RkScore(shrunk.ranking, relevant, k);
      ++measurements;
    }
  }
  ASSERT_GT(measurements, 0);
  EXPECT_GE(rk_shrunk, rk_plain * 0.95);
}

TEST_F(EndToEndTest, AllScorersProduceUsableRankings) {
  // LM's product form zeroes out when any query word is absent from every
  // sample (the database then keeps its default score) — on this tiny
  // testbed that hits every long query, so LM is exercised over shrunk
  // summaries, whose uniform floor removes the zero products.
  const corpus::Testbed& bed = SharedSmallTestbed();
  const selection::CoriScorer cori;
  const selection::LmScorer lm;
  size_t usable_cori = 0;
  size_t usable_lm = 0;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    usable_cori +=
        meta_->SelectDatabases(q, cori, core::SummaryMode::kPlain)
                .ranking.empty()
            ? 0
            : 1;
    usable_lm +=
        meta_->SelectDatabases(q, lm, core::SummaryMode::kUniversalShrinkage)
                .ranking.empty()
            ? 0
            : 1;
  }
  EXPECT_GT(usable_cori, 0u);
  EXPECT_GT(usable_lm, 0u);
}

TEST_F(EndToEndTest, UniversalShrinkageRescuesBglossFromZeroScores) {
  // Section 6.2: bGlOSS has no smoothing, so one missing query word zeroes
  // a database's score; shrinkage fills the gap. On incomplete plain
  // summaries bGlOSS selects few or no databases for a long query; with
  // shrunk summaries it selects at least as many.
  const corpus::Testbed& bed = SharedSmallTestbed();
  const selection::BglossScorer bgloss;
  size_t plain_selected = 0;
  size_t shrunk_selected = 0;
  for (const corpus::TestQuery& tq : bed.queries()) {
    const selection::Query q{bed.analyzer().Analyze(tq.text)};
    plain_selected +=
        meta_->SelectDatabases(q, bgloss, core::SummaryMode::kPlain)
            .ranking.size();
    shrunk_selected +=
        meta_->SelectDatabases(q, bgloss,
                               core::SummaryMode::kUniversalShrinkage)
            .ranking.size();
  }
  EXPECT_GE(shrunk_selected, plain_selected);
  EXPECT_GT(shrunk_selected, 0u);
}

TEST_F(EndToEndTest, FpsPipelineProducesClassifiedFederation) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  const sampling::ProbeRuleSet rules =
      sampling::ProbeRuleSet::FromTopicModel(bed.model());
  sampling::FpsOptions options;
  options.coverage_threshold = 5;
  sampling::FpsSampler sampler(options, &rules);
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  util::Rng rng(99);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    classifications.push_back(samples.back().classification);
  }
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          std::move(classifications));
  // The FPS-derived classification feeds shrinkage end to end.
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[2].text)};
  const auto outcome =
      meta.SelectDatabases(q, cori, core::SummaryMode::kAdaptiveShrinkage);
  EXPECT_EQ(outcome.databases_considered, bed.num_databases());
}

}  // namespace
}  // namespace fedsearch
