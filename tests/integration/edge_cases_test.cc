// Failure-injection and degenerate-federation tests: configurations a
// production deployment will eventually meet (empty databases, everything
// classified at the root, a single database, queries with no analyzable
// terms) must degrade gracefully, never crash.

#include <gtest/gtest.h>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/summary/metrics.h"

namespace fedsearch {
namespace {

sampling::SampleResult MakeSyntheticSample(
    double db_size, std::vector<std::tuple<std::string, double, double>> words,
    const std::string& filler_prefix = "filler") {
  sampling::SampleResult s;
  s.estimated_db_size = db_size;
  s.sample_size = static_cast<size_t>(db_size / 10);
  s.summary.set_num_documents(db_size);
  for (const auto& [w, df, ctf] : words) {
    s.summary.SetWord(w, summary::WordStats{df, ctf});
    s.sample_df[w] = static_cast<size_t>(df / 10);
  }
  // Pad the vocabulary so the uniform category's 1/|V| stays small, as it
  // is in any real federation.
  for (int i = 0; i < 30; ++i) {
    const std::string w = filler_prefix + std::to_string(i);
    s.summary.SetWord(w, summary::WordStats{2, 3});
    s.sample_df[w] = 1;
  }
  return s;
}

class EdgeCaseTest : public ::testing::Test {
 protected:
  EdgeCaseTest() : hierarchy_(corpus::TopicHierarchy::BuildDefault()) {}

  corpus::TopicHierarchy hierarchy_;
};

TEST_F(EdgeCaseTest, FederationWithEmptySample) {
  // One database's sampling produced nothing (e.g. its interface was down
  // for the whole run); the federation must still build, and the empty
  // database must be scored from its category's aggregate summary instead
  // of silently dropping out of the ranking.
  std::vector<sampling::SampleResult> samples;
  samples.push_back(MakeSyntheticSample(100, {{"cardiac", 40, 60}}));
  samples.push_back(sampling::SampleResult{});  // empty
  const corpus::CategoryId heart =
      hierarchy_.FindByPath("Root/Health/Diseases/Heart");
  core::Metasearcher meta(&hierarchy_, std::move(samples), {heart, heart});
  EXPECT_FALSE(meta.degraded(0));
  EXPECT_TRUE(meta.degraded(1));

  selection::BglossScorer bgloss;
  const auto outcome = meta.SelectDatabases(
      selection::Query{{"cardiac"}}, bgloss, core::SummaryMode::kPlain);
  EXPECT_EQ(outcome.category_fallbacks, 1u);
  ASSERT_EQ(outcome.ranking.size(), 2u);
  // The database with real evidence outranks (or ties with) the fallback.
  EXPECT_EQ(outcome.ranking[0].database, 0u);

  // The empty database's shrunk summary still exists and is well-formed.
  const auto& lambdas = meta.lambdas(1);
  double sum = 0.0;
  for (double l : lambdas) sum += l;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(EdgeCaseTest, AllDatabasesClassifiedAtRoot) {
  // Degenerate classification (a directory with no depth): shrinkage
  // reduces to database + root + uniform components.
  std::vector<sampling::SampleResult> samples;
  samples.push_back(MakeSyntheticSample(200, {{"alpha", 50, 80}}, "f0x"));
  samples.push_back(MakeSyntheticSample(300, {{"beta", 60, 90}}, "f1x"));
  core::Metasearcher meta(&hierarchy_, std::move(samples),
                          {hierarchy_.root(), hierarchy_.root()});
  EXPECT_EQ(meta.lambdas(0).size(), 3u);  // uniform, Root, database
  selection::CoriScorer cori;
  const auto outcome =
      meta.SelectDatabases(selection::Query{{"alpha"}}, cori,
                           core::SummaryMode::kUniversalShrinkage);
  ASSERT_FALSE(outcome.ranking.empty());
  EXPECT_EQ(outcome.ranking[0].database, 0u);
}

TEST_F(EdgeCaseTest, SingleDatabaseFederation) {
  std::vector<sampling::SampleResult> samples;
  samples.push_back(MakeSyntheticSample(500, {{"gamma", 100, 200}}));
  const corpus::CategoryId soccer = hierarchy_.FindByPath("Root/Sports/Soccer");
  core::Metasearcher meta(&hierarchy_, std::move(samples), {soccer});
  // With one database, every exclusive category component is empty, so
  // EM must push the weight to the database and uniform components.
  const auto& lambdas = meta.lambdas(0);
  EXPECT_GT(lambdas.back() + lambdas.front(), 0.9);
  selection::BglossScorer bgloss;
  const auto outcome = meta.SelectDatabases(
      selection::Query{{"gamma"}}, bgloss, core::SummaryMode::kAdaptiveShrinkage);
  EXPECT_EQ(outcome.ranking.size(), 1u);
}

TEST_F(EdgeCaseTest, QueryWithNoTermsSelectsNothing) {
  std::vector<sampling::SampleResult> samples;
  samples.push_back(MakeSyntheticSample(100, {{"word", 10, 10}}));
  core::Metasearcher meta(&hierarchy_, std::move(samples),
                          {hierarchy_.root()});
  selection::CoriScorer cori;
  const auto outcome = meta.SelectDatabases(selection::Query{}, cori,
                                            core::SummaryMode::kPlain);
  EXPECT_TRUE(outcome.ranking.empty());
}

TEST_F(EdgeCaseTest, MetricsAgainstEmptyTruth) {
  // An empty database has an empty perfect summary; all metrics must be
  // well-defined (0) rather than dividing by zero.
  index::InvertedIndex empty_index;
  const summary::ContentSummary truth =
      summary::ContentSummary::FromIndex(empty_index);
  summary::ContentSummary approx;
  approx.set_num_documents(10);
  approx.SetWord("ghost", summary::WordStats{1, 1});
  const summary::SummaryQuality q = summary::EvaluateSummary(approx, truth);
  EXPECT_EQ(q.weighted_recall, 0.0);
  EXPECT_EQ(q.unweighted_recall, 0.0);
  EXPECT_EQ(q.weighted_precision, 0.0);
  EXPECT_EQ(q.unweighted_precision, 0.0);
  EXPECT_EQ(q.kl_divergence, 0.0);
}

TEST_F(EdgeCaseTest, HierarchicalSelectionOverRootOnlyFederation) {
  std::vector<sampling::SampleResult> samples;
  samples.push_back(MakeSyntheticSample(100, {{"alpha", 30, 40}}));
  core::Metasearcher meta(&hierarchy_, std::move(samples),
                          {hierarchy_.root()});
  selection::BglossScorer bgloss;
  const auto ranking =
      meta.SelectHierarchical(selection::Query{{"alpha"}}, bgloss, 3);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].database, 0u);
}

}  // namespace
}  // namespace fedsearch
