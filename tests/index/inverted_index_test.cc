#include "fedsearch/index/inverted_index.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::index {
namespace {

InvertedIndex SmallIndex() {
  InvertedIndex idx;
  idx.AddDocument({"apple", "banana", "apple"});        // doc 0
  idx.AddDocument({"banana", "cherry"});                // doc 1
  idx.AddDocument({"apple", "cherry", "date", "date"});  // doc 2
  return idx;
}

TEST(InvertedIndexTest, DocumentIdsAreDense) {
  InvertedIndex idx;
  EXPECT_EQ(idx.AddDocument({"a"}), 0u);
  EXPECT_EQ(idx.AddDocument({"b"}), 1u);
  EXPECT_EQ(idx.num_documents(), 2u);
}

TEST(InvertedIndexTest, DocumentFrequency) {
  InvertedIndex idx = SmallIndex();
  EXPECT_EQ(idx.DocumentFrequency("apple"), 2u);
  EXPECT_EQ(idx.DocumentFrequency("banana"), 2u);
  EXPECT_EQ(idx.DocumentFrequency("cherry"), 2u);
  EXPECT_EQ(idx.DocumentFrequency("date"), 1u);
  EXPECT_EQ(idx.DocumentFrequency("absent"), 0u);
}

TEST(InvertedIndexTest, CollectionFrequencyCountsOccurrences) {
  InvertedIndex idx = SmallIndex();
  EXPECT_EQ(idx.CollectionFrequency("apple"), 3u);
  EXPECT_EQ(idx.CollectionFrequency("date"), 2u);
  EXPECT_EQ(idx.total_term_occurrences(), 9u);
}

TEST(InvertedIndexTest, ConjunctiveMatchCount) {
  InvertedIndex idx = SmallIndex();
  EXPECT_EQ(idx.CountConjunctiveMatches({"apple"}), 2u);
  EXPECT_EQ(idx.CountConjunctiveMatches({"apple", "cherry"}), 1u);
  EXPECT_EQ(idx.CountConjunctiveMatches({"apple", "banana"}), 1u);
  EXPECT_EQ(idx.CountConjunctiveMatches({"banana", "date"}), 0u);
  EXPECT_EQ(idx.CountConjunctiveMatches({"apple", "absent"}), 0u);
  EXPECT_EQ(idx.CountConjunctiveMatches({}), 0u);
}

TEST(InvertedIndexTest, DuplicateQueryTermsDoNotOverCount) {
  InvertedIndex idx = SmallIndex();
  EXPECT_EQ(idx.CountConjunctiveMatches({"apple", "apple"}), 2u);
}

TEST(InvertedIndexTest, SearchTopKReturnsOnlyConjunctiveMatches) {
  InvertedIndex idx = SmallIndex();
  const auto hits = idx.SearchTopK({"apple", "cherry"}, 10);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2u);
}

TEST(InvertedIndexTest, SearchTopKHonorsK) {
  InvertedIndex idx = SmallIndex();
  EXPECT_EQ(idx.SearchTopK({"apple"}, 1).size(), 1u);
  EXPECT_EQ(idx.SearchTopK({"apple"}, 0).size(), 0u);
  EXPECT_EQ(idx.SearchTopK({"apple"}, 10).size(), 2u);
}

TEST(InvertedIndexTest, SearchTopKExcludesSeenDocuments) {
  InvertedIndex idx = SmallIndex();
  std::unordered_set<DocId> exclude = {0};
  const auto hits = idx.SearchTopK({"apple"}, 10, &exclude);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].doc, 2u);
}

TEST(InvertedIndexTest, SearchScoresFavorHigherTfShorterDocs) {
  InvertedIndex idx;
  idx.AddDocument({"target", "target", "x"});              // doc 0: dense
  idx.AddDocument({"target", "a", "b", "c", "d", "e"});    // doc 1: sparse
  const auto hits = idx.SearchTopK({"target"}, 2);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(InvertedIndexTest, SearchDeterministicTieBreakByDocId) {
  InvertedIndex idx;
  idx.AddDocument({"same", "pad"});
  idx.AddDocument({"same", "pad"});
  idx.AddDocument({"same", "pad"});
  const auto hits = idx.SearchTopK({"same"}, 3);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].doc, 0u);
  EXPECT_EQ(hits[1].doc, 1u);
  EXPECT_EQ(hits[2].doc, 2u);
}

TEST(InvertedIndexTest, ForEachTermVisitsEveryTermOnce) {
  InvertedIndex idx = SmallIndex();
  std::map<std::string, std::pair<size_t, uint64_t>> seen;
  idx.ForEachTerm([&](const std::string& term, size_t df, uint64_t ctf) {
    EXPECT_TRUE(seen.emplace(term, std::make_pair(df, ctf)).second);
  });
  EXPECT_EQ(seen.size(), 4u);
  const auto apple = std::make_pair<size_t, uint64_t>(2, 3);
  const auto date = std::make_pair<size_t, uint64_t>(1, 2);
  EXPECT_EQ(seen["apple"], apple);
  EXPECT_EQ(seen["date"], date);
}

TEST(InvertedIndexTest, ForEachPostingVisitsDocsWithTf) {
  InvertedIndex idx = SmallIndex();
  std::map<DocId, uint32_t> postings;
  idx.ForEachPosting("apple",
                     [&](DocId doc, uint32_t tf) { postings[doc] = tf; });
  EXPECT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0], 2u);
  EXPECT_EQ(postings[2], 1u);
  // Unknown term: no calls.
  idx.ForEachPosting("absent", [&](DocId, uint32_t) { FAIL(); });
}

TEST(InvertedIndexTest, EmptyDocumentIsAllowed) {
  InvertedIndex idx;
  idx.AddDocument({});
  EXPECT_EQ(idx.num_documents(), 1u);
  EXPECT_EQ(idx.vocabulary_size(), 0u);
}

}  // namespace
}  // namespace fedsearch::index
