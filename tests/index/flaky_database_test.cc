#include "fedsearch/index/flaky_database.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/index/search_interface.h"
#include "fedsearch/text/analyzer.h"
#include "fedsearch/util/retry.h"

namespace fedsearch::index {
namespace {

class FlakyDatabaseTest : public ::testing::Test {
 protected:
  FlakyDatabaseTest() : db_("flaky-under-test", &analyzer_) {
    // 40 documents; "common" in all, "half" in every other one.
    for (int i = 0; i < 40; ++i) {
      std::string text = "common payload" + std::to_string(i);
      if (i % 2 == 0) text += " half";
      db_.AddDocument(text);
    }
  }

  // One deterministic probe script: alternating queries and fetches.
  struct CallRecord {
    bool ok = false;
    util::Status::Code code = util::Status::Code::kOk;
    size_t num_matches = 0;
    std::vector<DocId> docs;
  };

  std::vector<CallRecord> RunScript(FlakyDatabase& flaky, size_t calls) {
    std::vector<CallRecord> records;
    for (size_t i = 0; i < calls; ++i) {
      CallRecord rec;
      if (i % 3 == 2) {
        const auto fetched = flaky.Fetch(static_cast<DocId>(i % 40));
        rec.ok = fetched.ok();
        rec.code = fetched.status().code();
      } else {
        const auto result = flaky.Search(i % 2 == 0 ? "common" : "half", 8);
        rec.ok = result.ok();
        rec.code = result.status().code();
        if (result.ok()) {
          rec.num_matches = result.value().num_matches;
          rec.docs = result.value().docs;
        }
      }
      records.push_back(std::move(rec));
    }
    return records;
  }

  text::Analyzer analyzer_;
  TextDatabase db_;
};

TEST_F(FlakyDatabaseTest, SameSeedProducesIdenticalFaultSequence) {
  LocalDatabase local_a(&db_), local_b(&db_);
  const FaultProfile profile = FaultProfile::Mixed(0.5);
  FlakyDatabase a(&local_a, profile, /*seed=*/1234);
  FlakyDatabase b(&local_b, profile, /*seed=*/1234);
  const auto ra = RunScript(a, 300);
  const auto rb = RunScript(b, 300);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].ok, rb[i].ok) << i;
    EXPECT_EQ(ra[i].code, rb[i].code) << i;
    EXPECT_EQ(ra[i].num_matches, rb[i].num_matches) << i;
    EXPECT_EQ(ra[i].docs, rb[i].docs) << i;
  }
  EXPECT_EQ(a.stats().unavailable, b.stats().unavailable);
  EXPECT_EQ(a.stats().timeouts, b.stats().timeouts);
  EXPECT_EQ(a.stats().rate_limits, b.stats().rate_limits);
  EXPECT_EQ(a.stats().truncations, b.stats().truncations);
  EXPECT_EQ(a.stats().corruptions, b.stats().corruptions);
}

TEST_F(FlakyDatabaseTest, DifferentSeedsProduceDifferentFaultSequences) {
  LocalDatabase local_a(&db_), local_b(&db_);
  const FaultProfile profile = FaultProfile::Mixed(0.5);
  FlakyDatabase a(&local_a, profile, /*seed=*/1);
  FlakyDatabase b(&local_b, profile, /*seed=*/2);
  const auto ra = RunScript(a, 300);
  const auto rb = RunScript(b, 300);
  size_t differing = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    if (ra[i].ok != rb[i].ok || ra[i].code != rb[i].code) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(FlakyDatabaseTest, FaultMixMatchesConfiguredRates) {
  LocalDatabase local(&db_);
  const double total_rate = 0.5;
  FlakyDatabase flaky(&local, FaultProfile::Mixed(total_rate), /*seed=*/99);
  const size_t calls = 6000;
  // Search-only script so every fault class can fire on every call.
  for (size_t i = 0; i < calls; ++i) (void)flaky.Search("common", 8);
  const FaultStats& s = flaky.stats();
  EXPECT_EQ(s.calls, calls);
  const double expected = total_rate / 5.0 * static_cast<double>(calls);
  for (const size_t count : {s.unavailable, s.timeouts, s.rate_limits,
                             s.truncations, s.corruptions}) {
    EXPECT_GT(static_cast<double>(count), expected * 0.7);
    EXPECT_LT(static_cast<double>(count), expected * 1.3);
  }
}

TEST_F(FlakyDatabaseTest, HardFaultsCarryTransientCodes) {
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.rate_limit_rate = 1.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/7);
  const auto result = flaky.Search("common", 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(),
            util::Status::Code::kResourceExhausted);
  EXPECT_TRUE(util::IsTransient(result.status()));
  // The retry-after hint travels inside the status message.
  EXPECT_DOUBLE_EQ(util::ParseRetryAfterMs(result.status()), 250.0);
}

TEST_F(FlakyDatabaseTest, TruncationKeepsAPrefixOfTheCleanResult) {
  LocalDatabase clean(&db_);
  const auto reference = clean.Search("common", 16);
  ASSERT_TRUE(reference.ok());

  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.truncation_rate = 1.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/11);
  bool saw_truncation = false;
  for (int i = 0; i < 20; ++i) {
    const auto result = flaky.Search("common", 16);
    ASSERT_TRUE(result.ok());
    const auto& docs = result.value().docs;
    ASSERT_LE(docs.size(), reference.value().docs.size());
    for (size_t j = 0; j < docs.size(); ++j) {
      EXPECT_EQ(docs[j], reference.value().docs[j]);
    }
    // num_matches is untouched by truncation.
    EXPECT_EQ(result.value().num_matches, reference.value().num_matches);
    saw_truncation |= docs.size() < reference.value().docs.size();
  }
  EXPECT_TRUE(saw_truncation);
}

TEST_F(FlakyDatabaseTest, CorruptionPerturbsMatchCounts) {
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.corruption_rate = 1.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/13);
  size_t differing = 0;
  for (int i = 0; i < 30; ++i) {
    const auto result = flaky.Search("common", 0);
    ASSERT_TRUE(result.ok());
    if (result.value().num_matches != 40u) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST_F(FlakyDatabaseTest, ZeroRateProfileIsTransparent) {
  LocalDatabase clean(&db_);
  LocalDatabase local(&db_);
  FlakyDatabase flaky(&local, FaultProfile{}, /*seed=*/5);
  const auto reference = clean.Search("half", 8);
  const auto result = flaky.Search("half", 8);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_matches, reference.value().num_matches);
  EXPECT_EQ(result.value().docs, reference.value().docs);
  EXPECT_EQ(flaky.stats().hard_faults(), 0u);
  EXPECT_EQ(flaky.stats().soft_faults(), 0u);

  const auto fetched = flaky.Fetch(3);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value()->id, 3u);
}

TEST_F(FlakyDatabaseTest, DecoratorsStack) {
  LocalDatabase local(&db_);
  FaultProfile inner_profile;
  inner_profile.corruption_rate = 1.0;
  FlakyDatabase inner(&local, inner_profile, /*seed=*/17);
  FaultProfile outer_profile;
  outer_profile.unavailable_rate = 1.0;
  FlakyDatabase outer(&inner, outer_profile, /*seed=*/19);
  // The outer decorator fails before the inner one is ever consulted.
  const auto result = outer.Search("common", 4);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::Status::Code::kUnavailable);
  EXPECT_EQ(inner.stats().calls, 0u);
}

TEST_F(FlakyDatabaseTest, SlowRepliesInflateReportedServiceTime) {
  LocalDatabase clean(&db_);
  const auto reference = clean.Search("common", 8);
  ASSERT_TRUE(reference.ok());

  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.slow_rate = 1.0;
  profile.slow_factor = 8.0;
  profile.base_service_ms = 2.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/23);
  for (int i = 0; i < 20; ++i) {
    const auto result = flaky.Search("common", 8);
    ASSERT_TRUE(result.ok());  // slow is a soft fault: the reply arrives
    // Inflation is uniform in [1, slow_factor): at least the base service
    // time, strictly below base x slow_factor.
    EXPECT_GE(result.value().service_ms, 2.0);
    EXPECT_LT(result.value().service_ms, 16.0);
    // The payload itself is untouched.
    EXPECT_EQ(result.value().docs, reference.value().docs);
    EXPECT_EQ(result.value().num_matches, reference.value().num_matches);
  }
  EXPECT_EQ(flaky.stats().slow_replies, 20u);
  EXPECT_GE(flaky.stats().simulated_service_ms, 40.0);
}

TEST_F(FlakyDatabaseTest, SlowModeIsOptInViaBaseServiceTime) {
  // Mixed() keeps slow off, and even slow_rate = 1 is transparent while
  // base_service_ms stays 0: the decorator cannot invent a service time
  // for an engine that does not model one.
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.slow_rate = 1.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/29);
  for (int i = 0; i < 10; ++i) {
    const auto result = flaky.Search("common", 8);
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(result.value().service_ms, 0.0);
  }
  EXPECT_EQ(flaky.stats().slow_replies, 0u);
  EXPECT_DOUBLE_EQ(flaky.stats().simulated_service_ms, 0.0);
  EXPECT_DOUBLE_EQ(FaultProfile::Mixed(0.5).slow_rate, 0.0);
}

TEST_F(FlakyDatabaseTest, SlowSequenceIsDeterministicPerSeed) {
  LocalDatabase local_a(&db_), local_b(&db_);
  FaultProfile profile;
  profile.slow_rate = 0.5;
  profile.base_service_ms = 1.5;
  FlakyDatabase a(&local_a, profile, /*seed=*/31);
  FlakyDatabase b(&local_b, profile, /*seed=*/31);
  std::vector<double> service_a, service_b;
  for (int i = 0; i < 200; ++i) {
    const auto ra = a.Search("common", 4);
    const auto rb = b.Search("common", 4);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    service_a.push_back(ra.value().service_ms);
    service_b.push_back(rb.value().service_ms);
  }
  EXPECT_EQ(service_a, service_b);
  EXPECT_EQ(a.stats().slow_replies, b.stats().slow_replies);
  EXPECT_GT(a.stats().slow_replies, 0u);
  // Non-slow replies still report the base service time.
  EXPECT_LT(a.stats().slow_replies, 200u);
  for (double s : service_a) EXPECT_GE(s, 1.5);
}

TEST_F(FlakyDatabaseTest, LocalDatabaseRejectsUnknownDocId) {
  LocalDatabase local(&db_);
  const auto fetched = local.Fetch(static_cast<DocId>(10000));
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), util::Status::Code::kNotFound);
}

}  // namespace
}  // namespace fedsearch::index
