#include "fedsearch/index/text_database.h"

#include <gtest/gtest.h>

namespace fedsearch::index {
namespace {

class TextDatabaseTest : public ::testing::Test {
 protected:
  TextDatabaseTest() : db_("testdb", &analyzer_) {
    db_.AddDocument("The patient showed hypertension and cardiac symptoms");
    db_.AddDocument("Cardiac surgery outcomes in hypertension patients");
    db_.AddDocument("Soccer league results and transfers");
  }

  text::Analyzer analyzer_;
  TextDatabase db_;
};

TEST_F(TextDatabaseTest, ReportsMatchesThroughAnalyzer) {
  // "hypertension" appears in docs 0 and 1.
  const QueryResult r = db_.Query("hypertension", 10);
  EXPECT_EQ(r.num_matches, 2u);
  EXPECT_EQ(r.docs.size(), 2u);
}

TEST_F(TextDatabaseTest, QueryIsConjunctive) {
  EXPECT_EQ(db_.Query("hypertension cardiac", 10).num_matches, 2u);
  EXPECT_EQ(db_.Query("hypertension soccer", 10).num_matches, 0u);
}

TEST_F(TextDatabaseTest, QueryMatchesStemVariants) {
  // "patients" stems to the same term as "patient".
  EXPECT_EQ(db_.Query("patients", 10).num_matches, 2u);
}

TEST_F(TextDatabaseTest, StopwordOnlyQueryMatchesNothing) {
  const QueryResult r = db_.Query("the and of", 10);
  EXPECT_EQ(r.num_matches, 0u);
  EXPECT_TRUE(r.docs.empty());
}

TEST_F(TextDatabaseTest, ExcludeSetSkipsResultsButKeepsCount) {
  std::unordered_set<DocId> seen = {0, 1};
  const QueryResult r = db_.Query("hypertension", 10, &seen);
  EXPECT_EQ(r.num_matches, 2u);  // count reflects the whole database
  EXPECT_TRUE(r.docs.empty());   // but nothing new to download
}

TEST_F(TextDatabaseTest, TopKZeroGivesCountOnly) {
  const QueryResult r = db_.Query("cardiac", 0);
  EXPECT_EQ(r.num_matches, 2u);
  EXPECT_TRUE(r.docs.empty());
}

TEST_F(TextDatabaseTest, FetchDocumentReturnsOriginalText) {
  const Document& d = db_.FetchDocument(2);
  EXPECT_EQ(d.id, 2u);
  EXPECT_NE(d.text.find("Soccer"), std::string::npos);
}

TEST_F(TextDatabaseTest, EvaluationAccessors) {
  EXPECT_EQ(db_.num_documents(), 3u);
  EXPECT_EQ(db_.name(), "testdb");
  EXPECT_GT(db_.index().vocabulary_size(), 0u);
}

}  // namespace
}  // namespace fedsearch::index
