#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/index/flaky_database.h"
#include "fedsearch/index/search_interface.h"
#include "fedsearch/text/analyzer.h"
#include "fedsearch/util/check.h"
#include "fedsearch/util/retry.h"

// Interplay coverage for util::RetryController driving a FlakyDatabase —
// the exact sampling-pipeline shape — with the FEDSEARCH_DCHECK invariants
// active (Debug and -DFEDSEARCH_DCHECK=ON builds). The individual units
// have their own tests; these pin the accounting invariants that only hold
// across the pair.

namespace fedsearch::index {
namespace {

class RetryFlakyTest : public ::testing::Test {
 protected:
  RetryFlakyTest() : db_("retry-flaky", &analyzer_) {
    for (int i = 0; i < 30; ++i) {
      db_.AddDocument("common text payload" + std::to_string(i));
    }
  }

  text::Analyzer analyzer_;
  TextDatabase db_;
};

TEST_F(RetryFlakyTest, ControllerAccountsEveryHardFaultExactlyOnce) {
  // Hard faults only: every fault the decorator injects must surface as
  // exactly one failed attempt in the controller — no double counting, no
  // swallowed failures.
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.unavailable_rate = 0.2;
  profile.timeout_rate = 0.15;
  FlakyDatabase flaky(&local, profile, /*seed=*/11);
  util::RetryController retry;
  size_t successes = 0;
  for (size_t i = 0; i < 60 && !retry.exhausted(); ++i) {
    const auto result =
        retry.Run([&] { return flaky.Search("common", 5); });
    if (result.ok()) ++successes;
  }
  EXPECT_GT(successes, 0u);
  EXPECT_EQ(retry.failed_attempts(), flaky.stats().hard_faults());
}

TEST_F(RetryFlakyTest, BudgetExhaustionStopsReachingTheDatabase) {
  // A dead database (100% unavailable) must not be hammered forever: once
  // the budget is spent, Run() short-circuits and the base sees no more
  // traffic — the invariant that bounds every sampling run.
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.unavailable_rate = 1.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/7);
  util::RetryOptions options;
  options.max_attempts = 3;
  options.failure_budget = 8;
  util::RetryController retry(options);

  while (!retry.exhausted()) {
    const auto result =
        retry.Run([&] { return flaky.Search("common", 5); });
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(retry.failed_attempts(), options.failure_budget);
  const size_t calls_at_exhaustion = flaky.stats().calls;
  EXPECT_EQ(calls_at_exhaustion, options.failure_budget);

  for (size_t i = 0; i < 10; ++i) {
    const auto result =
        retry.Run([&] { return flaky.Search("common", 5); });
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(),
              util::Status::Code::kResourceExhausted);
  }
  EXPECT_EQ(flaky.stats().calls, calls_at_exhaustion);
}

TEST_F(RetryFlakyTest, RateLimitHintRaisesSimulatedBackoff) {
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.rate_limit_rate = 1.0;
  profile.retry_after_ms = 500.0;
  FlakyDatabase flaky(&local, profile, /*seed=*/3);
  util::RetryOptions options;
  options.max_attempts = 2;
  options.failure_budget = 4;
  options.base_backoff_ms = 1.0;  // far below the hint
  util::RetryController retry(options);
  const auto result = retry.Run([&] { return flaky.Search("common", 5); });
  EXPECT_FALSE(result.ok());
  // Each accounted failure waits at least the server's hint.
  EXPECT_GE(retry.simulated_backoff_ms(),
            profile.retry_after_ms *
                static_cast<double>(retry.failed_attempts()));
}

TEST_F(RetryFlakyTest, SoftFaultsAreInvisibleToTheController) {
  // Truncation/corruption return ok() payloads: the controller must not
  // burn budget on them (detecting damaged payloads is the caller's job).
  LocalDatabase local(&db_);
  FaultProfile profile;
  profile.truncation_rate = 0.5;
  profile.corruption_rate = 0.5;
  FlakyDatabase flaky(&local, profile, /*seed=*/23);
  util::RetryController retry;
  for (size_t i = 0; i < 40; ++i) {
    const auto result =
        retry.Run([&] { return flaky.Search("common", 5); });
    EXPECT_TRUE(result.ok());
  }
  EXPECT_EQ(retry.failed_attempts(), 0u);
  EXPECT_EQ(retry.abandoned_calls(), 0u);
  EXPECT_GT(flaky.stats().soft_faults(), 0u);
}

TEST_F(RetryFlakyTest, FaultSequenceDeterministicAcrossRetryRuns) {
  // The retry loop re-issues calls; with identical seeds the (controller,
  // decorator) pair must replay the identical fault/success transcript —
  // the property the robustness benches and CI determinism rest on.
  const auto transcript = [&](uint64_t seed) {
    LocalDatabase local(&db_);
    FaultProfile profile = FaultProfile::Mixed(0.4);
    FlakyDatabase flaky(&local, profile, seed);
    util::RetryController retry;
    std::vector<int> codes;
    for (size_t i = 0; i < 30 && !retry.exhausted(); ++i) {
      const auto result =
          retry.Run([&] { return flaky.Search("common", 5); });
      codes.push_back(result.ok()
                          ? -1
                          : static_cast<int>(result.status().code()));
    }
    codes.push_back(static_cast<int>(retry.failed_attempts()));
    codes.push_back(static_cast<int>(flaky.stats().soft_faults()));
    return codes;
  };
  EXPECT_EQ(transcript(99), transcript(99));
  EXPECT_NE(transcript(99), transcript(100));
}

}  // namespace
}  // namespace fedsearch::index
