#include "fedsearch/sampling/qbs_sampler.h"

#include <gtest/gtest.h>

#include "fedsearch/summary/metrics.h"
#include "testing/small_testbed.h"

namespace fedsearch::sampling {
namespace {

using fedsearch::testing::SharedSmallTestbed;

QbsSampler MakeSampler(const corpus::Testbed& bed, QbsOptions options = {}) {
  return QbsSampler(options, corpus::BuildSamplerDictionary(bed.model(), 10));
}

TEST(QbsSamplerTest, ReachesTargetSampleSizeOnLargeDatabase) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 100;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng(1);
  const SampleResult r = sampler.Sample(bed.database(0), rng);
  EXPECT_GE(r.sample_size, 100u);
  EXPECT_LE(r.sample_size, 100u + options.docs_per_query);
  EXPECT_GT(r.queries_sent, 100u / options.docs_per_query - 1);
}

TEST(QbsSamplerTest, SampleSummaryIsSubsetOfDatabaseVocabulary) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 60;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng(2);
  const SampleResult r = sampler.Sample(bed.database(1), rng);
  // Without shrinkage, a sampled summary contains only real database words
  // (unweighted precision 1.0 by construction, Section 6.1).
  const summary::ContentSummary truth =
      summary::ContentSummary::FromIndex(bed.database(1).index());
  r.summary.ForEachWord(
      [&](const std::string& w, const summary::WordStats&) {
        EXPECT_GT(truth.DocFrequency(w), 0.0) << w;
      });
}

TEST(QbsSamplerTest, SampleDfNeverExceedsSampleSize) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 50;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng(3);
  const SampleResult r = sampler.Sample(bed.database(2), rng);
  for (const auto& [word, df] : r.sample_df) {
    EXPECT_LE(df, r.sample_size) << word;
    EXPECT_GE(df, 1u) << word;
  }
}

TEST(QbsSamplerTest, DeterministicGivenSeed) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 40;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng1(7), rng2(7);
  const SampleResult a = sampler.Sample(bed.database(3), rng1);
  const SampleResult b = sampler.Sample(bed.database(3), rng2);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.queries_sent, b.queries_sent);
  EXPECT_EQ(a.estimated_db_size, b.estimated_db_size);
  EXPECT_EQ(a.summary.vocabulary_size(), b.summary.vocabulary_size());
}

TEST(QbsSamplerTest, DifferentRunsDiffer) {
  // The paper averages five QBS runs per database precisely because runs
  // vary; two different seeds should produce different samples.
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 40;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng1(7), rng2(8);
  const SampleResult a = sampler.Sample(bed.database(3), rng1);
  const SampleResult b = sampler.Sample(bed.database(3), rng2);
  EXPECT_NE(a.sample_df, b.sample_df);
}

TEST(QbsSamplerTest, SamplesWholeTinyDatabaseAndStops) {
  text::Analyzer analyzer;
  index::TextDatabase tiny("tiny", &analyzer);
  tiny.AddDocument("alpha beta gamma");
  tiny.AddDocument("alpha delta");
  QbsOptions options;
  options.target_documents = 300;
  options.max_consecutive_failures = 30;
  QbsSampler sampler(options, {"alpha", "beta", "nomatch"});
  util::Rng rng(1);
  const SampleResult r = sampler.Sample(tiny, rng);
  EXPECT_EQ(r.sample_size, 2u);
  EXPECT_LE(r.estimated_db_size, 4.0);
}

TEST(QbsSamplerTest, EmptyDictionaryYieldsEmptySample) {
  text::Analyzer analyzer;
  index::TextDatabase db("db", &analyzer);
  db.AddDocument("something here");
  QbsSampler sampler(QbsOptions{}, {});
  util::Rng rng(1);
  const SampleResult r = sampler.Sample(db, rng);
  EXPECT_EQ(r.sample_size, 0u);
}

TEST(QbsSamplerTest, ClassificationLeftUnset) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  QbsOptions options;
  options.target_documents = 30;
  QbsSampler sampler = MakeSampler(bed, options);
  util::Rng rng(4);
  const SampleResult r = sampler.Sample(bed.database(0), rng);
  // QBS does not classify; the metasearcher uses the directory category.
  EXPECT_EQ(r.classification, corpus::kInvalidCategory);
}

}  // namespace
}  // namespace fedsearch::sampling
