#include "fedsearch/sampling/fps_sampler.h"

#include <gtest/gtest.h>

#include "testing/small_testbed.h"

namespace fedsearch::sampling {
namespace {

using fedsearch::testing::SharedSmallTestbed;

TEST(ProbeRuleSetTest, FromTopicModelBuildsRulesForEveryCategory) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  const ProbeRuleSet rules =
      ProbeRuleSet::FromTopicModel(bed.model(), /*single_word_rules=*/3,
                                   /*pair_rules=*/2);
  const corpus::TopicHierarchy& h = bed.hierarchy();
  for (corpus::CategoryId c = 0; c < static_cast<corpus::CategoryId>(h.size());
       ++c) {
    const auto& r = rules.RulesFor(c);
    ASSERT_EQ(r.size(), 5u) << h.PathString(c);
    for (size_t i = 0; i < 3; ++i) EXPECT_EQ(r[i].terms.size(), 1u);
    for (size_t i = 3; i < 5; ++i) EXPECT_EQ(r[i].terms.size(), 2u);
    for (const ProbeRule& rule : r) EXPECT_EQ(rule.category, c);
  }
}

TEST(ProbeRuleSetTest, RulesUseCharacteristicWords) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  const ProbeRuleSet rules = ProbeRuleSet::FromTopicModel(bed.model(), 2, 0);
  const corpus::CategoryId heart =
      bed.hierarchy().FindByPath("Root/Health/Diseases/Heart");
  const auto top = bed.model().CharacteristicWords(heart, 2);
  EXPECT_EQ(rules.RulesFor(heart)[0].terms[0], top[0]);
  EXPECT_EQ(rules.RulesFor(heart)[1].terms[0], top[1]);
}

class FpsSamplerTest : public ::testing::Test {
 protected:
  FpsSamplerTest()
      : rules_(ProbeRuleSet::FromTopicModel(SharedSmallTestbed().model())) {}

  ProbeRuleSet rules_;
};

TEST_F(FpsSamplerTest, ClassifiesDatabasesIntoTheirTopicSubtree) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  FpsOptions options;
  options.coverage_threshold = 5;
  FpsSampler sampler(options, &rules_);
  size_t in_subtree = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng rng(100 + i);
    const SampleResult r = sampler.Sample(bed.database(i), rng);
    ASSERT_NE(r.classification, corpus::kInvalidCategory);
    // The classification should land on the database's true root-to-leaf
    // path (possibly at an ancestor of the true leaf).
    const auto path = bed.hierarchy().PathFromRoot(bed.category_of(i));
    for (corpus::CategoryId c : path) {
      if (c == r.classification) {
        ++in_subtree;
        break;
      }
    }
  }
  // Probing is noisy, but the vast majority must be on-path.
  EXPECT_GE(in_subtree, bed.num_databases() - 2);
}

TEST_F(FpsSamplerTest, CollectsDocumentsWhileProbing) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  FpsSampler sampler(FpsOptions{}, &rules_);
  util::Rng rng(1);
  const SampleResult r = sampler.Sample(bed.database(0), rng);
  EXPECT_GT(r.sample_size, 10u);
  EXPECT_GT(r.queries_sent, 10u);
  EXPECT_GT(r.summary.vocabulary_size(), 100u);
  EXPECT_GE(r.estimated_db_size, static_cast<double>(r.sample_size));
}

TEST_F(FpsSamplerTest, DeterministicGivenSeed) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  FpsSampler sampler(FpsOptions{}, &rules_);
  util::Rng r1(9), r2(9);
  const SampleResult a = sampler.Sample(bed.database(4), r1);
  const SampleResult b = sampler.Sample(bed.database(4), r2);
  EXPECT_EQ(a.classification, b.classification);
  EXPECT_EQ(a.sample_size, b.sample_size);
  EXPECT_EQ(a.summary.vocabulary_size(), b.summary.vocabulary_size());
}

TEST_F(FpsSamplerTest, HighThresholdsKeepClassificationShallow) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  FpsOptions options;
  options.coverage_threshold = 1000000;  // nothing qualifies
  FpsSampler sampler(options, &rules_);
  util::Rng rng(2);
  const SampleResult r = sampler.Sample(bed.database(0), rng);
  EXPECT_EQ(r.classification, bed.hierarchy().root());
}

TEST_F(FpsSamplerTest, EmptyDatabaseClassifiesAtRoot) {
  text::Analyzer analyzer;
  index::TextDatabase empty("empty", &analyzer);
  FpsSampler sampler(FpsOptions{}, &rules_);
  util::Rng rng(3);
  const SampleResult r = sampler.Sample(empty, rng);
  EXPECT_EQ(r.classification, rules_.hierarchy().root());
  EXPECT_EQ(r.sample_size, 0u);
}

}  // namespace
}  // namespace fedsearch::sampling
