#include "fedsearch/sampling/freq_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedsearch::sampling {
namespace {

std::vector<double> SyntheticZipf(size_t n, double alpha, double beta) {
  std::vector<double> freqs;
  for (size_t r = 1; r <= n; ++r) {
    freqs.push_back(beta * std::pow(static_cast<double>(r), alpha));
  }
  return freqs;
}

TEST(FitMandelbrotTest, RecoversExactPowerLaw) {
  const MandelbrotFit fit = FitMandelbrot(SyntheticZipf(500, -1.2, 900.0));
  EXPECT_NEAR(fit.alpha, -1.2, 1e-9);
  EXPECT_NEAR(std::exp(fit.log_beta), 900.0, 1e-6);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitMandelbrotTest, FrequencyPredictsAtRank) {
  const MandelbrotFit fit = FitMandelbrot(SyntheticZipf(200, -1.0, 100.0));
  EXPECT_NEAR(fit.Frequency(1), 100.0, 1e-6);
  EXPECT_NEAR(fit.Frequency(10), 10.0, 1e-6);
}

TEST(FitMandelbrotTest, IgnoresZeroFrequencies) {
  std::vector<double> freqs = SyntheticZipf(100, -1.0, 50.0);
  freqs.push_back(0.0);
  freqs.push_back(0.0);
  const MandelbrotFit fit = FitMandelbrot(freqs);
  EXPECT_NEAR(fit.alpha, -1.0, 1e-9);
}

TEST(FitMandelbrotTest, InterleavedZerosDoNotShiftRanks) {
  // Retained entries must be ranked 1..k, not by their original index.
  // Ranking {64,32,0,16,0,8} as ranks {1,2,4,6} instead of {1,2,3,4}
  // stretches the log-rank axis and flattens the fitted slope.
  const std::vector<double> dense = {64.0, 32.0, 16.0, 8.0};
  const std::vector<double> gappy = {64.0, 32.0, 0.0, 16.0, 0.0, 8.0};
  const MandelbrotFit clean = FitMandelbrot(dense);
  const MandelbrotFit fit = FitMandelbrot(gappy);
  EXPECT_DOUBLE_EQ(fit.alpha, clean.alpha);
  EXPECT_DOUBLE_EQ(fit.log_beta, clean.log_beta);
  EXPECT_DOUBLE_EQ(fit.r_squared, clean.r_squared);
}

TEST(FitMandelbrotTest, DegenerateInputsGiveDefault) {
  EXPECT_EQ(FitMandelbrot({}).alpha, -1.0);
  EXPECT_EQ(FitMandelbrot({5.0}).alpha, -1.0);
  EXPECT_EQ(FitMandelbrot({0.0, 0.0}).alpha, -1.0);
}

TEST(ScalingModelTest, RecoversLinearScaling) {
  // alpha(|S|) = 0.05 log|S| - 1.4, log beta(|S|) = 0.9 log|S| + 0.3
  // (Equations 4a/4b).
  std::vector<Checkpoint> checkpoints;
  for (size_t s : {50u, 100u, 150u, 200u, 300u}) {
    Checkpoint c;
    c.sample_size = s;
    c.fit.alpha = 0.05 * std::log(static_cast<double>(s)) - 1.4;
    c.fit.log_beta = 0.9 * std::log(static_cast<double>(s)) + 0.3;
    checkpoints.push_back(c);
  }
  const ScalingModel model = FitScalingModel(checkpoints);
  EXPECT_NEAR(model.a1, 0.05, 1e-9);
  EXPECT_NEAR(model.a2, -1.4, 1e-9);
  EXPECT_NEAR(model.b1, 0.9, 1e-9);
  EXPECT_NEAR(model.b2, 0.3, 1e-9);

  // Extrapolation to a database of 10000 documents (Equation 5).
  const MandelbrotFit db = model.ExtrapolateTo(10000);
  EXPECT_NEAR(db.alpha, 0.05 * std::log(10000.0) - 1.4, 1e-9);
  EXPECT_NEAR(db.log_beta, 0.9 * std::log(10000.0) + 0.3, 1e-9);
}

TEST(ScalingModelTest, SingleCheckpointDegeneratesToConstant) {
  Checkpoint c;
  c.sample_size = 300;
  c.fit.alpha = -1.1;
  c.fit.log_beta = 4.0;
  const ScalingModel model = FitScalingModel({c});
  const MandelbrotFit db = model.ExtrapolateTo(100000);
  EXPECT_NEAR(db.alpha, -1.1, 1e-12);
  EXPECT_NEAR(db.log_beta, 4.0, 1e-12);
}

TEST(ScalingModelTest, EmptyCheckpointsGiveDefaults) {
  const ScalingModel model = FitScalingModel({});
  const MandelbrotFit db = model.ExtrapolateTo(1000);
  EXPECT_EQ(db.alpha, -1.0);
  EXPECT_EQ(db.log_beta, 0.0);
}

}  // namespace
}  // namespace fedsearch::sampling
