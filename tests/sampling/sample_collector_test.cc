#include "fedsearch/sampling/sample_collector.h"

#include <gtest/gtest.h>

#include "fedsearch/text/analyzer.h"

namespace fedsearch::sampling {
namespace {

class SampleCollectorTest : public ::testing::Test {
 protected:
  SampleCollectorTest() : db_("db", &analyzer_) {
    // 20 documents; "omnipresent" in all, "frequent" in half, "rare" in one.
    for (int i = 0; i < 20; ++i) {
      std::string text = "omnipresent filler" + std::to_string(i);
      if (i % 2 == 0) text += " frequent";
      if (i == 3) text += " rare";
      db_.AddDocument(text);
    }
  }

  text::Analyzer analyzer_;
  index::TextDatabase db_;
  SummaryBuildOptions options_;
};

TEST_F(SampleCollectorTest, AddDocumentsDeduplicates) {
  SampleCollector collector(&db_, &options_);
  EXPECT_EQ(collector.AddDocuments({0, 1, 2}), 3u);
  EXPECT_EQ(collector.AddDocuments({2, 3}), 1u);
  EXPECT_EQ(collector.sample_size(), 4u);
  EXPECT_TRUE(collector.seen().count(0));
}

TEST_F(SampleCollectorTest, ObservedWordsAreFirstSeenOrderAndDistinct) {
  SampleCollector collector(&db_, &options_);
  collector.AddDocuments({0, 1});
  const auto& words = collector.observed_words();
  std::unordered_set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), words.size());
  EXPECT_TRUE(unique.count("omnipres"));  // stemmed form
}

TEST_F(SampleCollectorTest, FinalizeWithoutFreqEstimationScalesProportionally) {
  SampleCollector collector(&db_, &options_);
  std::vector<index::DocId> all;
  for (index::DocId d = 0; d < 20; ++d) all.push_back(d);
  collector.AddDocuments(all);

  util::Rng rng(5);
  const SampleResult result = collector.Finalize(/*queries_sent=*/7, rng);
  EXPECT_EQ(result.sample_size, 20u);
  EXPECT_GE(result.queries_sent, 7u);  // + resample probes
  // Whole database sampled: estimate should equal the truth.
  EXPECT_NEAR(result.estimated_db_size, 20.0, 1e-9);
  // p̂(omnipresent) = 1.0 -> df estimate equals |D̂|.
  EXPECT_NEAR(result.summary.DocFrequency("omnipres"), 20.0, 1e-9);
  EXPECT_NEAR(result.summary.DocFrequency("frequent"), 10.0, 1e-9);
  EXPECT_EQ(result.sample_df.at("rare"), 1u);
}

TEST_F(SampleCollectorTest, FinalizePartialSampleEstimatesSize) {
  SampleCollector collector(&db_, &options_);
  collector.AddDocuments({0, 2, 4, 6, 8, 10, 12, 14});  // 8 even docs
  util::Rng rng(5);
  const SampleResult result = collector.Finalize(0, rng);
  EXPECT_EQ(result.sample_size, 8u);
  // Size estimate must be at least the sample and in the ballpark of 20.
  EXPECT_GE(result.estimated_db_size, 8.0);
  EXPECT_LE(result.estimated_db_size, 60.0);
}

TEST_F(SampleCollectorTest, FrequencyEstimationUsesMandelbrotRanks) {
  options_.frequency_estimation = true;
  options_.checkpoint_every = 5;
  SampleCollector collector(&db_, &options_);
  std::vector<index::DocId> all;
  for (index::DocId d = 0; d < 20; ++d) all.push_back(d);
  collector.AddDocuments(all);
  util::Rng rng(5);
  const SampleResult result = collector.Finalize(0, rng);
  EXPECT_LT(result.mandelbrot_alpha, 0.0);
  // Frequencies decrease with rank: the most frequent sampled word must
  // get a larger estimate than a singleton word.
  EXPECT_GT(result.summary.DocFrequency("omnipres"),
            result.summary.DocFrequency("rare"));
  // All estimates bounded by the estimated size.
  result.summary.ForEachWord(
      [&](const std::string&, const summary::WordStats& stats) {
        EXPECT_LE(stats.df, result.estimated_db_size + 1e-9);
        EXPECT_GE(stats.df, 0.0);
      });
}

TEST_F(SampleCollectorTest, EmptySampleFinalizesGracefully) {
  SampleCollector collector(&db_, &options_);
  util::Rng rng(5);
  const SampleResult result = collector.Finalize(0, rng);
  EXPECT_EQ(result.sample_size, 0u);
  EXPECT_EQ(result.summary.vocabulary_size(), 0u);
}

}  // namespace
}  // namespace fedsearch::sampling
