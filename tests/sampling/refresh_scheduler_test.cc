#include "fedsearch/sampling/refresh_scheduler.h"

#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::sampling {
namespace {

TEST(RefreshSchedulerTest, NonePolicyNeverPicks) {
  RefreshSchedulerOptions o;
  o.policy = RefreshPolicy::kNone;
  RefreshScheduler s(4, o);
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 4u);
}

TEST(RefreshSchedulerTest, RoundRobinRotatesAcrossEpochs) {
  RefreshSchedulerOptions o;
  o.policy = RefreshPolicy::kRoundRobin;
  RefreshScheduler s(3, o);
  // Budget of 2 per epoch: the rotation must continue where it left off,
  // so every database is reached within ceil(n / budget) epochs.
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 0u);
  EXPECT_EQ(s.PickNext(), 1u);
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 2u);
  EXPECT_EQ(s.PickNext(), 0u);
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 1u);
  EXPECT_EQ(s.PickNext(), 2u);
}

TEST(RefreshSchedulerTest, PickNextExhaustsWithinOneEpoch) {
  for (RefreshPolicy policy :
       {RefreshPolicy::kRoundRobin, RefreshPolicy::kRacing}) {
    RefreshSchedulerOptions o;
    o.policy = policy;
    RefreshScheduler s(3, o);
    s.BeginEpoch();
    std::vector<bool> seen(3, false);
    for (int slot = 0; slot < 3; ++slot) {
      const size_t db = s.PickNext();
      ASSERT_LT(db, 3u);
      EXPECT_FALSE(seen[db]) << "database picked twice in one epoch";
      seen[db] = true;
    }
    EXPECT_EQ(s.PickNext(), 3u);  // budget beyond n finds no candidate
  }
}

TEST(RefreshSchedulerTest, OptimisticPriorRacesOverUnprobedDatabases) {
  RefreshSchedulerOptions o;
  o.explore_fraction = 0.0;  // pure exploitation: fully deterministic
  RefreshScheduler s(3, o);
  // Never-probed databases share the optimistic prior; ties resolve to the
  // lowest index, so the first sweeps cover the federation in index order.
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 0u);
  s.ReportDrift(0, 0.0);
  EXPECT_EQ(s.PickNext(), 1u);
  s.ReportDrift(1, 0.0);
  s.BeginEpoch();
  // Database 2 still carries the prior (rate 1.0, age 2): it outranks the
  // two observed-quiet databases.
  EXPECT_EQ(s.PickNext(), 2u);
  s.ReportDrift(2, 0.0);
}

TEST(RefreshSchedulerTest, ExploitationFollowsObservedDriftRates) {
  RefreshSchedulerOptions o;
  o.explore_fraction = 0.0;
  RefreshScheduler s(3, o);
  // Cover everyone once, reporting very different drift.
  s.BeginEpoch();
  for (int slot = 0; slot < 3; ++slot) {
    const size_t db = s.PickNext();
    s.ReportDrift(db, db == 1 ? 0.8 : 0.05);
  }
  EXPECT_DOUBLE_EQ(s.drift_rate(1), 0.8);
  // With one probe per epoch, the fast drifter must win most slots: ages
  // grow uniformly, so staleness ratios converge to rate ratios.
  size_t picked_fast = 0;
  for (int epoch = 0; epoch < 8; ++epoch) {
    s.BeginEpoch();
    const size_t db = s.PickNext();
    ASSERT_LT(db, 3u);
    if (db == 1) ++picked_fast;
    s.ReportDrift(db, db == 1 ? 0.8 : 0.05);
  }
  EXPECT_GE(picked_fast, 6u);
}

TEST(RefreshSchedulerTest, DriftRateIsEwmaNormalizedBySpan) {
  RefreshSchedulerOptions o;
  o.explore_fraction = 0.0;
  o.ewma_alpha = 0.5;
  RefreshScheduler s(1, o);
  s.BeginEpoch();
  EXPECT_EQ(s.PickNext(), 0u);
  s.ReportDrift(0, 0.4);  // first observation over 1 epoch: rate = 0.4
  EXPECT_DOUBLE_EQ(s.drift_rate(0), 0.4);
  EXPECT_EQ(s.epochs_since_probe(0), 0u);
  // Skip an epoch, then observe 0.6 of drift accumulated over 2 epochs:
  // the per-epoch observation is 0.3, folded at alpha 0.5.
  s.BeginEpoch();
  s.BeginEpoch();
  EXPECT_EQ(s.epochs_since_probe(0), 2u);
  EXPECT_EQ(s.PickNext(), 0u);
  s.ReportDrift(0, 0.6);
  EXPECT_DOUBLE_EQ(s.drift_rate(0), 0.5 * 0.3 + 0.5 * 0.4);
}

TEST(RefreshSchedulerTest, ScheduleIsDeterministicPerSeed) {
  RefreshSchedulerOptions o;
  o.explore_fraction = 0.5;  // exercise the exploration draws
  RefreshScheduler a(6, o);
  RefreshScheduler b(6, o);
  for (int epoch = 0; epoch < 10; ++epoch) {
    a.BeginEpoch();
    b.BeginEpoch();
    for (int slot = 0; slot < 2; ++slot) {
      const size_t da = a.PickNext();
      const size_t db = b.PickNext();
      ASSERT_EQ(da, db) << "epoch " << epoch << " slot " << slot;
      const double drift = 0.1 * static_cast<double>(da);
      a.ReportDrift(da, drift);
      b.ReportDrift(db, drift);
    }
  }
}

TEST(RefreshSchedulerTest, ExplorationReachesQuietDatabases) {
  RefreshSchedulerOptions o;
  o.explore_fraction = 0.3;
  RefreshScheduler s(4, o);
  // Database 3 reports zero drift forever; with exploration on it must
  // still be probed occasionally after its first observation.
  std::vector<size_t> probes(4, 0);
  for (int epoch = 0; epoch < 60; ++epoch) {
    s.BeginEpoch();
    const size_t db = s.PickNext();
    ASSERT_LT(db, 4u);
    ++probes[db];
    s.ReportDrift(db, db == 3 ? 0.0 : 0.5);
  }
  EXPECT_GE(probes[3], 2u);
}

}  // namespace
}  // namespace fedsearch::sampling
