#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"
#include "testing/small_testbed.h"

// TSan-targeted stress coverage for the serving entry point: many threads
// calling SelectDatabases concurrently on ONE Metasearcher (shared thread
// pool, shared posterior cache, shared scoring statistics), checked
// bit-identical against a serial single-threaded reference. This is the
// documented concurrency contract of Metasearcher::SelectDatabases.

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedSmallTestbed;

struct Federation {
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
};

Federation SampleFederation() {
  const corpus::Testbed& bed = SharedSmallTestbed();
  sampling::QbsOptions options;
  options.target_documents = 60;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  Federation fed;
  util::Rng rng(4242);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    fed.samples.push_back(sampler.Sample(bed.database(i), db_rng));
    fed.classifications.push_back(bed.category_of(i));
  }
  return fed;
}

class ParallelSelectStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    {
      Federation fed = SampleFederation();
      MetasearcherOptions serial;
      serial.num_threads = 1;
      reference_ = new Metasearcher(&bed.hierarchy(), std::move(fed.samples),
                                    std::move(fed.classifications), serial);
    }
    {
      Federation fed = SampleFederation();
      MetasearcherOptions pooled;
      pooled.num_threads = 3;  // force a real worker pool even on 1-core CI
      shared_ = new Metasearcher(&bed.hierarchy(), std::move(fed.samples),
                                 std::move(fed.classifications), pooled);
    }
  }

  static void ExpectIdentical(const Metasearcher::SelectionOutcome& got,
                              const Metasearcher::SelectionOutcome& want) {
    EXPECT_EQ(got.shrinkage_applied, want.shrinkage_applied);
    EXPECT_EQ(got.category_fallbacks, want.category_fallbacks);
    ASSERT_EQ(got.ranking.size(), want.ranking.size());
    for (size_t i = 0; i < got.ranking.size(); ++i) {
      EXPECT_EQ(got.ranking[i].database, want.ranking[i].database);
      // Bit-identical, not approximately equal: the serving layer's
      // determinism guarantee.
      EXPECT_EQ(got.ranking[i].score, want.ranking[i].score);
    }
  }

  static Metasearcher* reference_;  // serial, untouched by the threads
  static Metasearcher* shared_;     // pooled, hammered concurrently
};

Metasearcher* ParallelSelectStressTest::reference_ = nullptr;
Metasearcher* ParallelSelectStressTest::shared_ = nullptr;

TEST_F(ParallelSelectStressTest,
       ConcurrentSelectDatabasesMatchesSerialReference) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  selection::LmScorer lm;
  const std::vector<const selection::ScoringFunction*> scorers = {&cori, &lm};
  const std::vector<SummaryMode> modes = {SummaryMode::kPlain,
                                          SummaryMode::kAdaptiveShrinkage,
                                          SummaryMode::kUniversalShrinkage};
  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }

  // Serial references, computed once up front on this thread.
  std::vector<Metasearcher::SelectionOutcome> expected;
  for (const selection::ScoringFunction* scorer : scorers) {
    for (SummaryMode mode : modes) {
      for (const selection::Query& q : queries) {
        expected.push_back(reference_->SelectDatabases(q, *scorer, mode));
      }
    }
  }

  constexpr size_t kCallers = 4;
  constexpr size_t kRepeats = 2;
  const size_t per_scorer = modes.size() * queries.size();
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t rep = 0; rep < kRepeats; ++rep) {
        for (size_t k = 0; k < expected.size(); ++k) {
          // Rotate the walk per caller so different (scorer, mode, query)
          // triples overlap inside the shared pool at any instant.
          const size_t at = (k + c * 5) % expected.size();
          const selection::ScoringFunction& scorer =
              *scorers[at / per_scorer];
          const SummaryMode mode = modes[(at % per_scorer) / queries.size()];
          const selection::Query& q = queries[at % queries.size()];
          ExpectIdentical(shared_->SelectDatabases(q, scorer, mode),
                          expected[at]);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();

  // The posterior cache was shared by every adaptive call: totals must be
  // consistent (every lookup accounted exactly once).
  const PosteriorCache::Stats stats = shared_->posterior_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GT(stats.hits, stats.misses);  // the workload re-visits keys
}

TEST_F(ParallelSelectStressTest, PooledSelectIsInternallyDeterministic) {
  // Same query repeated on the pooled metasearcher while other threads run
  // it too: every invocation must agree with itself run-to-run.
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto baseline =
      shared_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < 3; ++c) {
    callers.emplace_back([&] {
      for (size_t rep = 0; rep < 4; ++rep) {
        ExpectIdentical(
            shared_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage),
            baseline);
      }
    });
  }
  for (std::thread& t : callers) t.join();
}

}  // namespace
}  // namespace fedsearch::core
