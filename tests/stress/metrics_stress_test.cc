#include "fedsearch/util/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "fedsearch/util/trace.h"

// TSan-targeted stress coverage for the observability layer: concurrent
// counter/histogram updates must lose no increments, concurrent same-name
// registration must converge on one metric instance, and snapshots
// (ToJson, Percentile) must be safe while writers run. The instrumentation
// rides every hot path, so a race here is a race everywhere.

namespace fedsearch::util {
namespace {

constexpr size_t kThreads = 4;

TEST(MetricsStressTest, ConcurrentCounterIncrementsAreLossless) {
  Counter counter;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsStressTest, ConcurrentHistogramRecordsKeepExactTotals) {
  Histogram histogram;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(t * 1000 + (i % 997));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += t * 1000 + (i % 997);
    }
  }
  EXPECT_EQ(histogram.sum(), expected_sum);
  EXPECT_EQ(histogram.max(), (kThreads - 1) * 1000 + 996);
}

TEST(MetricsStressTest, ConcurrentRegistrationYieldsOneInstancePerName) {
  MetricsRegistry registry;
  std::vector<Counter*> counters(kThreads, nullptr);
  std::vector<Histogram*> histograms(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread races to register the same names, then hammers them.
      counters[t] = &registry.counter("stress.shared_count");
      histograms[t] = &registry.histogram("stress.shared_ns");
      for (int i = 0; i < 10000; ++i) {
        counters[t]->Add();
        histograms[t]->Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(counters[t], counters[0]);
    EXPECT_EQ(histograms[t], histograms[0]);
  }
  EXPECT_EQ(registry.num_metrics(), 2u);
  EXPECT_EQ(counters[0]->value(), kThreads * 10000u);
  EXPECT_EQ(histograms[0]->count(), kThreads * 10000u);
}

TEST(MetricsStressTest, SnapshotsWhileWritersRun) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("stress.live_count");
  Histogram& histogram = registry.histogram("stress.live_ns");
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string json = registry.ToJson();
      EXPECT_NE(json.find("stress.live_count"), std::string::npos);
      EXPECT_GE(histogram.Percentile(95.0), 0.0);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        counter.Add();
        histogram.Record(static_cast<uint64_t>(i % 4096));
        if (i % 512 == 0) registry.counter("stress.live_count").Add(0);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.value(), kThreads * 20000u);
  EXPECT_EQ(histogram.count(), kThreads * 20000u);
}

TEST(MetricsStressTest, TracerScopesFromManyThreadsStayConsistent) {
  Tracer tracer;
  tracer.set_enabled(true);
  constexpr size_t kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        Tracer::Scope outer("stress_outer", tracer);
        Tracer::Scope inner("stress_inner", tracer);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  EXPECT_EQ(spans.size() + tracer.dropped(),
            kThreads * kSpansPerThread * 2);
  for (const Tracer::Span& span : spans) {
    // Depth is per-thread: with one nesting level it is exactly 0 or 1.
    EXPECT_LE(span.depth, 1u);
  }
}

TEST(MetricsStressTest, TracerEnableDisableRacesWithScopes) {
  Tracer tracer;
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    bool on = false;
    while (!done.load(std::memory_order_acquire)) {
      tracer.set_enabled(on = !on);
    }
    tracer.set_enabled(false);
  });
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        Tracer::Scope scope("toggle_race", tracer);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  done.store(true, std::memory_order_release);
  toggler.join();
  // No assertion beyond TSan cleanliness and balanced depth accounting:
  // a scope that started disabled must not decrement the thread's depth.
  for (const Tracer::Span& span : tracer.snapshot()) {
    EXPECT_EQ(span.depth, 0u);
  }
}

}  // namespace
}  // namespace fedsearch::util
