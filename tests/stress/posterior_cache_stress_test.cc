#include "fedsearch/core/posterior_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

// TSan-targeted stress coverage for core::PosteriorCache: many threads
// hitting one shard (first-build vs hit races), threads spread across
// shards, and the stats counters under contention.

namespace fedsearch::core {
namespace {

TEST(PosteriorCacheStressTest, ConcurrentGetSameKeyBuildsOneGrid) {
  PosteriorCache cache(1);
  constexpr size_t kThreads = 4;
  constexpr size_t kCallsPerThread = 50;
  std::vector<std::thread> threads;
  std::vector<const DocFrequencyPosterior*> first(kThreads, nullptr);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t call = 0; call < kCallsPerThread; ++call) {
        const std::shared_ptr<const DocFrequencyPosterior> p =
            cache.Get(0, /*sample_df=*/3, /*sample_size=*/100,
                      /*db_size=*/10000.0, /*gamma=*/-2.0,
                      /*grid_points=*/32);
        if (first[t] == nullptr) first[t] = p.get();
        // Single epoch, so nothing evicts: every call returns one grid.
        EXPECT_EQ(p.get(), first[t]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(first[t], first[0]);
  EXPECT_EQ(cache.size(), 1u);
  const PosteriorCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kCallsPerThread);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(PosteriorCacheStressTest, ConcurrentGetAcrossShardsAndKeys) {
  constexpr size_t kDatabases = 8;
  constexpr size_t kThreads = 4;
  constexpr size_t kDistinctDf = 6;
  constexpr size_t kRounds = 20;
  PosteriorCache cache(kDatabases);
  std::vector<std::thread> threads;
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t db = 0; db < kDatabases; ++db) {
          const size_t df = (t + round + db) % kDistinctDf;
          const std::shared_ptr<const DocFrequencyPosterior> p =
              cache.Get(db, df, /*sample_size=*/80, /*db_size=*/5000.0,
                        /*gamma=*/-1.5, /*grid_points=*/16);
          // Support is per-key immutable; a torn/duplicate build would
          // show as an empty or inconsistent grid.
          if (p->support().empty()) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(cache.size(), kDatabases * kDistinctDf);
  const PosteriorCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds * kDatabases);
  EXPECT_EQ(stats.misses, kDatabases * kDistinctDf);
}

TEST(PosteriorCacheStressTest, EpochChurnWithLaggingReaders) {
  // One thread advances the shard's epoch (each bump evicts the previous
  // epoch's grids); reader threads keep querying a mix of the newest epoch
  // they have seen and deliberately stale ones. Grids a reader holds must
  // stay valid across evictions (shared_ptr keep-alive), and the shard
  // must never hand a stale reader a current-epoch entry.
  PosteriorCache cache(1);
  constexpr size_t kEpochs = 40;
  constexpr size_t kReaders = 3;
  std::atomic<uint64_t> published{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t now = published.load(std::memory_order_acquire);
        const uint64_t epoch = (t % 2 == 0 || now == 0) ? now : now - 1;
        const std::shared_ptr<const DocFrequencyPosterior> p =
            cache.Get(0, /*sample_df=*/2 + t, /*sample_size=*/50,
                      /*db_size=*/1000.0, /*gamma=*/-2.0, /*grid_points=*/8,
                      epoch);
        // Use the grid after the writer may have evicted it: TSan checks
        // the lifetime, the assert checks it was fully built.
        EXPECT_FALSE(p->support().empty());
      }
    });
  }
  for (uint64_t e = 1; e <= kEpochs; ++e) {
    (void)cache.Get(0, /*sample_df=*/1, /*sample_size=*/50,
                    /*db_size=*/1000.0, /*gamma=*/-2.0, /*grid_points=*/8, e);
    published.store(e, std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  const PosteriorCache::Stats stats = cache.stats();
  EXPECT_GE(stats.evictions, kEpochs - 1);
}

TEST(PosteriorCacheStressTest, SizeSnapshotsWhileWritersRun) {
  PosteriorCache cache(4);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    size_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const size_t now = cache.size();
      EXPECT_GE(now, last);  // single epoch: no eviction, growth only
      last = now;
    }
  });
  for (size_t df = 0; df < 30; ++df) {
    for (size_t db = 0; db < 4; ++db) {
      (void)cache.Get(db, df, /*sample_size=*/64, /*db_size=*/2000.0,
                      /*gamma=*/-2.0, /*grid_points=*/8);
    }
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(cache.size(), 4u * 30u);
}

}  // namespace
}  // namespace fedsearch::core
