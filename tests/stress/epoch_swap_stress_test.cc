#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fedsearch/core/live_metasearcher.h"
#include "fedsearch/corpus/churn.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/bgloss.h"
#include "testing/churn_testbed.h"

// TSan-targeted coverage of the epoch-versioned summary swap: reader
// threads score queries through LiveMetasearcher::Snapshot while a writer
// thread publishes new epochs from churned re-probes. The assertions are
// the RCU contract itself — no torn reads (every ranking a reader computes
// is bit-identical to a serial run pinned at the epoch the reader
// observed), snapshots stay valid after being superseded, and the shared
// posterior cache never leaks one epoch's grids into another's scores.

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedChurnTestbed;

using Ranking = std::vector<std::pair<size_t, double>>;

Ranking Rank(const Metasearcher& meta, const selection::Query& query,
             const selection::ScoringFunction& scorer) {
  const auto outcome =
      meta.SelectDatabases(query, scorer, SummaryMode::kAdaptiveShrinkage);
  Ranking ranking;
  for (const auto& r : outcome.ranking) {
    ranking.emplace_back(r.database, r.score);
  }
  return ranking;
}

TEST(EpochSwapStressTest, ReadersSeeConsistentEpochsUnderPublication) {
  const corpus::Testbed& bed = SharedChurnTestbed();
  constexpr size_t kEpochs = 6;
  constexpr size_t kReaders = 3;

  // --- Precompute the refresh schedule (deterministic, single-threaded).
  // Epoch e re-probes the databases the churn scenario changed at epoch e.
  corpus::ChurnTestbed churn(&bed);
  sampling::QbsOptions qbs;
  qbs.target_documents = 60;
  sampling::QbsSampler sampler(qbs,
                               corpus::BuildSamplerDictionary(bed.model(), 10));
  std::vector<sampling::SampleResult> initial;
  std::vector<corpus::CategoryId> classifications;
  {
    util::Rng rng(77);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      initial.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
  }
  std::vector<std::vector<SummaryUpdate>> refreshes;  // [epoch - 1]
  {
    util::Rng rng(4242);
    for (size_t e = 1; e <= kEpochs; ++e) {
      std::vector<SummaryUpdate> updates;
      for (size_t db : churn.AdvanceEpoch()) {
        SummaryUpdate u;
        u.database = db;
        util::Rng db_rng = rng.Fork();
        u.sample = sampler.Sample(churn.live_database(db), db_rng);
        u.classification = bed.category_of(db);
        updates.push_back(std::move(u));
      }
      refreshes.push_back(std::move(updates));
    }
  }

  // --- Serial ground truth: the ranking of every (epoch, query) pair,
  // computed by one thread applying the same refreshes to its own
  // LiveMetasearcher (scores are posterior-cache-independent, so a
  // different cache instance must not matter).
  selection::BglossScorer bgloss;
  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }
  std::vector<std::vector<Ranking>> expected(kEpochs + 1);  // [epoch][query]
  {
    LiveMetasearcher serial(&bed.hierarchy(), initial, classifications);
    for (size_t e = 0; e <= kEpochs; ++e) {
      if (e > 0) ASSERT_TRUE(serial.ApplyRefresh(refreshes[e - 1]).ok());
      const std::shared_ptr<const Metasearcher> snap = serial.Snapshot();
      for (const selection::Query& q : queries) {
        expected[e].push_back(Rank(*snap, q, bgloss));
      }
    }
  }

  // --- Concurrent run: readers hammer Snapshot()->SelectDatabases while
  // the writer publishes the same refresh sequence.
  LiveMetasearcher live(&bed.hierarchy(), initial, classifications);
  std::atomic<bool> done{false};
  std::atomic<size_t> checked{0};
  std::atomic<size_t> torn{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t qi = t;  // stagger query choice across readers
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const Metasearcher> snap = live.Snapshot();
        const SummaryEpoch e = snap->epoch();
        const selection::Query& q = queries[qi % queries.size()];
        const Ranking got = Rank(*snap, q, bgloss);
        // Bit-identical to the serial run pinned at the observed epoch:
        // a torn swap, a cross-epoch cache grid, or a summary mutated
        // mid-score would all break exact equality.
        if (got != expected[e][qi % queries.size()]) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        checked.fetch_add(1, std::memory_order_relaxed);
        ++qi;
      }
    });
  }
  std::vector<std::shared_ptr<const Metasearcher>> retired;
  for (size_t e = 1; e <= kEpochs; ++e) {
    retired.push_back(live.Snapshot());  // superseded snapshots stay usable
    ASSERT_TRUE(live.ApplyRefresh(refreshes[e - 1]).ok());
  }
  // Let readers overlap the final epoch too, then stop them.
  while (checked.load(std::memory_order_acquire) < kReaders * (kEpochs + 2)) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GE(checked.load(), kReaders * (kEpochs + 2));
  EXPECT_EQ(live.epoch(), kEpochs);

  // Retired snapshots are still fully scoreable after every swap.
  for (size_t i = 0; i < retired.size(); ++i) {
    const SummaryEpoch e = retired[i]->epoch();
    EXPECT_EQ(Rank(*retired[i], queries[0], bgloss), expected[e][0]);
  }
}

}  // namespace
}  // namespace fedsearch::core
