#include "fedsearch/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

// TSan-targeted stress coverage for util::ThreadPool: concurrent
// ParallelFor callers sharing one pool (the Metasearcher's concurrent
// SelectDatabases shape), the shutdown handshake, and rapid
// generation turnover. Sizes are kept small — the suite also runs under
// ThreadSanitizer on small CI machines.

namespace fedsearch::util {
namespace {

TEST(ThreadPoolStressTest, ConcurrentCallersGetDisjointCorrectResults) {
  // Regression for the shared-pool race: before ParallelFor serialized
  // concurrent callers internally, two callers would clobber each other's
  // fn_/count_/generation_ handshake — workers could drain caller A's loop
  // with caller B's fn (corrupting slots) or read fn_ after A reset it.
  ThreadPool pool(4);
  constexpr size_t kCallers = 4;
  constexpr size_t kIterations = 25;
  constexpr size_t kCount = 64;

  std::vector<std::thread> callers;
  std::vector<size_t> bad_slots(kCallers, 0);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<size_t> slots(kCount);
      for (size_t iter = 0; iter < kIterations; ++iter) {
        const size_t base = c * 1000000 + iter * 1000;
        pool.ParallelFor(kCount,
                         [&](size_t i) { slots[i] = base + i; });
        for (size_t i = 0; i < kCount; ++i) {
          if (slots[i] != base + i) ++bad_slots[c];
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(bad_slots[c], 0u) << "caller " << c;
  }
}

TEST(ThreadPoolStressTest, EveryIndexRunsExactlyOnceUnderContention) {
  ThreadPool pool(3);
  constexpr size_t kCallers = 3;
  constexpr size_t kCount = 97;  // not a multiple of the thread count
  std::vector<std::thread> callers;
  std::atomic<size_t> failures{0};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      for (size_t iter = 0; iter < 20; ++iter) {
        std::vector<std::atomic<int>> runs(kCount);
        pool.ParallelFor(kCount, [&](size_t i) {
          runs[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (size_t i = 0; i < kCount; ++i) {
          if (runs[i].load(std::memory_order_relaxed) != 1) ++failures;
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(ThreadPoolStressTest, RapidConstructDestroyShutdownHandshake) {
  // Hammers the destructor path: workers parked on the condition variable
  // must observe stop_ and join without leaking or racing the notifier,
  // including when the pool did no work at all.
  for (size_t round = 0; round < 40; ++round) {
    ThreadPool pool(4);
    if (round % 2 == 0) {
      std::atomic<size_t> sum{0};
      pool.ParallelFor(16, [&](size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      EXPECT_EQ(sum.load(), 16u * 15u / 2u);
    }
    // Odd rounds: destroy immediately with workers still parked.
  }
}

TEST(ThreadPoolStressTest, ManyGenerationsSingleCaller) {
  // Generation-counter turnover: a worker that misses a notify must still
  // observe the bumped generation on the next wait predicate evaluation.
  ThreadPool pool(2);
  std::vector<int> slots(8, 0);
  for (size_t gen = 0; gen < 500; ++gen) {
    pool.ParallelFor(slots.size(), [&](size_t i) { slots[i] += 1; });
  }
  for (int v : slots) EXPECT_EQ(v, 500);
}

}  // namespace
}  // namespace fedsearch::util
