// TSan-targeted stress coverage for tracing on the serving path: many
// threads calling SelectDatabases concurrently on one Metasearcher with
// the global tracer ENABLED and per-caller trace contexts threaded
// through. Two contracts under test:
//   * tracing is observational — rankings stay bit-identical to a serial
//     reference computed with tracing disabled;
//   * the tracer itself is race-free under concurrent Scope exits,
//     EmitSpan calls, and snapshot() readers (TSan checks this for us).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/util/trace.h"
#include "testing/small_testbed.h"

namespace fedsearch::core {
namespace {

using fedsearch::testing::SharedSmallTestbed;

struct Federation {
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
};

Federation SampleFederation() {
  const corpus::Testbed& bed = SharedSmallTestbed();
  sampling::QbsOptions options;
  options.target_documents = 60;
  sampling::QbsSampler sampler(
      options, corpus::BuildSamplerDictionary(bed.model(), 10));
  Federation fed;
  util::Rng rng(4242);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    fed.samples.push_back(sampler.Sample(bed.database(i), db_rng));
    fed.classifications.push_back(bed.category_of(i));
  }
  return fed;
}

class TraceStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    {
      Federation fed = SampleFederation();
      MetasearcherOptions serial;
      serial.num_threads = 1;
      reference_ = new Metasearcher(&bed.hierarchy(), std::move(fed.samples),
                                    std::move(fed.classifications), serial);
    }
    {
      Federation fed = SampleFederation();
      MetasearcherOptions pooled;
      pooled.num_threads = 3;
      shared_ = new Metasearcher(&bed.hierarchy(), std::move(fed.samples),
                                 std::move(fed.classifications), pooled);
    }
  }

  static void ExpectIdentical(const Metasearcher::SelectionOutcome& got,
                              const Metasearcher::SelectionOutcome& want) {
    EXPECT_EQ(got.shrinkage_applied, want.shrinkage_applied);
    EXPECT_EQ(got.category_fallbacks, want.category_fallbacks);
    ASSERT_EQ(got.ranking.size(), want.ranking.size());
    for (size_t i = 0; i < got.ranking.size(); ++i) {
      EXPECT_EQ(got.ranking[i].database, want.ranking[i].database);
      EXPECT_EQ(got.ranking[i].score, want.ranking[i].score);
    }
  }

  static Metasearcher* reference_;  // serial, traced-off reference
  static Metasearcher* shared_;     // pooled, hammered with tracing on
};

Metasearcher* TraceStressTest::reference_ = nullptr;
Metasearcher* TraceStressTest::shared_ = nullptr;

TEST_F(TraceStressTest, TracingDoesNotPerturbConcurrentSelection) {
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const std::vector<SummaryMode> modes = {SummaryMode::kPlain,
                                          SummaryMode::kAdaptiveShrinkage};
  std::vector<selection::Query> queries;
  for (const corpus::TestQuery& tq : bed.queries()) {
    queries.push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
  }

  // Serial references with tracing disabled (the default).
  ASSERT_FALSE(util::Tracer::Global().enabled());
  std::vector<Metasearcher::SelectionOutcome> expected;
  for (SummaryMode mode : modes) {
    for (const selection::Query& q : queries) {
      expected.push_back(reference_->SelectDatabases(q, cori, mode));
    }
  }

  util::Tracer::Global().set_enabled(true);
  util::Tracer::Global().Clear();

  constexpr size_t kCallers = 4;
  constexpr size_t kRepeats = 2;
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (size_t rep = 0; rep < kRepeats; ++rep) {
        for (size_t k = 0; k < expected.size(); ++k) {
          const size_t at = (k + c * 5) % expected.size();
          const SummaryMode mode = modes[at / queries.size()];
          const selection::Query& q = queries[at % queries.size()];
          // Each call gets its own trace, as the broker would thread one.
          const util::TraceContext trace =
              util::Tracer::Global().StartTrace();
          ExpectIdentical(
              shared_->SelectDatabases(q, cori, mode, nullptr, trace),
              expected[at]);
        }
      }
    });
  }
  // A concurrent reader exporting while callers record: snapshot() and
  // ToPerfettoJson() must be safe against in-flight writes.
  std::thread reader([&] {
    for (size_t i = 0; i < 8; ++i) {
      (void)util::Tracer::Global().snapshot().size();
      (void)util::Tracer::Global().ToPerfettoJson();
    }
  });
  for (std::thread& t : callers) t.join();
  reader.join();

  // Spans were recorded, and every select_databases span landed in the
  // trace its caller started (no cross-thread context bleed).
  size_t select_spans = 0;
  for (const util::Tracer::Span& span : util::Tracer::Global().snapshot()) {
    if (std::string(span.name) == "select_databases") {
      ++select_spans;
      EXPECT_NE(span.trace_id, 0u);
    }
  }
  EXPECT_EQ(select_spans, kCallers * kRepeats * expected.size());

  util::Tracer::Global().set_enabled(false);
  util::Tracer::Global().Clear();
}

TEST_F(TraceStressTest, CapacityPressureUnderConcurrencyStaysConsistent) {
  // A tiny capacity under concurrent recording: drops must be counted,
  // never torn writes or lost accounting (spans + conservation of calls).
  const corpus::Testbed& bed = SharedSmallTestbed();
  selection::CoriScorer cori;
  const selection::Query q{bed.analyzer().Analyze(bed.queries()[0].text)};
  const auto baseline =
      reference_->SelectDatabases(q, cori, SummaryMode::kAdaptiveShrinkage);

  util::Tracer::Global().set_enabled(true);
  util::Tracer::Global().Clear();
  util::Tracer::Global().set_capacity(64);

  std::vector<std::thread> callers;
  for (size_t c = 0; c < 3; ++c) {
    callers.emplace_back([&] {
      for (size_t rep = 0; rep < 4; ++rep) {
        const util::TraceContext trace = util::Tracer::Global().StartTrace();
        ExpectIdentical(shared_->SelectDatabases(
                            q, cori, SummaryMode::kAdaptiveShrinkage,
                            nullptr, trace),
                        baseline);
      }
    });
  }
  for (std::thread& t : callers) t.join();

  EXPECT_LE(util::Tracer::Global().snapshot().size(), 64u);

  util::Tracer::Global().set_capacity(65536);
  util::Tracer::Global().set_enabled(false);
  util::Tracer::Global().Clear();
}

}  // namespace
}  // namespace fedsearch::core
