// TSan-targeted hammering of the QueryBroker: concurrent submitters racing
// the worker pool, Submit racing Shutdown, and clean shutdown with a
// non-empty queue. Assertions are deliberately coarse (accounting
// completeness, terminal dispositions) — the broker's numeric determinism
// is pinned by the unit tests; this binary exists to give the sanitizer
// real interleavings to chew on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "fedsearch/broker/query_broker.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "testing/small_testbed.h"

namespace fedsearch::broker {
namespace {

using fedsearch::testing::SharedSmallTestbed;

class BrokerStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const corpus::Testbed& bed = SharedSmallTestbed();
    sampling::QbsOptions options;
    options.target_documents = 60;
    sampling::QbsSampler sampler(
        options, corpus::BuildSamplerDictionary(bed.model(), 10));
    std::vector<sampling::SampleResult> samples;
    std::vector<corpus::CategoryId> classifications;
    util::Rng rng(21);
    for (size_t i = 0; i < bed.num_databases(); ++i) {
      util::Rng db_rng = rng.Fork();
      samples.push_back(sampler.Sample(bed.database(i), db_rng));
      classifications.push_back(bed.category_of(i));
    }
    core::MetasearcherOptions meta_options;
    meta_options.num_threads = 1;
    meta_ = new core::Metasearcher(&bed.hierarchy(), std::move(samples),
                                   std::move(classifications), meta_options);
    queries_ = new std::vector<selection::Query>();
    for (const corpus::TestQuery& tq : bed.queries()) {
      queries_->push_back(selection::Query{bed.analyzer().Analyze(tq.text)});
    }
  }

  static core::Metasearcher* meta_;
  static std::vector<selection::Query>* queries_;
};

core::Metasearcher* BrokerStressTest::meta_ = nullptr;
std::vector<selection::Query>* BrokerStressTest::queries_ = nullptr;

TEST_F(BrokerStressTest, ConcurrentSubmittersVersusWorkers) {
  BrokerOptions options;
  options.num_workers = 4;
  options.max_batch = 4;
  options.deadline_ms = 5.0;
  options.admission.queue_capacity = 32;
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, options);

  constexpr size_t kSubmitters = 4;
  constexpr size_t kPerSubmitter = 150;
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&broker, t] {
      // Each submitter walks its own (overlapping) arrival clock; the
      // broker clamps concurrent arrivals onto one monotone virtual clock.
      for (size_t i = 0; i < kPerSubmitter; ++i) {
        const double arrival_ms =
            static_cast<double>(i) * 0.7 + static_cast<double>(t) * 0.1;
        const double inflation = (i % 11 == 0) ? 6.0 : 1.0;
        broker.Submit((*queries_)[(i + t) % queries_->size()], arrival_ms,
                      inflation);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  broker.Drain();
  const BrokerStats stats = broker.ComputeStats();  // CHECKs nothing pending
  EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.resolved(), kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.cancelled, 0u);
  for (const RequestResult& r : broker.results()) {
    if (r.admitted()) {
      EXPECT_LE(r.e2e_ms(), options.deadline_ms + 1e-9);
    }
  }
  broker.Shutdown();
}

TEST_F(BrokerStressTest, CleanShutdownWithANonEmptyQueue) {
  BrokerOptions options;
  options.num_workers = 2;
  options.deadline_ms = 10000.0;  // nothing expires; the queue just grows
  options.admission.queue_capacity = 4096;
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, options);
  // Burst far more work than two workers can drain before Shutdown lands.
  constexpr size_t kBurst = 1500;
  for (size_t i = 0; i < kBurst; ++i) {
    broker.Submit((*queries_)[i % queries_->size()],
                  static_cast<double>(i) * 0.001);
  }
  broker.Shutdown();  // no Drain: most of the burst is still queued
  const BrokerStats stats = broker.ComputeStats();
  EXPECT_EQ(stats.submitted, kBurst);
  EXPECT_EQ(stats.resolved(), kBurst);  // served or cancelled, never lost
  EXPECT_EQ(stats.shed(), 0u);
  EXPECT_EQ(stats.expired(), 0u);
}

TEST_F(BrokerStressTest, SubmittersRacingShutdown) {
  BrokerOptions options;
  options.num_workers = 3;
  options.deadline_ms = 50.0;
  const selection::CoriScorer cori;
  QueryBroker broker(meta_, &cori, options);

  std::atomic<size_t> submitted{0};
  constexpr size_t kSubmitters = 3;
  constexpr size_t kPerSubmitter = 200;
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&broker, &submitted, t] {
      for (size_t i = 0; i < kPerSubmitter; ++i) {
        broker.Submit((*queries_)[(i + t) % queries_->size()],
                      static_cast<double>(i) * 0.05);
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Shut down while the submitters are mid-flight: late Submits must
  // resolve as cancelled instead of crashing or hanging.
  while (submitted.load(std::memory_order_relaxed) < kSubmitters * 20) {
  }
  broker.Shutdown();
  for (std::thread& t : submitters) t.join();
  const BrokerStats stats = broker.ComputeStats();
  EXPECT_EQ(stats.submitted, kSubmitters * kPerSubmitter);
  EXPECT_EQ(stats.resolved(), kSubmitters * kPerSubmitter);
}

}  // namespace
}  // namespace fedsearch::broker
