#include "fedsearch/util/retry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fedsearch/util/trace.h"

namespace fedsearch::util {
namespace {

StatusOr<int> OkCall() { return 42; }

TEST(RetryControllerTest, SuccessPassesThroughWithoutAccounting) {
  RetryController retry;
  const StatusOr<int> r = retry.Run(OkCall);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(retry.failed_attempts(), 0u);
  EXPECT_EQ(retry.abandoned_calls(), 0u);
  EXPECT_DOUBLE_EQ(retry.simulated_backoff_ms(), 0.0);
  EXPECT_FALSE(retry.exhausted());
}

TEST(RetryControllerTest, RetriesTransientFailuresUntilSuccess) {
  RetryController retry;
  size_t invocations = 0;
  const StatusOr<int> r = retry.Run([&]() -> StatusOr<int> {
    if (++invocations < 3) return Status::Unavailable("down");
    return 7;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(invocations, 3u);
  EXPECT_EQ(retry.failed_attempts(), 2u);
  EXPECT_EQ(retry.abandoned_calls(), 0u);
  EXPECT_GT(retry.simulated_backoff_ms(), 0.0);
}

TEST(RetryControllerTest, NonTransientErrorsAreNotRetried) {
  RetryController retry;
  size_t invocations = 0;
  const StatusOr<int> r = retry.Run([&]() -> StatusOr<int> {
    ++invocations;
    return Status::InvalidArgument("bad query");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(invocations, 1u);
  EXPECT_EQ(retry.failed_attempts(), 0u);
}

TEST(RetryControllerTest, AbandonsAfterMaxAttempts) {
  RetryOptions options;
  options.max_attempts = 3;
  RetryController retry(options);
  size_t invocations = 0;
  const StatusOr<int> r = retry.Run([&]() -> StatusOr<int> {
    ++invocations;
    return Status::DeadlineExceeded("slow");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(invocations, 3u);
  EXPECT_EQ(retry.failed_attempts(), 3u);
  EXPECT_EQ(retry.abandoned_calls(), 1u);
}

TEST(RetryControllerTest, BudgetExhaustionStopsIssuingCalls) {
  RetryOptions options;
  options.max_attempts = 2;
  options.failure_budget = 5;
  RetryController retry(options);
  size_t invocations = 0;
  const auto failing = [&]() -> StatusOr<int> {
    ++invocations;
    return Status::Unavailable("down");
  };
  // Each call burns up to max_attempts failures; the budget caps the total.
  // Run for the side effect only: each call burns failure budget.
  while (!retry.exhausted()) (void)retry.Run(failing);
  EXPECT_GE(retry.failed_attempts(), options.failure_budget);
  // Every path observes the budget: once exhausted, Run refuses to invoke.
  const size_t invocations_before = invocations;
  const StatusOr<int> refused = retry.Run(failing);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(invocations, invocations_before);
}

TEST(RetryControllerTest, BackoffGrowsAndIsBounded) {
  RetryOptions options;
  options.max_attempts = 20;
  options.failure_budget = 100;
  options.base_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 100.0;
  options.jitter_fraction = 0.0;  // deterministic schedule for the bound
  RetryController retry(options);
  (void)retry.Run(
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); });
  // 20 attempts: 10+20+40+80 then 16 x 100 (capped) = 1750.
  EXPECT_DOUBLE_EQ(retry.simulated_backoff_ms(), 1750.0);
}

TEST(RetryControllerTest, RespectsRetryAfterHint) {
  RetryOptions options;
  options.max_attempts = 2;
  options.base_backoff_ms = 1.0;
  options.max_backoff_ms = 2.0;
  RetryController retry(options);
  (void)retry.Run([&]() -> StatusOr<int> {
    return Status::ResourceExhausted("throttled; retry_after_ms=500");
  });
  // Two failed attempts, each waiting at least the hinted 500ms.
  EXPECT_GE(retry.simulated_backoff_ms(), 1000.0);
}

TEST(RetryControllerTest, JitterIsDeterministicPerSeed) {
  RetryOptions options;
  options.max_attempts = 4;
  const auto run_once = [&options] {
    RetryController retry(options);
    (void)retry.Run(
        [&]() -> StatusOr<int> { return Status::Unavailable("down"); });
    return retry.simulated_backoff_ms();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(RetryControllerTest, DeadlineStopsARetryLoopThatOvershotItsBudget) {
  // Regression: with the BackoffGrowsAndIsBounded schedule (10, 20, 40,
  // 80, then 100s) a dead database used to accrue 1750ms of simulated
  // backoff regardless of the caller's budget. With a 50ms deadline
  // attached, the loop must stop at the first wait it cannot afford.
  RetryOptions options;
  options.max_attempts = 20;
  options.base_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 100.0;
  options.jitter_fraction = 0.0;
  RetryController retry(options);
  Deadline deadline(50.0);
  retry.set_deadline(&deadline);
  size_t invocations = 0;
  const StatusOr<int> r = retry.Run([&]() -> StatusOr<int> {
    ++invocations;
    return Status::Unavailable("down");
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded);
  // Waits taken: 10 + 20; the 40ms third wait would cross the 50ms budget
  // and is not accrued — the deadline is never overshot in simulated time.
  EXPECT_EQ(invocations, 3u);
  EXPECT_EQ(retry.failed_attempts(), 3u);
  EXPECT_EQ(retry.abandoned_calls(), 1u);
  EXPECT_DOUBLE_EQ(retry.simulated_backoff_ms(), 30.0);
  EXPECT_DOUBLE_EQ(deadline.consumed_ms(), 30.0);
  EXPECT_FALSE(deadline.expired());
}

TEST(RetryControllerTest, ExpiredDeadlineShortCircuitsWithoutInvoking) {
  RetryController retry;
  Deadline deadline(0.0);
  retry.set_deadline(&deadline);
  size_t invocations = 0;
  const StatusOr<int> r =
      retry.Run([&]() -> StatusOr<int> { return ++invocations; });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(invocations, 0u);
}

TEST(RetryControllerTest, SuccessUnderDeadlineChargesNothing) {
  RetryController retry;
  Deadline deadline(5.0);
  retry.set_deadline(&deadline);
  const StatusOr<int> r = retry.Run(OkCall);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(deadline.consumed_ms(), 0.0);
}

TEST(RetryControllerTest, NoDeadlineKeepsTheLegacyAccounting) {
  // The unbounded path must stay bit-identical to pre-deadline builds:
  // same schedule as DeadlineStopsARetryLoop..., no deadline attached.
  RetryOptions options;
  options.max_attempts = 20;
  options.base_backoff_ms = 10.0;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 100.0;
  options.jitter_fraction = 0.0;
  RetryController retry(options);
  (void)retry.Run(
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); });
  EXPECT_DOUBLE_EQ(retry.simulated_backoff_ms(), 1750.0);
}

TEST(RetryControllerTest, BackoffsEmitSpansOnTheCallersTrace) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  tracer.Clear();
  const TraceContext trace = tracer.StartTrace();
  RetryOptions options;
  options.max_attempts = 3;
  options.jitter_fraction = 0.0;
  RetryController retry(options);
  retry.set_trace(trace);
  (void)retry.Run(
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); });
  size_t backoff_spans = 0;
  double backoff_ms = 0.0;
  for (const Tracer::Span& span : tracer.snapshot()) {
    if (std::string(span.name) != "retry_backoff") continue;
    ++backoff_spans;
    EXPECT_EQ(span.trace_id, trace.trace_id);
    EXPECT_EQ(span.duration_ns, 0u) << "backoff waits are virtual";
    for (uint32_t i = 0; i < span.num_attrs; ++i) {
      if (std::string(span.attrs[i].key) == "backoff_ms") {
        backoff_ms += span.attrs[i].value.d;
      }
    }
  }
  tracer.set_enabled(false);
  tracer.Clear();
  // One backoff after every failed attempt (the controller charges the
  // final one too), and the span attributes carry the same total the
  // controller accounted.
  EXPECT_EQ(backoff_spans, 3u);
  EXPECT_DOUBLE_EQ(backoff_ms, retry.simulated_backoff_ms());
}

TEST(RetryControllerTest, NoSpansWithoutACallerTrace) {
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  tracer.Clear();
  RetryController retry;  // no set_trace: inactive context
  (void)retry.Run(
      [&]() -> StatusOr<int> { return Status::Unavailable("down"); });
  for (const Tracer::Span& span : tracer.snapshot()) {
    EXPECT_STRNE(span.name, "retry_backoff");
  }
  tracer.set_enabled(false);
  tracer.Clear();
}

TEST(ParseRetryAfterTest, ParsesHintAndRejectsGarbage) {
  EXPECT_DOUBLE_EQ(
      ParseRetryAfterMs(Status::ResourceExhausted("x; retry_after_ms=250")),
      250.0);
  EXPECT_DOUBLE_EQ(
      ParseRetryAfterMs(Status::ResourceExhausted("retry_after_ms=1.5 more")),
      1.5);
  EXPECT_DOUBLE_EQ(ParseRetryAfterMs(Status::Unavailable("no hint here")),
                   0.0);
  EXPECT_DOUBLE_EQ(
      ParseRetryAfterMs(Status::ResourceExhausted("retry_after_ms=oops")),
      0.0);
  EXPECT_DOUBLE_EQ(
      ParseRetryAfterMs(Status::ResourceExhausted("retry_after_ms=-3")), 0.0);
}

}  // namespace
}  // namespace fedsearch::util
