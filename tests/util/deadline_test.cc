#include "fedsearch/util/deadline.h"

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(DeadlineTest, DefaultConstructedIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(d.Charge(1e12));
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.consumed_ms(), 0.0);
}

TEST(DeadlineTest, ChargesAccumulateAndExpireAtTheBudget) {
  Deadline d(10.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.Charge(4.0));
  EXPECT_FALSE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_ms(), 6.0);
  // consumed == budget: spent, and the charge reports it.
  EXPECT_FALSE(d.Charge(6.0));
  EXPECT_TRUE(d.expired());
  EXPECT_DOUBLE_EQ(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, ChargesLandEvenPastTheBudget) {
  // consumed_ms() must stay the exact prefix sum of the work performed, so
  // a cost-model replay of the same charges reaches the same verdict.
  Deadline d(1.0);
  EXPECT_TRUE(d.Charge(0.75));
  EXPECT_FALSE(d.Charge(0.75));
  EXPECT_FALSE(d.Charge(0.75));
  EXPECT_DOUBLE_EQ(d.consumed_ms(), 0.75 + 0.75 + 0.75);
  EXPECT_TRUE(d.expired());
}

TEST(DeadlineTest, ZeroOrNegativeBudgetIsBornExpired) {
  EXPECT_TRUE(Deadline(0.0).expired());
  EXPECT_TRUE(Deadline(-5.0).expired());
  EXPECT_FALSE(Deadline(1e-9).expired());
}

TEST(DeadlineTest, NamedChargesUseTheCostTable) {
  Deadline::Costs costs;
  costs.adaptive_evaluation_ms = 2.0;
  costs.score_ms = 0.5;
  costs.search_ms = 3.0;
  Deadline d(100.0, costs);
  EXPECT_TRUE(d.ChargeAdaptiveEvaluation());
  EXPECT_TRUE(d.ChargeScore());
  EXPECT_DOUBLE_EQ(d.consumed_ms(), 2.5);
  // Engine-reported service time wins; the model default is the fallback.
  EXPECT_TRUE(d.ChargeSearch(7.0));
  EXPECT_DOUBLE_EQ(d.consumed_ms(), 9.5);
  EXPECT_TRUE(d.ChargeSearch(0.0));
  EXPECT_DOUBLE_EQ(d.consumed_ms(), 12.5);
}

TEST(DeadlineTest, ExpiryBoundaryIsAnExactReplayOfTheChargeSequence) {
  // The broker predicts expiry by folding the identical charge sequence;
  // this pins the float-exactness that prediction relies on.
  Deadline::Costs costs;
  costs.adaptive_evaluation_ms = 0.3;
  const double budget = 0.3 * 7;  // not exactly representable in binary
  Deadline executed(budget, costs);
  double replay = 0.0;
  bool last_alive = true;
  for (int i = 0; i < 7; ++i) {
    last_alive = executed.ChargeAdaptiveEvaluation();
    replay += costs.adaptive_evaluation_ms;
  }
  EXPECT_EQ(executed.consumed_ms(), replay);
  EXPECT_EQ(executed.expired(), replay >= budget);
  // The final charge's verdict is the expiry state it produced.
  EXPECT_EQ(last_alive, !executed.expired());
}

}  // namespace
}  // namespace fedsearch::util
