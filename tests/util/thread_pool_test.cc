#include "fedsearch/util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndTinyCounts) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.ParallelFor(1, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  // Fewer indices than threads.
  pool.ParallelFor(3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadPoolTest, BackToBackLoopsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](size_t i) {
      total.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(total.load(), 50L * (63L * 64L / 2));
}

TEST(ThreadPoolTest, PerIndexSlotsMatchSerialResult) {
  // The determinism contract of the serving layer: per-index writes plus a
  // post-join reduction give the same result for any thread count.
  const size_t n = 2048;
  std::vector<double> serial(n), parallel(n);
  const auto work = [](size_t i) {
    double x = static_cast<double>(i) + 1.0;
    for (int k = 0; k < 10; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  ThreadPool pool1(1);
  pool1.ParallelFor(n, [&](size_t i) { serial[i] = work(i); });
  ThreadPool pool8(8);
  pool8.ParallelFor(n, [&](size_t i) { parallel[i] = work(i); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], parallel[i]);
}

TEST(ThreadPoolTest, DefaultThreadCountHonorsEnv) {
  // setenv/getenv are process-global; restore whatever was set.
  const char* old = std::getenv("FEDSEARCH_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("FEDSEARCH_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 5u);
  setenv("FEDSEARCH_THREADS", "0", 1);  // invalid -> hardware fallback
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  if (old != nullptr) {
    setenv("FEDSEARCH_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("FEDSEARCH_THREADS");
  }
}

}  // namespace
}  // namespace fedsearch::util
