#include "fedsearch/util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fedsearch::util {
namespace {

TEST(TracerTest, DisabledScopeRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Tracer::Scope scope("silent", tracer);
  }
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, EnabledScopeRecordsOneSpanOnExit) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope scope("work", tracer);
    EXPECT_TRUE(tracer.snapshot().empty()) << "spans record at exit, not entry";
  }
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TracerTest, NestedScopesRecordIncreasingDepth) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer("outer", tracer);
    {
      Tracer::Scope inner("inner", tracer);
    }
  }
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner scopes complete (and record) first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
}

TEST(TracerTest, ScopeThatStartedDisabledStaysSilent) {
  Tracer tracer;
  {
    Tracer::Scope scope("late", tracer);
    tracer.set_enabled(true);  // flips mid-span; scope read the flag at entry
  }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TracerTest, FullBufferDropsAndCountsInsteadOfGrowing) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    Tracer::Scope scope("span", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ClearEmptiesSpansAndDropCount) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(1);
  for (int i = 0; i < 3; ++i) {
    Tracer::Scope scope("span", tracer);
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  {
    Tracer::Scope scope("fresh", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(TracerTest, ToJsonEmitsSchemaAndSpanFields) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer("build", tracer);
    Tracer::Scope inner("fit", tracer);
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"fit\""), std::string::npos) << json;
  for (const char* key : {"ts_us", "dur_us", "thread", "depth"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing span key " << key << " in " << json;
  }
  // Spans are sorted by start time: the enclosing span comes first.
  EXPECT_LT(json.find("build"), json.find("fit"));
}

TEST(TracerTest, ToJsonOfEmptyTracerIsValid) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToJson(),
            "{\"schema_version\":1,\"dropped\":0,\"spans\":[]}");
}

TEST(TracerTest, GlobalTracerIsProcessWideAndOffByDefault) {
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
  // The macro compiles against the global tracer and is inert while
  // tracing is disabled (the default).
  const size_t before = Tracer::Global().snapshot().size();
  {
    FEDSEARCH_TRACE_SPAN("trace_test.macro_probe");
  }
  EXPECT_EQ(Tracer::Global().snapshot().size(), before);
}

}  // namespace
}  // namespace fedsearch::util
