#include "fedsearch/util/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace fedsearch::util {
namespace {

TEST(TracerTest, DisabledScopeRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Tracer::Scope scope("silent", tracer);
  }
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, EnabledScopeRecordsOneSpanOnExit) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope scope("work", tracer);
    EXPECT_TRUE(tracer.snapshot().empty()) << "spans record at exit, not entry";
  }
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST(TracerTest, NestedScopesRecordIncreasingDepth) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer("outer", tracer);
    {
      Tracer::Scope inner("inner", tracer);
    }
  }
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner scopes complete (and record) first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_LE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_GE(spans[1].duration_ns, spans[0].duration_ns);
}

TEST(TracerTest, ScopeThatStartedDisabledStaysSilent) {
  Tracer tracer;
  {
    Tracer::Scope scope("late", tracer);
    tracer.set_enabled(true);  // flips mid-span; scope read the flag at entry
  }
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(TracerTest, FullBufferDropsAndCountsInsteadOfGrowing) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    Tracer::Scope scope("span", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ClearEmptiesSpansAndDropCount) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_capacity(1);
  for (int i = 0; i < 3; ++i) {
    Tracer::Scope scope("span", tracer);
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
  {
    Tracer::Scope scope("fresh", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(TracerTest, ToJsonEmitsSchemaAndSpanFields) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope outer("build", tracer);
    Tracer::Scope inner("fit", tracer);
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\":65536"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"build\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"fit\""), std::string::npos) << json;
  for (const char* key : {"ts_us", "dur_us", "thread", "depth"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing span key " << key << " in " << json;
  }
  // Spans are sorted by start time: the enclosing span comes first.
  EXPECT_LT(json.find("build"), json.find("fit"));
}

TEST(TracerTest, ToJsonOfEmptyTracerIsValid) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToJson(),
            "{\"schema_version\":2,\"dropped\":0,\"capacity\":65536,"
            "\"spans\":[]}");
}

TEST(TracerTest, ShrinkingCapacityKeepsExistingSpansDropsNewOnes) {
  Tracer tracer;
  tracer.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    Tracer::Scope scope("kept", tracer);
  }
  tracer.set_capacity(2);
  // Shrinking never truncates the buffer: the three recorded spans stay.
  EXPECT_EQ(tracer.snapshot().size(), 3u);
  EXPECT_EQ(tracer.capacity(), 2u);
  {
    Tracer::Scope scope("dropped", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 3u);
  EXPECT_EQ(tracer.dropped(), 1u);
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"capacity\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos) << json;
  // Growing it back re-admits new spans.
  tracer.set_capacity(16);
  {
    Tracer::Scope scope("admitted", tracer);
  }
  EXPECT_EQ(tracer.snapshot().size(), 4u);
}

TEST(TracerTest, StartTraceLinksParentAndChildSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  const TraceContext root = tracer.StartTrace();
  ASSERT_TRUE(root.active());
  EXPECT_EQ(root.span_id, 0u);
  uint64_t parent_span_id = 0;
  {
    Tracer::Scope parent("parent", root, tracer);
    ASSERT_TRUE(parent.recording());
    parent_span_id = parent.context().span_id;
    EXPECT_EQ(parent.context().trace_id, root.trace_id);
    {
      Tracer::Scope child("child", parent.context(), tracer);
      EXPECT_EQ(child.context().trace_id, root.trace_id);
      EXPECT_NE(child.context().span_id, parent_span_id);
    }
  }
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u);  // child records first
  EXPECT_EQ(spans[0].trace_id, root.trace_id);
  EXPECT_EQ(spans[0].parent_id, parent_span_id);
  EXPECT_EQ(spans[1].trace_id, root.trace_id);
  EXPECT_EQ(spans[1].span_id, parent_span_id);
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(TracerTest, DisabledTracerYieldsInactiveContextsAndPassesThrough) {
  Tracer tracer;
  const TraceContext root = tracer.StartTrace();
  EXPECT_FALSE(root.active());
  const TraceContext upstream{42, 7};
  Tracer::Scope scope("silent", upstream, tracer);
  EXPECT_FALSE(scope.recording());
  // A non-recording scope forwards its parent context unchanged, so
  // downstream spans still attach to the caller's trace if tracing turns
  // on later in the call chain.
  EXPECT_EQ(scope.context().trace_id, upstream.trace_id);
  EXPECT_EQ(scope.context().span_id, upstream.span_id);
}

TEST(TracerTest, ScopeAttrsAppearInJson) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Scope scope("attrs", tracer);
    scope.AttrUint("seq", 9)
        .AttrDouble("wait_ms", 1.5)
        .AttrBool("downgraded", true)
        .AttrStr("disposition", "served_full")
        .AttrInt("delta", -3);
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"seq\":9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wait_ms\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"downgraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disposition\":\"served_full\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"delta\":-3"), std::string::npos) << json;
}

TEST(TracerTest, EmitSpanRecordsRetroactiveSpanWithExplicitTimes) {
  Tracer tracer;
  tracer.set_enabled(true);
  const TraceContext root = tracer.StartTrace();
  const TraceContext emitted = tracer.EmitSpan(
      "queue_wait", root, 1000, 4000,
      {Tracer::UintAttr("seq", 3), Tracer::DoubleAttr("backoff_ms", 2.5)});
  EXPECT_EQ(emitted.trace_id, root.trace_id);
  const std::vector<Tracer::Span> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "queue_wait");
  EXPECT_EQ(spans[0].start_ns, 1000u);
  EXPECT_EQ(spans[0].duration_ns, 3000u);
  EXPECT_EQ(spans[0].trace_id, root.trace_id);
  EXPECT_EQ(spans[0].num_attrs, 2u);
  // End before start clamps to zero duration rather than wrapping.
  tracer.EmitSpan("clamped", root, 5000, 4000);
  EXPECT_EQ(tracer.snapshot()[1].duration_ns, 0u);
  // Disabled tracers pass the parent through without recording.
  Tracer off;
  const TraceContext through = off.EmitSpan("ignored", root, 0, 1);
  EXPECT_EQ(through.trace_id, root.trace_id);
  EXPECT_TRUE(off.snapshot().empty());
}

TEST(TracerTest, PerfettoExportGroupsSpansByTraceId) {
  Tracer tracer;
  tracer.set_enabled(true);
  const TraceContext request = tracer.StartTrace();
  {
    Tracer::Scope scoped("request_root", request, tracer);
    scoped.AttrStr("disposition", "served_full");
  }
  {
    Tracer::Scope anonymous("background", tracer);
  }
  const std::string json = tracer.ToPerfettoJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"traceEvents\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  // One process_name metadata event per distinct pid: the request's trace
  // id plus pid 0 for spans recorded outside any request.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"untraced\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"request " + std::to_string(request.trace_id) + "\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"disposition\":\"served_full\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"capacity\":65536"), std::string::npos) << json;
}

TEST(TracerTest, GlobalTracerIsProcessWideAndOffByDefault) {
  EXPECT_EQ(&Tracer::Global(), &Tracer::Global());
  // The macro compiles against the global tracer and is inert while
  // tracing is disabled (the default).
  const size_t before = Tracer::Global().snapshot().size();
  {
    FEDSEARCH_TRACE_SPAN("trace_test.macro_probe");
  }
  EXPECT_EQ(Tracer::Global().snapshot().size(), before);
}

}  // namespace
}  // namespace fedsearch::util
