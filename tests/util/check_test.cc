#include "fedsearch/util/check.h"

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(CheckTest, PassingCheckIsSilentAndEvaluatesOnce) {
  int evaluations = 0;
  FEDSEARCH_CHECK([&] {
    ++evaluations;
    return true;
  }()) << "never rendered";
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, MessageOperandsNotEvaluatedOnSuccess) {
  int renders = 0;
  const auto render = [&] {
    ++renders;
    return "boom";
  };
  FEDSEARCH_CHECK(1 + 1 == 2) << render();
  EXPECT_EQ(renders, 0);
}

TEST(CheckDeathTest, FailedCheckAbortsWithConditionAndLocation) {
  EXPECT_DEATH(FEDSEARCH_CHECK(2 + 2 == 5),
               "check_test.cc.*CHECK failed: 2 \\+ 2 == 5");
}

TEST(CheckDeathTest, FailedCheckCarriesStreamedMessage) {
  const int df = -3;
  EXPECT_DEATH(FEDSEARCH_CHECK(df >= 0) << "df was " << df,
               "CHECK failed: df >= 0: df was -3");
}

#if FEDSEARCH_DCHECK_IS_ON
TEST(CheckDeathTest, DcheckActiveInThisBuild) {
  EXPECT_DEATH(FEDSEARCH_DCHECK(false) << "dcheck message",
               "CHECK failed: false.*dcheck message");
}
#else
TEST(CheckTest, DisabledDcheckEvaluatesNothing) {
  int evaluations = 0;
  FEDSEARCH_DCHECK([&] {
    ++evaluations;
    return false;  // would abort if evaluated with DCHECKs on
  }());
  EXPECT_EQ(evaluations, 0);
}
#endif

}  // namespace
}  // namespace fedsearch::util
