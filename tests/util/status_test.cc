#include "fedsearch/util/status.h"

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace fedsearch::util
