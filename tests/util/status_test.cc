#include "fedsearch/util/status.h"

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), Status::Code::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
}

TEST(StatusTest, TransientCodesRenderDistinctNames) {
  EXPECT_EQ(Status::Unavailable("db down").ToString(),
            "UNAVAILABLE: db down");
  EXPECT_EQ(Status::DeadlineExceeded("slow").ToString(),
            "DEADLINE_EXCEEDED: slow");
  EXPECT_EQ(Status::ResourceExhausted("throttled").ToString(),
            "RESOURCE_EXHAUSTED: throttled");
}

TEST(StatusTest, IsTransientCoversExactlyTheRetryableCodes) {
  EXPECT_TRUE(IsTransient(Status::Unavailable("x")));
  EXPECT_TRUE(IsTransient(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsTransient(Status::Ok()));
  EXPECT_FALSE(IsTransient(Status::NotFound("x")));
  EXPECT_FALSE(IsTransient(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsTransient(Status::FailedPrecondition("x")));
  EXPECT_FALSE(IsTransient(Status::OutOfRange("x")));
  EXPECT_FALSE(IsTransient(Status::Internal("x")));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  ASSERT_TRUE(v.ok());
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace fedsearch::util
