#include "fedsearch/util/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace fedsearch::util {
namespace {

TEST(MonotonicNanosTest, NeverGoesBackwards) {
  uint64_t prev = MonotonicNanos();
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = MonotonicNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

// --- bucket geometry -------------------------------------------------------

TEST(HistogramBucketTest, SmallValuesLandInExactUnitBuckets) {
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(Histogram::BucketWidth(static_cast<uint32_t>(v)), 1u);
  }
}

TEST(HistogramBucketTest, EveryValueFallsInsideItsBucket) {
  // Sweep powers of two and their neighbours across the full 64-bit range:
  // the bucket invariant lower <= v < lower + width must hold everywhere.
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t base = uint64_t{1} << shift;
    for (uint64_t v : {base - 1, base, base + 1, base + base / 3}) {
      const uint32_t idx = Histogram::BucketIndex(v);
      ASSERT_LT(idx, Histogram::kNumBuckets);
      const uint64_t lower = Histogram::BucketLowerBound(idx);
      const uint64_t width = Histogram::BucketWidth(idx);
      ASSERT_LE(lower, v) << "value " << v << " below bucket " << idx;
      // lower + width may wrap at the very top of the range; guard it.
      if (lower + width > lower) {
        ASSERT_LT(v, lower + width)
            << "value " << v << " beyond bucket " << idx;
      }
    }
  }
}

TEST(HistogramBucketTest, IndexIsMonotoneInValue) {
  uint32_t prev = Histogram::BucketIndex(0);
  for (int shift = 0; shift < 64; ++shift) {
    const uint64_t v = uint64_t{1} << shift;
    const uint32_t idx = Histogram::BucketIndex(v);
    ASSERT_GE(idx, prev) << "at value " << v;
    prev = idx;
  }
  EXPECT_LT(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            Histogram::kNumBuckets);
}

TEST(HistogramBucketTest, RelativeResolutionStaysNearSixPercent) {
  // Above the linear region each power-of-two range is split into 16
  // sub-buckets, so width/lower <= 1/8 everywhere (exactly 1/16 at the
  // start of each range, approaching 1/8 just before the next doubling).
  for (int shift = 5; shift < 63; ++shift) {
    const uint64_t v = (uint64_t{1} << shift) + 3;
    const uint32_t idx = Histogram::BucketIndex(v);
    const double lower = static_cast<double>(Histogram::BucketLowerBound(idx));
    const double width = static_cast<double>(Histogram::BucketWidth(idx));
    ASSERT_LE(width / lower, 1.0 / 8.0 + 1e-12) << "at value " << v;
  }
}

// --- recording and percentiles ---------------------------------------------

TEST(HistogramTest, CountSumMaxMeanAreExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.Record(10);
  h.Record(20);
  h.Record(90);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.max(), 90u);
  EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(HistogramTest, PercentilesOfUniformRecording) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Bucket resolution is ~6%, so allow a 10% band around the true ranks.
  EXPECT_NEAR(h.Percentile(50.0), 500.0, 50.0);
  EXPECT_NEAR(h.Percentile(95.0), 950.0, 95.0);
  EXPECT_NEAR(h.Percentile(99.0), 990.0, 99.0);
  // The extremes clamp to the recorded range rather than extrapolating.
  EXPECT_GE(h.Percentile(0.0), 0.0);
  EXPECT_LE(h.Percentile(0.0), 2.0);
  EXPECT_LE(h.Percentile(100.0), 1100.0);
}

TEST(HistogramTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(99.0), 0.0);
}

TEST(HistogramTest, PercentileDetectsTwoXInflation) {
  // The reason the histogram exists: a 2x latency shift must move p95 by
  // far more than the gate's 25% threshold despite bucket quantization.
  Histogram before, after;
  for (uint64_t i = 0; i < 1000; ++i) {
    const uint64_t base_ns = 40000 + (i % 100) * 350;
    before.Record(base_ns);
    after.Record(2 * base_ns);
  }
  const double p95_before = before.Percentile(95.0);
  const double p95_after = after.Percentile(95.0);
  ASSERT_GT(p95_before, 0.0);
  EXPECT_GT(p95_after / p95_before, 1.7);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(123456);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
}

// --- ScopedTimer -----------------------------------------------------------

TEST(ScopedTimerTest, RecordsOnNormalExit) {
  Histogram h;
  {
    ScopedTimer timer(h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(ScopedTimerTest, RecordsWhenScopeExitsViaException) {
  Histogram h;
  try {
    ScopedTimer timer(h);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(h.count(), 1u);
}

// --- registry --------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameYieldsSameMetric) {
  MetricsRegistry registry;
  Counter& a = registry.counter("reg.hits");
  Counter& b = registry.counter("reg.hits");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.value(), 7u);
  // Same name in a different section is a different metric.
  registry.gauge("reg.hits").Set(1.0);
  registry.histogram("reg.hits").Record(5);
  EXPECT_EQ(registry.num_metrics(), 3u);
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrations) {
  MetricsRegistry registry;
  Counter& c = registry.counter("reg.count");
  Gauge& g = registry.gauge("reg.level");
  Histogram& h = registry.histogram("reg.lat_ns");
  c.Add(5);
  g.Set(2.0);
  h.Record(100);
  registry.ResetAll();
  EXPECT_EQ(registry.num_metrics(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&registry.counter("reg.count"), &c);
}

TEST(MetricsRegistryTest, ToJsonEmitsSortedSectionsWithValues) {
  MetricsRegistry registry;
  registry.counter("zeta.count").Add(3);
  registry.counter("alpha.count").Add(11);
  registry.gauge("serving.threads").Set(4.0);
  registry.histogram("lat_ns").Record(1000);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"alpha.count\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"zeta.count\":3"), std::string::npos)
      << "values must follow their own keys";
  EXPECT_NE(json.find("\"serving.threads\":4"), std::string::npos) << json;
  // Counter names are emitted in sorted order.
  EXPECT_LT(json.find("alpha.count"), json.find("zeta.count"));
  // The histogram object carries the full summary.
  for (const char* key : {"count", "sum", "mean", "max", "p50", "p95", "p99"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing histogram key " << key << " in " << json;
  }
}

TEST(MetricsRegistryTest, ToJsonOfEmptyRegistryIsStructurallyComplete) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(GlobalMetricsTest, IsASingleProcessWideRegistry) {
  EXPECT_EQ(&GlobalMetrics(), &GlobalMetrics());
  Counter& c = GlobalMetrics().counter("metrics_test.global_probe");
  const uint64_t before = c.value();
  c.Add();
  EXPECT_EQ(GlobalMetrics().counter("metrics_test.global_probe").value(),
            before + 1);
}

}  // namespace
}  // namespace fedsearch::util
