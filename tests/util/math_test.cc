#include "fedsearch/util/math.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(FitLineTest, RecoversExactLine) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, NoisyLineHasReasonableR2) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 1.0 : -1.0));
  }
  const LinearFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLineTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({}, {}).slope, 0.0);
  const LinearFit single = FitLine({2.0}, {7.0});
  EXPECT_EQ(single.slope, 0.0);
  EXPECT_EQ(single.intercept, 7.0);
  // Zero x-variance.
  const LinearFit flat = FitLine({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(flat.slope, 0.0);
  EXPECT_NEAR(flat.intercept, 2.0, 1e-12);
}

TEST(AverageRanksTest, SimpleOrdering) {
  const std::vector<double> ranks = AverageRanks({30.0, 10.0, 20.0});
  EXPECT_EQ(ranks, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(AverageRanksTest, TiesGetMeanRank) {
  const std::vector<double> ranks = AverageRanks({5.0, 1.0, 5.0});
  EXPECT_EQ(ranks[1], 1.0);
  EXPECT_EQ(ranks[0], 2.5);
  EXPECT_EQ(ranks[2], 2.5);
}

TEST(SpearmanTest, PerfectPositiveCorrelation) {
  EXPECT_NEAR(SpearmanRankCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0,
              1e-12);
}

TEST(SpearmanTest, PerfectNegativeCorrelation) {
  EXPECT_NEAR(SpearmanRankCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0,
              1e-12);
}

TEST(SpearmanTest, MonotoneTransformInvariance) {
  std::vector<double> a = {0.1, 0.5, 0.2, 0.9, 0.7};
  std::vector<double> b;
  for (double x : a) b.push_back(std::exp(3.0 * x));  // monotone transform
  EXPECT_NEAR(SpearmanRankCorrelation(a, b), 1.0, 1e-12);
}

TEST(SpearmanTest, DegenerateInputsGiveZero) {
  EXPECT_EQ(SpearmanRankCorrelation({}, {}), 0.0);
  EXPECT_EQ(SpearmanRankCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_EQ(SpearmanRankCorrelation({1.0, 1.0}, {1.0, 2.0}), 0.0);
}

TEST(RunningStatsTest, MatchesClosedForm) {
  RunningStats stats;
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) stats.Add(x);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), 5.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), 2.0, 1e-12);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.Add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(PairedTTest, ZeroForIdenticalSamples) {
  EXPECT_EQ(PairedTStatistic({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(PairedTTest, LargeForConsistentImprovement) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(0.8 + 0.001 * (i % 5));
    b.push_back(0.7 + 0.001 * ((i + 2) % 5));
  }
  EXPECT_GT(PairedTStatistic(a, b), 10.0);
  EXPECT_LT(PairedTStatistic(b, a), -10.0);
}

}  // namespace
}  // namespace fedsearch::util
