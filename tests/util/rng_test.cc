#include "fedsearch/util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace fedsearch::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    saw_lo |= v == -2;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRateApproximatesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NextDiscreteRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(DiscreteSamplerTest, MatchesWeightDistribution) {
  DiscreteSampler sampler({2.0, 1.0, 1.0});
  Rng rng(37);
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.02);
}

TEST(DiscreteSamplerTest, EmptyAndZeroWeightsReturnZero) {
  Rng rng(41);
  DiscreteSampler empty{std::vector<double>{}};
  EXPECT_EQ(empty.Sample(rng), 0u);
  DiscreteSampler zeros({0.0, 0.0});
  EXPECT_EQ(zeros.Sample(rng), 0u);
}

TEST(DiscreteSamplerTest, SingleElement) {
  Rng rng(43);
  DiscreteSampler one({5.0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.Sample(rng), 0u);
}

}  // namespace
}  // namespace fedsearch::util
