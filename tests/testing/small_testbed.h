#ifndef FEDSEARCH_TESTS_TESTING_SMALL_TESTBED_H_
#define FEDSEARCH_TESTS_TESTING_SMALL_TESTBED_H_

#include "fedsearch/corpus/testbed.h"

namespace fedsearch::testing {

// A reduced testbed configuration that keeps unit tests fast (seconds, not
// minutes) while preserving the statistical structure: Zipfian vocabulary,
// topical databases, shared category vocabulary.
inline corpus::TestbedOptions SmallTestbedOptions() {
  corpus::TestbedOptions o = corpus::Testbed::Trec4Options(/*scale=*/1.0);
  o.num_databases = 12;
  o.num_queries = 6;
  o.min_db_docs = 120;
  o.max_db_docs = 600;
  o.min_query_words = 4;
  o.max_query_words = 10;
  o.model.vocab_size_by_depth[0] = 4000;
  o.model.vocab_size_by_depth[1] = 1500;
  o.model.vocab_size_by_depth[2] = 1000;
  o.model.vocab_size_by_depth[3] = 800;
  o.model.database_vocab_size = 300;
  o.model.doc_length_mean = 60.0;
  return o;
}

// Shared instance: built once per test binary. Tests must treat it as
// read-only (CountRelevant's internal cache is the only mutation and is
// safe single-threaded).
inline const corpus::Testbed& SharedSmallTestbed() {
  static const corpus::Testbed* bed = new corpus::Testbed(SmallTestbedOptions());
  return *bed;
}

}  // namespace fedsearch::testing

#endif  // FEDSEARCH_TESTS_TESTING_SMALL_TESTBED_H_
