#ifndef FEDSEARCH_TESTS_TESTING_CHURN_TESTBED_H_
#define FEDSEARCH_TESTS_TESTING_CHURN_TESTBED_H_

#include "fedsearch/corpus/testbed.h"
#include "testing/small_testbed.h"

namespace fedsearch::testing {

// The small testbed with document retention switched on (churn scenarios
// regenerate databases from the retained texts) and slightly smaller
// databases — churn tests rebuild indexes every epoch, so size is wall
// time here.
inline corpus::TestbedOptions ChurnTestbedOptions() {
  corpus::TestbedOptions o = SmallTestbedOptions();
  o.keep_documents = true;
  o.num_databases = 10;
  o.min_db_docs = 80;
  o.max_db_docs = 300;
  return o;
}

// Shared instance: built once per test binary, read-only for tests (the
// churn layer copies what it mutates).
inline const corpus::Testbed& SharedChurnTestbed() {
  static const corpus::Testbed* bed =
      new corpus::Testbed(ChurnTestbedOptions());
  return *bed;
}

}  // namespace fedsearch::testing

#endif  // FEDSEARCH_TESTS_TESTING_CHURN_TESTBED_H_
