#include "fedsearch/selection/rk_metric.h"

#include <gtest/gtest.h>

namespace fedsearch::selection {
namespace {

std::vector<RankedDatabase> Ranking(std::vector<size_t> order) {
  std::vector<RankedDatabase> r;
  double score = 100.0;
  for (size_t db : order) {
    r.push_back(RankedDatabase{db, score});
    score -= 1.0;
  }
  return r;
}

TEST(RkMetricTest, PerfectRankingScoresOne) {
  const std::vector<size_t> relevant = {50, 10, 30, 0};
  const auto ranking = Ranking({0, 2, 1, 3});  // ordered by relevance
  for (size_t k = 1; k <= 4; ++k) {
    EXPECT_DOUBLE_EQ(RkScore(ranking, relevant, k), 1.0) << "k=" << k;
  }
}

TEST(RkMetricTest, WorstRankingScoresLow) {
  const std::vector<size_t> relevant = {50, 10, 30, 0};
  const auto ranking = Ranking({3, 1, 2, 0});
  EXPECT_DOUBLE_EQ(RkScore(ranking, relevant, 1), 0.0);
  EXPECT_DOUBLE_EQ(RkScore(ranking, relevant, 2), 10.0 / 80.0);
}

TEST(RkMetricTest, PartialRankingCountsOnlySelected) {
  // A selection algorithm that chose fewer than k databases contributes
  // only what it selected (Section 6.2).
  const std::vector<size_t> relevant = {50, 40, 30};
  const auto ranking = Ranking({0});  // selected a single database
  EXPECT_DOUBLE_EQ(RkScore(ranking, relevant, 2), 50.0 / 90.0);
}

TEST(RkMetricTest, EmptyRankingScoresZero) {
  const std::vector<size_t> relevant = {5, 5};
  EXPECT_DOUBLE_EQ(RkScore({}, relevant, 2), 0.0);
}

TEST(RkMetricTest, QueryWithNoRelevantDocumentsScoresZero) {
  const std::vector<size_t> relevant = {0, 0, 0};
  const auto ranking = Ranking({0, 1, 2});
  EXPECT_DOUBLE_EQ(RkScore(ranking, relevant, 2), 0.0);
}

TEST(RkMetricTest, KZeroIsZero) {
  const std::vector<size_t> relevant = {5};
  EXPECT_DOUBLE_EQ(RkScore(Ranking({0}), relevant, 0), 0.0);
}

TEST(RkMetricTest, MonotoneImprovementWhenPrefixGains) {
  // Putting the best database first must never score worse than second.
  const std::vector<size_t> relevant = {100, 1};
  const double best_first = RkScore(Ranking({0, 1}), relevant, 1);
  const double best_second = RkScore(Ranking({1, 0}), relevant, 1);
  EXPECT_GT(best_first, best_second);
}

TEST(RkMetricTest, KBeyondDatabaseCountIsSafe) {
  const std::vector<size_t> relevant = {4, 2};
  EXPECT_DOUBLE_EQ(RkScore(Ranking({0, 1}), relevant, 10), 1.0);
}

}  // namespace
}  // namespace fedsearch::selection
