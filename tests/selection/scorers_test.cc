#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "fedsearch/core/adaptive.h"
#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"

namespace fedsearch::selection {
namespace {

summary::ContentSummary MakeSummary(double num_docs,
                                    std::vector<std::tuple<std::string, double,
                                                           double>> words) {
  summary::ContentSummary s;
  s.set_num_documents(num_docs);
  for (const auto& [w, df, ctf] : words) {
    s.SetWord(w, summary::WordStats{df, ctf});
  }
  return s;
}

class ScorersTest : public ::testing::Test {
 protected:
  ScorersTest()
      : health_(MakeSummary(
            1000, {{"blood", 420, 700}, {"hypertension", 320, 500}})),
        cs_(MakeSummary(500, {{"algorithm", 300, 900}, {"blood", 1, 1}})),
        global_(summary::ContentSummary::AggregateCategory({&health_, &cs_})) {
    context_.ranked_summaries = {&health_, &cs_};
    context_.global_summary = &global_;
  }

  summary::ContentSummary health_;
  summary::ContentSummary cs_;
  summary::ContentSummary global_;
  ScoringContext context_;
};

// ---------------------------------------------------------------- bGlOSS --

TEST_F(ScorersTest, BglossMatchesClosedForm) {
  // s(q, D) = |D| · Π p̂(w|D)  [13].
  BglossScorer bgloss;
  const Query q{{"blood", "hypertension"}};
  EXPECT_NEAR(bgloss.Score(q, health_, context_), 1000 * 0.42 * 0.32, 1e-9);
}

TEST_F(ScorersTest, BglossZeroOnAnyMissingWord) {
  BglossScorer bgloss;
  EXPECT_EQ(bgloss.Score(Query{{"algorithm", "hypertension"}}, health_,
                         context_),
            0.0);
  EXPECT_EQ(bgloss.DefaultScore(Query{{"x"}}, health_, context_), 0.0);
}

TEST_F(ScorersTest, BglossPrefersTopicalDatabase) {
  // The Example 2 scenario: [blood hypertension] should prefer the Health
  // database over the CS one.
  BglossScorer bgloss;
  const Query q{{"blood", "hypertension"}};
  EXPECT_GT(bgloss.Score(q, health_, context_),
            bgloss.Score(q, cs_, context_));
}

// ------------------------------------------------------------------ CORI --

TEST_F(ScorersTest, CoriMatchesClosedForm) {
  CoriScorer cori;
  const Query q{{"algorithm"}};
  // df for "algorithm" in cs_: 300. cw = 901 tokens, mcw = (1200+901)/2.
  const double m = 2.0;
  const double cw = 901.0;
  const double mcw = (1200.0 + 901.0) / 2.0;
  const double t = 300.0 / (300.0 + 50.0 + 150.0 * cw / mcw);
  const double cf = 1.0;  // only cs_ contains "algorithm"
  const double i = std::log((m + 0.5) / cf) / std::log(m + 1.0);
  EXPECT_NEAR(cori.Score(q, cs_, context_), 0.4 + 0.6 * t * i, 1e-9);
}

TEST_F(ScorersTest, CoriDefaultBeliefForMissingWords) {
  CoriScorer cori;
  const Query q{{"nonexistent"}};
  EXPECT_NEAR(cori.Score(q, health_, context_), 0.4, 1e-12);
  EXPECT_NEAR(cori.DefaultScore(q, health_, context_), 0.4, 1e-12);
}

TEST_F(ScorersTest, CoriRoundedPresenceRule) {
  // Section 5.3: a word counts as present only if round(|D|·p̂) >= 1 —
  // the guard that keeps shrunk summaries from saturating cf(w).
  CoriScorer cori;
  summary::ContentSummary shrunk = MakeSummary(1000, {{"ghost", 0.4, 1.0}});
  ScoringContext ctx;
  ctx.ranked_summaries = {&shrunk};
  const Query q{{"ghost"}};
  EXPECT_NEAR(cori.Score(q, shrunk, ctx), 0.4, 1e-12);  // treated as absent
}

TEST_F(ScorersTest, CoriRareWordsWeighMore) {
  // I (the idf-like factor) favors words in fewer databases.
  CoriScorer cori;
  // "hypertension" occurs only in health_, "blood" in both (df 1 in cs_
  // rounds to 1, so cf = 2).
  const double s_rare = cori.Score(Query{{"hypertension"}}, health_, context_);
  const double s_common = cori.Score(Query{{"blood"}}, health_, context_);
  EXPECT_GT(s_rare, s_common);
}

TEST_F(ScorersTest, CoriAveragesOverQueryWords) {
  CoriScorer cori;
  const double one = cori.Score(Query{{"hypertension"}}, health_, context_);
  const double with_miss =
      cori.Score(Query{{"hypertension", "nonexistent"}}, health_, context_);
  EXPECT_NEAR(with_miss, (one + 0.4) / 2.0, 1e-9);
}

// -------------------------------------------------------------------- LM --

TEST_F(ScorersTest, LmMatchesClosedForm) {
  LmScorer lm(0.5);
  const Query q{{"blood"}};
  const double p_db = health_.ProbToken("blood");
  const double p_g = global_.ProbToken("blood");
  EXPECT_NEAR(lm.Score(q, health_, context_), 0.5 * p_db + 0.5 * p_g, 1e-12);
}

TEST_F(ScorersTest, LmSmoothsMissingWordsWithGlobal) {
  LmScorer lm(0.5);
  const Query q{{"algorithm"}};  // absent from health_
  const double expected = 0.5 * global_.ProbToken("algorithm");
  EXPECT_NEAR(lm.Score(q, health_, context_), expected, 1e-12);
  EXPECT_NEAR(lm.DefaultScore(q, health_, context_), expected, 1e-12);
}

TEST_F(ScorersTest, LmMultiWordProduct) {
  LmScorer lm(0.5);
  const Query q{{"blood", "hypertension"}};
  const double w1 = lm.Score(Query{{"blood"}}, health_, context_);
  const double w2 = lm.Score(Query{{"hypertension"}}, health_, context_);
  EXPECT_NEAR(lm.Score(q, health_, context_), w1 * w2, 1e-15);
}

TEST_F(ScorersTest, LmWithoutGlobalSummary) {
  LmScorer lm(0.5);
  ScoringContext ctx;  // no global
  const Query q{{"blood"}};
  EXPECT_NEAR(lm.Score(q, health_, ctx), 0.5 * health_.ProbToken("blood"),
              1e-12);
  EXPECT_EQ(lm.DefaultScore(q, health_, ctx), 0.0);
}

TEST_F(ScorersTest, AllScorersDeclareIndependentTerms) {
  EXPECT_TRUE(BglossScorer().independent_terms());
  EXPECT_TRUE(CoriScorer().independent_terms());
  EXPECT_TRUE(LmScorer().independent_terms());
}

// -------------------------------------------------------- delta protocol --
//
// The adaptive Monte-Carlo fast path (core/adaptive.cc) rests on three
// bit-identity contracts declared in scoring.h; these tests pin them for
// every paper scorer.

class DeltaProtocolTest : public ScorersTest {
 protected:
  DeltaProtocolTest() {
    scorers_ = {&cori_scorer_, &lm_scorer_, &bgloss_scorer_};
  }

  CoriScorer cori_scorer_;
  LmScorer lm_scorer_{0.5};
  BglossScorer bgloss_scorer_;
  std::vector<const ScoringFunction*> scorers_;
};

TEST_F(DeltaProtocolTest, FoldMatchesScoreBitwise) {
  // Score(q, D, ctx) == FinalizeScore over the CombineInit/TermContribution
  // fold, bit for bit — including missing words and the empty query.
  const Query queries[] = {Query{{"blood", "hypertension"}},
                           Query{{"algorithm", "blood", "nonexistent"}},
                           Query{{"nonexistent"}},
                           Query{}};
  const summary::SummaryView* dbs[] = {&health_, &cs_};
  for (const ScoringFunction* s : scorers_) {
    ASSERT_TRUE(s->supports_delta_scoring()) << s->name();
    for (const Query& q : queries) {
      for (const summary::SummaryView* db : dbs) {
        DeltaScoreState state(*s, q, *db, context_);
        const double folded = state.ScoreFromContributions(
            state.base_contributions().data(), q.terms.size());
        EXPECT_EQ(folded, s->Score(q, *db, context_)) << s->name();
      }
    }
  }
}

TEST_F(DeltaProtocolTest, ContributionTableMatchesPerPointBitwise) {
  // The bulk tabulation (the hoisted loops of cori/lm/bgloss.cc) must
  // reproduce the per-point TermContributionWithDf values exactly; df
  // points cover absent (0), sub-presence (0.4, rounds to absent), small,
  // fractional, large, and the full database size.
  const Query q{{"blood", "hypertension", "nonexistent"}};
  const double dfs[] = {0.0, 0.4, 1.0, 3.7, 320.0, 999.0, 1000.0};
  const size_t count = sizeof(dfs) / sizeof(dfs[0]);
  for (const ScoringFunction* s : scorers_) {
    for (size_t t = 0; t < q.terms.size(); ++t) {
      double table[count];
      s->TermContributionTable(q, t, health_, context_, dfs, count, table);
      for (size_t g = 0; g < count; ++g) {
        EXPECT_EQ(table[g],
                  s->TermContributionWithDf(q, t, dfs[g], health_, context_))
            << s->name() << " term " << t << " df " << dfs[g];
      }
    }
  }
}

TEST_F(DeltaProtocolTest, WithDfMatchesOverrideSummaryBitwise) {
  // TermContributionWithDf must equal TermContribution read through
  // core::OverrideSummary — the fallback path's perturbed view — so both
  // Monte-Carlo paths score a draw identically. "blood" exercises the
  // seen-word token-scaling rule, "nonexistent" the unseen-word rule.
  const Query q{{"blood", "nonexistent"}};
  const double df_points[] = {0.0, 0.4, 3.7, 420.0, 2000.0};
  for (const ScoringFunction* s : scorers_) {
    for (size_t t = 0; t < q.terms.size(); ++t) {
      for (const double d : df_points) {
        std::unordered_map<std::string, double> overrides = {{q.terms[t], d}};
        core::OverrideSummary perturbed(&health_, &overrides);
        EXPECT_EQ(s->TermContributionWithDf(q, t, d, health_, context_),
                  s->TermContribution(q, t, perturbed, context_))
            << s->name() << " term " << q.terms[t] << " df " << d;
      }
    }
  }
}

}  // namespace
}  // namespace fedsearch::selection
