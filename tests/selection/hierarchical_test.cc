#include "fedsearch/selection/hierarchical.h"

#include <gtest/gtest.h>

#include "fedsearch/selection/bgloss.h"

namespace fedsearch::selection {
namespace {

// A tiny two-branch hierarchy:
//   Root -> Health -> {Heart, Aids}; Root -> Sports -> {Soccer}.
class HierarchicalTest : public ::testing::Test {
 protected:
  HierarchicalTest() : hierarchy_("Root") {
    health_ = hierarchy_.AddCategory("Health", hierarchy_.root());
    heart_ = hierarchy_.AddCategory("Heart", health_);
    aids_ = hierarchy_.AddCategory("Aids", health_);
    sports_ = hierarchy_.AddCategory("Sports", hierarchy_.root());
    soccer_ = hierarchy_.AddCategory("Soccer", sports_);

    // Databases: two under Heart, one under Aids, two under Soccer.
    summaries_.push_back(MakeDb(100, {{"cardiac", 60}}));          // 0
    summaries_.push_back(MakeDb(100, {{"cardiac", 30}}));          // 1
    summaries_.push_back(MakeDb(100, {{"hiv", 50}}));              // 2
    summaries_.push_back(MakeDb(100, {{"goal", 70}}));             // 3
    summaries_.push_back(MakeDb(100, {{"goal", 20}, {"cardiac", 5}}));  // 4
    classifications_ = {heart_, heart_, aids_, soccer_, soccer_};
    for (const auto& s : summaries_) summary_ptrs_.push_back(&s);
    selector_ = std::make_unique<HierarchicalSelector>(
        &hierarchy_, summary_ptrs_, classifications_);
  }

  static summary::ContentSummary MakeDb(
      double n, std::vector<std::pair<std::string, double>> words) {
    summary::ContentSummary s;
    s.set_num_documents(n);
    for (const auto& [w, df] : words) {
      s.SetWord(w, summary::WordStats{df, df});
    }
    return s;
  }

  corpus::TopicHierarchy hierarchy_;
  corpus::CategoryId health_, heart_, aids_, sports_, soccer_;
  std::vector<summary::ContentSummary> summaries_;
  std::vector<const summary::ContentSummary*> summary_ptrs_;
  std::vector<corpus::CategoryId> classifications_;
  std::unique_ptr<HierarchicalSelector> selector_;
};

TEST_F(HierarchicalTest, DescendsToTopicalDatabases) {
  BglossScorer bgloss;
  const auto ranking = selector_->Select(Query{{"cardiac"}}, 2, bgloss);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].database, 0u);
  EXPECT_EQ(ranking[1].database, 1u);
}

TEST_F(HierarchicalTest, CommitsToBestCategoryEvenWhenThin) {
  // The defining weakness of the hierarchical baseline (Section 6.2): once
  // a category is chosen, it keeps supplying databases from it. Query
  // [cardiac]: Health's category summary dominates, so both Heart
  // databases are returned before the Soccer database that also contains
  // "cardiac".
  BglossScorer bgloss;
  const auto ranking = selector_->Select(Query{{"cardiac"}}, 3, bgloss);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].database, 0u);
  EXPECT_EQ(ranking[1].database, 1u);
  EXPECT_EQ(ranking[2].database, 4u);
}

TEST_F(HierarchicalTest, HonorsBudget) {
  BglossScorer bgloss;
  EXPECT_EQ(selector_->Select(Query{{"cardiac"}}, 1, bgloss).size(), 1u);
  EXPECT_EQ(selector_->Select(Query{{"goal"}}, 10, bgloss).size(), 2u);
}

TEST_F(HierarchicalTest, ReturnsNothingWithoutEvidence) {
  BglossScorer bgloss;
  EXPECT_TRUE(selector_->Select(Query{{"nonexistent"}}, 5, bgloss).empty());
}

TEST_F(HierarchicalTest, DatabasesClassifiedAtInternalNodesAreReachable) {
  // Attach a database directly at "Health" (an internal node), as FPS can.
  summaries_.push_back(MakeDb(100, {{"clinical", 40}}));
  std::vector<const summary::ContentSummary*> ptrs;
  for (const auto& s : summaries_) ptrs.push_back(&s);
  std::vector<corpus::CategoryId> cls = classifications_;
  cls.push_back(health_);
  HierarchicalSelector selector(&hierarchy_, ptrs, cls);
  BglossScorer bgloss;
  const auto ranking = selector.Select(Query{{"clinical"}}, 3, bgloss);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].database, 5u);
}

}  // namespace
}  // namespace fedsearch::selection
