#include "fedsearch/selection/flat_ranker.h"

#include <gtest/gtest.h>

#include "fedsearch/selection/bgloss.h"
#include "fedsearch/selection/cori.h"

namespace fedsearch::selection {
namespace {

summary::ContentSummary MakeDb(double n, double df_word) {
  summary::ContentSummary s;
  s.set_num_documents(n);
  if (df_word > 0) s.SetWord("word", summary::WordStats{df_word, df_word});
  return s;
}

TEST(FlatRankerTest, RanksByDecreasingScore) {
  const summary::ContentSummary strong = MakeDb(100, 80);
  const summary::ContentSummary weak = MakeDb(100, 10);
  std::vector<const summary::SummaryView*> dbs = {&weak, &strong};
  ScoringContext ctx;
  ctx.ranked_summaries = dbs;
  BglossScorer bgloss;
  const auto ranking = RankDatabases(Query{{"word"}}, dbs, bgloss, ctx);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].database, 1u);
  EXPECT_EQ(ranking[1].database, 0u);
  EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST(FlatRankerTest, OmitsDefaultScoredDatabases) {
  // A database with no query evidence is "not selected" (Section 6.2).
  const summary::ContentSummary has = MakeDb(100, 50);
  const summary::ContentSummary empty = MakeDb(100, 0);
  std::vector<const summary::SummaryView*> dbs = {&has, &empty};
  ScoringContext ctx;
  ctx.ranked_summaries = dbs;
  BglossScorer bgloss;
  const auto ranking = RankDatabases(Query{{"word"}}, dbs, bgloss, ctx);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].database, 0u);
}

TEST(FlatRankerTest, CoriOmitsAllMissTooDatabases) {
  const summary::ContentSummary has = MakeDb(100, 50);
  const summary::ContentSummary empty = MakeDb(100, 0);
  std::vector<const summary::SummaryView*> dbs = {&has, &empty};
  ScoringContext ctx;
  ctx.ranked_summaries = dbs;
  CoriScorer cori;
  const auto ranking = RankDatabases(Query{{"word"}}, dbs, cori, ctx);
  ASSERT_EQ(ranking.size(), 1u);  // empty db scores exactly 0.4 = default
  EXPECT_EQ(ranking[0].database, 0u);
}

TEST(FlatRankerTest, DeterministicTiesByIndex) {
  const summary::ContentSummary a = MakeDb(100, 50);
  const summary::ContentSummary b = MakeDb(100, 50);
  std::vector<const summary::SummaryView*> dbs = {&a, &b};
  ScoringContext ctx;
  ctx.ranked_summaries = dbs;
  BglossScorer bgloss;
  const auto ranking = RankDatabases(Query{{"word"}}, dbs, bgloss, ctx);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].database, 0u);
  EXPECT_EQ(ranking[1].database, 1u);
}

TEST(FlatRankerTest, EmptyInputs) {
  ScoringContext ctx;
  BglossScorer bgloss;
  EXPECT_TRUE(RankDatabases(Query{{"word"}}, {}, bgloss, ctx).empty());
}

}  // namespace
}  // namespace fedsearch::selection
