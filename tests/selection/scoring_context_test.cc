#include <gtest/gtest.h>

#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {
namespace {

summary::ContentSummary MakeDb(double n,
                               std::vector<std::pair<std::string, double>>
                                   words) {
  summary::ContentSummary s;
  s.set_num_documents(n);
  for (const auto& [w, df] : words) {
    s.SetWord(w, summary::WordStats{df, df * 2});
  }
  return s;
}

TEST(ScoringContextTest, PreparedStatisticsMatchOnTheFlyComputation) {
  const summary::ContentSummary a = MakeDb(100, {{"x", 40}, {"y", 3}});
  const summary::ContentSummary b = MakeDb(300, {{"x", 10}});
  const summary::ContentSummary c = MakeDb(50, {{"z", 5}});
  ScoringContext plain;
  plain.ranked_summaries = {&a, &b, &c};
  ScoringContext cached = plain;
  PrepareContextForQuery(Query{{"x", "y", "z", "missing"}}, cached);

  CoriScorer cori;
  for (const summary::ContentSummary* db : {&a, &b, &c}) {
    for (const char* word : {"x", "y", "z", "missing"}) {
      const Query q{{word}};
      EXPECT_DOUBLE_EQ(cori.Score(q, *db, plain), cori.Score(q, *db, cached))
          << word;
    }
  }
}

TEST(ScoringContextTest, CachedCfValues) {
  const summary::ContentSummary a = MakeDb(100, {{"x", 40}});
  const summary::ContentSummary b = MakeDb(300, {{"x", 10}, {"y", 2}});
  ScoringContext ctx;
  ctx.ranked_summaries = {&a, &b};
  PrepareContextForQuery(Query{{"x", "y", "absent"}}, ctx);
  EXPECT_TRUE(ctx.has_cached_statistics);
  EXPECT_EQ(ctx.cached_cf.at("x"), 2u);
  EXPECT_EQ(ctx.cached_cf.at("y"), 1u);
  EXPECT_EQ(ctx.cached_cf.at("absent"), 0u);
  // total_tokens: a = 80, b = 24; mean over the two summaries.
  EXPECT_DOUBLE_EQ(ctx.cached_mean_cw, (80.0 + 24.0) / 2.0);
}

TEST(ScoringContextTest, EmptyRankedSetIsSafe) {
  ScoringContext ctx;
  PrepareContextForQuery(Query{{"x"}}, ctx);
  EXPECT_EQ(ctx.cached_cf.at("x"), 0u);
  EXPECT_EQ(ctx.cached_mean_cw, 1.0);
}

TEST(ScoringStatisticsCacheTest, RebuiltMatchesScanningConstructorExactly) {
  const summary::ContentSummary a0 = MakeDb(100, {{"x", 40}, {"y", 3}});
  const summary::ContentSummary b0 = MakeDb(300, {{"x", 10}, {"z", 7}});
  const summary::ContentSummary c0 = MakeDb(50, {{"z", 5}});
  const std::vector<const summary::SummaryView*> before = {&a0, &b0, &c0};
  const ScoringStatisticsCache prior(before);

  // Refresh replaces b: loses z (its count must drop AND the entry must
  // disappear when it reaches zero elsewhere), gains w.
  const summary::ContentSummary b1 = MakeDb(280, {{"x", 12}, {"w", 4}});
  const std::vector<const summary::SummaryView*> after = {&a0, &b1, &c0};

  const ScoringStatisticsCache incremental =
      ScoringStatisticsCache::Rebuilt(prior, after, before, {1});
  const ScoringStatisticsCache scanned(after);

  EXPECT_EQ(incremental.num_summaries(), scanned.num_summaries());
  EXPECT_EQ(incremental.vocabulary_size(), scanned.vocabulary_size());
  // mean_cw is a full index-order float recompute: bit-identical, not
  // merely close.
  EXPECT_EQ(incremental.mean_cw(), scanned.mean_cw());
  for (const char* word : {"x", "y", "z", "w", "absent"}) {
    EXPECT_EQ(incremental.CollectionFrequency(word),
              scanned.CollectionFrequency(word))
        << word;
  }
}

TEST(ScoringStatisticsCacheTest, RebuiltWithNoChangesIsTheIdentity) {
  const summary::ContentSummary a = MakeDb(100, {{"x", 40}});
  const summary::ContentSummary b = MakeDb(300, {{"y", 2}});
  const std::vector<const summary::SummaryView*> set = {&a, &b};
  const ScoringStatisticsCache prior(set);
  const ScoringStatisticsCache rebuilt =
      ScoringStatisticsCache::Rebuilt(prior, set, set, {});
  EXPECT_EQ(rebuilt.mean_cw(), prior.mean_cw());
  EXPECT_EQ(rebuilt.vocabulary_size(), prior.vocabulary_size());
  EXPECT_EQ(rebuilt.CollectionFrequency("x"), 1u);
  EXPECT_EQ(rebuilt.CollectionFrequency("y"), 1u);
}

TEST(ScoringStatisticsCacheTest, RebuiltChainMatchesScanAfterManyRefreshes) {
  // Chained incremental rebuilds (the live-refresh steady state) must not
  // accumulate any error relative to scanning.
  std::vector<summary::ContentSummary> owned;
  owned.reserve(8);
  owned.push_back(MakeDb(100, {{"x", 1}, {"y", 2}}));
  owned.push_back(MakeDb(200, {{"y", 3}, {"z", 4}}));
  owned.push_back(MakeDb(300, {{"z", 5}}));
  std::vector<const summary::SummaryView*> current = {&owned[0], &owned[1],
                                                      &owned[2]};
  ScoringStatisticsCache cache{current};
  for (int round = 0; round < 4; ++round) {
    const size_t victim = static_cast<size_t>(round) % 3;
    owned.push_back(MakeDb(100.0 + 17.0 * round,
                           {{round % 2 == 0 ? "x" : "w", 2.0 + round}}));
    std::vector<const summary::SummaryView*> next = current;
    next[victim] = &owned.back();
    cache = ScoringStatisticsCache::Rebuilt(cache, next, current, {victim});
    current = next;
  }
  const ScoringStatisticsCache scanned(current);
  EXPECT_EQ(cache.mean_cw(), scanned.mean_cw());
  EXPECT_EQ(cache.vocabulary_size(), scanned.vocabulary_size());
  for (const char* word : {"x", "y", "z", "w"}) {
    EXPECT_EQ(cache.CollectionFrequency(word),
              scanned.CollectionFrequency(word))
        << word;
  }
}

}  // namespace
}  // namespace fedsearch::selection
