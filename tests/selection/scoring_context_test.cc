#include <gtest/gtest.h>

#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/scoring.h"

namespace fedsearch::selection {
namespace {

summary::ContentSummary MakeDb(double n,
                               std::vector<std::pair<std::string, double>>
                                   words) {
  summary::ContentSummary s;
  s.set_num_documents(n);
  for (const auto& [w, df] : words) {
    s.SetWord(w, summary::WordStats{df, df * 2});
  }
  return s;
}

TEST(ScoringContextTest, PreparedStatisticsMatchOnTheFlyComputation) {
  const summary::ContentSummary a = MakeDb(100, {{"x", 40}, {"y", 3}});
  const summary::ContentSummary b = MakeDb(300, {{"x", 10}});
  const summary::ContentSummary c = MakeDb(50, {{"z", 5}});
  ScoringContext plain;
  plain.ranked_summaries = {&a, &b, &c};
  ScoringContext cached = plain;
  PrepareContextForQuery(Query{{"x", "y", "z", "missing"}}, cached);

  CoriScorer cori;
  for (const summary::ContentSummary* db : {&a, &b, &c}) {
    for (const char* word : {"x", "y", "z", "missing"}) {
      const Query q{{word}};
      EXPECT_DOUBLE_EQ(cori.Score(q, *db, plain), cori.Score(q, *db, cached))
          << word;
    }
  }
}

TEST(ScoringContextTest, CachedCfValues) {
  const summary::ContentSummary a = MakeDb(100, {{"x", 40}});
  const summary::ContentSummary b = MakeDb(300, {{"x", 10}, {"y", 2}});
  ScoringContext ctx;
  ctx.ranked_summaries = {&a, &b};
  PrepareContextForQuery(Query{{"x", "y", "absent"}}, ctx);
  EXPECT_TRUE(ctx.has_cached_statistics);
  EXPECT_EQ(ctx.cached_cf.at("x"), 2u);
  EXPECT_EQ(ctx.cached_cf.at("y"), 1u);
  EXPECT_EQ(ctx.cached_cf.at("absent"), 0u);
  // total_tokens: a = 80, b = 24; mean over the two summaries.
  EXPECT_DOUBLE_EQ(ctx.cached_mean_cw, (80.0 + 24.0) / 2.0);
}

TEST(ScoringContextTest, EmptyRankedSetIsSafe) {
  ScoringContext ctx;
  PrepareContextForQuery(Query{{"x"}}, ctx);
  EXPECT_EQ(ctx.cached_cf.at("x"), 0u);
  EXPECT_EQ(ctx.cached_mean_cw, 1.0);
}

}  // namespace
}  // namespace fedsearch::selection
