#include "fedsearch/selection/redde.h"

#include <gtest/gtest.h>

namespace fedsearch::selection {
namespace {

sampling::SampleResult MakeSample(
    double estimated_size, std::vector<std::vector<std::string>> docs) {
  sampling::SampleResult s;
  s.estimated_db_size = estimated_size;
  s.sample_size = docs.size();
  s.sampled_documents = std::move(docs);
  return s;
}

class ReddeTest : public ::testing::Test {
 protected:
  ReddeTest() {
    // db0: medical, large. db1: medical, small. db2: sports.
    samples_.push_back(MakeSample(10000, {{"cardiac", "blood"},
                                          {"cardiac", "patient"},
                                          {"blood", "patient"}}));
    samples_.push_back(MakeSample(500, {{"cardiac", "surgery"},
                                        {"patient", "surgery"}}));
    samples_.push_back(MakeSample(2000, {{"goal", "league"},
                                         {"league", "match"}}));
    for (const auto& s : samples_) ptrs_.push_back(&s);
  }

  std::vector<sampling::SampleResult> samples_;
  std::vector<const sampling::SampleResult*> ptrs_;
};

TEST_F(ReddeTest, BuildsCentralizedSampleIndex) {
  ReddeSelector redde(ptrs_);
  EXPECT_EQ(redde.total_sample_documents(), 7u);
}

TEST_F(ReddeTest, RanksTopicalDatabasesFirst) {
  ReddeSelector redde(ptrs_);
  const auto medical = redde.Select(Query{{"cardiac", "patient"}}, 3);
  ASSERT_GE(medical.size(), 2u);
  // db0 has more matching proxies AND a much larger scale factor.
  EXPECT_EQ(medical[0].database, 0u);
  // The sports database gets no votes for a medical query.
  for (const auto& r : medical) EXPECT_NE(r.database, 2u);

  const auto sports = redde.Select(Query{{"league"}}, 3);
  ASSERT_EQ(sports.size(), 1u);
  EXPECT_EQ(sports[0].database, 2u);
}

TEST_F(ReddeTest, ScaleFactorWeighsVotes) {
  // One matching proxy from a 10000-doc database must outweigh one from a
  // 500-doc database.
  ReddeSelector redde(ptrs_);
  const auto ranking = redde.Select(Query{{"surgery", "blood"}}, 3);
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].database, 0u);  // blood proxies x (10000/3)
  EXPECT_EQ(ranking[1].database, 1u);
  EXPECT_GT(ranking[0].score, ranking[1].score);
}

TEST_F(ReddeTest, HonorsBudget) {
  ReddeSelector redde(ptrs_);
  EXPECT_EQ(redde.Select(Query{{"patient"}}, 1).size(), 1u);
}

TEST_F(ReddeTest, UnknownQueryWordsYieldEmptyRanking) {
  ReddeSelector redde(ptrs_);
  EXPECT_TRUE(redde.Select(Query{{"nonexistent"}}, 5).empty());
  EXPECT_TRUE(redde.Select(Query{}, 5).empty());
}

TEST(ReddeEdgeTest, EmptyFederation) {
  ReddeSelector redde({});
  EXPECT_TRUE(redde.Select(Query{{"x"}}, 5).empty());
}

TEST(ReddeEdgeTest, DatabasesWithoutKeptDocumentsGetNoVotes) {
  sampling::SampleResult no_docs;
  no_docs.estimated_db_size = 1000;
  sampling::SampleResult with_docs;
  with_docs.estimated_db_size = 100;
  with_docs.sampled_documents = {{"word"}};
  std::vector<const sampling::SampleResult*> ptrs = {&no_docs, &with_docs};
  ReddeSelector redde(ptrs);
  const auto ranking = redde.Select(Query{{"word"}}, 5);
  ASSERT_EQ(ranking.size(), 1u);
  EXPECT_EQ(ranking[0].database, 1u);
}

}  // namespace
}  // namespace fedsearch::selection
