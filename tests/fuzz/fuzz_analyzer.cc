#include <cctype>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fedsearch/text/analyzer.h"
#include "fedsearch/text/tokenizer.h"
#include "fedsearch/util/check.h"

// libFuzzer entry point for the text pipeline: Tokenizer and the full
// Analyzer (tokenize -> stopwords -> Porter stemmer) over arbitrary bytes.
// Documents flow in from remote databases, so the pipeline must hold its
// contracts on any input:
//
//  - tokens are non-empty, at most kMaxTokenLength bytes, lowercase ASCII
//    alphanumerics only;
//  - analyzed terms additionally respect min_token_length and never grow
//    past the tokenizer bound (the stemmer only shortens);
//  - analysis is deterministic (same bytes -> same terms).

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace text = fedsearch::text;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  text::Tokenizer tokenizer;
  const std::vector<std::string> tokens = tokenizer.Tokenize(input);
  for (const std::string& token : tokens) {
    FEDSEARCH_CHECK(!token.empty());
    FEDSEARCH_CHECK(token.size() <= text::Tokenizer::kMaxTokenLength)
        << " oversized token of " << token.size() << " bytes";
    for (const char c : token) {
      FEDSEARCH_CHECK((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
          << " non-lowercase-alnum byte " << static_cast<int>(c)
          << " in token";
    }
  }

  static const text::Analyzer analyzer;  // stateless across inputs
  const std::vector<std::string> terms = analyzer.Analyze(input);
  const size_t min_len = analyzer.options().min_token_length;
  for (const std::string& term : terms) {
    FEDSEARCH_CHECK(term.size() >= min_len)
        << " term below min_token_length: " << term;
    FEDSEARCH_CHECK(term.size() <= text::Tokenizer::kMaxTokenLength);
  }
  FEDSEARCH_CHECK(terms.size() <= tokens.size())
      << " analysis produced more terms than tokens";

  FEDSEARCH_CHECK(analyzer.Analyze(input) == terms)
      << " analysis is nondeterministic for this input";
  return 0;
}
