// Standalone replay/mutation driver for the libFuzzer entry points, used
// when the toolchain has no -fsanitize=fuzzer (gcc) and for the bounded
// CI regression mode. Usage:
//
//   <driver> [--mutate N] [--seed S] PATH...
//
// Each PATH is a corpus file or a directory of corpus files. Every input
// is replayed through LLVMFuzzerTestOneInput; with --mutate N, each input
// additionally spawns N deterministic mutants (byte flips, truncations,
// duplications, splices — driven by util::Rng, so a given (corpus, seed)
// always exercises the identical input set; no wall-clock, no
// nondeterminism in CI). Exits 0 iff every input ran without tripping a
// check or sanitizer; a crash kills the process with the offending input's
// path already printed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fedsearch/util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

// One deterministic mutant of `base`. Mutation kinds mirror libFuzzer's
// cheapest mutators; enough to shake out parser edge cases from the seeds.
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& base,
                            fedsearch::util::Rng& rng) {
  std::vector<uint8_t> m = base;
  const uint64_t kind = rng.NextBounded(5);
  switch (kind) {
    case 0:  // flip random bytes
      if (!m.empty()) {
        const size_t flips = 1 + rng.NextBounded(4);
        for (size_t i = 0; i < flips; ++i) {
          m[rng.NextBounded(m.size())] =
              static_cast<uint8_t>(rng.NextBounded(256));
        }
      }
      break;
    case 1:  // truncate to a random prefix
      if (!m.empty()) m.resize(rng.NextBounded(m.size()));
      break;
    case 2:  // duplicate a random slice at the end
      if (!m.empty()) {
        const size_t begin = rng.NextBounded(m.size());
        const size_t len = 1 + rng.NextBounded(m.size() - begin);
        m.insert(m.end(), m.begin() + begin, m.begin() + begin + len);
      }
      break;
    case 3:  // insert random bytes at a random offset
    {
      const size_t at = m.empty() ? 0 : rng.NextBounded(m.size() + 1);
      const size_t len = 1 + rng.NextBounded(8);
      std::vector<uint8_t> noise(len);
      for (uint8_t& b : noise) {
        b = static_cast<uint8_t>(rng.NextBounded(256));
      }
      m.insert(m.begin() + at, noise.begin(), noise.end());
      break;
    }
    default:  // whitespace/digit swap — targeted at the token parsers
      for (uint8_t& b : m) {
        if (rng.NextBounded(8) == 0) {
          b = " \t\n0123456789-+.eE"[rng.NextBounded(17)];
        }
      }
      break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  size_t mutants_per_input = 0;
  uint64_t seed = 0x5EEDF0CC1ULL;
  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutants_per_input = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else {
      std::filesystem::path p(argv[i]);
      if (std::filesystem::is_directory(p)) {
        std::vector<std::filesystem::path> entries;
        for (const auto& e : std::filesystem::directory_iterator(p)) {
          if (e.is_regular_file()) entries.push_back(e.path());
        }
        // directory_iterator order is filesystem-dependent; sort so runs
        // are reproducible byte-for-byte.
        std::sort(entries.begin(), entries.end());
        inputs.insert(inputs.end(), entries.begin(), entries.end());
      } else {
        inputs.push_back(std::move(p));
      }
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--mutate N] [--seed S] corpus-file-or-dir...\n",
                 argv[0]);
    return 2;
  }

  fedsearch::util::Rng rng(seed);
  size_t executed = 0;
  for (const std::filesystem::path& path : inputs) {
    const std::vector<uint8_t> base = ReadFile(path);
    // Printed before the run so a crash leaves the culprit on record.
    std::fprintf(stderr, "replay: %s (%zu bytes, %zu mutants)\n",
                 path.c_str(), base.size(), mutants_per_input);
    LLVMFuzzerTestOneInput(base.data(), base.size());
    ++executed;
    for (size_t i = 0; i < mutants_per_input; ++i) {
      const std::vector<uint8_t> mutant = Mutate(base, rng);
      LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
      ++executed;
    }
  }
  std::fprintf(stderr, "replay: %zu inputs over %zu seeds, all clean\n",
               executed, inputs.size());
  return 0;
}
