#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "fedsearch/summary/summary_io.h"
#include "fedsearch/util/check.h"

// libFuzzer entry point for summary::ReadSummary, the one parser in the
// system that consumes bytes from outside the process (summary files are
// exchanged between metasearcher deployments). Properties enforced:
//
//  1. No crash / sanitizer report on arbitrary input — ReadSummary either
//     returns a ContentSummary or a Status error.
//  2. Accepted inputs round-trip: Write(Read(x)) must itself parse, and
//     the re-parse must agree on the header statistics and vocabulary.
//
// Built as a real fuzzer when the compiler supports -fsanitize=fuzzer
// (clang); always built into the *_replay driver that runs the seed corpus
// plus bounded deterministic mutations as a ctest case (label "fuzz").

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace summary = fedsearch::summary;
  const std::string input(reinterpret_cast<const char*>(data), size);
  std::istringstream in(input);
  fedsearch::util::StatusOr<summary::ContentSummary> parsed =
      summary::ReadSummary(in);
  if (!parsed.ok()) return 0;  // rejected cleanly: fine

  const summary::ContentSummary& first = parsed.value();
  std::ostringstream out;
  const fedsearch::util::Status written = summary::WriteSummary(first, out);
  // ReadSummary tokenizes on whitespace, so no accepted word can contain
  // whitespace and the writer must always succeed on a parsed summary.
  FEDSEARCH_CHECK(written.ok())
      << " write-after-read failed: " << written.ToString();

  std::istringstream in2(out.str());
  fedsearch::util::StatusOr<summary::ContentSummary> reparsed =
      summary::ReadSummary(in2);
  FEDSEARCH_CHECK(reparsed.ok())
      << " round-trip re-parse failed: " << reparsed.status().ToString();
  const summary::ContentSummary& second = reparsed.value();
  FEDSEARCH_CHECK(second.vocabulary_size() == first.vocabulary_size())
      << " vocabulary changed in round-trip: " << first.vocabulary_size()
      << " -> " << second.vocabulary_size();
  FEDSEARCH_CHECK(second.num_documents() == first.num_documents())
      << " document count changed in round-trip";
  return 0;
}
