// Federated search session over a Web-like collection of databases:
// builds the federation, samples every database through its public search
// interface, constructs shrunk content summaries off-line, and then routes
// interactive-style queries with adaptive database selection (Figure 3),
// comparing the databases each strategy picks.

#include <cstdio>
#include <string>

#include "fedsearch/core/federated_search.h"
#include "fedsearch/core/metasearcher.h"
#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/lm.h"

using namespace fedsearch;

namespace {

void RouteQuery(const corpus::Testbed& bed, const core::Metasearcher& meta,
                const selection::ScoringFunction& scorer,
                const std::string& query_text, size_t k) {
  const selection::Query query{bed.analyzer().Analyze(query_text)};
  std::printf("\n[%s] query: \"%s\"\n", std::string(scorer.name()).c_str(),
              query_text.c_str());
  if (query.terms.empty()) {
    std::printf("  (no terms after analysis)\n");
    return;
  }

  const auto plain =
      meta.SelectDatabases(query, scorer, core::SummaryMode::kPlain);
  const auto adaptive = meta.SelectDatabases(
      query, scorer, core::SummaryMode::kAdaptiveShrinkage);
  std::printf("  adaptive shrinkage used for %zu/%zu databases\n",
              adaptive.shrinkage_applied, adaptive.databases_considered);

  auto print_top = [&](const char* label,
                       const std::vector<selection::RankedDatabase>& ranking) {
    std::printf("  %-10s:", label);
    for (size_t i = 0; i < std::min(k, ranking.size()); ++i) {
      std::printf(" %s", bed.database(ranking[i].database).name().c_str());
    }
    if (ranking.empty()) std::printf(" (no database selected)");
    std::printf("\n");
  };
  print_top("plain", plain.ranking);
  print_top("shrinkage", adaptive.ranking);

  // Step (3) of the pipeline: evaluate the query at the selected databases
  // and merge the result lists.
  std::vector<const index::TextDatabase*> databases;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    databases.push_back(&bed.database(i));
  }
  core::FederatedSearchOptions merge_options;
  merge_options.databases_to_search = 3;
  merge_options.merged_results = 3;
  const auto merged = core::SearchAndMerge(databases, adaptive.ranking,
                                           query_text, merge_options);
  std::printf("  merged    :");
  for (const core::FederatedHit& hit : merged) {
    std::printf(" %s#%u(%.2f)", bed.database(hit.database).name().c_str(),
                hit.doc, hit.score);
  }
  if (merged.empty()) std::printf(" (no results)");
  std::printf("\n");
}

}  // namespace

int main() {
  // A reduced Web-like federation (64 databases) so the example stays
  // interactive-speed; bump the scale for a fuller run.
  corpus::TestbedOptions options = corpus::Testbed::WebOptions(0.05);
  options.num_databases = 64;
  options.databases_per_leaf = 1;
  std::printf("Building federation of %zu web databases ...\n",
              options.num_databases);
  corpus::Testbed bed(options);
  std::printf("  %llu documents total\n",
              static_cast<unsigned long long>(bed.total_documents()));

  std::printf("Sampling every database via QBS ...\n");
  sampling::QbsOptions qbs;
  qbs.build.frequency_estimation = true;
  sampling::QbsSampler sampler(qbs,
                               corpus::BuildSamplerDictionary(bed.model(), 20));
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  util::Rng rng(12);
  size_t total_queries = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    total_queries += samples.back().queries_sent;
    classifications.push_back(bed.category_of(i));  // directory category
  }
  std::printf("  %zu probe queries in total (%.1f per database)\n",
              total_queries,
              static_cast<double>(total_queries) /
                  static_cast<double>(bed.num_databases()));

  std::printf("Fitting shrinkage models ...\n");
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          std::move(classifications));

  // Route a few recognizable queries (the curated category seed words).
  const selection::CoriScorer cori;
  const selection::LmScorer lm;
  RouteQuery(bed, meta, cori, "hypertension cholesterol", 5);
  RouteQuery(bed, meta, cori, "hemophilia", 5);
  RouteQuery(bed, meta, lm, "market inflation monetary", 5);
  RouteQuery(bed, meta, lm, "soccer league striker", 5);
  RouteQuery(bed, meta, cori, "java bytecode compiler", 5);

  std::printf("\nDone.\n");
  return 0;
}
