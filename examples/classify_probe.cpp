// Focused-probing classification demo: samples "uncooperative" databases
// with FPS (Section 5.2) and shows the derived hierarchy classifications
// next to the true directory categories, together with the probing cost.

#include <cstdio>

#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/fps_sampler.h"

using namespace fedsearch;

int main() {
  corpus::TestbedOptions options = corpus::Testbed::Trec4Options(0.3);
  options.num_databases = 24;
  options.num_queries = 0;
  std::printf("Building %zu single-topic databases ...\n",
              options.num_databases);
  corpus::Testbed bed(options);

  const sampling::ProbeRuleSet rules =
      sampling::ProbeRuleSet::FromTopicModel(bed.model());
  sampling::FpsOptions fps_options;
  sampling::FpsSampler sampler(fps_options, &rules);

  std::printf("\n%-34s %-34s %8s %7s %6s\n", "true category",
              "FPS classification", "queries", "sample", "match");
  size_t on_path = 0;
  util::Rng rng(5);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    const sampling::SampleResult r = sampler.Sample(bed.database(i), db_rng);
    const auto path = bed.hierarchy().PathFromRoot(bed.category_of(i));
    bool hit = false;
    for (corpus::CategoryId c : path) hit |= c == r.classification;
    on_path += hit ? 1 : 0;
    std::printf("%-34s %-34s %8zu %7zu %6s\n",
                bed.hierarchy().PathString(bed.category_of(i)).c_str(),
                bed.hierarchy().PathString(r.classification).c_str(),
                r.queries_sent, r.sample_size, hit ? "yes" : "NO");
  }
  std::printf("\n%zu/%zu classifications land on the database's true "
              "category path.\n",
              on_path, bed.num_databases());
  return 0;
}
