// The Example 1 scenario from the paper: a "PubMed-like" database where the
// word "hemophilia" appears in a small fraction of documents. A 300-document
// QBS sample is likely to miss it; topically related databases (the other
// Health/Diseases databases) supply it through shrinkage.
//
// The program prints, for the rare words of one database, the unshrunk and
// shrunk probability estimates next to the truth.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/summary/metrics.h"

using namespace fedsearch;

int main() {
  // A Health-heavy federation: 2 databases per leaf keeps several
  // Diseases databases around to share vocabulary with.
  corpus::TestbedOptions options = corpus::Testbed::WebOptions(0.08);
  options.num_databases = 108;
  options.databases_per_leaf = 2;
  std::printf("Building %zu databases ...\n", options.num_databases);
  corpus::Testbed bed(options);

  // Locate a database under Root/Health/Diseases/Aids — the subtree whose
  // curated vocabulary contains "hemophilia".
  const corpus::CategoryId aids =
      bed.hierarchy().FindByPath("Root/Health/Diseases/Aids");
  size_t pubmed_like = 0;
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    if (bed.category_of(i) == aids &&
        bed.database(i).num_documents() >
            bed.database(pubmed_like).num_documents()) {
      pubmed_like = i;
    }
  }
  const index::TextDatabase& db = bed.database(pubmed_like);
  std::printf("Inspecting %s (%zu documents, %s)\n", db.name().c_str(),
              db.num_documents(),
              bed.hierarchy().PathString(bed.category_of(pubmed_like)).c_str());

  std::printf("Sampling all databases with QBS ...\n");
  sampling::QbsOptions qbs;
  qbs.build.frequency_estimation = true;
  sampling::QbsSampler sampler(qbs,
                               corpus::BuildSamplerDictionary(bed.model(), 20));
  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  util::Rng rng(31);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    classifications.push_back(bed.category_of(i));
  }
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          std::move(classifications));

  const summary::ContentSummary truth =
      summary::ContentSummary::FromIndex(db.index());
  const summary::ContentSummary& plain = meta.plain_summary(pubmed_like);
  const core::ShrunkSummary& shrunk = meta.shrunk_summary(pubmed_like);

  // Words present in the database but missed by the sample, most frequent
  // first — the words Example 1 is about.
  struct Missed {
    const std::string* word;
    double true_df;
  };
  std::vector<Missed> missed;
  truth.ForEachWord([&](const std::string& w, const summary::WordStats& s) {
    if (plain.DocFrequency(w) == 0.0 && s.df >= 2.0) {
      missed.push_back(Missed{&w, s.df});
    }
  });
  std::sort(missed.begin(), missed.end(),
            [](const Missed& a, const Missed& b) {
              return a.true_df > b.true_df;
            });

  std::printf("\n%zu words appear in >=2 documents but were missed by the "
              "sample.\n",
              missed.size());
  std::printf("The most frequent missed words, and what shrinkage recovers:\n");
  std::printf("  %-16s %10s %12s %12s\n", "word", "true p", "unshrunk p",
              "shrunk p");
  size_t recovered = 0;
  const double trim_threshold = 0.5 / truth.num_documents();
  for (const Missed& m : missed) {
    const double p_shrunk = shrunk.MixtureProbDoc(*m.word);
    if (p_shrunk >= trim_threshold) ++recovered;
  }
  for (size_t i = 0; i < std::min<size_t>(12, missed.size()); ++i) {
    std::printf("  %-16s %10.5f %12.5f %12.5f\n", missed[i].word->c_str(),
                missed[i].true_df / truth.num_documents(),
                0.0, shrunk.MixtureProbDoc(*missed[i].word));
  }
  std::printf(
      "\nShrinkage lifts %zu of the %zu missed words above the "
      "round(|D|*p)>=1 threshold.\n",
      recovered, missed.size());

  // And the headline word itself.
  const std::string hemo = bed.analyzer().Analyze("hemophilia").front();
  std::printf("\n[hemophilia] (analyzed: '%s'):\n", hemo.c_str());
  std::printf("  true p        = %.6f (%.0f documents)\n",
              truth.ProbDoc(hemo), truth.DocFrequency(hemo));
  std::printf("  unshrunk p̂    = %.6f\n", plain.ProbDoc(hemo));
  std::printf("  shrunk p̂_R    = %.6f\n", shrunk.MixtureProbDoc(hemo));
  return 0;
}
