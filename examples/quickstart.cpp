// Quickstart: the full shrinkage pipeline on a small federation.
//
// 1. Generate a topically-organized federation of text databases.
// 2. Sample each database with Query-Based Sampling (QBS) — the only access
//    is the databases' public search interface.
// 3. Build shrunk content summaries R(D) from the category hierarchy
//    (Definition 4, EM mixture weights of Figure 2).
// 4. Compare summary quality and run one query through adaptive database
//    selection (Figure 3).

#include <cstdio>

#include "fedsearch/core/metasearcher.h"
#include "fedsearch/corpus/testbed.h"
#include "fedsearch/sampling/qbs_sampler.h"
#include "fedsearch/selection/cori.h"
#include "fedsearch/selection/rk_metric.h"
#include "fedsearch/summary/metrics.h"

using namespace fedsearch;

int main() {
  // A small TREC4-like federation so the demo runs in seconds.
  corpus::TestbedOptions opts = corpus::Testbed::Trec4Options(/*scale=*/0.4);
  opts.num_databases = 30;
  opts.num_queries = 5;
  std::printf("Generating %zu databases ...\n", opts.num_databases);
  corpus::Testbed bed(opts);
  std::printf("  total documents: %llu\n",
              static_cast<unsigned long long>(bed.total_documents()));

  // Sample every database via its search interface.
  sampling::QbsOptions qbs_opts;
  qbs_opts.build.frequency_estimation = true;
  sampling::QbsSampler sampler(
      qbs_opts, corpus::BuildSamplerDictionary(bed.model(), 20));

  std::vector<sampling::SampleResult> samples;
  std::vector<corpus::CategoryId> classifications;
  util::Rng rng(1);
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    util::Rng db_rng = rng.Fork();
    samples.push_back(sampler.Sample(bed.database(i), db_rng));
    classifications.push_back(bed.category_of(i));  // directory category
  }
  std::printf("Sampled %zu databases (sample sizes ~%zu docs).\n",
              samples.size(), samples[0].sample_size);

  // Off-line shrinkage: category summaries + EM mixture weights.
  core::Metasearcher meta(&bed.hierarchy(), std::move(samples),
                          classifications);

  // Show one database's mixture weights (the Table 2 view).
  const size_t db = 0;
  std::printf("\nDatabase '%s' (%s):\n", bed.database(db).name().c_str(),
              bed.hierarchy().PathString(bed.category_of(db)).c_str());
  const auto& lambdas = meta.lambdas(db);
  std::printf("  %-28s lambda\n", "category");
  std::printf("  %-28s %.3f\n", "Uniform", lambdas[0]);
  const auto& h = bed.hierarchy();
  const std::vector<corpus::CategoryId> path =
      h.PathFromRoot(bed.category_of(db));
  for (size_t i = 0; i < path.size(); ++i) {
    std::printf("  %-28s %.3f\n", h.node(path[i]).name.c_str(),
                lambdas[i + 1]);
  }
  std::printf("  %-28s %.3f\n", "(database itself)", lambdas.back());

  // Summary quality, unshrunk vs shrunk.
  const summary::ContentSummary truth =
      summary::ContentSummary::FromIndex(bed.database(db).index());
  const summary::ContentSummary shrunk_trimmed =
      summary::ContentSummary::Materialize(meta.shrunk_summary(db),
                                           /*trim=*/true);
  const summary::SummaryQuality plain_q =
      summary::EvaluateSummary(meta.plain_summary(db), truth);
  const summary::SummaryQuality shrunk_q =
      summary::EvaluateSummary(shrunk_trimmed, truth);
  std::printf("\nSummary quality of database %zu:\n", db);
  std::printf("  %-22s %9s %9s\n", "", "unshrunk", "shrunk");
  std::printf("  %-22s %9.3f %9.3f\n", "weighted recall",
              plain_q.weighted_recall, shrunk_q.weighted_recall);
  std::printf("  %-22s %9.3f %9.3f\n", "unweighted recall",
              plain_q.unweighted_recall, shrunk_q.unweighted_recall);
  std::printf("  %-22s %9.3f %9.3f\n", "weighted precision",
              plain_q.weighted_precision, shrunk_q.weighted_precision);
  std::printf("  %-22s %9.3f %9.3f\n", "unweighted precision",
              plain_q.unweighted_precision, shrunk_q.unweighted_precision);

  // One query through adaptive selection with CORI.
  const corpus::TestQuery& tq = bed.queries()[0];
  selection::Query query{bed.analyzer().Analyze(tq.text)};
  selection::CoriScorer cori;
  const auto plain =
      meta.SelectDatabases(query, cori, core::SummaryMode::kPlain);
  const auto adaptive =
      meta.SelectDatabases(query, cori, core::SummaryMode::kAdaptiveShrinkage);
  std::printf("\nQuery about '%s' (%zu words):\n",
              h.PathString(tq.topic).c_str(), query.terms.size());
  std::printf("  shrinkage applied for %zu/%zu databases\n",
              adaptive.shrinkage_applied, adaptive.databases_considered);

  std::vector<size_t> relevant(bed.num_databases());
  for (size_t i = 0; i < bed.num_databases(); ++i) {
    relevant[i] = bed.CountRelevant(0, i);
  }
  for (size_t k : {1u, 3u, 5u, 10u}) {
    std::printf("  R_%-2zu  plain=%.3f  shrinkage=%.3f\n", static_cast<size_t>(k),
                selection::RkScore(plain.ranking, relevant, k),
                selection::RkScore(adaptive.ranking, relevant, k));
  }
  std::printf("\nDone.\n");
  return 0;
}
